// Ablation bench: the design choices DESIGN.md calls out, isolated.
//
//   A. Staircase schedules -- three independent algorithms for Theorem
//      2.3 (MaxParallel canonical segments, WorkEfficient level phasing,
//      ColumnSplit divide & conquer): time / processor trade measured.
//   B. Tube strategies (PerSlice vs SampledDoublyLog) across PRAM
//      submodels: where the doubly-log machinery pays off.
//   C. CRCW submodel ablation for plain Monge row minima: COMMON's
//      doubly-log argopt vs COMBINING's single-step writes vs CREW trees.
//   D. Frontier-shape ablation for the staircase searcher: full, random,
//      strictly-decreasing (many distinct frontiers) and blocky.
#include "bench_util.hpp"
#include "monge/generators.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "par/tube_maxima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 4096));
  Rng rng(cli.get_int("seed", 19));

  // --- A. staircase schedules -----------------------------------------
  bench::print_header("A. Theorem 2.3 schedules (n x n staircase-Monge)");
  {
    Table t({"schedule", "n", "steps", "work", "peak procs"});
    const std::pair<par::StaircaseSchedule, const char*> scheds[] = {
        {par::StaircaseSchedule::MaxParallel, "canonical segments (maxpar)"},
        {par::StaircaseSchedule::WorkEfficient, "level-phased (workeff)"},
        {par::StaircaseSchedule::ColumnSplit, "column split d&c"},
    };
    for (const auto& [sched, name] : scheds) {
      for (std::size_t n : bench::pow2_sweep(256, nmax)) {
        const auto inst = monge::random_staircase_monge(n, n, rng);
        monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(
            inst.base, inst.frontier);
        pram::Machine mach(pram::Model::CRCW_COMMON);
        par::staircase_row_minima(mach, s, sched);
        t.add_row({name, Table::num(n), Table::num(mach.meter().time),
                   Table::num(mach.meter().work),
                   Table::num(mach.meter().peak_processors)});
      }
    }
    t.print(std::cout);
  }

  // --- B. tube strategies x models -------------------------------------
  bench::print_header("B. tube strategies across PRAM submodels (n = 128)");
  {
    Table t({"strategy", "model", "steps", "work", "peak procs"});
    const std::size_t n = std::min<std::size_t>(128, nmax);
    const auto inst = monge::random_composite(n, n, n, rng);
    for (auto strat :
         {par::TubeStrategy::PerSlice, par::TubeStrategy::SampledDoublyLog}) {
      for (auto model :
           {pram::Model::CREW, pram::Model::CRCW_COMMON,
            pram::Model::CRCW_COMBINING}) {
        pram::Machine mach(model);
        par::tube_minima(mach, inst.d, inst.e, strat);
        t.add_row({strat == par::TubeStrategy::PerSlice ? "per-slice"
                                                        : "sampled doubly-log",
                   pram::model_name(model), Table::num(mach.meter().time),
                   Table::num(mach.meter().work),
                   Table::num(mach.meter().peak_processors)});
      }
    }
    t.print(std::cout);
  }

  // --- C. CRCW submodels for Monge row minima --------------------------
  bench::print_header("C. machine submodels, Monge row minima (n = 4096)");
  {
    Table t({"model", "steps", "work", "note"});
    const std::size_t n = std::min<std::size_t>(4096, nmax);
    const auto a = monge::random_monge(n, n, rng);
    const std::pair<pram::Model, const char*> models[] = {
        {pram::Model::CREW, "lg-depth trees"},
        {pram::Model::CRCW_COMMON, "doubly-log argopt"},
        {pram::Model::CRCW_PRIORITY, "doubly-log argopt"},
        {pram::Model::CRCW_COMBINING, "1-step combining writes"},
    };
    for (const auto& [model, note] : models) {
      pram::Machine mach(model);
      par::monge_row_minima(mach, a);
      t.add_row({pram::model_name(model), Table::num(mach.meter().time),
                 Table::num(mach.meter().work), note});
    }
    t.print(std::cout);
  }

  // --- D. frontier shapes ----------------------------------------------
  bench::print_header("D. frontier-shape ablation (n = 2048, maxpar)");
  {
    Table t({"frontier", "segments work", "steps", "work"});
    const std::size_t n = std::min<std::size_t>(2048, nmax);
    const auto base = monge::random_monge(n, n, rng);
    struct Shape {
      const char* name;
      std::vector<std::size_t> f;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"full (plain Monge)", std::vector<std::size_t>(n, n)});
    shapes.push_back({"random", monge::random_frontier(n, n, rng)});
    {
      std::vector<std::size_t> f(n);
      for (std::size_t i = 0; i < n; ++i) f[i] = n - i;
      shapes.push_back({"strictly decreasing", std::move(f)});
    }
    {
      std::vector<std::size_t> f(n);
      for (std::size_t i = 0; i < n; ++i) {
        f[i] = n - (i / (n / 8)) * (n / 8);
      }
      shapes.push_back({"blocky (8 steps)", std::move(f)});
    }
    for (auto& sh : shapes) {
      monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(base, sh.f);
      pram::Machine mach(pram::Model::CRCW_COMMON);
      par::staircase_row_minima(mach, s);
      std::size_t seg_cells = 0;
      for (auto f : sh.f) seg_cells += static_cast<std::size_t>(
          __builtin_popcountll(static_cast<unsigned long long>(f)));
      t.add_row({sh.name, Table::num(seg_cells), Table::num(mach.meter().time),
                 Table::num(mach.meter().work)});
    }
    t.print(std::cout);
  }
  return 0;
}
