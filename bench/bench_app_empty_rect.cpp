// Application 1 -- the largest-area empty rectangle.
//
//   Paper:   O(lg^2 n) time, n lg n processors (CRCW), improving the
//            processor-time product of [AP89c]'s two algorithms
//            (O(lg^3 n) with n lg n procs; O(lg n) with n^2/lg n procs).
//
// The bench sweeps n, reports our measured depth/work, evaluates the
// [AP89c] processor-time formulas at the same n, and checks the lg^2
// depth shape.  Our crossing-case pair search is work-quadratic (the
// work-efficient staircase pairing is deferred in the extended
// abstract); the time rows reproduce, the work row is reported honestly.
#include <cmath>

#include "apps/empty_rect.hpp"
#include "bench_util.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using namespace pmonge::apps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // Default capped at 2048: the crossing-case pair argmax materializes
  // |WL| * |WR| candidates at the top level (~4M at n = 2048).
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 2048));
  Rng rng(cli.get_int("seed", 15));
  const Rect bound{0, 0, 1 << 20, 1 << 20};

  bench::print_header("Application 1: largest empty rectangle");

  Table t({"n", "steps", "work", "peak procs", "PT ours", "PT paper",
           "PT [AP89c] A", "PT [AP89c] B"});
  std::vector<SeriesPoint> depth;
  for (std::size_t n : bench::pow2_sweep(64, nmax)) {
    const auto pts = random_dpoints(n, rng, bound);
    pram::Machine mach(pram::Model::CRCW_COMMON);
    largest_empty_rect_par(mach, pts, bound);
    const auto& mt = mach.meter();
    const double lg = std::log2(static_cast<double>(n));
    const double pt_paper = static_cast<double>(n) * lg * lg * lg;  // n lg n procs x lg^2 time
    const double pt_a = static_cast<double>(n) * lg * lg * lg * lg;  // [AP89c] A
    const double pt_b = static_cast<double>(n) * static_cast<double>(n);  // [AP89c] B
    depth.push_back({static_cast<double>(n), static_cast<double>(mt.time)});
    t.add_row({Table::num(n), Table::num(mt.time), Table::num(mt.work),
               Table::num(mt.peak_processors),
               Table::fixed(static_cast<double>(mt.work), 0),
               Table::fixed(pt_paper, 0), Table::fixed(pt_a, 0),
               Table::fixed(pt_b, 0)});
  }
  t.add_row({"fit", "", "", "", "", "", "",
             "steps~lg^2: " + bench::shape_cell(depth, shape_lg2())});
  t.print(std::cout);

  bench::print_header("instance families (n = 1024)");
  Table f({"family", "steps", "work", "largest area / bound area"});
  const std::size_t n = std::min<std::size_t>(1024, nmax);
  struct Family {
    const char* name;
    std::vector<DPoint> pts;
  };
  std::vector<Family> fams;
  fams.push_back({"uniform", random_dpoints(n, rng, bound)});
  fams.push_back({"diagonal", diagonal_dpoints(n, bound)});
  {
    auto pts = random_dpoints(n, rng, bound);
    for (auto& p : pts) p.y = bound.y1 + 0.1 * (p.y - bound.y1);  // squashed
    fams.push_back({"squashed", std::move(pts)});
  }
  for (auto& fam : fams) {
    pram::Machine mach(pram::Model::CRCW_COMMON);
    const auto r = largest_empty_rect_par(mach, fam.pts, bound);
    f.add_row({fam.name, Table::num(mach.meter().time),
               Table::num(mach.meter().work),
               Table::fixed(r.area() / bound.area(), 4)});
  }
  f.print(std::cout);
  std::cout << "\nOur PT (measured work) vs the paper's n lg^3 n target and "
               "the [AP89c] formulas: the improvement direction over "
               "[AP89c] B holds; the crossing-case pair search costs an "
               "extra factor vs the paper's deferred construction (see "
               "EXPERIMENTS.md).\n";
  return 0;
}
