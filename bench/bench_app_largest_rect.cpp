// Application 2 -- the largest two-corner rectangle (Melville's circuit
// leakage model).
//
//   Paper: Theta(lg n) time, n processors on a CRCW-PRAM (optimal).
//
// The bench sweeps n over three instance families, reports measured
// depth / work / processors, fits the lg n shape, and compares against
// the O(n^2) brute-force pair scan.
#include "apps/largest_rect.hpp"
#include "bench_util.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using namespace pmonge::apps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 65536));
  Rng rng(cli.get_int("seed", 16));

  bench::print_header(
      "Application 2: largest rectangle with two points as opposite "
      "corners");

  Table t({"n", "steps", "work", "peak procs", "brute pair ops",
           "staircase sizes"});
  std::vector<SeriesPoint> depth;
  for (std::size_t n : bench::pow2_sweep(256, nmax)) {
    const auto pts = random_points(n, rng);
    pram::Machine mach(pram::Model::CRCW_COMMON);
    largest_rect_par(mach, pts);
    const auto st = dominance_staircases(pts);
    depth.push_back({static_cast<double>(n),
                     static_cast<double>(mach.meter().time)});
    t.add_row({Table::num(n), Table::num(mach.meter().time),
               Table::num(mach.meter().work),
               Table::num(mach.meter().peak_processors),
               Table::num(n * (n - 1) / 2),
               Table::num(st.minimal.size()) + "+" +
                   Table::num(st.maximal.size())});
  }
  t.add_row({"fit", "", "", "", "",
             "steps~lg n: " + bench::shape_cell(depth, shape_lg())});
  t.print(std::cout);

  bench::print_header("instance families (n = 4096)");
  Table f({"family", "steps", "work", "area"});
  const std::size_t n = std::min<std::size_t>(4096, nmax);
  struct Family {
    const char* name;
    std::vector<IPoint> pts;
  };
  std::vector<Family> fams;
  fams.push_back({"uniform", random_points(n, rng)});
  fams.push_back({"clustered", clustered_points(n, rng)});
  fams.push_back({"antidiagonal (worst case)", antidiagonal_points(n)});
  for (auto& fam : fams) {
    pram::Machine mach(pram::Model::CRCW_COMMON);
    const auto r = largest_rect_par(mach, fam.pts);
    f.add_row({fam.name, Table::num(mach.meter().time),
               Table::num(mach.meter().work),
               Table::num(static_cast<std::uint64_t>(r.area))});
  }
  f.print(std::cout);
  std::cout << "\nDepth is Theta(lg n) with near-linear processors across "
               "families -- the paper's optimal CRCW bound; brute force "
               "needs Theta(n^2) pair probes.\n";
  return 0;
}
