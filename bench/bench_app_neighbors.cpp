// Application 3 -- nearest/farthest visible/invisible neighbors between
// two disjoint convex polygons.
//
//   Paper: visible variants in Theta(lg(m+n)) CREW time with
//   (m+n)/lg(m+n) processors; invisible variants in O(lg(m+n)) CRCW /
//   O(lg(m+n) lglg(m+n)) CREW via the staircase-Monge row-minima
//   machinery of Theorem 2.3.
//
// The bench sweeps n (= m), runs all four variants, reports measured
// depth / work / processors, the fraction of chain blocks taking the
// interval-masked (staircase) fast path, and fits the lg shape.
#include "apps/polygon_neighbors.hpp"
#include "bench_util.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using namespace pmonge::apps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 4096));
  Rng rng(cli.get_int("seed", 17));

  bench::print_header(
      "Application 3: neighbors between disjoint convex polygons");

  for (auto kind :
       {NeighborKind::NearestVisible, NeighborKind::NearestInvisible,
        NeighborKind::FarthestVisible, NeighborKind::FarthestInvisible}) {
    Table t({"n (=m)", "steps", "work", "peak procs", "fast blocks",
             "fallback blocks", "brute probes"});
    std::vector<SeriesPoint> depth;
    for (std::size_t n : bench::pow2_sweep(64, nmax)) {
      const auto [P, Q] = geom::random_disjoint_polygons(n, n, rng);
      pram::Machine mach(pram::Model::CRCW_COMMON);
      std::size_t fast = 0, slow = 0;
      neighbors_par(mach, P, Q, kind, &fast, &slow);
      depth.push_back({static_cast<double>(2 * n),
                       static_cast<double>(mach.meter().time)});
      t.add_row({Table::num(n), Table::num(mach.meter().time),
                 Table::num(mach.meter().work),
                 Table::num(mach.meter().peak_processors), Table::num(fast),
                 Table::num(slow), Table::num(n * n)});
    }
    t.add_row({"fit", "", "", "", "", "",
               "steps~lg: " + bench::shape_cell(depth, shape_lg())});
    bench::print_header(neighbor_kind_name(kind));
    t.print(std::cout);
  }
  std::cout << "\nAll four variants run at polylog depth with near-linear "
               "processors; the invisible variants exercise the Theorem "
               "2.3 staircase machinery (fast-path block counts).\n";
  return 0;
}
