// Application 4 -- string editing via grid DAGs and tube minima.
//
//   Paper: O(lg n lg m) time on an nm-processor hypercube / CCC /
//   shuffle-exchange, improving Ranka-Sahni [RS88], whose SIMD-hypercube
//   algorithms run in O(sqrt(n lg n / p) + lg^2 n) with n^2 p processors
//   and O(n^1.5 sqrt(lg n) / p) with p^2 processors.
//
// The bench sweeps n (= m), reports measured depth / work of the
// DIST-merging algorithm, fits the lg^2 shape, and prints the [RS88]
// bound formulas evaluated at comparable processor counts so the
// "who wins" direction of the paper's comparison is visible.  The
// Wagner-Fischer baseline row gives the sequential O(mn) yardstick.
#include "apps/string_edit.hpp"
#include "bench_util.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using namespace pmonge::apps;

namespace {
std::string random_string(std::size_t len, std::size_t alphabet,
                          pmonge::Rng& rng) {
  std::string s(len, 'a');
  for (auto& c : s) {
    c = static_cast<char>(
        'a' + rng.uniform_int(0, static_cast<std::int64_t>(alphabet) - 1));
  }
  return s;
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 128));
  Rng rng(cli.get_int("seed", 18));
  EditCosts unit;

  bench::print_header("Application 4: string editing (x -> y)");

  Table t({"n (=m)", "steps", "work", "peak procs", "seq WF ops",
           "[RS88] n^2p @p=1", "[RS88] p^2 @p^2=n^2", "cost check"});
  std::vector<SeriesPoint> depth;
  for (std::size_t n : bench::pow2_sweep(8, nmax)) {
    const auto x = random_string(n, 4, rng);
    const auto y = random_string(n, 4, rng);
    pram::Machine mach(pram::Model::CREW);
    const auto par_cost = edit_distance_par(mach, x, y, unit);
    const auto seq = edit_distance_seq(x, y, unit);
    depth.push_back({static_cast<double>(n),
                     static_cast<double>(mach.meter().time)});
    t.add_row({Table::num(n), Table::num(mach.meter().time),
               Table::num(mach.meter().work),
               Table::num(mach.meter().peak_processors),
               Table::num(n * n),
               Table::fixed(ranka_sahni_time_n2p(n, 1), 1),
               Table::fixed(ranka_sahni_time_p2(n, n * n), 1),
               par_cost == seq.cost ? "ok" : "MISMATCH"});
  }
  t.add_row({"fit", "", "", "", "", "", "",
             "steps~lg^2: " + bench::shape_cell(depth, shape_lg2())});
  t.print(std::cout);

  bench::print_header(
      "hypercube / CCC / shuffle-exchange rows (the paper's stated model)");
  Table h({"topology", "n (=m)", "steps", "peak nodes", "cost check"});
  const auto hc_max = std::min<std::size_t>(nmax, 64);
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::CubeConnectedCycles,
        net::TopologyKind::ShuffleExchange}) {
    for (std::size_t n : bench::pow2_sweep(8, hc_max)) {
      const auto x = random_string(n, 4, rng);
      const auto y = random_string(n, 4, rng);
      const auto res = edit_distance_hc(kind, x, y, unit);
      const auto seq = edit_distance_seq(x, y, unit);
      h.add_row({net::topology_name(kind), Table::num(n),
                 Table::num(res.steps), Table::num(res.physical_nodes),
                 res.cost == seq.cost ? "ok" : "MISMATCH"});
    }
  }
  h.print(std::cout);

  bench::print_header("asymmetric instances (m != n), weighted costs");
  Table w({"m", "n", "steps", "par cost", "seq cost"});
  EditCosts weighted;
  weighted.ins = 2;
  weighted.del = 3;
  weighted.sub = 4;
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{16, 64},
                      {64, 16},
                      {32, 96}}) {
    const auto x = random_string(m, 6, rng);
    const auto y = random_string(n, 6, rng);
    pram::Machine mach(pram::Model::CREW);
    const auto pc = edit_distance_par(mach, x, y, weighted);
    const auto sc = edit_distance_seq(x, y, weighted).cost;
    w.add_row({Table::num(m), Table::num(n), Table::num(mach.meter().time),
               Table::num(static_cast<std::uint64_t>(pc)),
               Table::num(static_cast<std::uint64_t>(sc))});
  }
  w.print(std::cout);
  std::cout << "\nMeasured depth follows lg n lg m (flat lg^2 fit on square "
               "instances), far below both [RS88] bound curves at matching "
               "processor counts -- the paper's comparison direction.\n";
  return 0;
}
