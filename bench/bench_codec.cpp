// Codec microbench: the request/response byte paths before vs after the
// zero-allocation rework, measured head to head on identical inputs.
//
//   parse:     Json-DOM parse_request (the slow path) vs the streaming
//              canonicalizer (serve/codec.hpp) -- ns/req and allocs/req;
//   serialize: make_ok_response (DOM dump) vs append_ok_response_raw
//              (splice into a reused buffer) -- ns/resp and allocs/resp;
//   serve:     warm cached-hit through Service with the fast path off
//              (pre-codec behavior) vs Service::try_serve_fast.
//
// Allocation counts come from a global operator-new hook (thread-local
// counter, main thread only).  The run exits nonzero if the warm fast
// path allocates at all (the zero-steady-state-allocation gate CI runs)
// or if the codec fails to beat the DOM parse on time.
//
//   --reqs N            requests per timed loop      (default 20000)
//   --reps N            median-of-N repetitions      (default 5)
//   --warmup N          throwaway runs per config    (default 1)
//   --json[=PATH]       machine-readable records     (BENCH_codec.json)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/codec.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {
thread_local std::uint64_t t_news = 0;
}

void* operator new(std::size_t n) {
  ++t_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++t_news;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using pmonge::serve::FastQuery;
using pmonge::serve::Json;
using pmonge::serve::RequestCodec;
using pmonge::serve::Service;
using pmonge::serve::ServiceOptions;

/// Representative request lines: the short cached-query shape the fast
/// path exists for, plus a wider one with strings and shuffled keys.
std::vector<std::string> request_lines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 8; ++i) {
    lines.push_back("{\"op\":\"rowmin\",\"array\":0,\"id\":" +
                    std::to_string(i) + ",\"row\":" + std::to_string(i) + "}");
  }
  lines.push_back(
      R"({"op":"string_edit","id":99,"x":"kitten","y":"sitting"})");
  lines.push_back(
      R"({ "row" : 3 , "array" : 0 , "op" : "rowmin" , "id" : 100 })");
  return lines;
}

struct Measured {
  double ns_per = 0;      // median wall ns per item
  double allocs_per = 0;  // heap allocations per item (exact, one pass)
};

/// Median-of-reps wall time per item plus a one-pass allocation count.
template <class F>
Measured measure(F&& body, std::size_t items, std::size_t warmup,
                 std::size_t reps) {
  Measured m;
  const auto stats = pmonge::bench::timed_median(body, warmup, reps);
  m.ns_per = stats.median_ms * 1e6 / static_cast<double>(items);
  const std::uint64_t before = t_news;
  body();
  m.allocs_per =
      static_cast<double>(t_news - before) / static_cast<double>(items);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  const auto reqs = static_cast<std::size_t>(cli.get_int("reqs", 20000));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 1));
  auto records =
      pmonge::bench::JsonRecords::from_cli(cli, "codec", "BENCH_codec.json");
  const auto lines = request_lines();

  pmonge::Table table(
      {"path", "before ns", "after ns", "speedup", "allocs/req before",
       "allocs/req after"});
  bool gate_failed = false;
  const auto emit = [&](const char* path, const Measured& before,
                        const Measured& after) {
    table.add_row({path, pmonge::Table::fixed(before.ns_per, 0),
                   pmonge::Table::fixed(after.ns_per, 0),
                   pmonge::Table::fixed(before.ns_per / after.ns_per, 2) + "x",
                   pmonge::Table::fixed(before.allocs_per, 2),
                   pmonge::Table::fixed(after.allocs_per, 2)});
    Json::Obj r;
    r["path"] = path;
    r["before_ns_per_req"] = before.ns_per;
    r["after_ns_per_req"] = after.ns_per;
    r["before_allocs_per_req"] = before.allocs_per;
    r["after_allocs_per_req"] = after.allocs_per;
    records.add(std::move(r));
  };

  pmonge::bench::print_header("request parse: DOM parse_request vs codec");
  {
    const Measured before = measure(
        [&] {
          for (std::size_t i = 0; i < reqs; ++i) {
            const auto r = pmonge::serve::parse_request(lines[i % lines.size()]);
            if (r.signature.empty()) std::abort();
          }
        },
        reqs, warmup, reps);
    RequestCodec codec;
    FastQuery q;
    const Measured after = measure(
        [&] {
          for (std::size_t i = 0; i < reqs; ++i) {
            if (!codec.canonicalize_query(lines[i % lines.size()], q)) {
              std::abort();
            }
          }
        },
        reqs, warmup, reps);
    emit("parse", before, after);
    if (after.ns_per >= before.ns_per) gate_failed = true;
    if (after.allocs_per != 0.0) gate_failed = true;  // warm codec: zero
  }

  pmonge::bench::print_header(
      "response serialize: make_ok_response vs append_ok_response_raw");
  {
    const std::string cached = R"({"col":0,"value":1})";
    const Measured before = measure(
        [&] {
          for (std::size_t i = 0; i < reqs; ++i) {
            const std::string resp = pmonge::serve::make_ok_response(
                static_cast<std::int64_t>(i), Json::parse(cached));
            if (resp.empty()) std::abort();
          }
        },
        reqs, warmup, reps);
    std::string buf;
    const Measured after = measure(
        [&] {
          for (std::size_t i = 0; i < reqs; ++i) {
            buf.clear();
            pmonge::serve::append_ok_response_raw(static_cast<std::int64_t>(i),
                                                  cached, buf);
            if (buf.empty()) std::abort();
          }
        },
        reqs, warmup, reps);
    emit("serialize", before, after);
    if (after.ns_per >= before.ns_per) gate_failed = true;
  }

  pmonge::bench::print_header(
      "cached-hit serve: fast path off (pre-codec) vs try_serve_fast");
  {
    const std::string reg =
        R"({"op":"register_dense","rows":2,"cols":3,"data":[1,2,4,0,1,3]})";
    const std::string query = R"({"op":"rowmin","array":0,"row":0})";
    const std::size_t serve_reqs = std::min<std::size_t>(reqs, 4096);

    ServiceOptions off;
    off.fast_path = false;
    Service slow(off);
    slow.request(reg);
    slow.request(query);  // warm the cache
    const Measured before = measure(
        [&] {
          for (std::size_t i = 0; i < serve_reqs; ++i) slow.request(query);
        },
        serve_reqs, warmup, reps);

    Service fast;
    fast.request(reg);
    fast.request(query);
    std::string out;
    const Measured after = measure(
        [&] {
          for (std::size_t i = 0; i < serve_reqs; ++i) {
            out.clear();
            if (!fast.try_serve_fast(query, out)) std::abort();
          }
        },
        serve_reqs, warmup, reps);
    emit("serve_cached_hit", before, after);
    // The gate CI enforces: the warm fast path performs zero heap
    // allocations per cached-hit request.
    if (after.allocs_per != 0.0) gate_failed = true;
  }

  table.print(std::cout);
  records.write();
  std::cout << (gate_failed
                    ? "GATE FAILED: codec slower than DOM path or warm fast "
                      "path allocated\n"
                    : "gates ok: codec faster, warm fast path allocation-free\n");
  return gate_failed ? 1 : 0;
}
