// Host-engine self-speedup: wall-clock scaling of the *same* charged
// computation as PMONGE_THREADS grows.
//
// Workload: a batch of independent 256 x 256 dense Monge row-minima
// searches fanned out through Machine::parallel_branches -- the exact
// shape the PRAM skeletons produce everywhere else -- at total row
// counts n in {1k, 4k, 16k}.  For each thread count the harness checks
// the determinism contract before timing: outputs and CostMeter totals
// must be bit-identical to the 1-thread run (a "det" column says ok; any
// divergence aborts the bench loudly).
//
// Read speedups against the `host cores` line printed up front: wall
// clock can only improve with threads the machine actually has.  On a
// 1-core host every thread count measures the same serial execution plus
// scheduling overhead, and a flat ~1.0 column is the honest result.
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "monge/generators.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "support/rng.hpp"

using namespace pmonge;

namespace {

struct BatchResult {
  std::vector<std::vector<monge::RowOpt<std::int64_t>>> mins;
  std::uint64_t time = 0, work = 0, peak = 0;
  bool operator==(const BatchResult&) const = default;
};

BatchResult run_batch(
    const std::vector<monge::DenseArray<std::int64_t>>& arrays) {
  BatchResult r;
  r.mins.resize(arrays.size());
  pram::Machine mach(pram::Model::CRCW_COMMON);
  mach.parallel_branches(arrays.size(),
                         [&](std::size_t b, pram::Machine& sub) {
                           r.mins[b] = par::monge_row_minima(sub, arrays[b]);
                         });
  r.time = mach.meter().time;
  r.work = mach.meter().work;
  r.peak = mach.meter().peak_processors;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 16384));
  const int reps = cli.get_int("reps", 3);
  Rng rng(cli.get_int("seed", 23));
  constexpr std::size_t kSide = 256;

  bench::print_header(
      "Engine self-speedup: batched 256 x 256 Monge row minima");
  std::cout << "host cores: " << std::thread::hardware_concurrency()
            << " (wall-clock speedup is bounded by this; charged costs are "
               "thread-invariant by construction)\n";

  Table t({"total rows", "arrays", "threads", "best ms", "speedup vs 1t",
           "det", "charged steps", "charged work"});

  const std::size_t saved_threads = exec::num_threads();
  for (std::size_t total = 1024; total <= nmax; total *= 4) {
    const std::size_t narrays = (total + kSide - 1) / kSide;
    std::vector<monge::DenseArray<std::int64_t>> arrays;
    arrays.reserve(narrays);
    for (std::size_t b = 0; b < narrays; ++b) {
      arrays.push_back(monge::random_monge(kSide, kSide, rng));
    }

    BatchResult reference;
    double ms_1t = 0;
    for (std::size_t threads : {1, 2, 4, 8}) {
      exec::set_num_threads(threads);
      BatchResult got = run_batch(arrays);  // warm-up + determinism probe
      const bool det = threads == 1 || got == reference;
      if (threads == 1) reference = std::move(got);

      double best_ms = 0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        BatchResult timed = run_batch(arrays);
        const auto t1 = std::chrono::steady_clock::now();
        if (!(timed == reference)) {
          std::cerr << "DETERMINISM VIOLATION at threads=" << threads
                    << " total=" << total << "\n";
          return 1;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      if (threads == 1) ms_1t = best_ms;

      if (!det) {
        std::cerr << "DETERMINISM VIOLATION at threads=" << threads
                  << " total=" << total << "\n";
        return 1;
      }
      t.add_row({Table::num(total), Table::num(narrays), Table::num(threads),
                 Table::fixed(best_ms, 2), Table::fixed(ms_1t / best_ms, 2),
                 "ok", Table::num(reference.time),
                 Table::num(reference.work)});
    }
  }
  exec::set_num_threads(saved_threads);

  t.print(std::cout);
  std::cout << "\nInterpretation: 'charged steps/work' constant down each "
               "size block demonstrates the thread-invariance contract; "
               "'speedup vs 1t' approaches min(threads, host cores) on "
               "multicore hosts.\n";
  return 0;
}
