// Figure 1.1 -- the convex-polygon distance array example.
//
// Split a convex polygon into chains P (m vertices) and Q (n vertices);
// the array a[i][j] = d(p_i, q_j) is inverse-Monge by the quadrangle
// inequality, so all-farthest-neighbors runs in O(m + n) probes via
// [AKM+87] instead of the brute force's m*n.  The bench validates the
// inverse-Monge property on every instance, reports probe counts for
// SMAWK vs brute force, and the PRAM depth of the parallel searcher.
#include <atomic>

#include "bench_util.hpp"
#include "geom/geometry.hpp"
#include "monge/array.hpp"
#include "monge/brute.hpp"
#include "monge/smawk.hpp"
#include "monge/validate.hpp"
#include "par/monge_rowminima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 8192));
  Rng rng(cli.get_int("seed", 14));

  bench::print_header(
      "Figure 1.1: all farthest neighbors between the chains of a convex "
      "polygon");

  Table t({"n (=m)", "inverse-Monge?", "SMAWK probes", "brute probes",
           "probe ratio", "CRCW steps", "CRCW procs"});

  std::vector<SeriesPoint> probes;
  for (std::size_t n : bench::pow2_sweep(64, nmax)) {
    const auto poly = geom::random_convex_polygon(2 * n, rng, {0, 0}, 100);
    const auto chains = geom::split_chains(poly);
    const auto& P = chains.lower;
    const auto& Q = chains.upper;
    const std::size_t m = P.size(), q = Q.size();

    std::atomic<std::size_t> count{0};
    auto dist_arr = monge::make_func_array<double>(
        m, q, [&](std::size_t i, std::size_t j) {
          count.fetch_add(1, std::memory_order_relaxed);
          return geom::dist(P[i], Q[j]);
        });

    // Validate the quadrangle-inequality structure (on a probe-counting
    // pause: validation itself probes O(mq)).
    bool inv_monge = true;
    if (n <= 512) {
      auto plain = monge::make_func_array<double>(
          m, q, [&](std::size_t i, std::size_t j) {
            return geom::dist(P[i], Q[j]);
          });
      inv_monge = monge::is_inverse_monge(plain);
    }

    const auto maxima = monge::smawk_row_maxima_inverse_monge(dist_arr);
    (void)maxima;
    const std::size_t smawk_probes = count.load();

    pram::Machine mach(pram::Model::CRCW_COMMON);
    auto plain2 = monge::make_func_array<double>(
        m, q, [&](std::size_t i, std::size_t j) {
          return geom::dist(P[i], Q[j]);
        });
    par::inverse_monge_row_maxima(mach, plain2);

    probes.push_back({static_cast<double>(m + q),
                      static_cast<double>(smawk_probes)});
    t.add_row({Table::num(n), inv_monge ? "yes" : "NO",
               Table::num(smawk_probes), Table::num(m * q),
               Table::fixed(static_cast<double>(m * q) /
                                static_cast<double>(smawk_probes),
                            1),
               Table::num(mach.meter().time),
               Table::num(mach.meter().peak_processors)});
  }
  t.add_row({"fit", "", "", "", "", "",
             "probes/(m+n): " + bench::shape_cell(probes, shape_linear())});
  t.print(std::cout);
  std::cout << "\nSMAWK probes grow linearly in m+n (flat fit ratio) while "
               "brute force grows quadratically -- the Theta(m+n) bound of "
               "[AKM+87] quoted in Section 1.2.\n";
  return 0;
}
