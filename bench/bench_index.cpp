// Query-index bench (docs/indexing.md): what one build buys.
//
// For square Monge operands swept to --max, measures
//   * build cost (ms) of the submatrix index,
//   * indexed submatrix-query p50 vs the direct one-SMAWK-pass solver
//     (and the brute scan at sizes where it is not absurd),
//   * the break-even query count: how many submatrix queries amortize
//     the build (build_ms / per-query saving) -- the number a capacity
//     planner compares against a workload's expected query volume.
//
// Exit gate: at the LARGEST swept size (4096 x 4096 by default) the
// indexed lookup p50 must beat the direct SMAWK solve -- the index's
// whole reason to exist.  Exit 1 otherwise.
//
//   --max N        largest operand side        (default 4096)
//   --queries N    queries per timed batch     (default 64)
//   --reps N       median-of-N repetitions     (default 5)
//   --warmup N     throwaway runs per config   (default 1)
//   --json[=PATH]  machine-readable records    (BENCH_index.json)
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "index/index.hpp"
#include "monge/generators.hpp"
#include "serve/registry.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using pmonge::index::Index;
using pmonge::index::RegionOpt;
using pmonge::serve::ArrayEntry;

struct Region {
  std::size_t r0, r1, c0, c1;
};

std::vector<Region> make_regions(std::size_t n, std::size_t count,
                                 std::uint64_t seed) {
  pmonge::Rng rng(seed);
  std::vector<Region> rs;
  rs.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto d = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    rs.push_back({std::min(a, b), std::max(a, b), std::min(c, d),
                  std::max(c, d)});
  }
  return rs;
}

/// Fold results into a sink so the optimizer cannot drop the queries.
volatile std::int64_t g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(cli.get_int("max", 4096));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries", 64));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 1));
  auto records =
      pmonge::bench::JsonRecords::from_cli(cli, "index", "BENCH_index.json");

  pmonge::bench::print_header(
      "submatrix query: index lookup vs direct solve");
  pmonge::Table table({"n", "build ms", "index us/q", "smawk us/q",
                       "brute us/q", "speedup", "break-even q"});
  bool gate_failed = false;
  std::size_t gate_n = 0;
  for (const std::size_t n : pmonge::bench::pow2_sweep(256, max_n)) {
    pmonge::Rng rng(42);
    ArrayEntry e;
    e.kind = ArrayEntry::Kind::Monge;
    e.data = pmonge::monge::random_monge(n, n, rng);
    const auto entry = std::make_shared<const ArrayEntry>(std::move(e));
    const auto regions = make_regions(n, queries, n * 7 + 1);

    std::unique_ptr<Index> idx;
    const double build_ms =
        pmonge::bench::timed_median(
            [&] {
              idx = std::make_unique<Index>(entry);
              idx->build();
            },
            0, std::max<std::size_t>(1, reps / 2))
            .median_ms;

    const auto run_indexed = [&] {
      for (std::size_t q = 0; q < regions.size(); ++q) {
        const Region& g = regions[q];
        const RegionOpt r =
            idx->submatrix_opt(q % 2 == 1, g.r0, g.r1, g.c0, g.c1);
        g_sink = g_sink + r.value;
      }
    };
    const auto run_direct = [&](pmonge::plan::Algo algo) {
      for (std::size_t q = 0; q < regions.size(); ++q) {
        const Region& g = regions[q];
        const RegionOpt r = pmonge::index::submatrix_direct(
            *entry, q % 2 == 1, algo, g.r0, g.r1, g.c0, g.c1);
        g_sink = g_sink + r.value;
      }
    };

    const double index_ms =
        pmonge::bench::timed_median(run_indexed, warmup, reps).median_ms;
    const double smawk_ms =
        pmonge::bench::timed_median(
            [&] { run_direct(pmonge::plan::Algo::Sequential); }, warmup, reps)
            .median_ms;
    // Brute touches every region cell; past 512 it is minutes per batch.
    double brute_ms = -1;
    if (n <= 512) {
      brute_ms = pmonge::bench::timed_median(
                     [&] { run_direct(pmonge::plan::Algo::Brute); }, warmup,
                     reps)
                     .median_ms;
    }

    const double index_us = index_ms * 1000.0 / static_cast<double>(queries);
    const double smawk_us = smawk_ms * 1000.0 / static_cast<double>(queries);
    const double saving_us = smawk_us - index_us;
    const double break_even =
        saving_us > 0 ? build_ms * 1000.0 / saving_us : -1;
    table.add_row(
        {pmonge::Table::num(n), pmonge::Table::fixed(build_ms, 2),
         pmonge::Table::fixed(index_us, 2), pmonge::Table::fixed(smawk_us, 2),
         brute_ms < 0 ? "-"
                      : pmonge::Table::fixed(
                            brute_ms * 1000.0 / static_cast<double>(queries),
                            2),
         pmonge::Table::fixed(index_us > 0 ? smawk_us / index_us : 0, 2),
         break_even < 0 ? "-" : pmonge::Table::num(static_cast<std::size_t>(
                                    break_even + 1))});

    gate_n = n;
    gate_failed = index_us >= smawk_us;

    pmonge::serve::Json::Obj r;
    r["op"] = "submatrix";
    r["rows"] = n;
    r["cols"] = n;
    r["batch"] = queries;
    r["build_ms"] = build_ms;
    r["index_us_per_query"] = index_us;
    r["smawk_us_per_query"] = smawk_us;
    if (brute_ms >= 0) {
      r["brute_us_per_query"] = brute_ms * 1000.0 /
                                static_cast<double>(queries);
    }
    r["break_even_queries"] =
        break_even < 0 ? -1
                       : static_cast<std::int64_t>(break_even + 1);
    r["index_nodes"] = idx->nodes();
    r["index_memory_bytes"] = idx->memory_bytes();
    records.add(std::move(r));
  }
  table.print(std::cout);
  std::cout << "exit gate at n=" << gate_n << ": indexed lookup "
            << (gate_failed ? "did NOT beat" : "beats")
            << " the direct SMAWK solve"
            << (gate_failed ? " -- REGRESSION" : "") << "\n";
  records.write();
  return gate_failed ? 1 : 0;
}
