// Planner bench: the same single-row query stream answered with the
// adaptive planner on (per-shape algorithm selection) and off (the old
// fixed parallel dispatch), swept over operand sizes that cross the
// brute -> sequential -> parallel crossovers.
//
// The acceptance bar for the planner: at small n -- where the parallel
// kernel's pool-dispatch constant dominates and the planner routes to a
// brute or sequential variant -- the planned run must be no slower than
// the fixed dispatch.  (At large n both run the same parallel kernel,
// so the ratio tends to 1.)
//
//   --max N             largest operand side          (default 512)
//   --queries N         stream length per size        (default 256)
//   --reps N            median-of-N repetitions       (default 5)
//   --warmup N          throwaway runs per config     (default 1)
//   --json[=PATH]       machine-readable records      (BENCH_plan.json)
//   --trace-out[=PATH]  Chrome trace of the traced run (trace_plan.json)
//
// A tracing-overhead gate rides along at the largest size: planned
// stream re-timed with span tracing on must cost <= 5% extra
// (`trace_overhead_pct` in the JSON records; exit 1 above the bar).
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "plan/planner.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using pmonge::serve::Service;
using pmonge::serve::ServiceOptions;

std::vector<std::string> make_stream(std::size_t rows, std::size_t queries) {
  std::vector<std::string> qs;
  qs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    qs.push_back("{\"op\":\"rowmin\",\"array\":0,\"id\":" + std::to_string(i) +
                 ",\"row\":" + std::to_string(i % rows) + "}");
  }
  return qs;
}

double run_stream(Service& svc, const std::vector<std::string>& stream) {
  svc.pause();
  std::vector<std::future<std::string>> futs;
  futs.reserve(stream.size());
  for (const auto& q : stream) futs.push_back(svc.submit(q));
  const auto t0 = std::chrono::steady_clock::now();
  svc.resume();
  for (auto& f : futs) f.get();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(cli.get_int("max", 512));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries", 256));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 1));
  auto records =
      pmonge::bench::JsonRecords::from_cli(cli, "plan", "BENCH_plan.json");

  pmonge::bench::print_header("planner vs fixed dispatch: rowmin stream");
  pmonge::Table table({"n", "queries", "planner ms", "algo", "fixed ms",
                       "planned/fixed"});
  const pmonge::plan::Planner planner(pmonge::plan::builtin_profile(), true,
                                      pmonge::exec::num_threads());
  bool small_n_regression = false;
  for (const std::size_t n : pmonge::bench::pow2_sweep(8, max_n)) {
    const std::string reg = "{\"op\":\"register_random\",\"rows\":" +
                            std::to_string(n) + ",\"cols\":" +
                            std::to_string(n) + ",\"seed\":7}";
    const auto stream = make_stream(n, queries);
    double ms[2] = {0, 0};
    for (int planned = 0; planned < 2; ++planned) {
      ServiceOptions opts;
      opts.planner = planned == 1;
      opts.cache_capacity = 0;  // measure computation, not memoization
      opts.queue_capacity = queries + 16;
      Service svc(opts);
      svc.request(reg);
      ms[planned] = pmonge::bench::timed_median(
                        [&] { run_stream(svc, stream); }, warmup, reps)
                        .median_ms;
    }
    // What the planner picks for this shape at the coalesced batch size.
    const pmonge::plan::Plan pl = planner.plan(
        {pmonge::plan::OpClass::RowSearch, n, n,
         std::min<std::size_t>(queries, ServiceOptions{}.batch_max)});
    const double ratio = ms[1] / ms[0];
    const bool small = pl.algo != pmonge::plan::Algo::Parallel;
    // Planned "no slower" with measurement-noise slack.
    if (small && ratio > 1.15) small_n_regression = true;
    table.add_row({pmonge::Table::num(n), pmonge::Table::num(queries),
                   pmonge::Table::fixed(ms[1], 2),
                   pmonge::plan::algo_name(pl.algo),
                   pmonge::Table::fixed(ms[0], 2),
                   pmonge::Table::fixed(ratio, 3)});
    for (int planned = 0; planned < 2; ++planned) {
      pmonge::serve::Json::Obj r;
      r["op"] = "rowmin";
      r["rows"] = n;
      r["cols"] = n;
      r["batch"] = queries;
      r["config"] = planned ? "planner" : "fixed";
      r["algo"] = planned ? pmonge::plan::algo_name(pl.algo) : "parallel";
      r["median_us"] = ms[planned] * 1000.0;
      r["predicted_us"] = planned ? pl.predicted_us : -1.0;
      r["profile"] = planner.profile().id;
      records.add(std::move(r));
    }
  }
  table.print(std::cout);
  std::cout << "planned/fixed <= 1 expected wherever algo != parallel; "
            << (small_n_regression ? "REGRESSION: planner slower at small n"
                                   : "planner no slower at small n")
            << "\n";

  pmonge::bench::print_header("tracing overhead: planned stream, largest n");
  bool trace_regression = false;
  {
    const std::string reg = "{\"op\":\"register_random\",\"rows\":" +
                            std::to_string(max_n) + ",\"cols\":" +
                            std::to_string(max_n) + ",\"seed\":7}";
    const auto stream = make_stream(max_n, queries);
    ServiceOptions opts;
    opts.cache_capacity = 0;
    opts.queue_capacity = queries + 16;
    Service svc(opts);
    svc.request(reg);
    // Two drains per timed sample: the differential gate needs samples
    // long enough that a descheduling blip cannot read as overhead.
    const auto t = pmonge::bench::trace_overhead(
        [&] {
          run_stream(svc, stream);
          run_stream(svc, stream);
        },
        warmup, reps);
    trace_regression = t.pct > 5.0;
    std::cout << "untraced " << pmonge::Table::fixed(t.off_ms, 2)
              << " ms, traced " << pmonge::Table::fixed(t.on_ms, 2)
              << " ms: overhead " << pmonge::Table::fixed(t.pct, 2) << "% "
              << (trace_regression ? "REGRESSION (> 5%)" : "(<= 5% ok)")
              << "\n";
    pmonge::serve::Json::Obj r;
    r["op"] = "rowmin";
    r["rows"] = max_n;
    r["cols"] = max_n;
    r["batch"] = queries;
    r["config"] = "tracing overhead";
    r["median_us"] = t.on_ms * 1000.0;
    r["baseline_us"] = t.off_ms * 1000.0;
    r["trace_overhead_pct"] = t.pct;
    r["profile"] = planner.profile().id;
    records.add(std::move(r));
    pmonge::bench::write_trace_out(cli, "trace_plan.json");
  }
  records.write();
  return (small_n_regression || trace_regression) ? 1 : 0;
}
