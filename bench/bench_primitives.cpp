// google-benchmark microbenches for the substrate primitives: SMAWK vs
// brute force (host wall time), the sequential staircase solver, ANSV,
// PRAM argopt under different models, scans, and network primitives.
#include <benchmark/benchmark.h>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "monge/staircase_seq.hpp"
#include "net/engine.hpp"
#include "net/primitives.hpp"
#include "pram/ansv.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/rng.hpp"

namespace {

using namespace pmonge;

void BM_SmawkRowMinima(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = monge::random_monge(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monge::smawk_row_minima(a));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SmawkRowMinima)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_BruteRowMinima(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = monge::random_monge(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monge::row_minima_brute(a));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BruteRowMinima)->Range(64, 2048)->Complexity(benchmark::oNSquared);

void BM_StaircaseSeq(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto inst = monge::random_staircase_monge(n, n, rng);
  monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(inst.base,
                                                           inst.frontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monge::staircase_row_minima_seq(s));
  }
}
BENCHMARK(BM_StaircaseSeq)->Range(64, 2048);

void BM_AnsvSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::int64_t> a(n);
  for (auto& x : a) x = rng.uniform_int(0, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pram::ansv_seq(a));
  }
}
BENCHMARK(BM_AnsvSequential)->Range(1 << 10, 1 << 18);

void BM_ArgoptCrcw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::int64_t> xs(n);
  for (auto& x : xs) x = rng.uniform_int(0, 1 << 30);
  for (auto _ : state) {
    pram::Machine m(pram::Model::CRCW_COMMON);
    benchmark::DoNotOptimize(pram::min_element_par<std::int64_t>(m, xs));
  }
}
BENCHMARK(BM_ArgoptCrcw)->Range(1 << 10, 1 << 16);

void BM_BitonicSortHypercube(benchmark::State& state) {
  const auto d = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<std::int64_t> base(std::size_t{1} << d);
  for (auto& x : base) x = rng.uniform_int(0, 1 << 30);
  for (auto _ : state) {
    net::Engine e(net::TopologyKind::Hypercube, d);
    auto data = base;
    net::bitonic_sort(e, data, std::less<std::int64_t>{});
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_BitonicSortHypercube)->DenseRange(8, 14, 2);

void BM_PrefixScanShuffleExchange(benchmark::State& state) {
  const auto d = static_cast<int>(state.range(0));
  std::vector<std::int64_t> base(std::size_t{1} << d, 1);
  for (auto _ : state) {
    net::Engine e(net::TopologyKind::ShuffleExchange, d);
    auto data = base;
    net::prefix_scan(e, data, std::plus<std::int64_t>{});
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_PrefixScanShuffleExchange)->DenseRange(8, 16, 4);

}  // namespace

BENCHMARK_MAIN();
