// Serve-layer throughput bench: the same query stream answered (a) with
// coalescing on, (b) with coalescing off (batch-of-one per request), and
// (c) with a warm cache -- plus an overload run demonstrating explicit
// `overloaded` rejection under a held worker.
//
// The acceptance bar for the batching layer: batched throughput on a
// bursty stream must be >= unbatched on the same stream (the coalesced
// run shares one recursive row-search decomposition across the burst
// where the unbatched run pays it per request).
//
//   --rows N --cols N   registered array size       (default 256 x 256)
//   --queries N         stream length               (default 512)
// A tracing-overhead gate rides along: the batched stream re-timed with
// span tracing off vs on; the run fails (exit 1) if tracing on costs
// more than 5% (the `trace_overhead_pct` record in the JSON output).
// A fault-layer gate does the same for src/fault: disarmed vs armed at
// rate 0 -- the full decision path on every site with nothing ever
// firing, i.e. an upper bound on what a fault-capable binary costs when
// faults are off.  Budget: 2% (`fault_overhead_pct`), exit 1 above.
//
//   --reps N            median-of-N repetitions     (default 5)
//   --warmup N          throwaway runs per config   (default 1)
//   --json[=PATH]       machine-readable records    (BENCH_serve.json)
//   --trace-out[=PATH]  Chrome trace of the traced run (trace_serve.json)
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using pmonge::serve::Service;
using pmonge::serve::ServiceOptions;

std::vector<std::string> make_stream(std::size_t rows, std::size_t queries) {
  std::vector<std::string> qs;
  qs.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    // Distinct ids keep every request distinct on the wire while the
    // cache signature (which strips ids) still coalesces repeats.
    qs.push_back("{\"op\":\"rowmin\",\"array\":0,\"id\":" + std::to_string(i) +
                 ",\"row\":" + std::to_string(i % rows) + "}");
  }
  return qs;
}

/// Submit the whole stream as a burst (worker held), then time the drain.
double run_stream(Service& svc, const std::vector<std::string>& stream) {
  svc.pause();
  std::vector<std::future<std::string>> futs;
  futs.reserve(stream.size());
  for (const auto& q : stream) futs.push_back(svc.submit(q));
  const auto t0 = std::chrono::steady_clock::now();
  svc.resume();
  for (auto& f : futs) f.get();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 256));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols", 256));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries", 512));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 1));
  auto records =
      pmonge::bench::JsonRecords::from_cli(cli, "serve", "BENCH_serve.json");

  pmonge::bench::print_header("serve throughput: batched vs unbatched");
  const std::string reg = "{\"op\":\"register_random\",\"rows\":" +
                          std::to_string(rows) +
                          ",\"cols\":" + std::to_string(cols) + ",\"seed\":7}";
  const auto stream = make_stream(rows, queries);

  struct Config {
    const char* name;
    bool coalesce;
    std::size_t cache;
  };
  const Config configs[] = {
      {"unbatched, no cache", false, 0},
      {"batched,   no cache", true, 0},
      {"batched,   cold->warm cache", true, 4096},
  };

  pmonge::Table table({"config", "queries", "median ms", "qps", "min ms",
                       "max ms"});
  double unbatched_ms = 0, batched_ms = 0;
  for (const Config& c : configs) {
    ServiceOptions opts;
    opts.coalesce = c.coalesce;
    opts.cache_capacity = c.cache;
    opts.queue_capacity = queries + 16;
    opts.batch_max = 64;
    Service svc(opts);
    svc.request(reg);
    const auto stats = pmonge::bench::timed_median(
        [&] { run_stream(svc, stream); }, warmup, reps);
    if (std::string(c.name).find("unbatched") != std::string::npos) {
      unbatched_ms = stats.median_ms;
    } else if (c.cache == 0) {
      batched_ms = stats.median_ms;
    }
    table.add_row({c.name, pmonge::Table::num(queries),
                   pmonge::Table::fixed(stats.median_ms, 2),
                   pmonge::Table::fixed(
                       1000.0 * static_cast<double>(queries) / stats.median_ms,
                       0),
                   pmonge::Table::fixed(stats.min_ms, 2),
                   pmonge::Table::fixed(stats.max_ms, 2)});
    pmonge::serve::Json::Obj r;
    r["op"] = "rowmin";
    r["rows"] = rows;
    r["cols"] = cols;
    r["batch"] = queries;
    r["config"] = c.name;
    r["median_us"] = stats.median_ms * 1000.0;
    r["profile"] = opts.profile.id;
    records.add(std::move(r));
  }
  table.print(std::cout);
  std::cout << "batched/unbatched median: "
            << pmonge::Table::fixed(batched_ms / unbatched_ms, 3)
            << " (<= 1.0 means batching wins)\n";

  pmonge::bench::print_header("tracing overhead: spans off vs on");
  bool trace_regression = false;
  {
    ServiceOptions topts;
    topts.coalesce = true;
    topts.cache_capacity = 0;
    topts.queue_capacity = queries + 16;
    Service tsvc(topts);
    tsvc.request(reg);
    // Two drains per timed sample: the differential gate needs samples
    // long enough that a descheduling blip cannot read as overhead.
    const auto t = pmonge::bench::trace_overhead(
        [&] {
          run_stream(tsvc, stream);
          run_stream(tsvc, stream);
        },
        warmup, reps);
    trace_regression = t.pct > 5.0;
    std::cout << "untraced " << pmonge::Table::fixed(t.off_ms, 2)
              << " ms, traced " << pmonge::Table::fixed(t.on_ms, 2)
              << " ms: overhead " << pmonge::Table::fixed(t.pct, 2) << "% "
              << (trace_regression ? "REGRESSION (> 5%)" : "(<= 5% ok)")
              << "\n";
    pmonge::serve::Json::Obj r;
    r["op"] = "rowmin";
    r["rows"] = rows;
    r["cols"] = cols;
    r["batch"] = queries;
    r["config"] = "tracing overhead";
    r["median_us"] = t.on_ms * 1000.0;
    r["baseline_us"] = t.off_ms * 1000.0;
    r["trace_overhead_pct"] = t.pct;
    r["profile"] = topts.profile.id;
    records.add(std::move(r));
    pmonge::bench::write_trace_out(cli, "trace_serve.json");
  }

  pmonge::bench::print_header("fault-layer overhead: disarmed vs armed@rate 0");
  bool fault_regression = false;
  {
    ServiceOptions fopts;
    fopts.coalesce = true;
    fopts.cache_capacity = 0;
    fopts.queue_capacity = queries + 16;
    Service fsvc(fopts);
    fsvc.request(reg);
    // Armed at rate 0: armed() is true so every site runs its full
    // should_fire() decision (mask check, counter bump, splitmix64 mix),
    // but nothing ever fires -- the worst case for a production binary
    // with the fault layer compiled in and switched off.
    const auto f = pmonge::bench::paired_overhead(
        [&] {
          run_stream(fsvc, stream);
          run_stream(fsvc, stream);
        },
        [](bool on) {
          if (on) {
            pmonge::fault::arm(7, 0, pmonge::fault::kAllSites);
          } else {
            pmonge::fault::disarm();
          }
        },
        warmup, reps);
    fault_regression = f.pct > 2.0;
    std::cout << "disarmed " << pmonge::Table::fixed(f.off_ms, 2)
              << " ms, armed@0 " << pmonge::Table::fixed(f.on_ms, 2)
              << " ms: overhead " << pmonge::Table::fixed(f.pct, 2) << "% "
              << (fault_regression ? "REGRESSION (> 2%)" : "(<= 2% ok)")
              << "\n";
    pmonge::serve::Json::Obj r;
    r["op"] = "rowmin";
    r["rows"] = rows;
    r["cols"] = cols;
    r["batch"] = queries;
    r["config"] = "fault-layer overhead";
    r["median_us"] = f.on_ms * 1000.0;
    r["baseline_us"] = f.off_ms * 1000.0;
    r["fault_overhead_pct"] = f.pct;
    r["profile"] = fopts.profile.id;
    records.add(std::move(r));
  }
  pmonge::bench::print_header(
      "cached-hit p50: fast path off (pre-codec baseline) vs on");
  bool fastpath_regression = false;
  {
    // End-to-end gate for the zero-allocation fast path: the same warm
    // cached-hit request stream through Service::request with the codec
    // path disabled (exactly the pre-codec serve behavior: parse, queue,
    // worker, batcher cache probe) vs enabled.  Responses are
    // byte-identical by the test_codec contract; only the latency may
    // differ, and it must improve by >= 20% or this run exits nonzero.
    const std::size_t probe_rows = std::min<std::size_t>(rows, 32);
    std::vector<std::string> cached;
    for (std::size_t rI = 0; rI < probe_rows; ++rI) {
      cached.push_back("{\"op\":\"rowmin\",\"array\":0,\"row\":" +
                       std::to_string(rI) + "}");
    }
    const auto p50_us = [&](bool fast) {
      ServiceOptions copts;
      copts.fast_path = fast;
      copts.queue_capacity = queries + 16;
      Service csvc(copts);
      csvc.request(reg);
      for (const auto& q : cached) csvc.request(q);  // warm the cache
      const std::size_t per_rep = 64;
      const auto stats = pmonge::bench::timed_median(
          [&] {
            for (std::size_t i = 0; i < per_rep; ++i) {
              csvc.request(cached[i % cached.size()]);
            }
          },
          warmup + 1, reps);
      return stats.median_ms * 1000.0 / static_cast<double>(per_rep);
    };
    const double off_us = p50_us(false);
    const double on_us = p50_us(true);
    const double improve_pct =
        off_us > 0 ? (off_us - on_us) / off_us * 100.0 : 0.0;
    fastpath_regression = improve_pct < 20.0;
    std::cout << "cached hit, fast path off " << pmonge::Table::fixed(off_us, 2)
              << " us/req, on " << pmonge::Table::fixed(on_us, 2)
              << " us/req: improvement " << pmonge::Table::fixed(improve_pct, 1)
              << "% "
              << (fastpath_regression ? "REGRESSION (< 20%)" : "(>= 20% ok)")
              << "\n";
    pmonge::serve::Json::Obj r;
    r["op"] = "rowmin";
    r["rows"] = rows;
    r["cols"] = cols;
    r["batch"] = std::size_t{1};
    r["config"] = "cached-hit fast path";
    r["median_us"] = on_us;
    r["baseline_us"] = off_us;
    r["fastpath_improvement_pct"] = improve_pct;
    records.add(std::move(r));
  }
  records.write();

  pmonge::bench::print_header("serve overload: bounded queue rejects");
  ServiceOptions opts;
  opts.coalesce = true;
  opts.cache_capacity = 0;
  opts.queue_capacity = 32;
  Service svc(opts);
  svc.request(reg);
  svc.pause();  // hold the worker so the burst genuinely overflows
  std::vector<std::future<std::string>> futs;
  for (const auto& q : stream) futs.push_back(svc.submit(q));
  svc.resume();
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futs) {
    const std::string resp = f.get();
    if (resp.find("overloaded") != std::string::npos) {
      ++rejected;
    } else {
      ++ok;
    }
  }
  std::cout << "submitted " << stream.size() << " into capacity "
            << opts.queue_capacity << ": " << ok << " answered, " << rejected
            << " rejected `overloaded`, 0 dropped\n";
  return trace_regression || fault_regression || fastpath_regression ? 1 : 0;
}
