// Table 1.1 -- row-maxima results for an n x n Monge array.
//
//   Paper:   CRCW-PRAM        O(lg n)          n processors
//            CREW-PRAM        O(lg n lglg n)   n / lglg n processors
//            hypercube, etc.  O(lg n lglg n)   n / lglg n processors
//
// For each model the harness sweeps n, reports measured parallel steps,
// work and peak processors, the Brent-scheduled time at the paper's
// processor count, and the ratio series against the claimed shape (a
// flat ratio reproduces the row).  The network rows are measured on the
// actual engine (hypercube / CCC / shuffle-exchange), where the paper's
// omitted construction is replaced by a per-level O(lg n) allocation
// round (measured shape lg^2 n; see EXPERIMENTS.md).
#include <algorithm>

#include "bench_util.hpp"
#include "monge/generators.hpp"
#include "par/hypercube_search.hpp"
#include "par/monge_rowminima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 8192));
  const auto net_max = static_cast<std::size_t>(cli.get_int("net-max", 2048));
  Rng rng(cli.get_int("seed", 11));

  bench::print_header(
      "Table 1.1: row maxima of an n x n Monge array (measured)");

  Table t({"model", "n", "steps", "work", "peak procs", "paper procs",
           "Brent time @paper", "claimed shape"});

  // --- PRAM rows -------------------------------------------------------
  for (auto model : {pram::Model::CRCW_COMMON, pram::Model::CREW}) {
    std::vector<SeriesPoint> steps_series;
    for (std::size_t n : bench::pow2_sweep(64, nmax)) {
      const auto a = monge::random_monge(n, n, rng);
      pram::Machine mach(model);
      par::monge_row_maxima(mach, a);
      const auto& mt = mach.meter();
      const bool crcw = model == pram::Model::CRCW_COMMON;
      const std::uint64_t paper_p =
          crcw ? n
               : std::max<std::uint64_t>(
                     1, n / std::max(1, ceil_lglg(n)));
      const double brent = mt.brent_time(paper_p);
      steps_series.push_back({static_cast<double>(n),
                              crcw ? static_cast<double>(mt.time) : brent});
      t.add_row({pram::model_name(model), Table::num(n), Table::num(mt.time),
                 Table::num(mt.work), Table::num(mt.peak_processors),
                 Table::num(paper_p), Table::fixed(brent, 1),
                 crcw ? "lg n" : "lg n lglg n"});
    }
    const auto shape = model == pram::Model::CRCW_COMMON
                           ? shape_lg()
                           : shape_lg_lglg();
    t.add_row({pram::model_name(model), "fit", "", "", "", "", "",
               bench::shape_cell(steps_series, shape)});
  }

  // --- network rows ----------------------------------------------------
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::CubeConnectedCycles,
        net::TopologyKind::ShuffleExchange}) {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(64, net_max)) {
      std::vector<double> x(n), y(n);
      for (auto& v : x) v = rng.uniform(0, 1000);
      for (auto& v : y) v = rng.uniform(0, 1000);
      std::sort(x.begin(), x.end());
      std::sort(y.begin(), y.end());
      net::Engine e = par::make_engine_for(n, kind);
      par::hc_monge_row_maxima<double>(e, x, y, [](double a, double b) {
        const double d = a - b;
        return -d * d;  // concave -> Monge with maxima interesting
      });
      series.push_back({static_cast<double>(n),
                        static_cast<double>(e.meter().total_steps())});
      t.add_row({net::topology_name(kind), Table::num(n),
                 Table::num(e.meter().total_steps()),
                 Table::num(e.meter().messages),
                 Table::num(e.physical_nodes()), Table::num(e.size()),
                 "-", "lg n lglg n (meas. lg^2 n)"});
    }
    t.add_row({net::topology_name(kind), "fit", "", "", "", "", "",
               bench::shape_cell(series, shape_lg2())});
  }

  t.print(std::cout);
  std::cout << "\nInterpretation: a flat 'first -> last' ratio in the fit "
               "rows reproduces the table's bound shape.\n";
  return 0;
}
