// Table 1.2 -- row-minima results for an n x n staircase-Monge array
// (the paper's primary contribution, Theorem 2.3 / Theorem 3.3).
//
//   Paper:   CRCW-PRAM        O(lg n)          n processors
//            CREW-PRAM        O(lg n lglg n)   n / lglg n processors
//            hypercube, etc.  O(lg n lglg n)   n / lglg n processors
//
// Our implementation exposes the two schedules of the canonical-segment
// decomposition: MaxParallel reproduces the O(lg n) CRCW *time* with
// O(n lg n) processors; WorkEfficient reproduces the O(n) processor
// budget at O(lg^2 n) depth -- together they bracket the paper's point
// (the extended abstract defers the allocation machinery that attains
// both simultaneously to the unpublished final version).  Sequential
// baselines: brute force and the frontier-group SMAWK solver standing in
// for [AK88]/[KK88].
#include "bench_util.hpp"
#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/staircase_seq.hpp"
#include "par/hypercube_search.hpp"
#include "par/staircase_rowminima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 8192));
  const auto net_max = static_cast<std::size_t>(cli.get_int("net-max", 1024));
  Rng rng(cli.get_int("seed", 12));

  bench::print_header(
      "Table 1.2: row minima of an n x n staircase-Monge array (measured)");

  Table t({"model", "n", "steps", "work", "peak procs",
           "Brent @n/lglg n", "claimed shape"});

  struct PramRow {
    pram::Model model;
    par::StaircaseSchedule sched;
    const char* label;
    Shape shape;
    bool use_brent;
  };
  const PramRow rows[] = {
      {pram::Model::CRCW_COMMON, par::StaircaseSchedule::MaxParallel,
       "CRCW (max-parallel)", shape_lg(), false},
      {pram::Model::CRCW_COMMON, par::StaircaseSchedule::WorkEfficient,
       "CRCW (work-efficient)", shape_lg2(), false},
      {pram::Model::CREW, par::StaircaseSchedule::MaxParallel,
       "CREW-PRAM", shape_lg_lglg(), true},
  };

  for (const auto& row : rows) {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(64, nmax)) {
      const auto inst = monge::random_staircase_monge(n, n, rng);
      monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(
          inst.base, inst.frontier);
      pram::Machine mach(row.model);
      par::staircase_row_minima(mach, s, row.sched);
      const auto& mt = mach.meter();
      const std::uint64_t paper_p = std::max<std::uint64_t>(
          1, n / std::max(1, ceil_lglg(n)));
      const double brent = mt.brent_time(paper_p);
      series.push_back({static_cast<double>(n),
                        row.use_brent ? brent
                                      : static_cast<double>(mt.time)});
      t.add_row({row.label, Table::num(n), Table::num(mt.time),
                 Table::num(mt.work), Table::num(mt.peak_processors),
                 Table::fixed(brent, 1), row.shape.name});
    }
    t.add_row({row.label, "fit", "", "", "", "",
               bench::shape_cell(series, row.shape)});
  }

  // Network row (Theorem 3.3).
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::ShuffleExchange}) {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(64, net_max)) {
      const auto inst = monge::random_staircase_monge(n, n, rng);
      auto [res, agg] = par::hc_staircase_row_minima<std::int64_t>(
          kind, n, n, inst.frontier,
          [&](std::size_t i, std::size_t j) { return inst.base(i, j); });
      (void)res;
      series.push_back({static_cast<double>(n),
                        static_cast<double>(agg.total_steps())});
      t.add_row({net::topology_name(kind), Table::num(n),
                 Table::num(agg.total_steps()), "-",
                 Table::num(agg.physical_nodes), "-",
                 "lg n lglg n (meas. lg^3 n)"});
    }
    t.add_row({net::topology_name(kind), "fit", "", "", "", "",
               bench::shape_cell(series, shape_lg2())});
  }

  t.print(std::cout);

  // Sequential baselines for the processor-time comparison.
  bench::print_header("sequential baselines (entry probes)");
  Table s({"solver", "n", "probes"});
  for (std::size_t n : bench::pow2_sweep(256, std::min(nmax, std::size_t{4096}))) {
    const auto inst = monge::random_staircase_monge(n, n, rng);
    monge::StaircaseArray<monge::DenseArray<std::int64_t>> st(
        inst.base, inst.frontier);
    s.add_row({"brute force", Table::num(n), Table::num(n * n)});
    // Frontier-group SMAWK probes ~ sum of group sizes.
    std::size_t probes = 0, i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j < n && inst.frontier[j] == inst.frontier[i]) ++j;
      probes += (j - i) + inst.frontier[i];
      i = j;
    }
    s.add_row({"group-SMAWK [AK88 stand-in]", Table::num(n),
               Table::num(8 * probes)});
  }
  s.print(std::cout);
  return 0;
}
