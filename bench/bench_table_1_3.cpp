// Table 1.3 -- tube maxima of an n x n x n Monge-composite array.
//
//   Paper:   CRCW-PRAM        Theta(lglg n)    n^2 / lglg n processors
//            CREW-PRAM        Theta(lg n)      n^2 / lg n processors
//            hypercube, etc.  Theta(lg n)      n^2 processors
//
// CRCW row: the sampled doubly-logarithmic strategy ([Ata89] shape).
// CREW row: the per-slice strategy (one Monge search per output slice).
// Network row: Theorem 3.4's lockstep per-slice solve on 2n-node
// sub-networks of an n^2-node host.
#include "bench_util.hpp"
#include "monge/generators.hpp"
#include "par/hypercube_search.hpp"
#include "par/tube_maxima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto nmax = static_cast<std::size_t>(cli.get_int("max", 512));
  const auto net_max = static_cast<std::size_t>(cli.get_int("net-max", 128));
  Rng rng(cli.get_int("seed", 13));

  bench::print_header(
      "Table 1.3: tube maxima of an n x n x n Monge-composite array");

  Table t({"model", "n", "steps", "work", "peak procs",
           "Brent @paper procs", "claimed shape"});

  // CRCW row: Theta(lglg n).
  {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(16, nmax)) {
      const auto inst = monge::random_composite(n, n, n, rng);
      pram::Machine mach(pram::Model::CRCW_COMMON);
      par::tube_maxima(mach, inst.d, inst.e,
                       par::TubeStrategy::SampledDoublyLog);
      const auto& mt = mach.meter();
      const std::uint64_t paper_p = std::max<std::uint64_t>(
          1, n * n / std::max(1, ceil_lglg(n)));
      series.push_back({static_cast<double>(n),
                        static_cast<double>(mt.time)});
      t.add_row({"CRCW (sampled doubly-log)", Table::num(n),
                 Table::num(mt.time), Table::num(mt.work),
                 Table::num(mt.peak_processors),
                 Table::fixed(mt.brent_time(paper_p), 1), "lglg n"});
    }
    t.add_row({"CRCW (sampled doubly-log)", "fit", "", "", "", "",
               bench::shape_cell(series, shape_lglg())});
  }

  // CREW row: Theta(lg n).
  {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(16, nmax)) {
      const auto inst = monge::random_composite(n, n, n, rng);
      pram::Machine mach(pram::Model::CREW);
      par::tube_maxima(mach, inst.d, inst.e, par::TubeStrategy::PerSlice);
      const auto& mt = mach.meter();
      const std::uint64_t paper_p = std::max<std::uint64_t>(
          1, n * n / std::max(1, ceil_lg(n)));
      series.push_back({static_cast<double>(n),
                        static_cast<double>(mt.time)});
      t.add_row({"CREW (per-slice)", Table::num(n), Table::num(mt.time),
                 Table::num(mt.work), Table::num(mt.peak_processors),
                 Table::fixed(mt.brent_time(paper_p), 1), "lg n"});
    }
    t.add_row({"CREW (per-slice)", "fit", "", "", "", "",
               bench::shape_cell(series, shape_lg())});
  }

  // Network row (Theorem 3.4): n^2 processors, Theta(lg n) claimed.
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::CubeConnectedCycles}) {
    std::vector<SeriesPoint> series;
    for (std::size_t n : bench::pow2_sweep(16, net_max)) {
      const auto inst = monge::random_composite(n, n, n, rng);
      auto [plane, agg] = par::hc_tube_maxima(kind, inst.d, inst.e);
      (void)plane;
      series.push_back({static_cast<double>(n),
                        static_cast<double>(agg.total_steps())});
      t.add_row({net::topology_name(kind), Table::num(n),
                 Table::num(agg.total_steps()), "-",
                 Table::num(agg.physical_nodes), "-",
                 "lg n (meas. lg^2 n)"});
    }
    t.add_row({net::topology_name(kind), "fit", "", "", "", "",
               bench::shape_cell(series, shape_lg2())});
  }

  t.print(std::cout);
  std::cout << "\nSequential baseline: [AKM+87] gives O((p+r)q) probes; the "
               "brute force scans n^3 entries.\n";
  return 0;
}
