// Shared helpers for the paper-table bench binaries: size sweeps, shape
// columns, and uniform row emission through support/table.hpp.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "serve/json.hpp"
#include "support/cli.hpp"
#include "support/series.hpp"
#include "support/table.hpp"

namespace pmonge::bench {

// ---------------------------------------------------------------------------
// Timing: warmup + median-of-N repetition
// ---------------------------------------------------------------------------

struct TimedStats {
  double median_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  std::size_t reps = 0;
};

/// Time `body` with `warmup` throwaway runs (page-in, thread-pool spin-up,
/// branch-predictor settling) followed by `reps` measured runs, reporting
/// the median.  The median, not the mean, is the headline number: a
/// single descheduling blip skews a mean arbitrarily but moves the median
/// at most one rank.
template <class F>
TimedStats timed_median(F&& body, std::size_t warmup = 1,
                        std::size_t reps = 5) {
  using Clock = std::chrono::steady_clock;
  if (reps == 0) reps = 1;
  for (std::size_t i = 0; i < warmup; ++i) body();
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  TimedStats s;
  s.reps = reps;
  s.min_ms = ms.front();
  s.max_ms = ms.back();
  s.median_ms = reps % 2 == 1
                    ? ms[reps / 2]
                    : (ms[reps / 2 - 1] + ms[reps / 2]) / 2.0;
  return s;
}

/// Power-of-two sweep [lo, hi].
inline std::vector<std::size_t> pow2_sweep(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> v;
  for (std::size_t n = lo; n <= hi; n *= 2) v.push_back(n);
  return v;
}

/// Render the fit of a measured series against a claimed shape: the
/// "ratio flat?" evidence column of every table bench.
inline std::string shape_cell(const std::vector<SeriesPoint>& pts,
                              const Shape& shape) {
  const auto fit = fit_shape(pts, shape);
  return Table::fixed(fit.ratio_first, 2) + " -> " +
         Table::fixed(fit.ratio_last, 2) + " (c~" +
         Table::fixed(fit.constant, 2) + ")";
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

// ---------------------------------------------------------------------------
// Reproduction lines: every seeded failure prints one of these
// ---------------------------------------------------------------------------

/// The copy-pastable reproduction command a seeded test failure leads
/// with: "<env assignments> ctest -R <regex> --output-on-failure".  One
/// line, shell-ready -- a failure report a human cannot paste back into
/// a terminal is a failure report that does not get reproduced.
inline std::string repro_line(const std::string& env_assignments,
                              const std::string& ctest_regex) {
  std::string out;
  if (!env_assignments.empty()) out += env_assignments + " ";
  out += "ctest -R " + ctest_regex + " --output-on-failure";
  return out;
}

/// The fuzz suites' reproduction command (tests/test_fuzz.cpp): pins the
/// failing seed and the thread count, which together fix the run.
inline std::string fuzz_repro(std::uint64_t seed, std::size_t threads) {
  return repro_line("PMONGE_FUZZ_SEED=" + std::to_string(seed) +
                        " PMONGE_THREADS=" + std::to_string(threads),
                    "fuzz");
}

// ---------------------------------------------------------------------------
// Paired differential overhead: the trace and fault acceptance gates
// ---------------------------------------------------------------------------

struct PairedOverhead {
  double off_ms = 0;
  double on_ms = 0;
  double pct = 0;  // "on" slowdown in percent of the "off" baseline
};

/// Time `body` with some binary state off vs on (`set_state(bool)`),
/// leaving it off afterwards.
///
/// Statistics are chosen for a *differential* measurement on a shared
/// machine, where ambient load swamps a few-percent signal:
///   * off/on reps run as adjacent pairs, so slow drift (thermal, page
///     cache, neighbors) hits both sides of a pair about equally;
///   * the order within each pair alternates, cancelling any systematic
///     first-vs-second-run bias (cache residue, frequency ramp);
///   * the reported overhead is the *median of per-pair deltas* over
///     the min off time -- a paired test: one descheduled pair moves
///     the median a rank, where it would wreck a mean or an unpaired
///     min-vs-min comparison.
/// The pair count is floored at 9: this is a pass/fail gate, not a
/// table row, and a handful of pairs cannot clear the noise floor.
template <class F, class S>
PairedOverhead paired_overhead(F&& body, S&& set_state, std::size_t warmup,
                               std::size_t reps) {
  using Clock = std::chrono::steady_clock;
  if (reps < 9) reps = 9;
  const auto timed = [&body, &set_state](bool on) {
    set_state(on);
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  set_state(false);
  for (std::size_t i = 0; i < warmup; ++i) body();
  set_state(true);
  for (std::size_t i = 0; i < warmup; ++i) body();
  std::vector<double> deltas;
  deltas.reserve(reps);
  double off_min = 0, on_min = 0;
  for (std::size_t i = 0; i < reps; ++i) {
    const bool off_first = i % 2 == 0;
    const double a = timed(!off_first);
    const double b = timed(off_first);
    const double off = off_first ? a : b;
    const double on = off_first ? b : a;
    deltas.push_back(on - off);
    if (i == 0 || off < off_min) off_min = off;
    if (i == 0 || on < on_min) on_min = on;
  }
  set_state(false);
  std::sort(deltas.begin(), deltas.end());
  const double med = reps % 2 == 1
                         ? deltas[reps / 2]
                         : (deltas[reps / 2 - 1] + deltas[reps / 2]) / 2.0;
  PairedOverhead t;
  t.off_ms = off_min;
  t.on_ms = on_min;
  t.pct = off_min > 0 ? med / off_min * 100.0 : 0.0;
  return t;
}

using TraceOverhead = PairedOverhead;

/// Time `body` with span tracing off vs on (obs::set_enabled), leaving
/// tracing off afterwards.  The spans the traced runs captured stay
/// buffered so the caller can export them with write_trace_out().
template <class F>
TraceOverhead trace_overhead(F&& body, std::size_t warmup, std::size_t reps) {
  return paired_overhead(std::forward<F>(body),
                         [](bool on) { obs::set_enabled(on); }, warmup, reps);
}

/// `--trace-out[=PATH]` smoke: drain the buffered spans and write them
/// as Chrome trace-event JSON (load in ui.perfetto.dev).
inline void write_trace_out(const Cli& cli, const std::string& default_path) {
  if (!cli.has("trace-out")) return;
  const std::string v = cli.get("trace-out", "1");
  const std::string path = v == "1" ? default_path : v;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << obs::chrome_trace_json(obs::collect()).dump() << "\n";
  out.flush();
  if (out) {
    std::cout << "wrote Chrome trace to " << path << "\n";
  } else {
    std::cerr << "error: cannot write " << path << "\n";
  }
}

// ---------------------------------------------------------------------------
// --json: machine-readable result records
// ---------------------------------------------------------------------------

/// Accumulates one canonical-JSON record per measured configuration and
/// writes them as a JSON array, so CI and the analysis notebooks can
/// diff bench results across commits without scraping tables.
///
///   --json            write to the bench's default path (BENCH_<x>.json)
///   --json=PATH       write to PATH
///
/// Disabled (the default) it is a no-op; the human tables always print.
class JsonRecords {
 public:
  /// `bench` stamps every record; `path` empty disables.
  JsonRecords(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  /// Resolve the path from `--json[=PATH]`; empty (disabled) without it.
  static JsonRecords from_cli(const Cli& cli, const std::string& bench,
                              const std::string& default_path) {
    if (!cli.has("json")) return JsonRecords(bench, "");
    const std::string v = cli.get("json", "1");
    return JsonRecords(bench, v == "1" ? default_path : v);
  }

  bool enabled() const { return !path_.empty(); }

  /// Append one record; the "bench" field is stamped automatically.
  void add(serve::Json::Obj fields) {
    if (!enabled()) return;
    fields["bench"] = serve::Json(bench_);
    records_.emplace_back(std::move(fields));
  }

  /// Write the array (canonical bytes, one record per line) and say so.
  void write() {
    if (!enabled()) return;
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << records_[i].dump() << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    out.flush();
    if (out) {
      std::cout << "wrote " << records_.size() << " records to " << path_
                << "\n";
    } else {
      std::cerr << "error: cannot write " << path_ << "\n";
    }
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<serve::Json> records_;
};

}  // namespace pmonge::bench
