// Shared helpers for the paper-table bench binaries: size sweeps, shape
// columns, and uniform row emission through support/table.hpp.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/series.hpp"
#include "support/table.hpp"

namespace pmonge::bench {

// ---------------------------------------------------------------------------
// Timing: warmup + median-of-N repetition
// ---------------------------------------------------------------------------

struct TimedStats {
  double median_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  std::size_t reps = 0;
};

/// Time `body` with `warmup` throwaway runs (page-in, thread-pool spin-up,
/// branch-predictor settling) followed by `reps` measured runs, reporting
/// the median.  The median, not the mean, is the headline number: a
/// single descheduling blip skews a mean arbitrarily but moves the median
/// at most one rank.
template <class F>
TimedStats timed_median(F&& body, std::size_t warmup = 1,
                        std::size_t reps = 5) {
  using Clock = std::chrono::steady_clock;
  if (reps == 0) reps = 1;
  for (std::size_t i = 0; i < warmup; ++i) body();
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  TimedStats s;
  s.reps = reps;
  s.min_ms = ms.front();
  s.max_ms = ms.back();
  s.median_ms = reps % 2 == 1
                    ? ms[reps / 2]
                    : (ms[reps / 2 - 1] + ms[reps / 2]) / 2.0;
  return s;
}

/// Power-of-two sweep [lo, hi].
inline std::vector<std::size_t> pow2_sweep(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> v;
  for (std::size_t n = lo; n <= hi; n *= 2) v.push_back(n);
  return v;
}

/// Render the fit of a measured series against a claimed shape: the
/// "ratio flat?" evidence column of every table bench.
inline std::string shape_cell(const std::vector<SeriesPoint>& pts,
                              const Shape& shape) {
  const auto fit = fit_shape(pts, shape);
  return Table::fixed(fit.ratio_first, 2) + " -> " +
         Table::fixed(fit.ratio_last, 2) + " (c~" +
         Table::fixed(fit.constant, 2) + ")";
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace pmonge::bench
