// Shared helpers for the paper-table bench binaries: size sweeps, shape
// columns, and uniform row emission through support/table.hpp.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/series.hpp"
#include "support/table.hpp"

namespace pmonge::bench {

/// Power-of-two sweep [lo, hi].
inline std::vector<std::size_t> pow2_sweep(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> v;
  for (std::size_t n = lo; n <= hi; n *= 2) v.push_back(n);
  return v;
}

/// Render the fit of a measured series against a claimed shape: the
/// "ratio flat?" evidence column of every table bench.
inline std::string shape_cell(const std::vector<SeriesPoint>& pts,
                              const Shape& shape) {
  const auto fit = fit_shape(pts, shape);
  return Table::fixed(fit.ratio_first, 2) + " -> " +
         Table::fixed(fit.ratio_last, 2) + " (c~" +
         Table::fixed(fit.constant, 2) + ")";
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace pmonge::bench
