file(REMOVE_RECURSE
  "CMakeFiles/bench_app_empty_rect.dir/bench_app_empty_rect.cpp.o"
  "CMakeFiles/bench_app_empty_rect.dir/bench_app_empty_rect.cpp.o.d"
  "bench_app_empty_rect"
  "bench_app_empty_rect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_empty_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
