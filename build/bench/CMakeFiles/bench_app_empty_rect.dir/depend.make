# Empty dependencies file for bench_app_empty_rect.
# This may be replaced when dependencies are built.
