# Empty dependencies file for bench_app_largest_rect.
# This may be replaced when dependencies are built.
