file(REMOVE_RECURSE
  "CMakeFiles/bench_app_neighbors.dir/bench_app_neighbors.cpp.o"
  "CMakeFiles/bench_app_neighbors.dir/bench_app_neighbors.cpp.o.d"
  "bench_app_neighbors"
  "bench_app_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
