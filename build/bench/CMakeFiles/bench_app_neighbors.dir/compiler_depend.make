# Empty compiler generated dependencies file for bench_app_neighbors.
# This may be replaced when dependencies are built.
