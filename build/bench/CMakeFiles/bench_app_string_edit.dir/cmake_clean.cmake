file(REMOVE_RECURSE
  "CMakeFiles/bench_app_string_edit.dir/bench_app_string_edit.cpp.o"
  "CMakeFiles/bench_app_string_edit.dir/bench_app_string_edit.cpp.o.d"
  "bench_app_string_edit"
  "bench_app_string_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_string_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
