# Empty dependencies file for bench_app_string_edit.
# This may be replaced when dependencies are built.
