file(REMOVE_RECURSE
  "CMakeFiles/convex_polygon_neighbors.dir/convex_polygon_neighbors.cpp.o"
  "CMakeFiles/convex_polygon_neighbors.dir/convex_polygon_neighbors.cpp.o.d"
  "convex_polygon_neighbors"
  "convex_polygon_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convex_polygon_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
