# Empty dependencies file for convex_polygon_neighbors.
# This may be replaced when dependencies are built.
