file(REMOVE_RECURSE
  "CMakeFiles/edit_distance.dir/edit_distance.cpp.o"
  "CMakeFiles/edit_distance.dir/edit_distance.cpp.o.d"
  "edit_distance"
  "edit_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
