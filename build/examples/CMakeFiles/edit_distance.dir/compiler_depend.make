# Empty compiler generated dependencies file for edit_distance.
# This may be replaced when dependencies are built.
