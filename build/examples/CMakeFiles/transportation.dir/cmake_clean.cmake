file(REMOVE_RECURSE
  "CMakeFiles/transportation.dir/transportation.cpp.o"
  "CMakeFiles/transportation.dir/transportation.cpp.o.d"
  "transportation"
  "transportation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transportation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
