# Empty dependencies file for transportation.
# This may be replaced when dependencies are built.
