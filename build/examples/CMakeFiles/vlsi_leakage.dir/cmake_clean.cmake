file(REMOVE_RECURSE
  "CMakeFiles/vlsi_leakage.dir/vlsi_leakage.cpp.o"
  "CMakeFiles/vlsi_leakage.dir/vlsi_leakage.cpp.o.d"
  "vlsi_leakage"
  "vlsi_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsi_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
