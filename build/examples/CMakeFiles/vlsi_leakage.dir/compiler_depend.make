# Empty compiler generated dependencies file for vlsi_leakage.
# This may be replaced when dependencies are built.
