
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/empty_rect.cpp" "src/CMakeFiles/pmonge.dir/apps/empty_rect.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/apps/empty_rect.cpp.o.d"
  "/root/repo/src/apps/largest_rect.cpp" "src/CMakeFiles/pmonge.dir/apps/largest_rect.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/apps/largest_rect.cpp.o.d"
  "/root/repo/src/apps/polygon_neighbors.cpp" "src/CMakeFiles/pmonge.dir/apps/polygon_neighbors.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/apps/polygon_neighbors.cpp.o.d"
  "/root/repo/src/apps/string_edit.cpp" "src/CMakeFiles/pmonge.dir/apps/string_edit.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/apps/string_edit.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/CMakeFiles/pmonge.dir/geom/geometry.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/geom/geometry.cpp.o.d"
  "/root/repo/src/monge/generators.cpp" "src/CMakeFiles/pmonge.dir/monge/generators.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/monge/generators.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/pmonge.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/net/topology.cpp.o.d"
  "/root/repo/src/pram/ansv.cpp" "src/CMakeFiles/pmonge.dir/pram/ansv.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/pram/ansv.cpp.o.d"
  "/root/repo/src/pram/machine.cpp" "src/CMakeFiles/pmonge.dir/pram/machine.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/pram/machine.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/pmonge.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/series.cpp" "src/CMakeFiles/pmonge.dir/support/series.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/support/series.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/pmonge.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/pmonge.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
