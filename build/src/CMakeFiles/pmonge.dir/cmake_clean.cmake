file(REMOVE_RECURSE
  "CMakeFiles/pmonge.dir/apps/empty_rect.cpp.o"
  "CMakeFiles/pmonge.dir/apps/empty_rect.cpp.o.d"
  "CMakeFiles/pmonge.dir/apps/largest_rect.cpp.o"
  "CMakeFiles/pmonge.dir/apps/largest_rect.cpp.o.d"
  "CMakeFiles/pmonge.dir/apps/polygon_neighbors.cpp.o"
  "CMakeFiles/pmonge.dir/apps/polygon_neighbors.cpp.o.d"
  "CMakeFiles/pmonge.dir/apps/string_edit.cpp.o"
  "CMakeFiles/pmonge.dir/apps/string_edit.cpp.o.d"
  "CMakeFiles/pmonge.dir/geom/geometry.cpp.o"
  "CMakeFiles/pmonge.dir/geom/geometry.cpp.o.d"
  "CMakeFiles/pmonge.dir/monge/generators.cpp.o"
  "CMakeFiles/pmonge.dir/monge/generators.cpp.o.d"
  "CMakeFiles/pmonge.dir/net/topology.cpp.o"
  "CMakeFiles/pmonge.dir/net/topology.cpp.o.d"
  "CMakeFiles/pmonge.dir/pram/ansv.cpp.o"
  "CMakeFiles/pmonge.dir/pram/ansv.cpp.o.d"
  "CMakeFiles/pmonge.dir/pram/machine.cpp.o"
  "CMakeFiles/pmonge.dir/pram/machine.cpp.o.d"
  "CMakeFiles/pmonge.dir/support/cli.cpp.o"
  "CMakeFiles/pmonge.dir/support/cli.cpp.o.d"
  "CMakeFiles/pmonge.dir/support/series.cpp.o"
  "CMakeFiles/pmonge.dir/support/series.cpp.o.d"
  "CMakeFiles/pmonge.dir/support/table.cpp.o"
  "CMakeFiles/pmonge.dir/support/table.cpp.o.d"
  "libpmonge.a"
  "libpmonge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmonge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
