file(REMOVE_RECURSE
  "libpmonge.a"
)
