# Empty compiler generated dependencies file for pmonge.
# This may be replaced when dependencies are built.
