file(REMOVE_RECURSE
  "CMakeFiles/test_composite_algebra.dir/test_composite_algebra.cpp.o"
  "CMakeFiles/test_composite_algebra.dir/test_composite_algebra.cpp.o.d"
  "test_composite_algebra"
  "test_composite_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composite_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
