file(REMOVE_RECURSE
  "CMakeFiles/test_hypercube_search.dir/test_hypercube_search.cpp.o"
  "CMakeFiles/test_hypercube_search.dir/test_hypercube_search.cpp.o.d"
  "test_hypercube_search"
  "test_hypercube_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypercube_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
