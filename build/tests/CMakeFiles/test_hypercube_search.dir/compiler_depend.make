# Empty compiler generated dependencies file for test_hypercube_search.
# This may be replaced when dependencies are built.
