file(REMOVE_RECURSE
  "CMakeFiles/test_interval_mask.dir/test_interval_mask.cpp.o"
  "CMakeFiles/test_interval_mask.dir/test_interval_mask.cpp.o.d"
  "test_interval_mask"
  "test_interval_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
