file(REMOVE_RECURSE
  "CMakeFiles/test_model_enforcement.dir/test_model_enforcement.cpp.o"
  "CMakeFiles/test_model_enforcement.dir/test_model_enforcement.cpp.o.d"
  "test_model_enforcement"
  "test_model_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
