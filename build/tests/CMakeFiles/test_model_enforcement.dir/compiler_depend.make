# Empty compiler generated dependencies file for test_model_enforcement.
# This may be replaced when dependencies are built.
