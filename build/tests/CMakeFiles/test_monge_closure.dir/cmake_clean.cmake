file(REMOVE_RECURSE
  "CMakeFiles/test_monge_closure.dir/test_monge_closure.cpp.o"
  "CMakeFiles/test_monge_closure.dir/test_monge_closure.cpp.o.d"
  "test_monge_closure"
  "test_monge_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monge_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
