# Empty compiler generated dependencies file for test_monge_closure.
# This may be replaced when dependencies are built.
