file(REMOVE_RECURSE
  "CMakeFiles/test_monge_core.dir/test_monge_core.cpp.o"
  "CMakeFiles/test_monge_core.dir/test_monge_core.cpp.o.d"
  "test_monge_core"
  "test_monge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
