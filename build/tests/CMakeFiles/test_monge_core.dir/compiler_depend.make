# Empty compiler generated dependencies file for test_monge_core.
# This may be replaced when dependencies are built.
