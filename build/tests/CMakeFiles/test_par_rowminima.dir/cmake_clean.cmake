file(REMOVE_RECURSE
  "CMakeFiles/test_par_rowminima.dir/test_par_rowminima.cpp.o"
  "CMakeFiles/test_par_rowminima.dir/test_par_rowminima.cpp.o.d"
  "test_par_rowminima"
  "test_par_rowminima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_rowminima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
