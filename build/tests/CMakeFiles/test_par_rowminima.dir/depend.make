# Empty dependencies file for test_par_rowminima.
# This may be replaced when dependencies are built.
