file(REMOVE_RECURSE
  "CMakeFiles/test_par_staircase.dir/test_par_staircase.cpp.o"
  "CMakeFiles/test_par_staircase.dir/test_par_staircase.cpp.o.d"
  "test_par_staircase"
  "test_par_staircase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_staircase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
