# Empty compiler generated dependencies file for test_par_staircase.
# This may be replaced when dependencies are built.
