file(REMOVE_RECURSE
  "CMakeFiles/test_par_tube.dir/test_par_tube.cpp.o"
  "CMakeFiles/test_par_tube.dir/test_par_tube.cpp.o.d"
  "test_par_tube"
  "test_par_tube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
