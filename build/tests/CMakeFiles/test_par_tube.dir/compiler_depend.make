# Empty compiler generated dependencies file for test_par_tube.
# This may be replaced when dependencies are built.
