file(REMOVE_RECURSE
  "CMakeFiles/test_smawk.dir/test_smawk.cpp.o"
  "CMakeFiles/test_smawk.dir/test_smawk.cpp.o.d"
  "test_smawk"
  "test_smawk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smawk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
