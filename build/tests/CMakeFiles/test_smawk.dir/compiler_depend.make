# Empty compiler generated dependencies file for test_smawk.
# This may be replaced when dependencies are built.
