file(REMOVE_RECURSE
  "CMakeFiles/test_staircase_structure.dir/test_staircase_structure.cpp.o"
  "CMakeFiles/test_staircase_structure.dir/test_staircase_structure.cpp.o.d"
  "test_staircase_structure"
  "test_staircase_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_staircase_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
