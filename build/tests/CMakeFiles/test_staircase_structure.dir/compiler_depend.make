# Empty compiler generated dependencies file for test_staircase_structure.
# This may be replaced when dependencies are built.
