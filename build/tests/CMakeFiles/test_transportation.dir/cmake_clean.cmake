file(REMOVE_RECURSE
  "CMakeFiles/test_transportation.dir/test_transportation.cpp.o"
  "CMakeFiles/test_transportation.dir/test_transportation.cpp.o.d"
  "test_transportation"
  "test_transportation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transportation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
