# Empty dependencies file for test_transportation.
# This may be replaced when dependencies are built.
