// Example: geometric neighbor queries between two disjoint convex
// polygons (Application 3), plus the Figure 1.1 chain experiment.
//
//   $ build/examples/convex_polygon_neighbors [--m=40] [--n=50] [--seed=7]
#include <cstdio>

#include "apps/polygon_neighbors.hpp"
#include "geom/geometry.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using apps::NeighborKind;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("m", 40));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 50));
  Rng rng(cli.get_int("seed", 7));

  const auto [P, Q] = geom::random_disjoint_polygons(m, n, rng);
  std::printf("P: %zu vertices, Q: %zu vertices (disjoint convex)\n",
              P.size(), Q.size());

  for (auto kind :
       {NeighborKind::NearestVisible, NeighborKind::NearestInvisible,
        NeighborKind::FarthestVisible, NeighborKind::FarthestInvisible}) {
    pram::Machine mach(pram::Model::CRCW_COMMON);
    std::size_t fast = 0, slow = 0;
    const auto res = apps::neighbors_par(mach, P, Q, kind, &fast, &slow);
    // Print the answer for vertex 0 and summary stats.
    std::size_t answered = 0;
    for (auto j : res.neighbor) answered += (j != apps::NeighborResult::npos);
    std::printf(
        "%-19s vertex 0 -> %s%zd (d=%.2f); answered %zu/%zu, depth %llu "
        "steps, blocks fast/fallback %zu/%zu\n",
        apps::neighbor_kind_name(kind),
        res.neighbor[0] == apps::NeighborResult::npos ? "none " : "q",
        res.neighbor[0] == apps::NeighborResult::npos
            ? -1
            : static_cast<std::ptrdiff_t>(res.neighbor[0]),
        res.neighbor[0] == apps::NeighborResult::npos ? 0.0 : res.distance[0],
        answered, P.size(),
        static_cast<unsigned long long>(mach.meter().time), fast, slow);
  }

  // Figure 1.1: all-farthest neighbors between the chains of ONE convex
  // polygon via the inverse-Monge distance array.
  const auto poly = geom::random_convex_polygon(m + n, rng, {0, 0}, 50);
  const auto chains = geom::split_chains(poly);
  std::printf(
      "\nFigure 1.1 demo: polygon with %zu vertices split into chains of "
      "%zu and %zu; the distance array is inverse-Monge and searchable in "
      "O(m+n) probes (see bench_fig_1_1).\n",
      poly.size(), chains.lower.size(), chains.upper.size());
  return 0;
}
