// Example: weighted edit distance with script recovery (sequential) and
// the parallel grid-DAG / tube-minima algorithm (Application 4).
//
//   $ build/examples/edit_distance [--x=kitten] [--y=sitting]
#include <cstdio>
#include <string>

#include "apps/string_edit.hpp"
#include "support/cli.hpp"

using namespace pmonge;
using namespace pmonge::apps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string x = cli.get("x", "kitten");
  const std::string y = cli.get("y", "sitting");
  EditCosts costs;
  costs.ins = cli.get_int("ins", 1);
  costs.del = cli.get_int("del", 1);
  costs.sub = cli.get_int("sub", 1);

  const auto seq = edit_distance_seq(x, y, costs);
  std::printf("edit(\"%s\" -> \"%s\") = %lld\n", x.c_str(), y.c_str(),
              static_cast<long long>(seq.cost));
  std::printf("script:");
  for (const auto& op : seq.script) {
    switch (op.kind) {
      case EditOp::Keep:
        std::printf(" keep(%c)", x[op.i]);
        break;
      case EditOp::Substitute:
        std::printf(" sub(%c->%c)", x[op.i], y[op.j]);
        break;
      case EditOp::Delete:
        std::printf(" del(%c)", x[op.i]);
        break;
      case EditOp::Insert:
        std::printf(" ins(%c)", y[op.j]);
        break;
    }
  }
  std::printf("\nscript applies cleanly: %s\n",
              apply_script(x, y, seq.script) == y ? "yes" : "NO");

  if (!x.empty()) {
    pram::Machine mach(pram::Model::CREW);
    const auto par = edit_distance_par(mach, x, y, costs);
    std::printf(
        "parallel (grid-DAG + tube minima): cost %lld (%s), charged depth "
        "%llu steps, work %llu\n",
        static_cast<long long>(par), par == seq.cost ? "matches" : "MISMATCH",
        static_cast<unsigned long long>(mach.meter().time),
        static_cast<unsigned long long>(mach.meter().work));
  }
  return 0;
}
