// Quickstart: the library in five minutes.
//
//   1. build a Monge array (or wrap your own cost function),
//   2. validate the property,
//   3. search it sequentially (SMAWK) and in parallel (simulated PRAM),
//   4. read the charged parallel costs off the machine's meter,
//   5. do the same for a staircase-Monge array (the paper's headline).
//
//   $ build/examples/quickstart
#include <cstdio>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "monge/validate.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main() {
  Rng rng(2026);

  // --- 1. A random 512 x 512 Monge array (density construction). ------
  const std::size_t n = 512;
  const auto a = monge::random_monge(n, n, rng);
  std::printf("is_monge(a)           = %s\n",
              monge::is_monge(a) ? "true" : "false");

  // --- 2. Sequential row minima via SMAWK: O(m+n) probes. -------------
  const auto mins = monge::smawk_row_minima(a);
  std::printf("row 0 minimum         = %lld at column %zu\n",
              static_cast<long long>(mins[0].value), mins[0].col);

  // --- 3. The same on a simulated CRCW PRAM. ---------------------------
  pram::Machine crcw(pram::Model::CRCW_COMMON);
  const auto pmins = par::monge_row_minima(crcw, a);
  std::printf("parallel == SMAWK     = %s\n",
              pmins == mins ? "true" : "false");
  std::printf("CRCW charged depth    = %llu steps (lg n = %d)\n",
              static_cast<unsigned long long>(crcw.meter().time),
              ceil_lg(n));
  std::printf("CRCW peak processors  = %llu\n",
              static_cast<unsigned long long>(crcw.meter().peak_processors));

  // --- 4. Brent's theorem: time at the paper's processor count. --------
  pram::Machine crew(pram::Model::CREW);
  par::monge_row_minima(crew, a);
  const auto p = n / static_cast<std::size_t>(ceil_lglg(n));
  std::printf("CREW Brent time @%zu  = %.1f (lg n lglg n = %d)\n", p,
              crew.meter().brent_time(p), ceil_lg(n) * ceil_lglg(n));

  // --- 5. Staircase-Monge row minima (Theorem 2.3). --------------------
  const auto inst = monge::random_staircase_monge(n, n, rng);
  monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(inst.base,
                                                           inst.frontier);
  pram::Machine stair(pram::Model::CRCW_COMMON);
  const auto smins = par::staircase_row_minima(stair, s);
  const auto sbrute = monge::row_minima_brute(s);
  std::printf("staircase parallel ok = %s, depth = %llu steps\n",
              smins == sbrute ? "true" : "false",
              static_cast<unsigned long long>(stair.meter().time));
  return 0;
}
