// Example: driving the NDJSON protocol over a REAL TCP socket with the
// rpc client library (docs/networking.md).  The example embeds the same
// server `pmonge-serve --listen` runs -- service + epoll loop -- on an
// ephemeral loopback port, so it is fully self-contained; point the
// client at any running `pmonge-serve --listen HOST:PORT` instead and
// the exchange is byte-identical:
//
//   ./build/examples/serve_client                  # self-contained
//   ./build/src/pmonge-serve --listen 127.0.0.1:7333 &   # or a real server
//
// Shows the whole protocol surface: registering arrays (random and
// explicit), row searches on Monge / inverse-Monge / staircase operands,
// tube queries on a composite, application queries, `stats` -- plus the
// client-side idioms: synchronous request(), pipeline() for coalescing
// bursts, and shutdown_write() for a clean goodbye.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "serve/service.hpp"

int main() {
  // The server half: exactly what `pmonge-serve --listen 127.0.0.1:0`
  // assembles.  Port 0 binds an ephemeral port we read back.
  pmonge::serve::Service svc;
  pmonge::rpc::ServerOptions sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;
  pmonge::rpc::Server server(svc, sopts);
  server.listen();
  std::thread loop([&server] { server.run(); });
  std::cout << "serving on 127.0.0.1:" << server.port() << "\n\n";

  // The client half: a blocking socket client speaking one JSON object
  // per line.  Against a remote server this is the only half you need.
  // A connect timeout turns an unreachable server into a prompt
  // RpcError instead of an indefinite hang (the default is unlimited).
  pmonge::rpc::Client client;
  client.set_connect_timeout_ms(2000);
  client.connect("127.0.0.1", server.port());

  const std::vector<std::string> requests = {
      // Control plane: register operands.  Responses carry the array id.
      R"({"op":"register_random","id":1,"rows":64,"cols":48,"seed":7})",
      R"({"op":"register_random","id":2,"rows":32,"cols":32,"seed":9,"kind":"inverse_monge"})",
      R"({"op":"register_random","id":3,"rows":24,"cols":24,"seed":11,"kind":"staircase"})",
      R"({"op":"register_dense","id":4,"rows":2,"cols":2,"data":[0,1,2,2],"validate":true})",
      // Composite pair for tube queries: d is 64x48, e must be 48xR.
      R"({"op":"register_random","id":5,"rows":48,"cols":16,"seed":13})",

      // Query plane.  Repeats of one signature hit the result cache; all
      // of these coalesce into few engine runs when pipelined as a burst.
      R"({"op":"rowmin","id":10,"array":0,"row":5})",
      R"({"op":"rowmin","id":11,"array":0,"row":6})",
      R"({"op":"rowmax","id":12,"array":1,"row":3})",
      R"({"op":"staircase_rowmin","id":13,"array":2,"row":2})",
      R"({"op":"tubemax","id":14,"d":0,"e":4,"i":7,"k":3})",
      R"({"op":"string_edit","id":15,"x":"kitten","y":"sitting"})",
      R"({"op":"largest_rect","id":16,"points":[[0,0],[10,10],[3,7],[8,2]]})",
      R"({"op":"empty_rect","id":17,"bound":[0,0,10,10],"points":[[3,4],[7,2],[5,8]]})",
      R"({"op":"polygon_neighbors","id":18,"kind":"nearest_visible",)"
      R"("p":[[0,0],[4,0],[4,4],[0,4]],"q":[[10,1],[13,1],[13,3],[10,3]]})",

      // Deadlines and errors are part of the protocol, not exceptions.
      R"({"op":"rowmin","id":19,"array":77,"row":0})",
      R"({"op":"rowmin","id":20,"array":0,"row":5,"deadline_ms":5000})",

      // Observability.
      R"({"op":"stats","id":21})",
  };

  // pipeline() sends every line before reading any response (so the
  // server's batcher actually coalesces) and collects the responses in
  // order -- the socket equivalent of Service::request_batch.
  const std::vector<std::string> responses = client.pipeline(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::cout << ">> " << requests[i] << "\n<< " << responses[i] << "\n\n";
  }

  // A clean goodbye: half-close the write side, let the server drain
  // and close, then stop the embedded loop.
  client.shutdown_write();
  try {
    client.recv_line();
  } catch (const pmonge::rpc::RpcError&) {
    // EOF: the server closed after draining -- the expected path.
  }
  server.request_stop();
  loop.join();
  return 0;
}
