// Example: a tour of the machine simulators themselves -- submodels,
// charged costs, Brent scheduling, model enforcement, and the
// network-emulation slowdown.  Run it to see what the meters measure.
//
//   $ build/examples/simulator_tour
#include <cstdio>
#include <numeric>
#include <vector>

#include "net/engine.hpp"
#include "net/primitives.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main() {
  Rng rng(1);
  const std::size_t n = 1 << 16;
  std::vector<std::int64_t> xs(n);
  for (auto& x : xs) x = rng.uniform_int(0, 1 << 30);

  std::printf("minimum of %zu values, one primitive per machine model:\n",
              n);
  for (auto model :
       {pram::Model::CREW, pram::Model::CRCW_COMMON,
        pram::Model::CRCW_COMBINING}) {
    pram::Machine m(model);
    const auto r = pram::min_element_par<std::int64_t>(m, xs);
    std::printf("  %-15s depth %2llu steps, work %llu, found x[%zu]\n",
                pram::model_name(model),
                static_cast<unsigned long long>(m.meter().time),
                static_cast<unsigned long long>(m.meter().work), r.index);
  }

  std::printf("\nBrent scheduling of one CREW prefix sum (n = %zu):\n", n);
  {
    pram::Machine m(pram::Model::CREW);
    auto copy = xs;
    pram::inclusive_scan_par<std::int64_t>(m, copy,
                                           std::plus<std::int64_t>{});
    for (std::size_t p : {1u, 64u, 4096u, 65536u}) {
      std::printf("  p = %6zu processors -> time %.0f\n", p,
                  m.meter().brent_time(p));
    }
  }

  std::printf("\nCREW write-conflict detection:\n");
  {
    pram::Machine m(pram::Model::CREW);
    std::vector<int> cells(4, 0);
    std::vector<pram::WriteIntent<int>> bad = {{0, 2, 5}, {1, 2, 6}};
    try {
      pram::scatter_write<int>(m, cells, bad);
      std::printf("  (unexpected: no violation)\n");
    } catch (const ModelViolation& e) {
      std::printf("  caught: %s\n", e.what());
    }
  }

  std::printf("\nthe same normal algorithm on three hosts "
              "(prefix sum + bitonic sort, 2^12 nodes):\n");
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::CubeConnectedCycles,
        net::TopologyKind::ShuffleExchange}) {
    net::Engine e(kind, 12);
    std::vector<std::int64_t> data(e.size());
    std::iota(data.begin(), data.end(), 0);
    net::prefix_scan(e, data, std::plus<std::int64_t>{});
    net::bitonic_sort(e, data, std::less<std::int64_t>{});
    std::printf("  %-23s comm steps %4llu (physical nodes %zu)\n",
                net::topology_name(kind),
                static_cast<unsigned long long>(e.meter().comm_steps),
                e.physical_nodes());
  }
  std::printf("\nThe CCC / shuffle-exchange step counts stay within a "
              "constant factor of the hypercube's -- the emulation "
              "theorem behind the paper's 'hypercube, etc.' rows.\n");
  return 0;
}
