// Example: Monge's 1781 transport problem and Hoffman's 1961 greedy rule
// (the paper's Section 1.1 motivation).
//
// Supplies at sorted depot positions, demands at sorted battery
// positions, cost = squared distance (a Monge array): the greedy
// northwest-corner rule ships optimally, and shipment paths never cross
// -- Monge's original observation about cannonballs.
//
//   $ build/examples/transportation [--m=6] [--n=8] [--seed=5]
#include <cstdio>

#include "apps/transportation.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

using namespace pmonge;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("m", 6));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 8));
  Rng rng(cli.get_int("seed", 5));

  const auto costs = monge::transportation_monge(m, n, rng);
  auto icost = monge::make_func_array<std::int64_t>(
      m, n, [&](std::size_t i, std::size_t j) {
        return static_cast<std::int64_t>(costs(i, j));
      });
  std::printf("cost array is Monge: %s\n",
              monge::is_monge(costs) ? "yes" : "no");

  std::vector<std::int64_t> supply(m), demand(n, 0);
  std::int64_t total = 0;
  for (auto& s : supply) {
    s = rng.uniform_int(1, 9);
    total += s;
  }
  for (std::int64_t t = 0; t < total; ++t) {
    demand[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] += 1;
  }

  pram::Machine mach(pram::Model::CREW);
  const auto plan = apps::transport_greedy_par(mach, icost, supply, demand);
  std::printf("greedy (optimal for Monge costs): total cost %lld, %zu "
              "shipments, charged depth %llu steps\n",
              static_cast<long long>(plan.cost), plan.shipments.size(),
              static_cast<unsigned long long>(mach.meter().time));
  std::printf("shipments (never crossing, a monotone staircase):\n");
  for (const auto& s : plan.shipments) {
    std::printf("  depot %zu -> battery %zu : %lld units\n", s.from, s.to,
                static_cast<long long>(s.amount));
  }
  return 0;
}
