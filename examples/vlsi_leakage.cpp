// Example: Melville's circuit-leakage scenario (Application 2) plus the
// largest empty rectangle (Application 1) on the same die.
//
// Imagine an integrated circuit with n nodes; the pair of nodes whose
// bounding box has the largest area identifies the most detrimental
// leakage path [Mel89].  The largest *empty* rectangle locates the
// biggest free region of the die.
//
//   $ build/examples/vlsi_leakage [--n=2000] [--seed=3]
#include <cstdio>

#include "apps/empty_rect.hpp"
#include "apps/largest_rect.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

using namespace pmonge;
using namespace pmonge::apps;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  Rng rng(cli.get_int("seed", 3));

  // "Circuit nodes" clustered the way placed cells tend to be.
  const auto nodes = clustered_points(n, rng);
  std::printf("die with %zu circuit nodes (clustered placement)\n", n);

  pram::Machine mach(pram::Model::CRCW_COMMON);
  const auto worst = largest_rect_par(mach, nodes);
  std::printf(
      "worst leakage pair: (%lld,%lld) <-> (%lld,%lld), bounding area "
      "%lld\n",
      static_cast<long long>(worst.a.x), static_cast<long long>(worst.a.y),
      static_cast<long long>(worst.b.x), static_cast<long long>(worst.b.y),
      static_cast<long long>(worst.area));
  std::printf("  found at charged depth %llu steps, %llu peak processors\n",
              static_cast<unsigned long long>(mach.meter().time),
              static_cast<unsigned long long>(mach.meter().peak_processors));

  // Largest free region of the die (Application 1).
  const Rect die{0, 0, double{1 << 20}, double{1 << 20}};
  std::vector<DPoint> dnodes(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    dnodes[i] = {static_cast<double>(nodes[i].x),
                 static_cast<double>(nodes[i].y)};
  }
  pram::Machine mach2(pram::Model::CRCW_COMMON);
  const auto free_rect = largest_empty_rect_par(mach2, dnodes, die);
  std::printf(
      "largest empty region: [%.0f, %.0f] x [%.0f, %.0f], %.1f%% of the "
      "die, depth %llu steps\n",
      free_rect.x1, free_rect.x2, free_rect.y1, free_rect.y2,
      100.0 * free_rect.area() / die.area(),
      static_cast<unsigned long long>(mach2.meter().time));
  return 0;
}
