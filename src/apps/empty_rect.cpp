#include "apps/empty_rect.hpp"

#include <algorithm>
#include <cmath>

#include "pram/ansv.hpp"
#include "pram/primitives.hpp"
#include "support/check.hpp"
#include "support/series.hpp"

namespace pmonge::apps {

namespace {

Rect better(const Rect& a, const Rect& b) {
  return a.area() >= b.area() ? a : b;
}

}  // namespace

bool rect_is_empty(const Rect& r, const std::vector<DPoint>& pts,
                   const Rect& bound) {
  if (r.x1 < bound.x1 - 1e-9 || r.x2 > bound.x2 + 1e-9 ||
      r.y1 < bound.y1 - 1e-9 || r.y2 > bound.y2 + 1e-9) {
    return false;
  }
  for (const auto& p : pts) {
    if (p.x > r.x1 + 1e-12 && p.x < r.x2 - 1e-12 && p.y > r.y1 + 1e-12 &&
        p.y < r.y2 - 1e-12) {
      return false;
    }
  }
  return true;
}

Rect largest_empty_rect_brute(const std::vector<DPoint>& pts,
                              const Rect& bound) {
  std::vector<double> xs = {bound.x1, bound.x2};
  for (const auto& p : pts) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  Rect best{bound.x1, bound.y1, bound.x1, bound.y1};  // zero area
  for (std::size_t a = 0; a < xs.size(); ++a) {
    for (std::size_t b = a + 1; b < xs.size(); ++b) {
      const double x1 = xs[a], x2 = xs[b];
      std::vector<double> ys = {bound.y1, bound.y2};
      for (const auto& p : pts) {
        if (p.x > x1 && p.x < x2) ys.push_back(p.y);
      }
      std::sort(ys.begin(), ys.end());
      for (std::size_t k = 0; k + 1 < ys.size(); ++k) {
        const Rect cand{x1, ys[k], x2, ys[k + 1]};
        if (cand.area() > best.area()) best = cand;
      }
    }
  }
  return best;
}

namespace {

struct Window {
  double b, t, reach;
};

/// Windows of one side: maximal y-gaps of {pts} as the edge moves away
/// from the dividing line.  `toward_wall` is the slab wall the reach
/// defaults to; `left_side` picks which x-order kills windows.  Built
/// from the ANSV of (-x) in y-order: the enclosing window of point q is
/// delimited by its nearest y-neighbors with larger x.
std::vector<Window> side_windows(pram::Machine& mach,
                                 const std::vector<DPoint>& side, double ylo,
                                 double yhi, double wall, bool left_side) {
  std::vector<DPoint> s = side;
  std::sort(s.begin(), s.end(),
            [](const DPoint& a, const DPoint& b) { return a.y < b.y; });
  const std::size_t k = s.size();
  std::vector<Window> out;
  if (k == 0) {
    out.push_back({ylo, yhi, wall});
    return out;
  }
  // ANSV on keys -x (left side: larger x is "closer to the line"; right
  // side symmetric) -- quantized through a rank so the int64 ANSV
  // primitive applies exactly.
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return left_side ? s[a].x < s[b].x : s[a].x > s[b].x;
  });
  std::vector<std::int64_t> key(k);  // smaller key = closer to the line
  for (std::size_t r = 0; r < k; ++r) {
    key[order[k - 1 - r]] = static_cast<std::int64_t>(r);
  }
  const auto nsv = pram::ansv(mach, key);
  // Point q's enclosing window: delimited by nearest y-neighbors with
  // smaller key (larger |x|-closeness), reach = q's own x.
  for (std::size_t q = 0; q < k; ++q) {
    const double b = nsv.left[q] == pram::AnsvResult::kNone
                         ? ylo
                         : s[nsv.left[q]].y;
    const double t = nsv.right[q] == pram::AnsvResult::kNone
                         ? yhi
                         : s[nsv.right[q]].y;
    out.push_back({b, t, s[q].x});
  }
  // Still-alive windows: the gaps of the full point set, reaching the
  // wall.
  out.push_back({ylo, s[0].y, wall});
  for (std::size_t q = 0; q + 1 < k; ++q) {
    out.push_back({s[q].y, s[q + 1].y, wall});
  }
  out.push_back({s[k - 1].y, yhi, wall});
  mach.meter().charge(1, k + 1);
  return out;
}

/// Best crossing rectangle: doubly-log argmax over all window pairs.
Rect best_crossing(pram::Machine& mach, const std::vector<DPoint>& L,
                   const std::vector<DPoint>& R, const Rect& slab) {
  const auto wl = side_windows(mach, L, slab.y1, slab.y2, slab.x1, true);
  const auto wr = side_windows(mach, R, slab.y1, slab.y2, slab.x2, false);
  const std::size_t total = wl.size() * wr.size();
  auto value = [&](std::size_t t) {
    const Window& a = wl[t / wr.size()];
    const Window& c = wr[t % wr.size()];
    const double h = std::min(a.t, c.t) - std::max(a.b, c.b);
    const double w = c.reach - a.reach;
    return (h > 0 && w > 0) ? h * w : 0.0;
  };
  const auto best = pram::argopt<double>(
      mach, total, value, [](double x, double y) { return y < x; });
  const Window& a = wl[best.index / wr.size()];
  const Window& c = wr[best.index % wr.size()];
  if (best.value <= 0) return {slab.x1, slab.y1, slab.x1, slab.y1};
  return {a.reach, std::max(a.b, c.b), c.reach, std::min(a.t, c.t)};
}

Rect rec(pram::Machine& mach, std::vector<DPoint>& pts, std::size_t lo,
         std::size_t hi, const Rect& slab) {
  // pts[lo, hi) sorted by x, all strictly inside the slab's x-range.
  if (hi - lo <= 2) {
    std::vector<DPoint> sub(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                            pts.begin() + static_cast<std::ptrdiff_t>(hi));
    mach.meter().charge(2, hi - lo + 1);
    return largest_empty_rect_brute(sub, slab);
  }
  const std::size_t mid = (lo + hi) / 2;
  const double cut = pts[mid].x;
  // Split strictly so points on the cut line belong to one side (the cut
  // line itself may pass through a point; the crossing case's reach
  // formula treats boundary points as supports).
  std::vector<DPoint> L(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                        pts.begin() + static_cast<std::ptrdiff_t>(mid));
  std::vector<DPoint> R(pts.begin() + static_cast<std::ptrdiff_t>(mid),
                        pts.begin() + static_cast<std::ptrdiff_t>(hi));
  Rect cross = best_crossing(mach, L, R, slab);
  Rect left{slab.x1, slab.y1, cut, slab.y2};
  Rect right{cut, slab.y1, slab.x2, slab.y2};
  Rect bl, br;
  mach.parallel_branches(2, [&](std::size_t h, pram::Machine& sub) {
    if (h == 0) {
      auto cp = L;
      bl = rec(sub, cp, 0, cp.size(), left);
    } else {
      auto cp = R;
      br = rec(sub, cp, 0, cp.size(), right);
    }
  });
  return better(cross, better(bl, br));
}

}  // namespace

Rect largest_empty_rect_par(pram::Machine& mach, std::vector<DPoint> pts,
                            const Rect& bound) {
  PMONGE_REQUIRE(bound.x1 < bound.x2 && bound.y1 < bound.y2,
                 "degenerate bounding rectangle");
  pram::merge_sort_par(mach, pts, [](const DPoint& a, const DPoint& b) {
    return a.x < b.x;
  });
  return rec(mach, pts, 0, pts.size(), bound);
}

std::vector<DPoint> random_dpoints(std::size_t n, Rng& rng,
                                   const Rect& bound) {
  std::vector<DPoint> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(bound.x1, bound.x2);
    p.y = rng.uniform(bound.y1, bound.y2);
  }
  return pts;
}

std::vector<DPoint> diagonal_dpoints(std::size_t n, const Rect& bound) {
  std::vector<DPoint> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    pts[i] = {bound.x1 + t * (bound.x2 - bound.x1),
              bound.y1 + t * (bound.y2 - bound.y1)};
  }
  return pts;
}

}  // namespace pmonge::apps
