// Application 1 (Section 1.3): the largest-area empty rectangle -- given
// a bounding rectangle containing n points, find the largest axis-
// parallel rectangle inside it whose interior contains no point
// (Aggarwal-Suri [AS87]; parallel bounds compared against [AP89c]).
//
// Structure: divide and conquer on the median x.  A maximal empty
// rectangle either lies in one half-slab (recursion) or crosses the
// dividing line.  For the crossing case each side's points induce a
// laminar family of *windows*: maximal y-gaps of the points with x
// beyond a moving left/right edge.  Window w = (b, t, reach), where
// reach is the x of the point that splits w (or the slab wall).  The
// enclosing window of each point -- hence the whole family -- is exactly
// an All-Nearest-Smaller-Values computation on (-x) in y-order, i.e. the
// paper's own ANSV primitive (Lemma 2.2's allocation tool) reused as a
// geometric engine.  The crossing optimum is
//     max over overlapping pairs (wl, wr) of
//         (reach_r - reach_l) * (min(t_l, t_r) - max(b_l, b_r)),
// and every pair's value is achievable, so the pair search is exact.
//
// Charged costs: every divide level spends two ANSV calls (O(lg n)) plus
// one doubly-logarithmic pair argmax; with O(lg n) levels the measured
// depth matches the paper's O(lg^2 n) CRCW bound.  The pair search is
// work-quadratic in the crossing size (the extended abstract defers the
// work-efficient staircase-Monge pairing of [AS87] to the unpublished
// final version); EXPERIMENTS.md reports both time and processor-time.
#pragma once

#include <cstddef>
#include <vector>

#include "pram/machine.hpp"
#include "support/rng.hpp"

namespace pmonge::apps {

struct DPoint {
  double x = 0, y = 0;
};

struct Rect {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  double area() const { return (x2 - x1) * (y2 - y1); }
};

/// Exhaustive oracle: every pair of candidate x-boundaries (point
/// abscissae and walls) against the y-gaps of the points inside the
/// strip.  O(n^3)-ish; tests only.
Rect largest_empty_rect_brute(const std::vector<DPoint>& pts,
                              const Rect& bound);

/// Parallel divide and conquer with ANSV-based crossing windows; exact.
Rect largest_empty_rect_par(pram::Machine& mach, std::vector<DPoint> pts,
                            const Rect& bound);

/// Check that `r` is empty (no point strictly inside) and inside bound.
bool rect_is_empty(const Rect& r, const std::vector<DPoint>& pts,
                   const Rect& bound);

/// Generators: uniform, clustered and a "fat diagonal" adversarial set.
std::vector<DPoint> random_dpoints(std::size_t n, Rng& rng,
                                   const Rect& bound);
std::vector<DPoint> diagonal_dpoints(std::size_t n, const Rect& bound);

}  // namespace pmonge::apps
