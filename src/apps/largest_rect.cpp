#include "apps/largest_rect.hpp"

#include <algorithm>

#include "monge/array.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/primitives.hpp"
#include "support/check.hpp"

namespace pmonge::apps {

RectPair largest_rect_brute(const std::vector<IPoint>& pts) {
  PMONGE_REQUIRE(pts.size() >= 2, "need at least two points");
  RectPair best{-1, {}, {}};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const std::int64_t area = std::abs(pts[i].x - pts[j].x) *
                                std::abs(pts[i].y - pts[j].y);
      if (area > best.area) best = {area, pts[i], pts[j]};
    }
  }
  return best;
}

Staircases dominance_staircases(const std::vector<IPoint>& pts) {
  std::vector<IPoint> s = pts;
  std::sort(s.begin(), s.end(), [](const IPoint& a, const IPoint& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  Staircases out;
  // Minimal: sweep left to right keeping strictly decreasing y.
  std::int64_t miny = 0;
  bool first = true;
  for (const auto& p : s) {
    if (first || p.y < miny) {
      out.minimal.push_back(p);
      miny = p.y;
      first = false;
    }
  }
  // Maximal: sweep right to left keeping y above the running max.
  std::int64_t maxy = 0;
  first = true;
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (first || it->y > maxy) {
      out.maximal.push_back(*it);
      maxy = it->y;
      first = false;
    }
  }
  std::reverse(out.maximal.begin(), out.maximal.end());
  return out;
}

namespace {

/// Best NE/SW-diagonal pair via one inverse-Monge row-maxima call.
RectPair best_one_orientation(pram::Machine& mach,
                              const std::vector<IPoint>& pts) {
  // Charged preprocessing: radix sort on bounded integer coordinates
  // (O(lg n) depth) plus two prefix-sweep staircase extractions.
  {
    std::vector<IPoint> tmp = pts;
    pram::radix_sort_par(
        mach, tmp, [](const IPoint& p) { return p.x; }, 21);
  }
  const auto lgn = static_cast<std::uint64_t>(
      std::max(1, ceil_lg(pts.size() + 1)));
  mach.meter().charge(4 * lgn, pts.size(), 8 * pts.size());  // sweeps

  const Staircases st = dominance_staircases(pts);
  const auto& lo = st.minimal;
  const auto& hi = st.maximal;
  // Signed area over (minimal x maximal) is inverse-Monge; negatives are
  // sign-inconsistent pairs and never beat the true maximum (>= 0).
  auto area = monge::make_func_array<std::int64_t>(
      lo.size(), hi.size(), [&](std::size_t i, std::size_t j) {
        return (hi[j].x - lo[i].x) * (hi[j].y - lo[i].y);
      });
  auto rows = par::inverse_monge_row_maxima(mach, area);
  auto best = pram::argopt<std::int64_t>(
      mach, rows.size(), [&](std::size_t i) { return rows[i].value; },
      [](std::int64_t a, std::int64_t b) { return b < a; });
  const std::size_t i = best.index;
  const std::size_t j = rows[i].col;
  return {std::max<std::int64_t>(best.value, 0), lo[i], hi[j]};
}

}  // namespace

RectPair largest_rect_par(pram::Machine& mach, std::vector<IPoint> pts) {
  PMONGE_REQUIRE(pts.size() >= 2, "need at least two points");
  RectPair ne = best_one_orientation(mach, pts);
  for (auto& p : pts) p.y = -p.y;
  RectPair nw = best_one_orientation(mach, pts);
  nw.a.y = -nw.a.y;
  nw.b.y = -nw.b.y;
  mach.meter().charge(1, 1);
  RectPair best = ne.area >= nw.area ? ne : nw;
  if (best.area == 0) {
    // Degenerate input (all pairs collinear in x or y); any pair works.
    best = {0, pts[0], pts[1]};
    best.a.y = -best.a.y;
    best.b.y = -best.b.y;
  }
  return best;
}

std::vector<RectPair> largest_rect_par_batch(
    pram::Machine& mach, const std::vector<std::vector<IPoint>>& instances) {
  for (const auto& pts : instances) {
    PMONGE_REQUIRE(pts.size() >= 2, "need at least two points");
  }
  std::vector<RectPair> out(instances.size());
  mach.parallel_branches(instances.size(),
                         [&](std::size_t i, pram::Machine& sub) {
                           out[i] = largest_rect_par(sub, instances[i]);
                         });
  return out;
}

std::vector<IPoint> random_points(std::size_t n, Rng& rng,
                                  std::int64_t coord_max) {
  std::vector<IPoint> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform_int(0, coord_max);
    p.y = rng.uniform_int(0, coord_max);
  }
  return pts;
}

std::vector<IPoint> clustered_points(std::size_t n, Rng& rng,
                                     std::size_t clusters) {
  std::vector<IPoint> centers(clusters);
  for (auto& c : centers) {
    c.x = rng.uniform_int(0, 1 << 20);
    c.y = rng.uniform_int(0, 1 << 20);
  }
  std::vector<IPoint> pts(n);
  for (auto& p : pts) {
    const auto& c =
        centers[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(clusters) - 1))];
    p.x = c.x + rng.uniform_int(-2000, 2000);
    p.y = c.y + rng.uniform_int(-2000, 2000);
  }
  return pts;
}

std::vector<IPoint> antidiagonal_points(std::size_t n) {
  // Every point is on both dominance staircases: the adversarial case for
  // the staircase pruning.
  std::vector<IPoint> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {static_cast<std::int64_t>(i * 7),
              static_cast<std::int64_t>((n - i) * 11)};
  }
  return pts;
}

}  // namespace pmonge::apps
