// Application 2 (Section 1.3): the largest-area (not necessarily empty)
// rectangle having two of the n input points as opposite corners, axis
// parallel -- Melville's integrated-circuit leakage model [Mel89].
//
// Reduction (the extended abstract omits it; DESIGN.md documents ours):
// for the NE/SW diagonal orientation the lower-left corner can be
// restricted to the *minimal* dominance staircase (no other point weakly
// below-left) and the upper-right corner to the *maximal* staircase; both
// staircases, sorted by x, have non-increasing y, and the signed area
// a[i][j] = (x_j - x_i)(y_j - y_i) over (minimal x maximal) is
// inverse-Monge on the whole index grid -- sign-inconsistent entries are
// negative and never win the maximum, so no mask is needed.  The NW/SE
// orientation is the same problem with y negated.  One inverse-Monge
// row-maxima call per orientation gives a Theta(lg n)-depth, O(n)-
// processor CRCW algorithm after an O(lg n) radix sort of the (bounded
// integer) coordinates, matching the paper's optimal bound.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/machine.hpp"
#include "support/rng.hpp"

namespace pmonge::apps {

struct IPoint {
  std::int64_t x = 0, y = 0;

  friend bool operator==(const IPoint&, const IPoint&) = default;
};

struct RectPair {
  std::int64_t area = 0;
  IPoint a, b;  // the two opposite corners
};

/// O(n^2) oracle.
RectPair largest_rect_brute(const std::vector<IPoint>& pts);

/// Parallel staircase + inverse-Monge row-maxima algorithm; meter carries
/// the charged costs.  Requires n >= 2.
RectPair largest_rect_par(pram::Machine& mach, std::vector<IPoint> pts);

/// Batched entry (the serve layer's coalescing hook): solve every point
/// set as one parallel_branches fan-out.  Results align with `instances`;
/// each equals largest_rect_par on that instance alone.  Every instance
/// needs >= 2 points.
std::vector<RectPair> largest_rect_par_batch(
    pram::Machine& mach, const std::vector<std::vector<IPoint>>& instances);

/// The two dominance staircases (exposed for tests): minimal points (no
/// other point weakly below-left) and maximal points, each sorted by x
/// ascending (hence y non-increasing).
struct Staircases {
  std::vector<IPoint> minimal;
  std::vector<IPoint> maximal;
};
Staircases dominance_staircases(const std::vector<IPoint>& pts);

/// Point-set generators for the benches: uniform grid, clustered, and an
/// adversarial anti-diagonal (every point on both staircases).
std::vector<IPoint> random_points(std::size_t n, Rng& rng,
                                  std::int64_t coord_max = (1 << 20));
std::vector<IPoint> clustered_points(std::size_t n, Rng& rng,
                                     std::size_t clusters = 8);
std::vector<IPoint> antidiagonal_points(std::size_t n);

}  // namespace pmonge::apps
