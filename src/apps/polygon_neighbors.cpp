#include "apps/polygon_neighbors.hpp"

#include <algorithm>
#include <cmath>

#include "monge/array.hpp"
#include "par/interval_mask.hpp"
#include "pram/primitives.hpp"
#include "support/check.hpp"
#include "support/series.hpp"

namespace pmonge::apps {

const char* neighbor_kind_name(NeighborKind k) {
  switch (k) {
    case NeighborKind::NearestVisible:
      return "nearest-visible";
    case NeighborKind::NearestInvisible:
      return "nearest-invisible";
    case NeighborKind::FarthestVisible:
      return "farthest-visible";
    case NeighborKind::FarthestInvisible:
      return "farthest-invisible";
  }
  return "?";
}

namespace {

bool wants_visible(NeighborKind k) {
  return k == NeighborKind::NearestVisible ||
         k == NeighborKind::FarthestVisible;
}
bool wants_nearest(NeighborKind k) {
  return k == NeighborKind::NearestVisible ||
         k == NeighborKind::NearestInvisible;
}

/// Vertex-index chains of a convex CCW polygon, split at the bottom and
/// top vertices; both returned in ascending-y traversal order.
struct IndexChains {
  std::vector<std::size_t> right;  // bottom -> top, CCW walk
  std::vector<std::size_t> left;   // bottom -> top, CW walk
};

IndexChains y_chains(const geom::ConvexPolygon& poly) {
  const std::size_t n = poly.size();
  std::size_t bot = 0, top = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (poly[i].y < poly[bot].y ||
        (poly[i].y == poly[bot].y && poly[i].x < poly[bot].x)) {
      bot = i;
    }
    if (poly[i].y > poly[top].y ||
        (poly[i].y == poly[top].y && poly[i].x > poly[top].x)) {
      top = i;
    }
  }
  IndexChains out;
  for (std::size_t i = bot;; i = poly.next(i)) {  // CCW: right side going up
    out.right.push_back(i);
    if (i == top) break;
  }
  for (std::size_t i = bot;; i = poly.prev(i)) {  // CW: left side going up
    out.left.push_back(i);
    if (i == top) break;
  }
  return out;
}

}  // namespace

NeighborResult neighbors_brute(const geom::ConvexPolygon& P,
                               const geom::ConvexPolygon& Q,
                               NeighborKind kind) {
  const std::size_t m = P.size(), n = Q.size();
  NeighborResult res;
  res.neighbor.assign(m, NeighborResult::npos);
  res.distance.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (geom::visible_brute(P, i, Q, j) != wants_visible(kind)) continue;
      const double d = geom::dist(P[i], Q[j]);
      const bool better =
          res.neighbor[i] == NeighborResult::npos ||
          (wants_nearest(kind) ? d < res.distance[i] : d > res.distance[i]);
      if (better) {
        res.neighbor[i] = j;
        res.distance[i] = d;
      }
    }
  }
  return res;
}

NeighborResult neighbors_par(pram::Machine& mach,
                             const geom::ConvexPolygon& P,
                             const geom::ConvexPolygon& Q, NeighborKind kind,
                             std::size_t* fast_blocks,
                             std::size_t* slow_blocks) {
  const std::size_t m = P.size(), n = Q.size();
  const bool vis = wants_visible(kind);
  const bool nearest = wants_nearest(kind);
  if (fast_blocks) *fast_blocks = 0;
  if (slow_blocks) *slow_blocks = 0;

  // Target sets per P-vertex.  A real PRAM derives the arc boundaries
  // from O(lg n) tangent binary searches per vertex (tangent points move
  // monotonically); we charge that and materialize the sets with the
  // O(1) wedge predicate.
  mach.meter().charge(2 * static_cast<std::uint64_t>(
                              std::max(1, ceil_lg(n + 1))),
                      m, 2 * m * static_cast<std::uint64_t>(
                                     std::max(1, ceil_lg(n + 1))));
  std::vector<std::vector<char>> target(m, std::vector<char>(n, 0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      target[i][j] = (geom::visible(P, i, Q, j) == vis) ? 1 : 0;
    }
  }

  const IndexChains pc = y_chains(P);
  const IndexChains qc = y_chains(Q);

  struct Cand {
    double d;
    std::size_t j;
  };
  std::vector<std::vector<Cand>> cand(m);

  auto run_block = [&](const std::vector<std::size_t>& prows,
                       const std::vector<std::size_t>& qcols_asc) {
    // Rows: P chain ascending y.  Cols: Q chain descending y (facing
    // orientation -> inverse-Monge distance block).
    std::vector<std::size_t> qcols(qcols_asc.rbegin(), qcols_asc.rend());
    const std::size_t bm = prows.size(), bn = qcols.size();
    // Per-row target runs within this block's columns.  Visible sets are
    // arcs, so a block sees either one contiguous run or a wrapped
    // prefix+suffix pair; each family goes through its own interval-
    // masked search.  Anything messier falls back to a direct scan.
    std::vector<std::size_t> loA(bm), hiA(bm), loB(bm), hiB(bm);
    bool intervals_ok = true;
    for (std::size_t r = 0; r < bm && intervals_ok; ++r) {
      const auto& trow = target[prows[r]];
      std::vector<std::pair<std::size_t, std::size_t>> runs;
      std::size_t c = 0;
      while (c < bn) {
        if (!trow[qcols[c]]) {
          ++c;
          continue;
        }
        std::size_t e = c;
        while (e < bn && trow[qcols[e]]) ++e;
        runs.emplace_back(c, e);
        c = e;
      }
      auto park = [&](std::vector<std::size_t>& lo,
                      std::vector<std::size_t>& hi) {
        lo[r] = hi[r] = (r ? hi[r - 1] : 0);
      };
      if (runs.empty()) {
        park(loA, hiA);
        park(loB, hiB);
      } else if (runs.size() == 1) {
        // A single run: mask A holds it unless it is a suffix continuing
        // mask B's wrapped family (keeps both endpoint series monotone).
        const bool suffix_like = runs[0].second == bn && runs[0].first > 0 &&
                                 r > 0 && loB[r - 1] > 0;
        if (suffix_like) {
          park(loA, hiA);
          loB[r] = runs[0].first;
          hiB[r] = runs[0].second;
        } else {
          loA[r] = runs[0].first;
          hiA[r] = runs[0].second;
          park(loB, hiB);
        }
      } else if (runs.size() == 2 && runs[0].first == 0 &&
                 runs[1].second == bn) {
        loA[r] = 0;
        hiA[r] = runs[0].second;
        loB[r] = runs[1].first;
        hiB[r] = bn;
      } else {
        intervals_ok = false;
      }
    }
    auto eval = [&](std::size_t r, std::size_t c) {
      return geom::dist(P[prows[r]], Q[qcols[c]]);
    };
    // Certify the block's inverse-Monge structure before using the array
    // searcher (facing chains with extreme y-ranges can violate the
    // quadrangle inequality).  The adjacent-quadruple check is one
    // synchronous step with bm*bn processors on a CRCW machine.
    mach.meter().charge(1, bm * bn);
    bool block_inverse_monge = true;
    for (std::size_t r = 0; r + 1 < bm && block_inverse_monge; ++r) {
      for (std::size_t c = 0; c + 1 < bn; ++c) {
        if (eval(r, c) + eval(r + 1, c + 1) <
            eval(r, c + 1) + eval(r + 1, c) - 1e-9) {
          block_inverse_monge = false;
          break;
        }
      }
    }
    // Each mask family's endpoints move monotonically along the chain --
    // non-decreasing or non-increasing depending on orientation.  The
    // non-decreasing case searches the inverse-Monge block directly; the
    // non-increasing case reverses the row order, which turns the block
    // Monge and the endpoints non-decreasing.
    auto solve_mask = [&](const std::vector<std::size_t>& lo,
                          const std::vector<std::size_t>& hi) {
      bool nondecr = true, nonincr = true;
      for (std::size_t r = 1; r < bm; ++r) {
        if (lo[r] < lo[r - 1] || hi[r] < hi[r - 1]) nondecr = false;
        if (lo[r] > lo[r - 1] || hi[r] > hi[r - 1]) nonincr = false;
      }
      std::vector<par::RowOpt<double>> res;
      // The distance block is inverse-Monge when the chains face each
      // other across the separating strip with overlapping y-ranges; for
      // extreme configurations the quadrangle inequality can fail, in
      // which case the searcher's monotonicity guard throws and this
      // block takes the exact fallback scan instead.
      try {
        if (nondecr) {
          res = par::interval_masked_row_opt<double>(
              mach, bm, bn, lo, hi, eval,
              nearest ? par::MaskedProblem::InverseMongeMinima
                      : par::MaskedProblem::InverseMongeMaxima);
        } else if (nonincr) {
          std::vector<std::size_t> rlo(lo.rbegin(), lo.rend());
          std::vector<std::size_t> rhi(hi.rbegin(), hi.rend());
          auto reval = [&](std::size_t r, std::size_t c) {
            return eval(bm - 1 - r, c);
          };
          auto rres = par::interval_masked_row_opt<double>(
              mach, bm, bn, rlo, rhi, reval,
              nearest ? par::MaskedProblem::MongeMinima
                      : par::MaskedProblem::MongeMaxima);
          res.assign(rres.rbegin(), rres.rend());
        } else {
          return false;
        }
      } catch (const std::invalid_argument&) {
        return false;  // structure violation detected -> fallback
      }
      mach.meter().charge(1, bm);
      for (std::size_t r = 0; r < bm; ++r) {
        if (res[r].col != monge::kNoCol) {
          cand[prows[r]].push_back({res[r].value, qcols[res[r].col]});
        }
      }
      return true;
    };
    // Tentatively solve both families; roll back to the fallback scan if
    // either fails (candidates appended by a successful first family are
    // harmless: they are true distances of kind-satisfying vertices).
    if (intervals_ok && block_inverse_monge && solve_mask(loA, hiA) &&
        solve_mask(loB, hiB)) {
      if (fast_blocks) ++*fast_blocks;
    } else {
      // Degenerate mask: metered direct scan of the block.
      if (slow_blocks) ++*slow_blocks;
      mach.parallel_branches(bm, [&](std::size_t r, pram::Machine& sub) {
        const auto& trow = target[prows[r]];
        auto res = pram::argopt<double>(
            sub, bn,
            [&](std::size_t c) {
              if (!trow[qcols[c]]) {
                return nearest ? monge::inf<double>() : -monge::inf<double>();
              }
              return eval(r, c);
            },
            [&](double a, double b) { return nearest ? a < b : b < a; });
        if (!monge::is_infinite(std::abs(res.value))) {
          cand[prows[r]].push_back({res.value, qcols[res.index]});
        }
      });
    }
  };

  for (const auto* pchain : {&pc.right, &pc.left}) {
    for (const auto* qchain : {&qc.right, &qc.left}) {
      run_block(*pchain, *qchain);
    }
  }

  NeighborResult res;
  res.neighbor.assign(m, NeighborResult::npos);
  res.distance.assign(m, 0.0);
  mach.parallel_branches(m, [&](std::size_t i, pram::Machine& sub) {
    if (cand[i].empty()) return;
    auto best = pram::argopt<double>(
        sub, cand[i].size(), [&](std::size_t t) { return cand[i][t].d; },
        [&](double a, double b) { return nearest ? a < b : b < a; });
    res.neighbor[i] = cand[i][best.index].j;
    res.distance[i] = best.value;
  });
  return res;
}

}  // namespace pmonge::apps
