// Application 3 (Section 1.3): nearest-visible, nearest-invisible,
// farthest-visible and farthest-invisible neighbors between two disjoint
// convex polygons P (m vertices) and Q (n vertices).
//
// Structure: split each polygon into its two y-monotone chains and
// search each (P-chain, Q-chain) block with the interval-masked
// staircase machinery of Theorem 2.3 (par/interval_mask.hpp), masking
// each row to its visible / invisible arc (tangent monotonicity makes
// the per-row arcs interval-shaped with monotone endpoints).
//
// Caveat, discovered empirically and handled explicitly: unlike Figure
// 1.1's two chains of a *single* convex cycle -- whose vertices are in
// convex position, forcing the quadrangle inequality -- the distance
// array between two *separate* convex polygons is NOT globally
// inverse-Monge, and chain blocks can violate the property (the paper
// defers its decomposition details to the unpublished final version).
// Every block is therefore *certified* at run time (one adjacent-
// quadruple validation step, plus the searcher's own monotone-bracket
// guard); blocks that fail take an exact metered fallback scan.  The
// answer is exact on every input; `fast_blocks` / `slow_blocks` report
// which route each block took.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geometry.hpp"
#include "pram/machine.hpp"

namespace pmonge::apps {

enum class NeighborKind {
  NearestVisible,
  NearestInvisible,
  FarthestVisible,
  FarthestInvisible,
};

const char* neighbor_kind_name(NeighborKind k);

struct NeighborResult {
  // For each vertex i of P: the best vertex index of Q, or npos when no
  // vertex qualifies (e.g. every vertex visible => no invisible
  // neighbor), and the corresponding distance.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> neighbor;
  std::vector<double> distance;
};

/// O(mn) oracle using the brute-force visibility predicate.
NeighborResult neighbors_brute(const geom::ConvexPolygon& P,
                               const geom::ConvexPolygon& Q,
                               NeighborKind kind);

/// Parallel Monge-machinery solver; exact.  `fast_blocks`/`slow_blocks`
/// (optional out-params) count how many chain blocks took the
/// interval-masked path vs the fallback scan.
NeighborResult neighbors_par(pram::Machine& mach,
                             const geom::ConvexPolygon& P,
                             const geom::ConvexPolygon& Q, NeighborKind kind,
                             std::size_t* fast_blocks = nullptr,
                             std::size_t* slow_blocks = nullptr);

}  // namespace pmonge::apps
