#include "apps/string_edit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "monge/composite.hpp"
#include "par/hypercube_search.hpp"
#include "par/tube_maxima.hpp"
#include "pram/primitives.hpp"
#include "support/check.hpp"
#include "support/series.hpp"

namespace pmonge::apps {

std::int64_t EditCosts::insert_cost(char c) const {
  if (!ins_table.empty()) return ins_table[static_cast<unsigned char>(c)];
  return ins;
}

std::int64_t EditCosts::delete_cost(char c) const {
  if (!del_table.empty()) return del_table[static_cast<unsigned char>(c)];
  return del;
}

std::int64_t EditCosts::substitute_cost(char a, char b) const {
  return a == b ? 0 : sub;
}

EditResult edit_distance_seq(const std::string& x, const std::string& y,
                             const EditCosts& costs) {
  const std::size_t m = x.size(), n = y.size();
  monge::DenseArray<std::int64_t> dp(m + 1, n + 1, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    dp.at(0, j) = dp(0, j - 1) + costs.insert_cost(y[j - 1]);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    dp.at(i, 0) = dp(i - 1, 0) + costs.delete_cost(x[i - 1]);
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int64_t del = dp(i - 1, j) + costs.delete_cost(x[i - 1]);
      const std::int64_t ins = dp(i, j - 1) + costs.insert_cost(y[j - 1]);
      const std::int64_t sub =
          dp(i - 1, j - 1) + costs.substitute_cost(x[i - 1], y[j - 1]);
      dp.at(i, j) = std::min({del, ins, sub});
    }
  }
  EditResult res;
  res.cost = dp(m, n);
  // Script recovery by backtracking.
  std::size_t i = m, j = n;
  std::vector<EditOp> rev;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp(i, j) == dp(i - 1, j - 1) +
                        costs.substitute_cost(x[i - 1], y[j - 1])) {
      rev.push_back({x[i - 1] == y[j - 1] ? EditOp::Keep : EditOp::Substitute,
                     i - 1, j - 1});
      --i;
      --j;
    } else if (i > 0 &&
               dp(i, j) == dp(i - 1, j) + costs.delete_cost(x[i - 1])) {
      rev.push_back({EditOp::Delete, i - 1, 0});
      --i;
    } else {
      PMONGE_ASSERT(j > 0 && dp(i, j) == dp(i, j - 1) +
                                             costs.insert_cost(y[j - 1]),
                    "backtrack failed");
      rev.push_back({EditOp::Insert, i, j - 1});
      --j;
    }
  }
  res.script.assign(rev.rbegin(), rev.rend());
  return res;
}

std::int64_t evaluate_script(const std::string& x, const std::string& y,
                             const std::vector<EditOp>& script,
                             const EditCosts& costs) {
  std::int64_t total = 0;
  for (const auto& op : script) {
    switch (op.kind) {
      case EditOp::Keep:
        break;
      case EditOp::Substitute:
        total += costs.substitute_cost(x[op.i], y[op.j]);
        break;
      case EditOp::Delete:
        total += costs.delete_cost(x[op.i]);
        break;
      case EditOp::Insert:
        total += costs.insert_cost(y[op.j]);
        break;
    }
  }
  return total;
}

std::string apply_script(const std::string& x, const std::string& y,
                         const std::vector<EditOp>& script) {
  std::string out;
  std::size_t xi = 0;
  for (const auto& op : script) {
    switch (op.kind) {
      case EditOp::Keep:
        PMONGE_REQUIRE(op.i == xi, "script out of order");
        out.push_back(x[op.i]);
        ++xi;
        break;
      case EditOp::Substitute:
        PMONGE_REQUIRE(op.i == xi, "script out of order");
        out.push_back(y[op.j]);
        ++xi;
        break;
      case EditOp::Delete:
        PMONGE_REQUIRE(op.i == xi, "script out of order");
        ++xi;
        break;
      case EditOp::Insert:
        out.push_back(y[op.j]);
        break;
    }
  }
  PMONGE_REQUIRE(xi == x.size(), "script does not consume x");
  return out;
}

namespace {

using Dist = monge::DenseArray<std::int64_t>;

/// Base strip for one character of x: DIST[j][k] over boundary columns
/// 0..n of a 1-row grid.  The single down-move is either a deletion or a
/// diagonal substitution at some column p in (j, k]; inserts cover the
/// rest:
///   DIST[j][k] = Ipre[k] - Ipre[j]
///              + min( del(x_i), min_{j < p <= k} sub(x_i, y_p) - ins(y_p) )
/// Graded infinities (j - k) * M fill k < j.
Dist base_strip(pram::Machine& mach, char xi, const std::string& y,
                const EditCosts& costs, std::int64_t big) {
  const std::size_t n = y.size();
  std::vector<std::int64_t> ipre(n + 1, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    ipre[j] = ipre[j - 1] + costs.insert_cost(y[j - 1]);
  }
  // g[p] = sub(x_i, y_p) - ins(y_p) for p in 1..n; sparse table for range
  // minima (host); charged as a doubling prefix-min table build: lg n
  // rounds with (n+1) processors, then one O(1) lookup step per entry.
  std::vector<std::int64_t> g(n + 1, 0);
  for (std::size_t p = 1; p <= n; ++p) {
    g[p] = costs.substitute_cost(xi, y[p - 1]) - costs.insert_cost(y[p - 1]);
  }
  const auto lgn = static_cast<std::uint64_t>(std::max(1, ceil_lg(n + 2)));
  mach.meter().charge(lgn, n + 1, (n + 1) * lgn);  // table build
  std::vector<std::vector<std::int64_t>> table;    // table[k][p]: min over 2^k
  table.push_back(g);
  for (std::size_t len = 2; len <= n + 1; len *= 2) {
    const auto& prev = table.back();
    std::vector<std::int64_t> row(n + 1);
    for (std::size_t p = 0; p + len / 2 <= n; ++p) {
      row[p] = std::min(prev[p], prev[p + len / 2]);
    }
    table.push_back(std::move(row));
  }
  auto range_min = [&](std::size_t lo, std::size_t hi) {  // inclusive
    const std::size_t len = hi - lo + 1;
    const auto k = static_cast<std::size_t>(floor_lg(len));
    return std::min(table[k][lo], table[k][hi + 1 - (std::size_t{1} << k)]);
  };
  Dist d(n + 1, n + 1, 0);
  mach.meter().charge(1, (n + 1) * (n + 1));  // all entries in parallel
  const std::int64_t delc = costs.delete_cost(xi);
  for (std::size_t j = 0; j <= n; ++j) {
    for (std::size_t k = 0; k <= n; ++k) {
      if (k < j) {
        d.at(j, k) = static_cast<std::int64_t>(j - k) * big;
      } else {
        std::int64_t best = delc;
        if (k > j) best = std::min(best, range_min(j + 1, k));
        d.at(j, k) = ipre[k] - ipre[j] + best;
      }
    }
  }
  return d;
}

/// (min,+) product of two DIST matrices via tube minima (Table 1.3's
/// primitive); the graded infinite region keeps both factors Monge.
Dist combine(pram::Machine& mach, const Dist& a, const Dist& b) {
  const auto plane = par::tube_minima(mach, a, b);
  Dist c(a.rows(), b.cols(), 0);
  mach.meter().charge(1, a.rows() * b.cols());
  for (std::size_t j = 0; j < a.rows(); ++j) {
    for (std::size_t k = 0; k < b.cols(); ++k) {
      c.at(j, k) = plane.at(j, k).value;
    }
  }
  return c;
}

Dist dist_rec(pram::Machine& mach, const std::string& x, std::size_t a,
              std::size_t b, const std::string& y, const EditCosts& costs,
              std::int64_t big) {
  if (b - a == 1) return base_strip(mach, x[a], y, costs, big);
  const std::size_t mid = (a + b) / 2;
  Dist top, bot;
  mach.parallel_branches(2, [&](std::size_t h, pram::Machine& sub) {
    if (h == 0) {
      top = dist_rec(sub, x, a, mid, y, costs, big);
    } else {
      bot = dist_rec(sub, x, mid, b, y, costs, big);
    }
  });
  return combine(mach, top, bot);
}

std::int64_t instance_big(const std::string& x, const std::string& y,
                          const EditCosts& costs) {
  // Strictly larger than any finite path cost.
  std::int64_t total = 1;
  for (char c : x) total += std::abs(costs.delete_cost(c));
  for (char c : y) total += std::abs(costs.insert_cost(c));
  total += static_cast<std::int64_t>(std::max(x.size(), y.size()) + 1) *
           (std::abs(costs.sub) + 1);
  return total;
}

/// (min,+) combine on the network: one Monge row-minima slice per output
/// column, run in lockstep on padded power-of-two sub-cubes.
Dist combine_hc(net::TopologyKind kind, const Dist& a, const Dist& b,
                std::uint64_t& steps, std::size_t& nodes) {
  const std::size_t q = a.rows();
  const std::size_t side = pmonge::next_pow2(q);
  std::vector<std::size_t> idx(side);
  for (std::size_t t = 0; t < side; ++t) idx[t] = std::min(t, q - 1);
  Dist c(q, q, 0);
  std::uint64_t combine_steps = 0;
  std::size_t combine_nodes = 0;
  for (std::size_t k = 0; k < q; ++k) {
    net::Engine e(kind, ceil_lg(2 * side));
    auto res = par::hc_monge_row_minima<std::int64_t>(
        e, idx, idx,
        [&](std::size_t i, std::size_t j) { return a(i, j) + b(j, k); });
    combine_steps = std::max(
        combine_steps, e.meter().comm_steps + e.meter().local_steps);
    combine_nodes += e.physical_nodes();
    for (std::size_t i = 0; i < q; ++i) c.at(i, k) = res[i].value;
  }
  steps += combine_steps;
  nodes = std::max(nodes, combine_nodes);
  return c;
}

Dist dist_rec_hc(net::TopologyKind kind, const std::string& x, std::size_t a,
                 std::size_t b, const std::string& y, const EditCosts& costs,
                 std::int64_t big, std::uint64_t& steps, std::size_t& nodes) {
  if (b - a == 1) {
    pram::Machine scratch(pram::Model::CREW);
    steps += 2;  // local base-strip construction (prefix tables)
    return base_strip(scratch, x[a], y, costs, big);
  }
  const std::size_t mid = (a + b) / 2;
  // The two halves run on disjoint sub-networks in lockstep: charge the
  // max of their step counts.
  std::uint64_t s1 = 0, s2 = 0;
  Dist top = dist_rec_hc(kind, x, a, mid, y, costs, big, s1, nodes);
  Dist bot = dist_rec_hc(kind, x, mid, b, y, costs, big, s2, nodes);
  steps += std::max(s1, s2);
  return combine_hc(kind, top, bot, steps, nodes);
}

}  // namespace

HcEditResult edit_distance_hc(net::TopologyKind kind, const std::string& x,
                              const std::string& y, const EditCosts& costs) {
  PMONGE_REQUIRE(!x.empty(), "x must be non-empty");
  HcEditResult out;
  const auto d = dist_rec_hc(kind, x, 0, x.size(), y, costs,
                             instance_big(x, y, costs), out.steps,
                             out.physical_nodes);
  out.cost = d(0, y.size());
  return out;
}

monge::DenseArray<std::int64_t> edit_dist_matrix(pram::Machine& mach,
                                                 const std::string& x,
                                                 const std::string& y,
                                                 const EditCosts& costs) {
  PMONGE_REQUIRE(!x.empty(), "x must be non-empty (use seq for trivia)");
  return dist_rec(mach, x, 0, x.size(), y, costs,
                  instance_big(x, y, costs));
}

std::int64_t edit_distance_par(pram::Machine& mach, const std::string& x,
                               const std::string& y, const EditCosts& costs) {
  const std::size_t n = y.size();
  if (x.empty()) {
    // Pure insertion: a prefix sum.
    std::vector<std::int64_t> c(n, 0);
    for (std::size_t j = 0; j < n; ++j) c[j] = costs.insert_cost(y[j]);
    return pram::reduce<std::int64_t>(
        mach, n, [&](std::size_t j) { return c[j]; },
        std::plus<std::int64_t>{}, 0);
  }
  const auto d = edit_dist_matrix(mach, x, y, costs);
  return d(0, n);
}

std::vector<std::int64_t> edit_distance_par_batch(
    pram::Machine& mach, const std::vector<EditJob>& jobs) {
  std::vector<std::int64_t> out(jobs.size());
  mach.parallel_branches(jobs.size(), [&](std::size_t i, pram::Machine& sub) {
    out[i] = edit_distance_par(sub, jobs[i].x, jobs[i].y, jobs[i].costs);
  });
  return out;
}

std::size_t lcs_length_seq(const std::string& x, const std::string& y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::size_t> prev(n + 1, 0), cur(n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      cur[j] = x[i - 1] == y[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

std::size_t lcs_length_par(pram::Machine& mach, const std::string& x,
                           const std::string& y) {
  EditCosts costs;
  costs.ins = 1;
  costs.del = 1;
  costs.sub = 2;  // substitute == delete + insert; LCS identity holds
  const auto d = edit_distance_par(mach, x, y, costs);
  const auto total =
      static_cast<std::int64_t>(x.size()) + static_cast<std::int64_t>(y.size());
  PMONGE_ASSERT((total - d) % 2 == 0 && d <= total, "LCS identity violated");
  return static_cast<std::size_t>((total - d) / 2);
}

double ranka_sahni_time_n2p(std::size_t n, std::size_t p) {
  // O(sqrt(n lg n / p) + lg^2 n) with n^2 p processors, 1 <= p <= n.
  const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
  return std::sqrt(static_cast<double>(n) * lg / static_cast<double>(p)) +
         lg * lg;
}

double ranka_sahni_time_p2(std::size_t n, std::size_t p2) {
  // O(n^1.5 sqrt(lg n) / p) with p^2 processors, n lg n <= p^2 <= n^2.
  const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
  const double p = std::sqrt(static_cast<double>(p2));
  return std::pow(static_cast<double>(n), 1.5) * std::sqrt(lg) / p;
}

}  // namespace pmonge::apps
