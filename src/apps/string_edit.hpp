// Application 4 (Section 1.3): string editing via grid-DAG shortest paths
// and Monge-composite tube minima.
//
// Transform x (length m) into y (length n) with per-symbol costs D(x_i)
// (delete), I(y_j) (insert) and S(x_i, y_j) (substitute).  Wagner-Fischer
// solves it in O(mn) sequentially; the parallel algorithm of [AP89a] /
// [AALM88], which the paper ports to hypercubic networks, divides x into
// strips, computes each strip's boundary-to-boundary DIST matrix, and
// merges strips with (min,+) products of Monge matrices -- exactly the
// tube-minima problem of Table 1.3.  Measured depth is
// O(lg m) combine levels x O(lg n) per tube-minima call, reproducing the
// paper's O(lg n lg m) bound shape.
//
// DIST matrices are lower-triangular-infinite (a path cannot move left).
// To keep them Monge -- and the tube argmins monotone -- the infinite
// region is *graded*: DIST[j][k] = (j - k) * M for k < j with M larger
// than any finite path cost.  The graded pattern satisfies the Monge
// condition in every finite/infinite case mix and is preserved by
// (min,+) products; plain single-valued infinities are not (the cross
// difference can flip sign), which is why the costs here are integers
// and M is derived from the instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monge/array.hpp"
#include "net/engine.hpp"
#include "pram/machine.hpp"

namespace pmonge::apps {

/// Per-symbol integer edit costs.  Defaults give classic unit edit
/// distance (substituting equal symbols is free).
struct EditCosts {
  std::int64_t ins = 1;
  std::int64_t del = 1;
  std::int64_t sub = 1;  // cost when symbols differ; equal symbols cost 0

  std::int64_t insert_cost(char c) const;
  std::int64_t delete_cost(char c) const;
  std::int64_t substitute_cost(char a, char b) const;

  /// Optional per-symbol overrides (index by unsigned char); empty means
  /// use the flat costs above.
  std::vector<std::int64_t> ins_table, del_table;
};

/// One step of an edit script.
struct EditOp {
  enum Kind { Keep, Substitute, Delete, Insert } kind;
  std::size_t i;  // position in x (Keep/Substitute/Delete)
  std::size_t j;  // position in y (Keep/Substitute/Insert)
};

struct EditResult {
  std::int64_t cost = 0;
  std::vector<EditOp> script;  // filled by the sequential solver
};

/// Wagner-Fischer sequential baseline, O(mn) time, with script recovery.
EditResult edit_distance_seq(const std::string& x, const std::string& y,
                             const EditCosts& costs);

/// Parallel grid-DAG algorithm on the simulated PRAM: strip DIST matrices
/// merged by tube minima.  Returns the optimal cost; the machine's meter
/// carries the charged parallel depth/work.
std::int64_t edit_distance_par(pram::Machine& mach, const std::string& x,
                               const std::string& y, const EditCosts& costs);

/// One instance of a batched edit-distance run.
struct EditJob {
  std::string x, y;
  EditCosts costs;
};

/// Batched entry (the serve layer's coalescing hook): solve every
/// instance as one parallel_branches fan-out on `mach` -- one engine
/// submission instead of one per call.  Results align with `jobs`; each
/// equals edit_distance_par on that instance alone.
std::vector<std::int64_t> edit_distance_par_batch(
    pram::Machine& mach, const std::vector<EditJob>& jobs);

/// The full DIST matrix of the whole grid (boundary column j on the top
/// row to boundary column k on the bottom row), exposed for tests; entry
/// (0, n) is the edit distance.  Infinite region graded as described.
monge::DenseArray<std::int64_t> edit_dist_matrix(pram::Machine& mach,
                                                 const std::string& x,
                                                 const std::string& y,
                                                 const EditCosts& costs);

/// Evaluate the cost of an edit script (test helper: scripts returned by
/// the sequential solver must re-evaluate to their claimed cost and
/// transform x into y).
std::int64_t evaluate_script(const std::string& x, const std::string& y,
                             const std::vector<EditOp>& script,
                             const EditCosts& costs);

/// Apply a script to x; returns the transformed string.
std::string apply_script(const std::string& x, const std::string& y,
                         const std::vector<EditOp>& script);

/// The paper's actual Application-4 claim: string editing in
/// O(lg n lg m) time on an nm-processor hypercube / CCC /
/// shuffle-exchange.  Same DIST-merging recursion as the PRAM variant,
/// but every (min,+) combine runs its slices in lockstep on 2n-node
/// sub-networks through the Theorem 3.2 core (real data movement,
/// emulation charging on CCC / shuffle-exchange).
struct HcEditResult {
  std::int64_t cost = 0;
  std::uint64_t steps = 0;        // measured network steps (max over
                                  // lockstep branches, summed over levels)
  std::size_t physical_nodes = 0; // peak concurrently-active host nodes
};
HcEditResult edit_distance_hc(net::TopologyKind kind, const std::string& x,
                              const std::string& y, const EditCosts& costs);

/// Longest common subsequence via the same machinery: with ins = del = 1
/// and sub = 2 (so substitution is never cheaper than delete+insert),
/// edit(x, y) = |x| + |y| - 2 * LCS(x, y).  Runs the parallel grid-DAG
/// algorithm; the classic example of the paper's grid-DAG framework
/// covering "other related problems".
std::size_t lcs_length_par(pram::Machine& mach, const std::string& x,
                           const std::string& y);

/// Sequential LCS by dynamic programming (oracle).
std::size_t lcs_length_seq(const std::string& x, const std::string& y);

/// The [RS88] comparator bounds the paper quotes (Section 1.3, item 4):
/// time for Ranka-Sahni's SIMD-hypercube algorithms at the given
/// processor counts, used by the benches for the comparison rows.
double ranka_sahni_time_n2p(std::size_t n, std::size_t p);   // n^2 p procs
double ranka_sahni_time_p2(std::size_t n, std::size_t p2);   // p^2 procs

}  // namespace pmonge::apps
