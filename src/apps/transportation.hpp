// The historical root of the Monge property (Section 1.1's motivation):
// G. Monge's 1781 transport observation and A. J. Hoffman's 1961 theorem
// that the greedy "northwest-corner" rule solves the m-source, n-sink
// transportation problem exactly when the cost array is Monge.
//
// This module ships the greedy solver, an exact exponential-search oracle
// for small instances (used by the tests to certify optimality on Monge
// costs and to exhibit suboptimality on non-Monge costs), and a metered
// parallel variant: the greedy path visits m+n-1 cells forming a
// monotone staircase, computable in parallel from prefix sums of the
// supplies and demands -- an O(lg(m+n))-depth computation, another small
// showcase of the machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "monge/array.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"

namespace pmonge::apps {

struct TransportPlan {
  // Sparse shipment list (i, j, amount); cost is the total.
  struct Shipment {
    std::size_t from, to;
    std::int64_t amount;
  };
  std::vector<Shipment> shipments;
  std::int64_t cost = 0;
};

/// Hoffman's greedy (northwest-corner) rule: optimal iff cost is Monge.
/// Requires sum(supply) == sum(demand), all non-negative.
template <monge::Array2D A>
TransportPlan transport_greedy(const A& cost,
                               const std::vector<std::int64_t>& supply,
                               const std::vector<std::int64_t>& demand);

/// Exact minimum over all feasible plans by exhaustive search; viable
/// only for tiny instances (tests).
template <monge::Array2D A>
std::int64_t transport_brute(const A& cost,
                             const std::vector<std::int64_t>& supply,
                             const std::vector<std::int64_t>& demand);

/// Metered parallel greedy: the staircase path's corners come from
/// merging the supply/demand prefix sums (parallel prefix + merge,
/// O(lg(m+n)) charged depth).
template <monge::Array2D A>
TransportPlan transport_greedy_par(pram::Machine& mach, const A& cost,
                                   const std::vector<std::int64_t>& supply,
                                   const std::vector<std::int64_t>& demand);

// ---------------------------------------------------------------------
// Implementation (templated on the cost array).
// ---------------------------------------------------------------------

template <monge::Array2D A>
TransportPlan transport_greedy(const A& cost,
                               const std::vector<std::int64_t>& supply,
                               const std::vector<std::int64_t>& demand) {
  PMONGE_REQUIRE(cost.rows() == supply.size() && cost.cols() == demand.size(),
                 "dimension mismatch");
  std::int64_t s = 0, d = 0;
  for (auto v : supply) {
    PMONGE_REQUIRE(v >= 0, "negative supply");
    s += v;
  }
  for (auto v : demand) {
    PMONGE_REQUIRE(v >= 0, "negative demand");
    d += v;
  }
  PMONGE_REQUIRE(s == d, "supply and demand must balance");
  TransportPlan plan;
  std::vector<std::int64_t> a = supply, b = demand;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == 0) {
      ++i;
      continue;
    }
    if (b[j] == 0) {
      ++j;
      continue;
    }
    const std::int64_t x = std::min(a[i], b[j]);
    plan.shipments.push_back({i, j, x});
    plan.cost += x * cost(i, j);
    a[i] -= x;
    b[j] -= x;
  }
  return plan;
}

template <monge::Array2D A>
std::int64_t transport_brute(const A& cost,
                             const std::vector<std::int64_t>& supply,
                             const std::vector<std::int64_t>& demand) {
  // Recursive enumeration over integer flows, row by row.
  const std::size_t m = supply.size(), n = demand.size();
  std::vector<std::int64_t> rem = demand;
  std::int64_t best = monge::inf<std::int64_t>();
  std::vector<std::int64_t> row(n, 0);
  auto rec = [&](auto&& self, std::size_t i, std::size_t j,
                 std::int64_t left, std::int64_t acc) -> void {
    if (acc >= best) return;
    if (i == m) {
      bool done = true;
      for (auto r : rem) done &= (r == 0);
      if (done) best = std::min(best, acc);
      return;
    }
    if (j == n) {
      if (left == 0) self(self, i + 1, 0, i + 1 < m ? supply[i + 1] : 0, acc);
      return;
    }
    const std::int64_t hi = std::min(left, rem[j]);
    for (std::int64_t x = 0; x <= hi; ++x) {
      rem[j] -= x;
      self(self, i, j + 1, left - x, acc + x * cost(i, j));
      rem[j] += x;
    }
  };
  rec(rec, 0, 0, m ? supply[0] : 0, 0);
  return best;
}

template <monge::Array2D A>
TransportPlan transport_greedy_par(pram::Machine& mach, const A& cost,
                                   const std::vector<std::int64_t>& supply,
                                   const std::vector<std::int64_t>& demand) {
  // The greedy staircase's breakpoints are the merge of the two prefix-
  // sum sequences; each shipment amount is a difference of consecutive
  // breakpoints.  Charge: two scans + one parallel merge + one map step.
  std::vector<std::int64_t> ps = supply, pd = demand;
  pram::inclusive_scan_par<std::int64_t>(mach, ps,
                                         std::plus<std::int64_t>{});
  pram::inclusive_scan_par<std::int64_t>(mach, pd,
                                         std::plus<std::int64_t>{});
  const auto merged = pram::parallel_merge<std::int64_t>(
      mach, ps, pd, [](std::int64_t x, std::int64_t y) { return x < y; });
  mach.meter().charge(1, merged.size());
  // Host side: reuse the sequential greedy for the explicit plan (the
  // parallel breakpoint structure determines it uniquely).
  return transport_greedy(cost, supply, demand);
}

}  // namespace pmonge::apps
