// Deterministic data-parallel skeletons over the engine's thread pool:
// parallel_for / parallel_reduce / parallel_scan / parallel_pack, in the
// work/span style of Deepsea's sptl with a simplified, *oracular-style*
// granularity control.
//
// Granularity and determinism.  Every skeleton decomposes [0, n) into
// fixed chunks of `grain` indices.  The chunk boundaries depend only on
// (n, grain) -- never on the thread count or the scheduler -- and chunk
// results are always combined serially in chunk order.  Consequently the
// value computed by every skeleton is bit-identical across thread counts
// (including 1), even for ops that are only *approximately* associative
// (floating-point sums): the association is fixed by the chunking, not by
// the schedule.  grain_for() picks the chunk size from a per-call cost
// hint so one chunk amortizes ~default_grain() unit operations; callers
// with expensive bodies pass a larger hint to get proportionally smaller
// chunks.  PMONGE_GRAIN scales the whole family.
//
// Contracts: bodies/evals for distinct indices must be independent (the
// engine runs them concurrently in unspecified order); reduce/scan ops
// must be associative for the chunked association to equal the serial
// left fold.  Exceptions from bodies cancel the batch and rethrow on the
// caller.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"

namespace pmonge::exec {

/// Chunk size amortizing scheduling overhead for a body whose per-index
/// cost is roughly `cost_hint` unit operations.  Independent of the
/// thread count by design (see header comment).
inline std::size_t grain_for(std::size_t cost_hint = 1) {
  const std::size_t o = grain_override();
  const std::size_t g = o != 0 ? o : default_grain();
  const std::size_t h = cost_hint == 0 ? 1 : cost_hint;
  const std::size_t grain = g / h;
  return grain == 0 ? 1 : grain;
}

namespace detail {

inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return (n + grain - 1) / grain;
}

/// Serial execution is the right call when there is nothing to split,
/// no one to split it for, the call sits so deep in the fork tree that
/// the outer levels already saturate the pool, or an enclosing
/// SerialScope declared the whole computation too small to be worth
/// submitting.
inline bool run_serially(std::size_t nchunks) {
  return nchunks <= 1 || num_threads() <= 1 ||
         nest_depth() >= kMaxForkDepth || serial_scope_depth() > 0;
}

}  // namespace detail

/// body(i) for i in [0, n), chunked by `grain`.
template <class Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t nchunks = detail::chunk_count(n, grain);
  if (detail::run_serially(nchunks)) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Coarse task fan-out: one logical task per index, for bodies that are
/// themselves substantial (sub-searches, Machine branches).  Equivalent
/// to parallel_for with grain 1.
template <class Body>
void parallel_tasks(std::size_t n, Body&& body) {
  parallel_for(n, 1, std::forward<Body>(body));
}

/// Heterogeneous batch submission: run every job in `jobs` as one engine
/// batch, the submitting thread participating until all retire.  This is
/// the hook the serve layer's batcher uses to push one coalesced service
/// batch -- many unrelated query groups -- into the pool as a single
/// submission instead of one submission per group.  Jobs must be
/// independent; the first exception cancels the batch and rethrows on
/// the caller, so jobs that must not poison their siblings catch
/// internally.
inline void parallel_jobs(std::span<const std::function<void()>> jobs) {
  obs::Span span("exec.jobs");
  span.set_arg("jobs", jobs.size());
  parallel_tasks(jobs.size(), [&](std::size_t i) { jobs[i](); });
}

/// Fold op over eval(0..n-1): per-chunk left fold from `identity`, then a
/// serial left fold of the chunk results in chunk order.  Equals the
/// serial left fold whenever op is associative with identity `identity`.
template <class T, class Eval, class Op>
T parallel_reduce(std::size_t n, std::size_t grain, T identity, Eval&& eval,
                  Op&& op) {
  if (n == 0) return identity;
  if (grain == 0) grain = 1;
  const std::size_t nchunks = detail::chunk_count(n, grain);
  if (detail::run_serially(nchunks)) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) acc = op(acc, eval(i));
    return acc;
  }
  // Plain array, not std::vector<T>: with T = bool the vector
  // specialization bit-packs, and concurrent chunks writing adjacent
  // flags would race on the shared word.
  std::unique_ptr<T[]> partial(new T[nchunks]);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, eval(i));
    partial[c] = acc;
  });
  T acc = identity;
  for (std::size_t c = 0; c < nchunks; ++c) acc = op(acc, partial[c]);
  return acc;
}

/// In-place exclusive prefix scan; returns the total.  Three phases:
/// parallel per-chunk reduce, serial scan of the chunk totals, parallel
/// per-chunk rewrite with the chunk offset.
template <class T, class Op>
T parallel_scan_exclusive(std::span<T> xs, std::size_t grain, Op&& op,
                          T identity) {
  const std::size_t n = xs.size();
  if (n == 0) return identity;
  if (grain == 0) grain = 1;
  const std::size_t nchunks = detail::chunk_count(n, grain);
  if (detail::run_serially(nchunks)) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      T x = xs[i];
      xs[i] = acc;
      acc = op(acc, x);
    }
    return acc;
  }
  std::vector<T> offset(nchunks, identity);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, xs[i]);
    offset[c] = acc;
  });
  T total = identity;
  for (std::size_t c = 0; c < nchunks; ++c) {
    T x = offset[c];
    offset[c] = total;
    total = op(total, x);
  }
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    T acc = offset[c];
    for (std::size_t i = lo; i < hi; ++i) {
      T x = xs[i];
      xs[i] = acc;
      acc = op(acc, x);
    }
  });
  return total;
}

/// In-place inclusive prefix scan; returns the last element.
template <class T, class Op>
T parallel_scan_inclusive(std::span<T> xs, std::size_t grain, Op&& op) {
  const std::size_t n = xs.size();
  if (n == 0) return T{};
  if (grain == 0) grain = 1;
  const std::size_t nchunks = detail::chunk_count(n, grain);
  if (detail::run_serially(nchunks)) {
    for (std::size_t i = 1; i < n; ++i) xs[i] = op(xs[i - 1], xs[i]);
    return xs[n - 1];
  }
  std::vector<T> sums(nchunks);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    T acc = xs[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) acc = op(acc, xs[i]);
    sums[c] = acc;
  });
  for (std::size_t c = 1; c < nchunks; ++c) sums[c] = op(sums[c - 1], sums[c]);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    if (c > 0) xs[lo] = op(sums[c - 1], xs[lo]);
    for (std::size_t i = lo + 1; i < hi; ++i) xs[i] = op(xs[i - 1], xs[i]);
  });
  return xs[n - 1];
}

/// Stable parallel compaction: indices i in [0, n) with keep(i) true, in
/// increasing order.  keep is evaluated twice per index (count + fill);
/// it must be pure.
template <class Keep>
std::vector<std::size_t> parallel_pack(std::size_t n, std::size_t grain,
                                       Keep&& keep) {
  if (n == 0) return {};
  if (grain == 0) grain = 1;
  const std::size_t nchunks = detail::chunk_count(n, grain);
  if (detail::run_serially(nchunks)) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep(i)) out.push_back(i);
    }
    return out;
  }
  std::vector<std::size_t> count(nchunks, 0);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    std::size_t k = 0;
    for (std::size_t i = lo; i < hi; ++i) k += keep(i) ? 1 : 0;
    count[c] = k;
  });
  std::size_t total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t k = count[c];
    count[c] = total;
    total += k;
  }
  std::vector<std::size_t> out(total);
  pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = lo + grain < n ? lo + grain : n;
    std::size_t at = count[c];
    for (std::size_t i = lo; i < hi; ++i) {
      if (keep(i)) out[at++] = i;
    }
  });
  return out;
}

}  // namespace pmonge::exec
