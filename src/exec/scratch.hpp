// Reusable per-worker kernel scratch.
//
// The par/ kernels and index leaf builds used to allocate short-lived
// `std::vector` temporaries on every call (sampled rows, bracket lists,
// iota index vectors).  Those temporaries have exact call-stack lifetime,
// so they now come from a thread-local bump arena: the first call on a
// worker thread reserves the chunks, every later call bumps warm memory
// and rewinds on return — zero steady-state heap allocations.
//
// Usage:
//   exec::ScratchScope scope;                    // rewinds at end of call
//   auto tmp = exec::scratch_vector<int>();      // vector on the arena
//
// Safety rules (they hold for the properly nested fork/join execution in
// exec::ThreadPool):
//   * Scopes nest LIFO per thread.  Work submitted to the pool runs the
//     child body on some worker's own arena, so a parent's scratch is
//     never rewound by a child.
//   * Scratch handed to parallel children must be read-only in the
//     children (the parent frame outlives the branch join, so the
//     pointers stay valid).
//   * Never return scratch-backed containers from the function that
//     opened the scope; results that escape stay on std::vector.
#pragma once

#include <vector>

#include "support/arena.hpp"

namespace pmonge::exec {

/// The calling thread's scratch arena (created on first use).
inline support::Arena& scratch_arena() {
  thread_local support::Arena arena(1 << 14);
  return arena;
}

/// RAII rewind of the calling thread's scratch arena; open one per
/// kernel entry point (or per recursion frame that allocates scratch).
class ScratchScope : public support::Arena::Scope {
 public:
  ScratchScope() : support::Arena::Scope(scratch_arena()) {}
};

/// A std::vector whose storage lives on the thread's scratch arena.
template <class T>
using ScratchVector = std::vector<T, support::ArenaAllocator<T>>;

template <class T>
ScratchVector<T> scratch_vector() {
  return ScratchVector<T>(support::ArenaAllocator<T>(scratch_arena()));
}

template <class T>
ScratchVector<T> scratch_vector(std::size_t n, const T& init = T()) {
  return ScratchVector<T>(n, init,
                          support::ArenaAllocator<T>(scratch_arena()));
}

}  // namespace pmonge::exec
