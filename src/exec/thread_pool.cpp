#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"

namespace pmonge::exec {

using detail::Batch;

namespace {
thread_local std::size_t t_nest_depth = 0;
thread_local std::size_t t_serial_depth = 0;
thread_local std::size_t t_grain_override = 0;

std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  return d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
}
}  // namespace

std::size_t nest_depth() { return t_nest_depth; }

std::size_t serial_scope_depth() { return t_serial_depth; }

SerialScope::SerialScope() { ++t_serial_depth; }
SerialScope::~SerialScope() { --t_serial_depth; }

std::size_t grain_override() { return t_grain_override; }

GrainScope::GrainScope(std::size_t grain) : saved_(t_grain_override) {
  t_grain_override = grain;
}
GrainScope::~GrainScope() { t_grain_override = saved_; }

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t want = threads == 0 ? 1 : threads;
  workers_.reserve(want - 1);
  lane_counters_ = std::make_unique<LaneCounters[]>(want);  // >= workers
  try {
    for (std::size_t i = 0; i + 1 < want; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (const std::system_error&) {
    // Thread creation unavailable (restricted sandbox, resource limits):
    // keep whatever workers started; zero workers means serial fallback.
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_batch(std::size_t nchunks,
                           void (*invoke)(void*, std::size_t), void* ctx) {
  auto b = std::make_shared<Batch>();
  b->invoke = invoke;
  b->ctx = ctx;
  b->nchunks = nchunks;
  b->depth = t_nest_depth + 1;
  b->trace_id = obs::current_trace_id();
  batches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.push_back(b);
  }
  queue_cv_.notify_all();

  // Submit-and-participate: drain our own batch, then wait for chunks
  // claimed by workers to retire.
  work_on(*b, external_);
  if (b->done.load(std::memory_order_acquire) != b->nchunks) {
    // Stall: workers still hold claimed chunks.  The acquire load above
    // (or the one in the predicate) pairs with the workers' acq_rel
    // done-increment, so chunk effects are visible once we pass.
    submit_waits_.fetch_add(1, std::memory_order_relaxed);
    const auto w0 = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lk(b->mu);
      b->cv.wait(lk, [&] { return b->done.load(std::memory_order_acquire) ==
                                  b->nchunks; });
    }
    submit_wait_us_.fetch_add(us_since(w0), std::memory_order_relaxed);
  }
  {
    // The batch may still sit in the queue if every chunk was claimed
    // before any worker pruned it; drop it so workers stop seeing it.
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.erase(std::remove(queue_.begin(), queue_.end(), b), queue_.end());
  }
  if (b->err) std::rethrow_exception(b->err);
}

void ThreadPool::work_on(Batch& b, LaneCounters& lane) {
  struct DepthGuard {
    std::size_t saved;
    ~DepthGuard() { t_nest_depth = saved; }
  } guard{t_nest_depth};
  t_nest_depth = b.depth;
  // Chunk bodies run under the submitter's trace id so kernel-internal
  // spans on pool workers stay attributed to the originating request.
  obs::TraceContext tctx(b.trace_id);
  obs::Span span("exec.chunks");
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t claimed = 0;
  for (;;) {
    const std::size_t c = b.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= b.nchunks) break;
    ++claimed;
    if (!b.cancelled.load(std::memory_order_relaxed)) {
      try {
        // Pooled chunks are the exec fault sites: a serial scope (the
        // degraded path) or a 1-chunk batch never reaches this loop, so
        // degradation genuinely dodges these injections.
        if (fault::armed()) {
          if (fault::should_fire(fault::Site::ExecChunkDelay)) {
            fault::fire_delay(fault::Site::ExecChunkDelay);
          }
          if (fault::should_fire(fault::Site::ExecChunkFault)) {
            throw fault::InjectedFault(fault::Site::ExecChunkFault);
          }
        }
        b.invoke(b.ctx, c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(b.mu);
        if (!b.err) b.err = std::current_exception();
        b.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    const std::size_t d = b.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (d == b.nchunks) {
      // Lock pairs with the waiter's predicate check: no missed wakeup.
      std::lock_guard<std::mutex> lk(b.mu);
      b.cv.notify_all();
    }
  }
  if (claimed == 0) {
    span.cancel();  // lost the claim race entirely; nothing to show
    return;
  }
  lane.busy_us.fetch_add(us_since(t0), std::memory_order_relaxed);
  lane.chunks.fetch_add(claimed, std::memory_order_relaxed);
  span.set_arg("chunks", claimed);
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::set_lane_name("pool-worker-" + std::to_string(index));
  LaneCounters& lane = lane_counters_[index];
  for (;;) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      // Prune fully-claimed batches (stragglers hold their own refs),
      // then take the oldest live one.
      while (!queue_.empty() &&
             queue_.front()->next.load(std::memory_order_relaxed) >=
                 queue_.front()->nchunks) {
        queue_.pop_front();
      }
      if (queue_.empty()) continue;
      b = queue_.front();
    }
    work_on(*b, lane);
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.threads = threads();
  s.batches = batches_.load(std::memory_order_relaxed);
  s.submit_waits = submit_waits_.load(std::memory_order_relaxed);
  s.submit_wait_us = submit_wait_us_.load(std::memory_order_relaxed);
  s.workers.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    s.workers[i].busy_us =
        lane_counters_[i].busy_us.load(std::memory_order_relaxed);
    s.workers[i].chunks =
        lane_counters_[i].chunks.load(std::memory_order_relaxed);
  }
  s.external.busy_us = external_.busy_us.load(std::memory_order_relaxed);
  s.external.chunks = external_.chunks.load(std::memory_order_relaxed);
  return s;
}

namespace {

std::size_t resolve_default_threads() {
  if (const auto v = support::env_uint("PMONGE_THREADS")) {
    return std::max<std::uint64_t>(1, *v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::mutex g_pool_mu;
std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

ThreadPool& pool() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p == nullptr) {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    p = g_pool.load(std::memory_order_relaxed);
    if (p == nullptr) {
      p = new ThreadPool(resolve_default_threads());
      g_pool.store(p, std::memory_order_release);
    }
  }
  return *p;
}

std::size_t num_threads() { return pool().threads(); }

PoolStats pool_stats() { return pool().stats(); }

void set_num_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  ThreadPool* fresh = new ThreadPool(threads == 0 ? 1 : threads);
  ThreadPool* old = g_pool.exchange(fresh, std::memory_order_acq_rel);
  delete old;  // joins the old workers; caller guarantees quiescence
}

std::size_t default_grain() {
  static const std::size_t g = static_cast<std::size_t>(
      support::env_uint_or("PMONGE_GRAIN", 2048, /*lo=*/1));
  return g;
}

}  // namespace pmonge::exec
