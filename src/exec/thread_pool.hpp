// Host-parallel execution engine: a reusable worker pool over which the
// PRAM simulator's primitives actually run concurrently.
//
// Design constraints (see docs/cost_model.md, "Charged cost vs wall
// clock"):
//   * The engine must never influence *results* or *charged costs*.  All
//     observable state -- algorithm outputs, CostMeter totals, model-
//     violation detection -- is identical whether a computation runs on
//     1 thread or 64.  The pool therefore only ever executes batches of
//     independent chunks whose decomposition is fixed by the caller.
//   * Nested parallelism is the common case: Machine::parallel_branches
//     recurses, and every branch issues engine work of its own.  The pool
//     is submit-and-participate: the submitting thread executes chunks of
//     its own batch alongside the workers, so a batch can always be
//     finished by its submitter alone and nesting cannot deadlock.
//   * Exceptions thrown by chunk bodies (ModelViolation, PMONGE_REQUIRE
//     failures, ...) are captured, the batch is cancelled, and the first
//     exception is rethrown on the submitting thread.
//
// Sizing: the global pool reads PMONGE_THREADS (default: hardware
// concurrency) once at first use; set_num_threads() rebuilds it for
// tests and benchmarks.  If worker threads cannot be created at all the
// pool degrades to serial in-place execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pmonge::exec {

namespace detail {

/// One submitted batch: chunks [0, nchunks) claimed by atomic ticket.
/// Lives in a shared_ptr so stragglers can finish a chunk after the
/// batch left the pool's queue.
struct Batch {
  void (*invoke)(void* ctx, std::size_t chunk) = nullptr;
  void* ctx = nullptr;
  std::size_t nchunks = 0;
  std::size_t depth = 0;  // fork-nesting depth of the chunk bodies
  std::uint64_t trace_id = 0;  // submitter's obs trace id (0 = none)
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::mutex mu;  // guards err; also serializes the completion notify
  std::condition_variable cv;
  std::exception_ptr err;
};

}  // namespace detail

/// Engine profiling snapshot (always on: two clock reads per batch
/// participation, counter updates are relaxed atomics).  Surfaced by the
/// serve `stats` endpoint and obs/prometheus.
struct PoolStats {
  struct Lane {
    std::uint64_t busy_us = 0;  // time spent inside work_on with chunks
    std::uint64_t chunks = 0;   // chunks this lane claimed
  };
  std::size_t threads = 1;           // lanes incl. submitters
  std::uint64_t batches = 0;         // batches submitted to the pool
  std::uint64_t submit_waits = 0;    // submitters that had to block on
                                     // worker-claimed chunks
  std::uint64_t submit_wait_us = 0;  // total time submitters blocked
  std::vector<Lane> workers;         // one per pool worker thread
  Lane external;                     // all submitting threads combined
};

class ThreadPool {
 public:
  /// A pool with `threads` execution lanes total: the submitting thread
  /// plus threads-1 workers.  threads == 1 (or worker-creation failure)
  /// means strictly serial execution.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (submitter included); >= 1.
  std::size_t threads() const { return workers_.size() + 1; }

  /// Execute chunk(c) for every c in [0, nchunks), distributing chunks
  /// across the pool; the calling thread participates until the batch is
  /// drained.  Chunks must be independent.  The first exception thrown by
  /// any chunk is rethrown here after all claimed chunks retire; the
  /// remaining unclaimed chunks of a failed batch are skipped.
  template <class F>
  void run_chunks(std::size_t nchunks, F&& chunk) {
    if (nchunks == 0) return;
    if (workers_.empty() || nchunks == 1) {
      for (std::size_t c = 0; c < nchunks; ++c) chunk(c);
      return;
    }
    auto trampoline = [](void* ctx, std::size_t c) {
      (*static_cast<std::remove_reference_t<F>*>(ctx))(c);
    };
    run_batch(nchunks, trampoline, std::addressof(chunk));
  }

  /// Profiling counters (see PoolStats).  Safe to call concurrently with
  /// running batches; a snapshot may miss in-flight increments.
  PoolStats stats() const;

 private:
  /// Per-lane profiling counters, cache-line padded: each lane writes
  /// only its own.
  struct alignas(64) LaneCounters {
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> chunks{0};
  };

  void run_batch(std::size_t nchunks, void (*invoke)(void*, std::size_t),
                 void* ctx);
  void work_on(detail::Batch& b, LaneCounters& lane);
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::unique_ptr<LaneCounters[]> lane_counters_;  // one per worker
  LaneCounters external_;  // submitting threads (shared slot)
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> submit_waits_{0};
  std::atomic<std::uint64_t> submit_wait_us_{0};
  std::deque<std::shared_ptr<detail::Batch>> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

/// The process-global engine, sized from PMONGE_THREADS (default:
/// std::thread::hardware_concurrency()) on first use.
ThreadPool& pool();

/// Execution lanes of the global engine (>= 1).
std::size_t num_threads();

/// Profiling counters of the global engine.
PoolStats pool_stats();

/// Rebuild the global engine with `threads` lanes (>= 1).  Intended for
/// tests and benchmarks only; must not be called while engine work is in
/// flight on any thread.
void set_num_threads(std::size_t threads);

/// Base granularity: the number of unit-cost loop iterations one chunk
/// should amortize scheduling overhead over.  PMONGE_GRAIN overrides the
/// built-in default (read once).
std::size_t default_grain();

/// Fork-nesting depth of the calling thread: 0 outside the engine, d+1
/// inside a chunk of a batch submitted at depth d.  The data-parallel
/// skeletons serialize below kMaxForkDepth -- by then the top levels have
/// already produced enough chunks to saturate any pool, and deeper forks
/// would only pay scheduling overhead.  Execution strategy only: results
/// and charged costs never depend on it.
std::size_t nest_depth();
inline constexpr std::size_t kMaxForkDepth = 4;

/// Depth of SerialScope nesting on the calling thread (0 = none active).
std::size_t serial_scope_depth();

/// RAII: while alive on this thread, every data-parallel skeleton runs
/// its chunks in place on the calling thread instead of submitting to
/// the pool.  Execution strategy only -- results and charged costs are
/// identical either way (the chunk decomposition never changes) -- but
/// tiny computations skip the submission overhead entirely.  This is the
/// small-input fast path the execution planner (src/plan) selects; the
/// par/ kernels also apply it below their own serial cutoff.  Nests.
class SerialScope {
 public:
  SerialScope();
  ~SerialScope();
  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;
};

/// Grain override active on the calling thread (0 = none; use
/// default_grain()).
std::size_t grain_override();

/// RAII: while alive on this thread, grain_for() bases chunk sizes on
/// `grain` instead of default_grain().  The override applies to
/// decompositions performed on this thread (nested decompositions that
/// pool workers perform on the caller's behalf keep the default).  Grain
/// never changes results: chunk combination is serial in chunk order and
/// every combiner the library uses is exactly associative.  Plans from
/// src/plan carry the hint; 0 restores the default.  Nests (restores the
/// previous override on destruction).
class GrainScope {
 public:
  explicit GrainScope(std::size_t grain);
  ~GrainScope();
  GrainScope(const GrainScope&) = delete;
  GrainScope& operator=(const GrainScope&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace pmonge::exec
