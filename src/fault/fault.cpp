#include "fault/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/env.hpp"

namespace pmonge::fault {

namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "exec.chunk_delay",  "exec.chunk_fault",   "serve.admit_jitter",
    "serve.group_fault", "serve.cache_poison", "serve.slow_response",
    "plan.corrupt_plan", "rpc.conn_drop",      "rpc.read_stall",
    "index.node_corrupt",
};

struct SiteState {
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::uint64_t> fired{0};
};

std::atomic<int> g_armed{-1};  // -1 = read PMONGE_FAULT_* on first use
std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint32_t> g_rate_bp{0};
std::atomic<std::uint32_t> g_mask{0};
SiteState g_sites[kSiteCount];

std::size_t idx(Site s) { return static_cast<std::size_t>(s); }

/// splitmix64 finalizer: the decision mix.  Statistically independent
/// streams per (seed, site, evaluation index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void do_arm(std::uint64_t seed, std::uint32_t rate_bp,
            std::uint32_t site_mask) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_rate_bp.store(rate_bp > 10000 ? 10000 : rate_bp,
                  std::memory_order_relaxed);
  g_mask.store(site_mask & kAllSites, std::memory_order_relaxed);
  for (auto& s : g_sites) {
    s.evals.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
  g_armed.store(1, std::memory_order_relaxed);
}

bool init_armed() {
  // env_uint throws loudly on malformed values (the repo-wide knob
  // contract); pmonge-serve touches armed() eagerly so a typo'd
  // PMONGE_FAULT_RATE fails at startup, not mid-soak.
  const auto rate = support::env_uint("PMONGE_FAULT_RATE");
  if (!rate.has_value() || *rate == 0) {
    g_armed.store(0, std::memory_order_relaxed);
    return false;
  }
  const auto seed = support::env_uint("PMONGE_FAULT_SEED");
  std::uint32_t mask = kAllSites;
  if (const char* raw = std::getenv("PMONGE_FAULT_SITES");
      raw != nullptr && *raw != '\0') {
    mask = parse_sites(raw);
  }
  do_arm(seed.value_or(1), static_cast<std::uint32_t>(
                               *rate > 10000 ? 10000 : *rate),
         mask);
  return true;
}

}  // namespace

const char* site_name(Site s) { return kSiteNames[idx(s)]; }

InjectedFault::InjectedFault(Site s)
    : std::runtime_error(std::string("injected fault at ") + site_name(s)),
      site(s) {}

bool armed() {
  const int v = g_armed.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return init_armed();
}

bool should_fire(Site s) {
  if (!armed()) return false;
  if ((g_mask.load(std::memory_order_relaxed) & (1u << idx(s))) == 0) {
    return false;
  }
  SiteState& st = g_sites[idx(s)];
  const std::uint64_t n = st.evals.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seed = g_seed.load(std::memory_order_relaxed);
  const std::uint64_t h =
      mix(seed ^ (static_cast<std::uint64_t>(idx(s)) + 1) *
                     0xd6e8feb86659fd93ULL ^
          n * 0xa0761d6478bd642fULL);
  if (h % 10000 < g_rate_bp.load(std::memory_order_relaxed)) {
    st.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void fire_delay(Site s) {
  // Seeded duration in [20us, 200us): long enough to shuffle thread
  // interleavings, short enough that thousands of injections stay
  // affordable in a soak.
  SiteState& st = g_sites[idx(s)];
  const std::uint64_t n = st.fired.load(std::memory_order_relaxed);
  const std::uint64_t h = mix(g_seed.load(std::memory_order_relaxed) ^
                              (static_cast<std::uint64_t>(idx(s)) + 101) ^
                              n * 0xe7037ed1a0b428dbULL);
  std::this_thread::sleep_for(std::chrono::microseconds(20 + h % 180));
}

std::uint64_t injected(Site s) {
  return g_sites[idx(s)].fired.load(std::memory_order_relaxed);
}

std::uint64_t injected_total() {
  std::uint64_t total = 0;
  for (const auto& s : g_sites) {
    total += s.fired.load(std::memory_order_relaxed);
  }
  return total;
}

Config config() {
  Config c;
  c.armed = armed();
  c.seed = g_seed.load(std::memory_order_relaxed);
  c.rate_bp = g_rate_bp.load(std::memory_order_relaxed);
  c.site_mask = g_mask.load(std::memory_order_relaxed);
  return c;
}

void arm(std::uint64_t seed, std::uint32_t rate_bp, std::uint32_t site_mask) {
  do_arm(seed, rate_bp, site_mask);
}

void disarm() { g_armed.store(0, std::memory_order_relaxed); }

void reset_counters() {
  for (auto& s : g_sites) {
    s.evals.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
}

std::uint32_t parse_sites(const std::string& csv) {
  if (csv == "all") return kAllSites;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    bool found = false;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      if (tok == kSiteNames[i]) {
        mask |= 1u << i;
        found = true;
        break;
      }
    }
    if (!found) {
      std::string names;
      for (std::size_t i = 0; i < kSiteCount; ++i) {
        if (i > 0) names += ", ";
        names += kSiteNames[i];
      }
      throw std::invalid_argument("malformed PMONGE_FAULT_SITES: unknown "
                                  "site \"" +
                                  tok + "\" (want \"all\" or any of: " +
                                  names + ")");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

std::string sites_to_string(std::uint32_t mask) {
  if ((mask & kAllSites) == kAllSites) return "all";
  std::string out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (!out.empty()) out += ',';
    out += kSiteNames[i];
  }
  return out;
}

std::string describe() {
  const Config c = config();
  return "PMONGE_FAULT_SEED=" + std::to_string(c.seed) +
         " PMONGE_FAULT_RATE=" + std::to_string(c.rate_bp) +
         " PMONGE_FAULT_SITES=" + sites_to_string(c.site_mask);
}

}  // namespace pmonge::fault
