// Deterministic, seeded fault injection for the whole stack.
//
// Named injection sites are compiled into the hot paths of exec (chunk
// delay / chunk exception), serve (admission jitter, group failure,
// cache poisoning, slow response writes), plan (plan corruption) and the
// rpc transport (connection drops, read stalls).
// Disarmed -- the default -- every site costs ONE relaxed atomic load,
// the same contract PMONGE_TRACE holds for spans, so production binaries
// carry the sites for free (bench_serve gates the overhead at 2%).
//
// Armed, every decision is a pure function of (seed, site, per-site
// evaluation index): splitmix64 over that triple against a rate in
// basis points (1/10000).  The decision *sequence* per site is therefore
// identical across runs of the same seed; which request observes the
// n-th evaluation still depends on thread interleaving, which is exactly
// why the serve layer must (and does) produce bit-identical responses no
// matter where a fault lands -- the chaos harness (tests/test_chaos.cpp)
// asserts that.
//
// Arming, env knobs (all read once, malformed values throw loudly per
// the support/env.hpp contract; pmonge-serve touches armed() eagerly so
// a typo fails at startup):
//   PMONGE_FAULT_RATE   fire probability in basis points out of 10000
//                       (100 = 1%).  Unset or 0 = disarmed.
//   PMONGE_FAULT_SEED   decision seed (default 1).
//   PMONGE_FAULT_SITES  comma-separated site names, or "all" (default).
// Tests arm programmatically with arm()/disarm() instead.
//
// docs/robustness.md documents the sites and how the serve layer reacts
// to each (retry, degrade, detect).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pmonge::fault {

/// Every named injection site.  Order is the bit position in the
/// PMONGE_FAULT_SITES mask; keep site_name() in sync.
enum class Site : std::uint32_t {
  ExecChunkDelay = 0,  // exec.chunk_delay: sleep before a pool chunk runs
  ExecChunkFault,      // exec.chunk_fault: throw from a pool chunk
  ServeAdmitJitter,    // serve.admit_jitter: sleep in submit() pre-enqueue
  ServeGroupFault,     // serve.group_fault: throw at group dispatch
  ServeCachePoison,    // serve.cache_poison: corrupt a cached value byte
  ServeSlowResponse,   // serve.slow_response: sleep before promises resolve
  PlanCorruptPlan,     // plan.corrupt_plan: planner output scrambled
  RpcConnDrop,         // rpc.conn_drop: abruptly close a TCP connection at
                       // response-write time (client sees EOF, answers lost)
  RpcReadStall,        // rpc.read_stall: seeded delay before draining a
                       // readable socket (latency only, never bytes)
  IndexNodeCorrupt,    // index.node_corrupt: flip a byte in a query-index
                       // node's payload at lookup; the per-node checksum
                       // detects it and the node rebuilds from the array
};

inline constexpr std::size_t kSiteCount = 10;
inline constexpr std::uint32_t kAllSites = (1u << kSiteCount) - 1;

const char* site_name(Site s);

/// The retryable failure every throwing site raises.  The serve layer
/// treats it (and only it) as transient: group retries with backoff,
/// then the circuit breaker, then a `fault_injected` error.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(Site s);
  Site site;
};

/// One relaxed load when the layer is disarmed (after first use reads
/// the env knobs; malformed values throw std::invalid_argument).
bool armed();

/// Seeded decision for one evaluation of `s`.  Always false disarmed or
/// when `s` is masked out; counts the evaluation and (when it fires)
/// the injection otherwise.
bool should_fire(Site s);

/// The delay sites' payload: a short seeded sleep (tens to a couple
/// hundred microseconds -- enough to reorder threads, never enough to
/// trip a sane deadline on its own).
void fire_delay(Site s);

/// Injections fired at `s` / across all sites since the last reset.
std::uint64_t injected(Site s);
std::uint64_t injected_total();

struct Config {
  bool armed = false;
  std::uint64_t seed = 0;
  std::uint32_t rate_bp = 0;   // basis points out of 10000
  std::uint32_t site_mask = 0;
};
Config config();

/// Programmatic arming (test/bench hook; overrides the env knobs).
/// rate_bp == 0 arms the full decision path but never fires -- that is
/// the configuration the bench overhead gate measures.  Resets counters.
void arm(std::uint64_t seed, std::uint32_t rate_bp,
         std::uint32_t site_mask = kAllSites);
void disarm();
void reset_counters();

/// Parse a PMONGE_FAULT_SITES value ("all" or comma-separated names);
/// throws std::invalid_argument naming the offending token.
std::uint32_t parse_sites(const std::string& csv);

/// Render a mask back to the canonical comma-separated form.
std::string sites_to_string(std::uint32_t mask);

/// The env-assignment half of a reproduction command for the current
/// configuration: "PMONGE_FAULT_SEED=s PMONGE_FAULT_RATE=r
/// PMONGE_FAULT_SITES=a,b".  Failure messages lead with this.
std::string describe();

}  // namespace pmonge::fault
