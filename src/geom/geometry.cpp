#include "geom/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace pmonge::geom {

double dist(Point a, Point b) { return std::sqrt(dist2(a, b)); }

ConvexPolygon::ConvexPolygon(std::vector<Point> pts) : v_(std::move(pts)) {
  PMONGE_REQUIRE(v_.size() >= 3, "polygon needs at least 3 vertices");
  PMONGE_REQUIRE(is_strictly_convex_ccw(v_),
                 "vertices must be strictly convex, CCW");
}

bool ConvexPolygon::contains_interior(Point p) const {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (cross(v_[i], v_[next(i)], p) <= 0) return false;
  }
  return true;
}

bool is_strictly_convex_ccw(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = pts[i];
    const Point& b = pts[(i + 1) % n];
    const Point& c = pts[(i + 2) % n];
    if (cross(a, b, c) <= 0) return false;
  }
  return true;
}

bool direction_enters(const ConvexPolygon& poly, std::size_t i, Point d) {
  // Interior wedge at vertex i of a strictly convex CCW polygon: CCW from
  // the outgoing edge (towards next) to the incoming reverse (towards
  // prev).  d strictly inside the wedge enters the interior.
  const Point u = poly[poly.next(i)] - poly[i];
  const Point w = poly[poly.prev(i)] - poly[i];
  return cross(u, d) > 0 && cross(d, w) > 0;
}

bool visible(const ConvexPolygon& P, std::size_t i, const ConvexPolygon& Q,
             std::size_t j) {
  const Point x = P[i], y = Q[j];
  if (direction_enters(P, i, y - x)) return false;
  if (direction_enters(Q, j, x - y)) return false;
  return true;
}

bool segments_cross(Point a, Point b, Point c, Point d) {
  const double d1 = cross(c, d, a);
  const double d2 = cross(c, d, b);
  const double d3 = cross(a, b, c);
  const double d4 = cross(a, b, d);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

bool visible_brute(const ConvexPolygon& P, std::size_t i,
                   const ConvexPolygon& Q, std::size_t j) {
  const Point x = P[i], y = Q[j];
  // The open segment must not meet either interior: check proper edge
  // crossings (skipping edges incident to the segment's own endpoint) and
  // probe points along the segment for interior containment.
  for (std::size_t e = 0; e < P.size(); ++e) {
    if (e == i || P.next(e) == i) continue;
    if (segments_cross(x, y, P[e], P[P.next(e)])) return false;
  }
  for (std::size_t e = 0; e < Q.size(); ++e) {
    if (e == j || Q.next(e) == j) continue;
    if (segments_cross(x, y, Q[e], Q[Q.next(e)])) return false;
  }
  for (double t : {1e-7, 0.5, 1 - 1e-7}) {
    const Point p{x.x + (y.x - x.x) * t, x.y + (y.y - x.y) * t};
    if (P.contains_interior(p) || Q.contains_interior(p)) return false;
  }
  return true;
}

ChainPair split_chains(const ConvexPolygon& poly) {
  const auto& v = poly.vertices();
  const std::size_t n = v.size();
  auto cmp = [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  };
  std::size_t lo = 0, hi = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (cmp(v[i], v[lo])) lo = i;
    if (cmp(v[hi], v[i])) hi = i;
  }
  ChainPair out;
  for (std::size_t i = lo;; i = poly.next(i)) {
    out.lower.push_back(v[i]);
    if (i == hi) break;
  }
  for (std::size_t i = hi;; i = poly.next(i)) {
    out.upper.push_back(v[i]);
    if (i == lo) break;
  }
  return out;
}

ConvexPolygon random_convex_polygon(std::size_t n, Rng& rng, Point center,
                                    double radius) {
  PMONGE_REQUIRE(n >= 3, "polygon needs at least 3 vertices");
  // Distinct sorted angles; points on a circle are strictly convex as
  // long as no two angles coincide (enforced by minimum gap).
  // Jittered equal spacing: strictly increasing angles with gaps at
  // least 0.1 * tau / n by construction, so no rejection loop and the
  // convexity predicate stays numerically comfortable at every n.
  std::vector<double> ang(n);
  const double tau = 6.283185307179586;
  const double phase = rng.uniform(0, tau);
  for (std::size_t i = 0; i < n; ++i) {
    const double jitter = 0.45 * rng.uniform(-1.0, 1.0);  // within +-0.45 slot
    ang[i] = phase + tau * (static_cast<double>(i) + 0.5 + jitter) /
                         static_cast<double>(n);
  }
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {center.x + radius * std::cos(ang[i]),
              center.y + radius * std::sin(ang[i])};
  }
  return ConvexPolygon(std::move(pts));
}

std::pair<ConvexPolygon, ConvexPolygon> random_disjoint_polygons(
    std::size_t m, std::size_t n, Rng& rng) {
  const double r1 = rng.uniform(5, 15), r2 = rng.uniform(5, 15);
  // Horizontal separation strictly larger than the radius sum.
  const double gap = rng.uniform(2, 10);
  ConvexPolygon P = random_convex_polygon(m, rng, {0, 0}, r1);
  ConvexPolygon Q = random_convex_polygon(
      n, rng, {r1 + r2 + gap, rng.uniform(-5, 5)}, r2);
  return {std::move(P), std::move(Q)};
}

}  // namespace pmonge::geom
