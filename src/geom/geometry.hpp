// Planar geometry for the paper's applications: points, convex polygons,
// chains, tangent/visibility predicates between disjoint convex polygons,
// and random instance generators.
//
// Conventions: polygons are simple, strictly convex, vertices in
// counterclockwise (CCW) order.  Visibility between a vertex x of P and a
// vertex y of Q (P, Q disjoint) means the open segment xy meets neither
// polygon's interior.  Because the polygons are convex and x, y lie on
// their boundaries, the segment can only enter an interior *immediately*
// at one of its endpoints, so visibility reduces to two O(1) wedge tests
// (visible()); visible_brute() checks the definition edge by edge and is
// used to validate the fast predicate in the tests.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pmonge::geom {

struct Point {
  double x = 0, y = 0;

  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend bool operator==(const Point&, const Point&) = default;
};

inline double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }
inline double cross(Point o, Point a, Point b) {
  return cross(a - o, b - o);
}
inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
double dist(Point a, Point b);
inline double dist2(Point a, Point b) {
  return dot(a - b, a - b);
}

/// A strictly convex polygon, vertices CCW.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  explicit ConvexPolygon(std::vector<Point> pts);

  std::size_t size() const { return v_.size(); }
  const Point& operator[](std::size_t i) const { return v_[i]; }
  const std::vector<Point>& vertices() const { return v_; }
  std::size_t next(std::size_t i) const { return i + 1 < v_.size() ? i + 1 : 0; }
  std::size_t prev(std::size_t i) const { return i ? i - 1 : v_.size() - 1; }

  /// Strict interior containment.
  bool contains_interior(Point p) const;

 private:
  std::vector<Point> v_;
};

/// Is `pts` (in order) a strictly convex CCW polygon?
bool is_strictly_convex_ccw(const std::vector<Point>& pts);

/// Does the direction `d` from vertex i point strictly into the interior
/// wedge of the polygon at that vertex?
bool direction_enters(const ConvexPolygon& poly, std::size_t i, Point d);

/// O(1) visibility between vertex i of P and vertex j of Q (disjoint
/// convex polygons): neither endpoint's wedge swallows the segment.
bool visible(const ConvexPolygon& P, std::size_t i, const ConvexPolygon& Q,
             std::size_t j);

/// Reference predicate: explicit segment-versus-polygon interior test
/// against every edge of both polygons plus midpoint containment.
bool visible_brute(const ConvexPolygon& P, std::size_t i,
                   const ConvexPolygon& Q, std::size_t j);

/// Proper or touching intersection test between segments [a,b] and [c,d],
/// excluding shared endpoints (helper for visible_brute).
bool segments_cross(Point a, Point b, Point c, Point d);

// ---------------------------------------------------------------------------
// Chains (Figure 1.1)
// ---------------------------------------------------------------------------

/// Split a convex polygon into its two x-monotone chains: the lower chain
/// from the leftmost to the rightmost vertex and the upper chain back.
/// Both are returned in their traversal order around the polygon.
struct ChainPair {
  std::vector<Point> lower;  // leftmost -> rightmost, CCW portion
  std::vector<Point> upper;  // rightmost -> leftmost, CCW portion
};
ChainPair split_chains(const ConvexPolygon& poly);

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Random strictly convex polygon with n vertices: sorted random angles
/// on an ellipse with jittered radius kept convex by construction
/// (points on a circle are always in convex position).
ConvexPolygon random_convex_polygon(std::size_t n, Rng& rng, Point center,
                                    double radius);

/// Two disjoint convex polygons with a vertical separating gap.
std::pair<ConvexPolygon, ConvexPolygon> random_disjoint_polygons(
    std::size_t m, std::size_t n, Rng& rng);

}  // namespace pmonge::geom
