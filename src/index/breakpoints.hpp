// Per-node column-optimum structures for the Monge query index.
//
// A query-index node covers a contiguous row range [row_lo, row_hi) of a
// registered array and must answer, for an arbitrary column interval
// [c0, c1], "which (value, row, col) is optimal over my rows?" in
// O(lg n).  Two small structures per node and direction provide that:
//
//   * ColOptTree -- an iterative segment tree over the node's per-column
//     optima.  Leaf j holds (value over the node's rows in column j,
//     column j); an internal node holds the lexicographic best of its
//     children.  Empty columns (a staircase column with no finite entry
//     in the node's rows) are marked with col = kEmptyCol and skipped by
//     the combiner -- values are NEVER used as sentinels, because
//     registered dense data may hold arbitrary int64 entries.
//
//   * Breakpoints -- the run-compressed "owner" list mapping each column
//     to the topmost row achieving that column's optimum.  For Monge
//     arrays the owner sequence is monotone and compresses to O(rows)
//     runs (the classic breakpoint list); run compression is correct
//     regardless, so staircase nodes use the same structure.
//
// The combiner's order is the library-wide tie convention: smaller value
// wins (greater for maxima), equal values break toward the smaller
// column, and the owner row is the topmost.  It is commutative and
// associative, so the bottom-up iterative tree is order-independent and
// a range query returns exactly the optimum a direct scan would.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pmonge::index {

/// Sentinel column for "no finite entry" (empty staircase column).
inline constexpr std::int32_t kEmptyCol = -1;

/// Owner row for an empty column.
inline constexpr std::uint32_t kNoOwner = 0xffffffffu;

/// Fold `(v, c)` into the running best `(bv, bc)` under the tie
/// convention (strictly better value, or equal value and smaller
/// column).  Empty candidates never win; anything beats an empty best.
inline void combine_opt(bool maxima, std::int64_t v, std::int32_t c,
                        std::int64_t& bv, std::int32_t& bc) {
  if (c == kEmptyCol) return;
  if (bc == kEmptyCol) {
    bv = v;
    bc = c;
    return;
  }
  const bool better = maxima ? (v > bv || (v == bv && c < bc))
                             : (v < bv || (v == bv && c < bc));
  if (better) {
    bv = v;
    bc = c;
  }
}

/// Iterative segment tree over one node's per-column optima; leaves at
/// [n, 2n).  Works for any n (not just powers of two) because the
/// combiner is commutative.
class ColOptTree {
 public:
  /// Build from per-column values and owners; owner kNoOwner marks an
  /// empty column.
  void build(bool maxima, const std::vector<std::int64_t>& val,
             const std::vector<std::uint32_t>& owner) {
    const std::size_t n = val.size();
    n_ = n;
    vals_.assign(2 * n, 0);
    cols_.assign(2 * n, kEmptyCol);
    for (std::size_t j = 0; j < n; ++j) {
      if (owner[j] != kNoOwner) {
        vals_[n + j] = val[j];
        cols_[n + j] = static_cast<std::int32_t>(j);
      }
    }
    for (std::size_t i = n; i-- > 1;) {
      std::int64_t bv = vals_[2 * i];
      std::int32_t bc = cols_[2 * i];
      combine_opt(maxima, vals_[2 * i + 1], cols_[2 * i + 1], bv, bc);
      vals_[i] = bv;
      cols_[i] = bc;
    }
  }

  /// Best (value, col) over columns [c0, c1] inclusive; col kEmptyCol if
  /// every column in the interval is empty.
  std::pair<std::int64_t, std::int32_t> query(bool maxima, std::size_t c0,
                                              std::size_t c1) const {
    std::int64_t bv = 0;
    std::int32_t bc = kEmptyCol;
    for (std::size_t l = c0 + n_, r = c1 + 1 + n_; l < r; l >>= 1, r >>= 1) {
      if (l & 1) {
        combine_opt(maxima, vals_[l], cols_[l], bv, bc);
        ++l;
      }
      if (r & 1) {
        --r;
        combine_opt(maxima, vals_[r], cols_[r], bv, bc);
      }
    }
    return {bv, bc};
  }

  std::size_t cols() const { return n_; }
  std::size_t memory_bytes() const {
    // size(), not capacity(): the index_build response reports this
    // number and must be a pure function of the array contents.
    return vals_.size() * sizeof(std::int64_t) +
           cols_.size() * sizeof(std::int32_t);
  }

  const std::vector<std::int64_t>& raw_vals() const { return vals_; }
  const std::vector<std::int32_t>& raw_cols() const { return cols_; }
  /// Mutable payload access for the fault layer's node-corruption site.
  std::vector<std::int64_t>& mutable_vals() { return vals_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::int64_t> vals_;  // [1, 2n): tree; [n, 2n): leaves
  std::vector<std::int32_t> cols_;  // kEmptyCol marks an empty slot
};

/// Run-compressed column -> topmost-owner-row map.
class Breakpoints {
 public:
  void build(const std::vector<std::uint32_t>& owner) {
    start_.clear();
    row_.clear();
    for (std::size_t j = 0; j < owner.size(); ++j) {
      if (row_.empty() || owner[j] != row_.back()) {
        start_.push_back(static_cast<std::uint32_t>(j));
        row_.push_back(owner[j]);
      }
    }
  }

  /// Topmost row achieving column `col`'s optimum (kNoOwner if empty).
  std::uint32_t owner(std::size_t col) const {
    const auto it = std::upper_bound(start_.begin(), start_.end(),
                                     static_cast<std::uint32_t>(col));
    return row_[static_cast<std::size_t>(it - start_.begin()) - 1];
  }

  std::size_t runs() const { return row_.size(); }
  std::size_t memory_bytes() const {
    return (start_.size() + row_.size()) * sizeof(std::uint32_t);
  }

  const std::vector<std::uint32_t>& raw_starts() const { return start_; }
  const std::vector<std::uint32_t>& raw_rows() const { return row_; }

 private:
  std::vector<std::uint32_t> start_;  // run start columns; start_[0] == 0
  std::vector<std::uint32_t> row_;    // owner row per run
};

}  // namespace pmonge::index
