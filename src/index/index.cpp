#include "index/index.hpp"

#include <chrono>
#include <functional>
#include <optional>
#include <utility>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "monge/smawk.hpp"
#include "obs/trace.hpp"
#include "par/monge_rowminima.hpp"

namespace pmonge::index {

namespace {

using DenseSub = monge::SubArray<monge::DenseArray<std::int64_t>>;

/// FNV-1a over a raw byte range.
std::uint64_t fnv1a(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <class T>
std::uint64_t fnv1a_vec(std::uint64_t h, const std::vector<T>& v) {
  return fnv1a(h, v.data(), v.size() * sizeof(T));
}

/// Fold candidate (v, r, c) into `best` under the global tie convention:
/// better value wins; equal values break to the smaller column; equal
/// (value, column) keeps the incumbent -- so feeding candidates in
/// ascending row order leaves the topmost row.
void combine_region(bool maxima, std::int64_t v, std::size_t r, std::size_t c,
                    RegionOpt& best) {
  if (!best.has) {
    best = {true, v, r, c};
    return;
  }
  const bool better = maxima
                          ? (v > best.value || (v == best.value && c < best.col))
                          : (v < best.value || (v == best.value && c < best.col));
  if (better) best = {true, v, r, c};
}

/// Leftmost per-row optima of a dense sub-block, dispatched on the
/// registered kind.  SMAWK's four wrapper variants all return the
/// leftmost optimum, which is exactly the tie the index stores.
std::vector<monge::RowOpt<std::int64_t>> dense_row_opts(
    const serve::ArrayEntry& e, bool maxima, const DenseSub& sub) {
  const bool inverse = e.kind == serve::ArrayEntry::Kind::InverseMonge;
  if (maxima) {
    return inverse ? monge::smawk_row_maxima_inverse_monge(sub)
                   : monge::smawk_row_maxima_monge(sub);
  }
  return inverse ? monge::smawk_row_minima_inverse_monge(sub)
                 : monge::smawk_row_minima(sub);
}

/// Staircase piece: frontier-bounded row-major scan over
/// [a, b] x [c0, c1].  Top-down with strict improvement == topmost tie.
void staircase_piece(const serve::ArrayEntry& e, bool maxima, std::size_t a,
                     std::size_t b, std::size_t c0, std::size_t c1,
                     RegionOpt& best) {
  for (std::size_t r = a; r <= b; ++r) {
    const std::size_t f = e.frontier[r] < c1 + 1 ? e.frontier[r] : c1 + 1;
    for (std::size_t j = c0; j < f; ++j) {
      combine_region(maxima, e.data(r, j), r, j, best);
    }
  }
}

/// Dense piece via one SMAWK pass over the sub-block, rows combined in
/// ascending order.
void dense_piece(const serve::ArrayEntry& e, bool maxima, std::size_t a,
                 std::size_t b, std::size_t c0, std::size_t c1,
                 RegionOpt& best) {
  const DenseSub sub(e.data, a, b - a + 1, c0, c1 - c0 + 1);
  const auto opt = dense_row_opts(e, maxima, sub);
  for (std::size_t i = 0; i < opt.size(); ++i) {
    combine_region(maxima, opt[i].value, a + i, c0 + opt[i].col, best);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

Index::Index(std::shared_ptr<const serve::ArrayEntry> entry,
             std::size_t leaf_rows)
    : entry_(std::move(entry)), leaf_rows_(leaf_rows == 0 ? 1 : leaf_rows) {}

std::size_t Index::build_topology(std::size_t blo, std::size_t bhi) {
  const std::size_t ni = nodes_.size();
  nodes_.emplace_back();
  nodes_[ni].blk_lo = blo;
  nodes_[ni].blk_hi = bhi;
  nodes_[ni].row_lo = block_lo(blo);
  nodes_[ni].row_hi = block_hi(bhi - 1);
  if (bhi - blo > 1) {
    const std::size_t mid = blo + (bhi - blo) / 2;
    const std::size_t l = build_topology(blo, mid);
    const std::size_t r = build_topology(mid, bhi);
    nodes_[ni].left = l;
    nodes_[ni].right = r;
  }
  return ni;
}

void Index::compute_colopt(bool maxima, std::size_t row_lo, std::size_t row_hi,
                           ColOpt& out) const {
  const serve::ArrayEntry& e = *entry_;
  const std::size_t w = e.data.cols();
  out.val.assign(w, 0);
  out.owner.assign(w, kNoOwner);
  if (e.kind == serve::ArrayEntry::Kind::Staircase) {
    // Frontier geometry alone decides finiteness (the rows holding a
    // finite entry of column j form a prefix); ascending-row scan with
    // strict improvement keeps the topmost owner.
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      const std::size_t f = e.frontier[r] < w ? e.frontier[r] : w;
      for (std::size_t j = 0; j < f; ++j) {
        const std::int64_t v = e.data(r, j);
        if (out.owner[j] == kNoOwner ||
            (maxima ? v > out.val[j] : v < out.val[j])) {
          out.val[j] = v;
          out.owner[j] = static_cast<std::uint32_t>(r);
        }
      }
    }
    return;
  }
  // Dense: per-column optima are the per-row optima of the transposed
  // block (transposition preserves Monge-ness and inverse-Monge-ness);
  // SMAWK's leftmost transposed column is the topmost row.
  const DenseSub block(e.data, row_lo, row_hi - row_lo, 0, w);
  const monge::Transpose<DenseSub> t(block);
  const bool inverse = e.kind == serve::ArrayEntry::Kind::InverseMonge;
  std::vector<monge::RowOpt<std::int64_t>> opt;
  if (maxima) {
    opt = inverse ? monge::smawk_row_maxima_inverse_monge(t)
                  : monge::smawk_row_maxima_monge(t);
  } else {
    opt = inverse ? monge::smawk_row_minima_inverse_monge(t)
                  : monge::smawk_row_minima(t);
  }
  for (std::size_t j = 0; j < w; ++j) {
    out.val[j] = opt[j].value;
    out.owner[j] = static_cast<std::uint32_t>(row_lo + opt[j].col);
  }
}

std::uint64_t Index::node_checksum(const Node& nd) {
  std::uint64_t h = 14695981039346656037ull;
  for (const DirData& d : nd.dir) {
    h = fnv1a_vec(h, d.tree.raw_vals());
    h = fnv1a_vec(h, d.tree.raw_cols());
    h = fnv1a_vec(h, d.bp.raw_starts());
    h = fnv1a_vec(h, d.bp.raw_rows());
  }
  return h;
}

void Index::finalize_node(Node& nd, const ColOpt& mins, const ColOpt& maxs) {
  nd.dir[0].tree.build(false, mins.val, mins.owner);
  nd.dir[0].bp.build(mins.owner);
  nd.dir[1].tree.build(true, maxs.val, maxs.owner);
  nd.dir[1].bp.build(maxs.owner);
  nd.checksum = node_checksum(nd);
}

void Index::rebuild_node(Node& nd) {
  // Always from the source array, leaf-style: merging children could
  // silently propagate a corruption the checksum of THIS node cannot
  // see.
  ColOpt mins, maxs;
  compute_colopt(false, nd.row_lo, nd.row_hi, mins);
  compute_colopt(true, nd.row_lo, nd.row_hi, maxs);
  finalize_node(nd, mins, maxs);
}

void Index::build() {
  obs::Span span("index.build");
  const auto t0 = std::chrono::steady_clock::now();
  const serve::ArrayEntry& e = *entry_;
  const std::size_t m = e.data.rows();
  const std::size_t w = e.data.cols();
  num_blocks_ = (m + leaf_rows_ - 1) / leaf_rows_;
  nodes_.clear();
  nodes_.reserve(2 * num_blocks_);
  build_topology(0, num_blocks_);

  // Below the library's serial cutoff the whole build stays on the
  // calling thread -- identical structure, no pool submissions.
  std::optional<exec::SerialScope> serial;
  if (m * w <= par::kSerialCutoffCells) serial.emplace();

  std::vector<ColOpt> mins(nodes_.size()), maxs(nodes_.size());
  std::vector<std::function<void()>> jobs;
  jobs.reserve(num_blocks_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].left != kNone) continue;
    jobs.push_back([this, i, &mins, &maxs] {
      compute_colopt(false, nodes_[i].row_lo, nodes_[i].row_hi, mins[i]);
      compute_colopt(true, nodes_[i].row_lo, nodes_[i].row_hi, maxs[i]);
    });
  }
  exec::parallel_jobs(jobs);

  // Internal nodes merge their children's per-column optima column-wise.
  // build_topology creates parents before children, so a descending
  // index walk sees children first.  The upper (left) child wins value
  // ties, keeping owners topmost.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const Node& nd = nodes_[i];
    if (nd.left == kNone) continue;
    for (int d = 0; d < 2; ++d) {
      const bool maxima = d == 1;
      const ColOpt& up = maxima ? maxs[nd.left] : mins[nd.left];
      const ColOpt& lo = maxima ? maxs[nd.right] : mins[nd.right];
      ColOpt& out = maxima ? maxs[i] : mins[i];
      out.val.assign(w, 0);
      out.owner.assign(w, kNoOwner);
      for (std::size_t j = 0; j < w; ++j) {
        if (up.owner[j] == kNoOwner) {
          out.val[j] = lo.val[j];
          out.owner[j] = lo.owner[j];
        } else if (lo.owner[j] == kNoOwner ||
                   !(maxima ? lo.val[j] > up.val[j] : lo.val[j] < up.val[j])) {
          out.val[j] = up.val[j];
          out.owner[j] = up.owner[j];
        } else {
          out.val[j] = lo.val[j];
          out.owner[j] = lo.owner[j];
        }
      }
    }
  }

  memory_bytes_ = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    finalize_node(nodes_[i], mins[i], maxs[i]);
    memory_bytes_ += sizeof(Node);
    for (const DirData& d : nodes_[i].dir) {
      memory_bytes_ += d.tree.memory_bytes() + d.bp.memory_bytes();
    }
  }
  build_us_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  span.set_arg("nodes", nodes_.size());
}

void Index::collect_canonical(std::size_t ni, std::size_t blo, std::size_t bhi,
                              exec::ScratchVector<std::size_t>& out) const {
  const Node& nd = nodes_[ni];
  if (blo <= nd.blk_lo && nd.blk_hi <= bhi) {
    out.push_back(ni);
    return;
  }
  if (nd.left == kNone) return;
  const std::size_t mid = nodes_[nd.left].blk_hi;
  if (blo < mid) collect_canonical(nd.left, blo, bhi, out);
  if (bhi > mid) collect_canonical(nd.right, blo, bhi, out);
}

void Index::piece_opt(bool maxima, std::size_t a, std::size_t b,
                      std::size_t c0, std::size_t c1, RegionOpt& best) const {
  if (entry_->kind == serve::ArrayEntry::Kind::Staircase) {
    staircase_piece(*entry_, maxima, a, b, c0, c1, best);
  } else {
    dense_piece(*entry_, maxima, a, b, c0, c1, best);
  }
}

RegionOpt Index::submatrix_opt(bool maxima, std::size_t r0, std::size_t r1,
                               std::size_t c0, std::size_t c1) {
  obs::Span span("index.lookup");
  span.set_detail(maxima ? "max" : "min");
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const bool armed = fault::armed();
  // Armed lookups verify checksums and may rebuild nodes in place, so
  // they serialize; the common disarmed path shares the lock.
  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (armed) {
    exclusive.lock();
  } else {
    shared.lock();
  }

  RegionOpt best;
  const std::size_t dslot = maxima ? 1 : 0;
  // Per-lookup scratch: the O(lg m) canonical-node list bumps this
  // thread's arena instead of allocating per query.
  exec::ScratchScope scratch;
  const auto canonical = [&](std::size_t fb0, std::size_t fb1) {
    auto canon = exec::scratch_vector<std::size_t>();
    collect_canonical(0, fb0, fb1 + 1, canon);
    for (const std::size_t ni : canon) {
      Node& nd = nodes_[ni];
      if (armed) {
        if (fault::should_fire(fault::Site::IndexNodeCorrupt)) {
          auto& vals = nd.dir[dslot].tree.mutable_vals();
          if (!vals.empty()) {
            auto* bytes = reinterpret_cast<unsigned char*>(vals.data());
            bytes[(vals.size() * sizeof(std::int64_t)) / 2] ^= 0x5a;
          }
        }
        if (node_checksum(nd) != nd.checksum) {
          corrupt_detected_.fetch_add(1, std::memory_order_relaxed);
          rebuild_node(nd);
          node_rebuilds_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const DirData& d = nd.dir[dslot];
      const auto [v, c] = d.tree.query(maxima, c0, c1);
      if (c == kEmptyCol) continue;
      const std::uint32_t row = d.bp.owner(static_cast<std::size_t>(c));
      combine_region(maxima, v, row, static_cast<std::size_t>(c), best);
    }
  };

  // Decompose [r0, r1] into <= 2 partial leaf-edge pieces plus canonical
  // nodes over the fully-covered blocks, evaluated in ascending row
  // order so first-wins ties stay topmost.
  const std::size_t b0 = r0 / leaf_rows_;
  const std::size_t b1 = r1 / leaf_rows_;
  if (b0 == b1) {
    if (r0 == block_lo(b0) && r1 + 1 == block_hi(b0)) {
      canonical(b0, b0);
    } else {
      piece_opt(maxima, r0, r1, c0, c1, best);
    }
  } else {
    const std::size_t fb0 = r0 == block_lo(b0) ? b0 : b0 + 1;
    const std::size_t fb1 = r1 + 1 == block_hi(b1) ? b1 : b1 - 1;
    if (fb0 > b0) piece_opt(maxima, r0, block_hi(b0) - 1, c0, c1, best);
    if (fb0 <= fb1) canonical(fb0, fb1);
    if (fb1 < b1) piece_opt(maxima, block_lo(b1), r1, c0, c1, best);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Direct fallback
// ---------------------------------------------------------------------------

RegionOpt submatrix_direct(const serve::ArrayEntry& entry, bool maxima,
                           plan::Algo algo, std::size_t r0, std::size_t r1,
                           std::size_t c0, std::size_t c1) {
  RegionOpt best;
  if (entry.kind == serve::ArrayEntry::Kind::Staircase) {
    // Padding infinities break total monotonicity, so every algorithm
    // runs the frontier scan (cf. the staircase kernels' grouping).
    staircase_piece(entry, maxima, r0, r1, c0, c1, best);
    return best;
  }
  const std::size_t nr = r1 - r0 + 1;
  const std::size_t nc = c1 - c0 + 1;
  switch (algo) {
    case plan::Algo::Brute: {
      for (std::size_t r = r0; r <= r1; ++r) {
        for (std::size_t j = c0; j <= c1; ++j) {
          combine_region(maxima, entry.data(r, j), r, j, best);
        }
      }
      return best;
    }
    case plan::Algo::Sequential: {
      dense_piece(entry, maxima, r0, r1, c0, c1, best);
      return best;
    }
    case plan::Algo::Parallel: {
      // Fixed row chunks, one SMAWK per chunk on the engine, chunk
      // results folded serially in chunk order: the combine order is a
      // total order on (value, col, row), so the chunking cannot change
      // the answer.
      std::size_t grain = exec::grain_for(nc == 0 ? 1 : nc);
      if (grain == 0) grain = 1;
      const std::size_t nchunks = (nr + grain - 1) / grain;
      std::vector<RegionOpt> part(nchunks);
      exec::parallel_for(nchunks, 1, [&](std::size_t c) {
        const std::size_t lo = r0 + c * grain;
        const std::size_t hi = lo + grain - 1 < r1 ? lo + grain - 1 : r1;
        dense_piece(entry, maxima, lo, hi, c0, c1, part[c]);
      });
      for (const RegionOpt& p : part) {
        if (p.has) combine_region(maxima, p.value, p.row, p.col, best);
      }
      return best;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// IndexManager
// ---------------------------------------------------------------------------

IndexManager::BuildInfo IndexManager::build(
    std::uint64_t id, std::shared_ptr<const serve::ArrayEntry> entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = indexes_.find(id);
    if (it != indexes_.end()) {
      return {it->second->nodes(), it->second->leaf_rows(),
              it->second->memory_bytes()};
    }
  }
  auto idx = std::make_shared<Index>(std::move(entry));
  idx->build();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = indexes_.emplace(id, idx);
  if (inserted) {
    builds_.fetch_add(1, std::memory_order_relaxed);
  } else {
    idx = it->second;  // lost a racing build; both are equivalent
  }
  return {idx->nodes(), idx->leaf_rows(), idx->memory_bytes()};
}

bool IndexManager::drop(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = indexes_.find(id);
  if (it == indexes_.end()) return false;
  retired_lookups_.fetch_add(it->second->lookups(), std::memory_order_relaxed);
  retired_corrupt_.fetch_add(it->second->corrupt_detected(),
                             std::memory_order_relaxed);
  retired_rebuilds_.fetch_add(it->second->node_rebuilds(),
                              std::memory_order_relaxed);
  indexes_.erase(it);
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<Index> IndexManager::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : it->second;
}

std::size_t IndexManager::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.size();
}

serve::Json IndexManager::stats_json() const {
  std::uint64_t lookups = retired_lookups_.load();
  std::uint64_t corrupt = retired_corrupt_.load();
  std::uint64_t rebuilds = retired_rebuilds_.load();
  std::uint64_t nodes = 0;
  std::uint64_t memory = 0;
  std::size_t arrays = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    arrays = indexes_.size();
    for (const auto& [id, idx] : indexes_) {
      lookups += idx->lookups();
      corrupt += idx->corrupt_detected();
      rebuilds += idx->node_rebuilds();
      nodes += idx->nodes();
      memory += idx->memory_bytes();
    }
  }
  serve::Json::Obj o;
  o["arrays"] = arrays;
  o["builds"] = builds_.load();
  o["drops"] = drops_.load();
  o["lookups"] = lookups;
  o["corrupt_detected"] = corrupt;
  o["node_rebuilds"] = rebuilds;
  o["nodes"] = nodes;
  o["memory_bytes"] = memory;
  return serve::Json(std::move(o));
}

}  // namespace pmonge::index
