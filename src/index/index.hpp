// Monge query-index subsystem: build-once submatrix min/max structures
// for repeated-query serving.
//
// An Index preprocesses one registered Monge / inverse-Monge /
// staircase-Monge array into a balanced binary tree over blocks of
// kDefaultLeafRows consecutive rows.  Every node covers a contiguous
// row range and stores, per direction (min and max), its per-column
// optima as a segment tree plus the run-compressed breakpoint list of
// topmost owner rows (breakpoints.hpp).  A submatrix query
// [r0, r1] x [c0, c1] decomposes its row interval into at most two
// partial leaf-edge pieces (solved directly by SMAWK / frontier scan
// over the sub-block) and O(lg m) canonical tree nodes (answered by one
// segment-tree range query + one breakpoint binary search each); the
// pieces are combined in ascending row order under the library tie
// convention, which makes the result bit-identical to a direct kernel
// run over the sub-block *by construction* (docs/indexing.md has the
// argument).
//
// Construction runs on the exec engine: one job per leaf block through
// exec::parallel_jobs, the whole build under exec::SerialScope when the
// array is below the library's serial cutoff.  Lookups take a shared
// lock; when the fault layer is armed, the index.node_corrupt site may
// flip a byte in a visited node's payload, the per-node FNV-1a checksum
// detects it, and the node is rebuilt from the source array (never from
// its children, which could be silently corrupt themselves) -- armed
// lookups therefore take the exclusive lock.  Disarmed, checksum
// verification is skipped entirely and the arming check is one relaxed
// atomic load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "exec/scratch.hpp"
#include "index/breakpoints.hpp"
#include "plan/cost_model.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"

namespace pmonge::index {

/// Rows per leaf block.  Small enough that a partial-piece direct solve
/// stays O(leaf + width) probes, large enough that the tree over a
/// 4096-row array has ~127 nodes.
inline constexpr std::size_t kDefaultLeafRows = 64;

/// Result of one submatrix query.  `has == false` means the region holds
/// no finite entry (possible only for staircase arrays).
struct RegionOpt {
  bool has = false;
  std::int64_t value = 0;
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Build-once submatrix min/max index over one registered array.
class Index {
 public:
  explicit Index(std::shared_ptr<const serve::ArrayEntry> entry,
                 std::size_t leaf_rows = kDefaultLeafRows);

  /// Construct every node (parallel over leaf blocks; serial below the
  /// cutoff).  Must be called exactly once, before any lookup.
  void build();

  /// Optimum of [r0, r1] x [c0, c1] (inclusive, caller-validated).
  /// Thread-safe; byte-identical to submatrix_direct on the same entry.
  RegionOpt submatrix_opt(bool maxima, std::size_t r0, std::size_t r1,
                          std::size_t c0, std::size_t c1);

  std::size_t nodes() const { return nodes_.size(); }
  std::size_t leaf_rows() const { return leaf_rows_; }
  std::size_t memory_bytes() const { return memory_bytes_; }
  std::uint64_t lookups() const { return lookups_.load(); }
  std::uint64_t corrupt_detected() const { return corrupt_detected_.load(); }
  std::uint64_t node_rebuilds() const { return node_rebuilds_.load(); }
  std::uint64_t build_us() const { return build_us_; }
  const serve::ArrayEntry& entry() const { return *entry_; }

 private:
  struct DirData {
    ColOptTree tree;
    Breakpoints bp;
  };
  struct Node {
    std::size_t row_lo = 0, row_hi = 0;  // covered rows [row_lo, row_hi)
    std::size_t blk_lo = 0, blk_hi = 0;  // covered leaf blocks
    std::size_t left = kNone, right = kNone;
    DirData dir[2];  // [0] minima, [1] maxima
    std::uint64_t checksum = 0;
  };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct ColOpt {  // build/rebuild scratch: one node, one direction
    std::vector<std::int64_t> val;
    std::vector<std::uint32_t> owner;
  };

  std::size_t block_lo(std::size_t b) const { return b * leaf_rows_; }
  std::size_t block_hi(std::size_t b) const {
    const std::size_t hi = (b + 1) * leaf_rows_;
    return hi < entry_->data.rows() ? hi : entry_->data.rows();
  }

  std::size_t build_topology(std::size_t blo, std::size_t bhi);
  void compute_colopt(bool maxima, std::size_t row_lo, std::size_t row_hi,
                      ColOpt& out) const;
  void finalize_node(Node& nd, const ColOpt& mins, const ColOpt& maxs);
  void rebuild_node(Node& nd);
  void collect_canonical(std::size_t ni, std::size_t blo, std::size_t bhi,
                         exec::ScratchVector<std::size_t>& out) const;
  void piece_opt(bool maxima, std::size_t a, std::size_t b, std::size_t c0,
                 std::size_t c1, RegionOpt& best) const;
  static std::uint64_t node_checksum(const Node& nd);

  std::shared_ptr<const serve::ArrayEntry> entry_;
  std::size_t leaf_rows_;
  std::size_t num_blocks_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::size_t memory_bytes_ = 0;
  std::uint64_t build_us_ = 0;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> corrupt_detected_{0};
  std::atomic<std::uint64_t> node_rebuilds_{0};
  mutable std::shared_mutex mu_;  // exclusive only when faults are armed
};

/// Direct (unindexed) submatrix optimum: the fallback the batcher runs
/// when no index exists, dispatched by planner algorithm.  Every variant
/// returns the same bytes as Index::submatrix_opt:
///   Brute      -- row-major scan with strict lexicographic improvement,
///   Sequential -- per-row SMAWK over the sub-block, combined ascending,
///   Parallel   -- per-row optima via the exec engine's deterministic
///                 reduce (the tie order is a total order, so the chunked
///                 association cannot change the answer).
/// Staircase arrays always use the finite-prefix frontier scan (SMAWK
/// assumes total monotonicity, which padding infinities break).
RegionOpt submatrix_direct(const serve::ArrayEntry& entry, bool maxima,
                           plan::Algo algo, std::size_t r0, std::size_t r1,
                           std::size_t c0, std::size_t c1);

/// Registry-keyed index table for the serve layer.  Build publishes a
/// fully-constructed Index (lookups never observe a partial build);
/// drop is the `unregister` invalidation hook -- an index must never
/// survive its array.
class IndexManager {
 public:
  struct BuildInfo {
    std::size_t nodes = 0;
    std::size_t leaf_rows = 0;
    std::size_t memory_bytes = 0;
  };

  /// Build (or return the existing) index for `id`.  Idempotent: the
  /// response fields are a pure function of the array contents.
  BuildInfo build(std::uint64_t id,
                  std::shared_ptr<const serve::ArrayEntry> entry);
  bool drop(std::uint64_t id);
  std::shared_ptr<Index> get(std::uint64_t id) const;
  std::size_t count() const;

  /// Aggregate counters for the `stats` op / Prometheus exposition.
  serve::Json stats_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Index>> indexes_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> drops_{0};
  // Counters of dropped indexes live on here so `stats` totals survive
  // an unregister.
  std::atomic<std::uint64_t> retired_lookups_{0};
  std::atomic<std::uint64_t> retired_corrupt_{0};
  std::atomic<std::uint64_t> retired_rebuilds_{0};
};

}  // namespace pmonge::index
