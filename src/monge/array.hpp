// Two-dimensional array abstractions for Monge searching.
//
// All search algorithms in this library are written against the Array2D
// concept: anything exposing rows(), cols() and operator()(i, j).  This
// lets the same SMAWK / parallel searching code run over
//   * DenseArray<T>      -- materialized entries,
//   * FuncArray<T, F>    -- implicit arrays whose (i,j) entry is computed
//                           on demand in O(1) (the PRAM model of Section 1.2),
//   * adaptor views      -- negation, transposition, column reversal and
//                           rectangular sub-blocks, which move between the
//                           row-minima/row-maxima and Monge/inverse-Monge
//                           variants of every problem, and
//   * StaircaseArray<A>  -- a finite upper-left staircase region padded
//                           with +infinity (Section 1.1's staircase-Monge).
#pragma once

#include <cstddef>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace pmonge::monge {

template <class A>
concept Array2D = requires(const A& a, std::size_t i, std::size_t j) {
  typename A::value_type;
  { a.rows() } -> std::convertible_to<std::size_t>;
  { a.cols() } -> std::convertible_to<std::size_t>;
  { a(i, j) } -> std::convertible_to<typename A::value_type>;
};

/// "Infinity" for a value type: true infinity for floating point, a large
/// sentinel for integers chosen so that sums of two infinities still do
/// not overflow (staircase algorithms add entries to row/column offsets).
template <class T>
constexpr T inf() {
  if constexpr (std::is_floating_point_v<T>) {
    return std::numeric_limits<T>::infinity();
  } else {
    return std::numeric_limits<T>::max() / 4;
  }
}

template <class T>
constexpr bool is_infinite(T x) {
  return x >= inf<T>();
}

// ---------------------------------------------------------------------------
// Concrete arrays
// ---------------------------------------------------------------------------

template <class T>
class DenseArray {
 public:
  using value_type = T;

  DenseArray() = default;
  DenseArray(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }
  T& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Implicit array: entry (i,j) computed on demand by a callable.
template <class T, class F>
class FuncArray {
 public:
  using value_type = T;

  FuncArray(std::size_t rows, std::size_t cols, F f)
      : rows_(rows), cols_(cols), f_(std::move(f)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  T operator()(std::size_t i, std::size_t j) const { return f_(i, j); }

 private:
  std::size_t rows_;
  std::size_t cols_;
  F f_;
};

template <class T, class F>
FuncArray<T, F> make_func_array(std::size_t rows, std::size_t cols, F f) {
  return FuncArray<T, F>(rows, cols, std::move(f));
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

/// Negation view: turns row-maxima problems into row-minima problems and
/// Monge arrays into inverse-Monge arrays (and vice versa).
template <Array2D A>
class Negate {
 public:
  using value_type = typename A::value_type;
  explicit Negate(const A& a) : a_(&a) {}
  std::size_t rows() const { return a_->rows(); }
  std::size_t cols() const { return a_->cols(); }
  value_type operator()(std::size_t i, std::size_t j) const {
    return -(*a_)(i, j);
  }

 private:
  const A* a_;
};

/// Column-reversal view: maps Monge <-> inverse-Monge while preserving the
/// optimization direction.
template <Array2D A>
class ReverseCols {
 public:
  using value_type = typename A::value_type;
  explicit ReverseCols(const A& a) : a_(&a) {}
  std::size_t rows() const { return a_->rows(); }
  std::size_t cols() const { return a_->cols(); }
  value_type operator()(std::size_t i, std::size_t j) const {
    return (*a_)(i, cols() - 1 - j);
  }

 private:
  const A* a_;
};

/// Transposition view (Monge-ness is preserved under transpose).
template <Array2D A>
class Transpose {
 public:
  using value_type = typename A::value_type;
  explicit Transpose(const A& a) : a_(&a) {}
  std::size_t rows() const { return a_->cols(); }
  std::size_t cols() const { return a_->rows(); }
  value_type operator()(std::size_t i, std::size_t j) const {
    return (*a_)(j, i);
  }

 private:
  const A* a_;
};

/// Rectangular sub-block [r0, r0+nrows) x [c0, c0+ncols) of a parent array.
template <Array2D A>
class SubArray {
 public:
  using value_type = typename A::value_type;
  SubArray(const A& a, std::size_t r0, std::size_t nrows, std::size_t c0,
           std::size_t ncols)
      : a_(&a), r0_(r0), c0_(c0), rows_(nrows), cols_(ncols) {
    PMONGE_REQUIRE(r0 + nrows <= a.rows() && c0 + ncols <= a.cols(),
                   "sub-array out of range");
  }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  value_type operator()(std::size_t i, std::size_t j) const {
    return (*a_)(r0_ + i, c0_ + j);
  }
  std::size_t row0() const { return r0_; }
  std::size_t col0() const { return c0_; }

 private:
  const A* a_;
  std::size_t r0_, c0_, rows_, cols_;
};

/// Row-selection view: keeps an explicit subset of rows (used for the
/// sampled rows R_i of Section 2 and the fill-in phases of Lemma 2.1).
template <Array2D A>
class RowSelect {
 public:
  using value_type = typename A::value_type;
  RowSelect(const A& a, std::vector<std::size_t> rows)
      : a_(&a), rows_(std::move(rows)) {}
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return a_->cols(); }
  value_type operator()(std::size_t i, std::size_t j) const {
    return (*a_)(rows_[i], j);
  }
  std::size_t parent_row(std::size_t i) const { return rows_[i]; }

 private:
  const A* a_;
  std::vector<std::size_t> rows_;
};

// ---------------------------------------------------------------------------
// Staircase arrays
// ---------------------------------------------------------------------------

/// Staircase view over a base array: entry (i, j) equals base(i, j) when
/// j < frontier[i] and +infinity otherwise.  For the result to be
/// staircase-Monge the frontier must be non-increasing (infinite entries
/// propagate right and down, per condition 2 of Section 1.1) and the base
/// must be Monge on the finite region.
template <Array2D A>
class StaircaseArray {
 public:
  using value_type = typename A::value_type;

  StaircaseArray(const A& base, std::vector<std::size_t> frontier)
      : base_(&base), frontier_(std::move(frontier)) {
    PMONGE_REQUIRE(frontier_.size() == base.rows(),
                   "frontier must have one entry per row");
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      PMONGE_REQUIRE(frontier_[i] <= base.cols(), "frontier out of range");
      PMONGE_REQUIRE(i == 0 || frontier_[i] <= frontier_[i - 1],
                     "staircase frontier must be non-increasing");
    }
  }

  std::size_t rows() const { return base_->rows(); }
  std::size_t cols() const { return base_->cols(); }
  value_type operator()(std::size_t i, std::size_t j) const {
    return j < frontier_[i] ? (*base_)(i, j) : inf<value_type>();
  }

  /// f_i: the first column of row i that is infinite.
  std::size_t frontier(std::size_t i) const { return frontier_[i]; }
  const std::vector<std::size_t>& frontiers() const { return frontier_; }
  const A& base() const { return *base_; }

 private:
  const A* base_;
  std::vector<std::size_t> frontier_;
};

// ---------------------------------------------------------------------------
// Row-search result types
// ---------------------------------------------------------------------------

inline constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);

/// Optimum of one row: value and column index.  Rows of staircase arrays
/// that contain no finite entry report {inf, kNoCol}.
template <class T>
struct RowOpt {
  T value{};
  std::size_t col = kNoCol;

  friend bool operator==(const RowOpt&, const RowOpt&) = default;
};

}  // namespace pmonge::monge
