// Exhaustive-search oracles.  Every fast algorithm in the library is
// tested against these on randomized inputs.
#pragma once

#include <vector>

#include "monge/array.hpp"

namespace pmonge::monge {

/// Leftmost minimum of each row; rows whose entries are all infinite
/// report {inf, kNoCol}.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> row_minima_brute(const A& a) {
  using T = typename A::value_type;
  std::vector<RowOpt<T>> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    RowOpt<T> best{inf<T>(), kNoCol};
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const T v = a(i, j);
      if (is_infinite<T>(v)) continue;
      if (best.col == kNoCol || v < best.value) best = {v, j};
    }
    out[i] = best;
  }
  return out;
}

/// Leftmost maximum of each row over *finite* entries; all-infinite rows
/// report {-inf, kNoCol}.  (For plain Monge arrays every entry is finite
/// and this is the paper's row-maxima problem.)
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> row_maxima_brute(const A& a) {
  using T = typename A::value_type;
  std::vector<RowOpt<T>> out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    RowOpt<T> best{-inf<T>(), kNoCol};
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const T v = a(i, j);
      if (is_infinite<T>(v)) continue;
      if (best.col == kNoCol || v > best.value) best = {v, j};
    }
    out[i] = best;
  }
  return out;
}

/// Number of entry probes a brute-force row scan performs (m*n); used by
/// benches to report the sequential baseline's work.
template <Array2D A>
std::size_t brute_probe_count(const A& a) {
  return a.rows() * a.cols();
}

}  // namespace pmonge::monge
