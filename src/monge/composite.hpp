// Monge-composite arrays and the tube maxima/minima problem.
//
// A p x q x r Monge-composite array is c[i][j][k] = d[i][j] + e[j][k] with
// D and E Monge (Section 1.1).  Following the applications the paper cites
// ([AP89a], [AALM88], string editing, Huffman coding), the "tube" ranges
// over the *middle* coordinate: for every (i, k) we seek
// opt_j c[i][j][k], i.e. the (max,+) or (min,+) product of D and E.  (The
// extended abstract's wording "first two coordinates" describes the
// indexing of the output plane; the optimization is over j, which is the
// only non-trivial variant -- optimizing over k would decouple into row
// optima of E alone.)  Ties resolve to the minimum j, matching the paper's
// "minimum third coordinate" convention.
//
// Key structural fact used by every fast algorithm here: the optimal
// middle index theta(i, k) is non-decreasing in i for fixed k and
// non-decreasing in k for fixed i.  is_theta_monotone() checks it.
#pragma once

#include <vector>

#include "monge/array.hpp"

namespace pmonge::monge {

template <class T>
struct TubeOpt {
  T value{};
  std::size_t j = kNoCol;

  friend bool operator==(const TubeOpt&, const TubeOpt&) = default;
};

/// Flat (i, k) plane of tube results; index i * r + k.
template <class T>
struct TubePlane {
  std::size_t p = 0;
  std::size_t r = 0;
  std::vector<TubeOpt<T>> opt;

  const TubeOpt<T>& at(std::size_t i, std::size_t k) const {
    return opt[i * r + k];
  }
  TubeOpt<T>& at(std::size_t i, std::size_t k) { return opt[i * r + k]; }
};

/// Brute-force tube maxima: O(p q r), smallest-j ties.
template <Array2D D, Array2D E>
TubePlane<typename D::value_type> tube_maxima_brute(const D& d, const E& e) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  TubePlane<T> out{p, r, std::vector<TubeOpt<T>>(p * r)};
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < r; ++k) {
      TubeOpt<T> best{d(i, 0) + e(0, k), 0};
      for (std::size_t j = 1; j < q; ++j) {
        const T v = d(i, j) + e(j, k);
        if (v > best.value) best = {v, j};
      }
      out.at(i, k) = best;
    }
  }
  return out;
}

/// Brute-force tube minima: O(p q r), smallest-j ties.
template <Array2D D, Array2D E>
TubePlane<typename D::value_type> tube_minima_brute(const D& d, const E& e) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  TubePlane<T> out{p, r, std::vector<TubeOpt<T>>(p * r)};
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < r; ++k) {
      TubeOpt<T> best{d(i, 0) + e(0, k), 0};
      for (std::size_t j = 1; j < q; ++j) {
        const T v = d(i, j) + e(j, k);
        if (v < best.value) best = {v, j};
      }
      out.at(i, k) = best;
    }
  }
  return out;
}

/// Verifies the monotone-theta property of a tube-optimum plane.
/// For tube *minima* with D, E Monge the leftmost argmin is non-decreasing
/// in both i and k (pass nondecreasing = true); for tube *maxima* with
/// D, E Monge the leftmost argmax is non-increasing in both (pass false).
template <class T>
bool is_theta_monotone(const TubePlane<T>& plane, bool nondecreasing) {
  auto ok = [&](std::size_t a, std::size_t b) {
    return nondecreasing ? a <= b : a >= b;
  };
  for (std::size_t i = 0; i < plane.p; ++i) {
    for (std::size_t k = 0; k < plane.r; ++k) {
      if (k + 1 < plane.r && !ok(plane.at(i, k).j, plane.at(i, k + 1).j)) {
        return false;
      }
      if (i + 1 < plane.p && !ok(plane.at(i, k).j, plane.at(i + 1, k).j)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace pmonge::monge
