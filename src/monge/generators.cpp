#include "monge/generators.hpp"

#include <algorithm>
#include <cmath>

namespace pmonge::monge {

namespace {

/// Shared density construction: a[i][j] = r_i + c_j - S[i][j] where S is
/// the inclusive 2D prefix sum of a non-negative density.  The Monge
/// cross-difference of a equals -sum of the density over the spanned
/// rectangle, hence <= 0.
DenseArray<std::int64_t> density_monge(std::size_t m, std::size_t n, Rng& rng,
                                       std::int64_t maxd, std::int64_t maxoff) {
  DenseArray<std::int64_t> s(m, n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t d = rng.uniform_int(0, maxd);
      const std::int64_t up = i ? s(i - 1, j) : 0;
      const std::int64_t left = j ? s(i, j - 1) : 0;
      const std::int64_t diag = (i && j) ? s(i - 1, j - 1) : 0;
      s.at(i, j) = d + up + left - diag;
    }
  }
  std::vector<std::int64_t> r(m), c(n);
  for (auto& x : r) x = rng.uniform_int(-maxoff, maxoff);
  for (auto& x : c) x = rng.uniform_int(-maxoff, maxoff);
  DenseArray<std::int64_t> a(m, n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = r[i] + c[j] - s(i, j);
    }
  }
  return a;
}

}  // namespace

DenseArray<std::int64_t> random_monge(std::size_t m, std::size_t n, Rng& rng,
                                      std::int64_t maxd, std::int64_t maxoff) {
  return density_monge(m, n, rng, maxd, maxoff);
}

DenseArray<std::int64_t> random_inverse_monge(std::size_t m, std::size_t n,
                                              Rng& rng, std::int64_t maxd,
                                              std::int64_t maxoff) {
  DenseArray<std::int64_t> a = density_monge(m, n, rng, maxd, maxoff);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = -a(i, j);
  }
  return a;
}

DenseArray<double> random_monge_real(std::size_t m, std::size_t n, Rng& rng) {
  DenseArray<double> s(m, n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d = rng.uniform01();
      const double up = i ? s(i - 1, j) : 0;
      const double left = j ? s(i, j - 1) : 0;
      const double diag = (i && j) ? s(i - 1, j - 1) : 0;
      s.at(i, j) = d + up + left - diag;
    }
  }
  std::vector<double> r(m), c(n);
  for (auto& x : r) x = rng.uniform(-100, 100);
  for (auto& x : c) x = rng.uniform(-100, 100);
  DenseArray<double> a(m, n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = r[i] + c[j] - s(i, j);
  }
  return a;
}

DenseArray<double> transportation_monge(std::size_t m, std::size_t n,
                                        Rng& rng) {
  std::vector<double> x(m), y(n);
  for (auto& v : x) v = rng.uniform(0, 1000);
  for (auto& v : y) v = rng.uniform(0, 1000);
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  DenseArray<double> a(m, n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double t = x[i] - y[j];
      a.at(i, j) = t * t;
    }
  }
  return a;
}

std::vector<std::size_t> random_frontier(std::size_t m, std::size_t n,
                                         Rng& rng) {
  // Random non-increasing sequence in [0, n]; biased so that a prefix of
  // rows is often full-width and a suffix may be fully infinite, exercising
  // the degenerate cases.
  std::vector<std::size_t> f(m);
  std::size_t cur = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(n / 2), static_cast<std::int64_t>(n)));
  for (std::size_t i = 0; i < m; ++i) {
    f[i] = cur;
    if (rng.chance(0.35) && cur > 0) {
      const auto drop = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(std::max<std::size_t>(
                                 1, cur / std::max<std::size_t>(1, m - i)))));
      cur = cur > drop ? cur - drop : 0;
    }
  }
  return f;
}

StaircaseInstance random_staircase_monge(std::size_t m, std::size_t n,
                                         Rng& rng) {
  StaircaseInstance inst;
  inst.base = random_monge(m, n, rng);
  inst.frontier = random_frontier(m, n, rng);
  return inst;
}

CompositeInstance random_composite(std::size_t p, std::size_t q, std::size_t r,
                                   Rng& rng) {
  CompositeInstance inst;
  inst.d = random_monge(p, q, rng);
  inst.e = random_monge(q, r, rng);
  return inst;
}

}  // namespace pmonge::monge
