// Random instance generators.
//
// The paper evaluates on abstract arrays, so the benchmark inputs are
// synthetic.  Three families are provided:
//   * density construction -- a[i][j] = r_i + c_j - sum_{p<=i, q<=j} d[p][q]
//     with d >= 0 yields a Monge array, and every Monge array arises this
//     way; this is the canonical "random Monge array".
//   * convex transportation costs -- a[i][j] = phi(|x_i - y_j|) for convex
//     phi and sorted site vectors, the classic Hoffman/Monge setting.
//   * staircase truncation -- a Monge base plus a random non-increasing
//     frontier of +inf entries (condition 2 of Section 1.1).
#pragma once

#include <cstdint>
#include <vector>

#include "monge/array.hpp"
#include "support/rng.hpp"

namespace pmonge::monge {

/// Random m x n Monge array via the density construction.  Entries are
/// integers of magnitude O(maxd * m * n + maxoff).
DenseArray<std::int64_t> random_monge(std::size_t m, std::size_t n, Rng& rng,
                                      std::int64_t maxd = 8,
                                      std::int64_t maxoff = 1000);

/// Random inverse-Monge array (negated density construction).
DenseArray<std::int64_t> random_inverse_monge(std::size_t m, std::size_t n,
                                              Rng& rng, std::int64_t maxd = 8,
                                              std::int64_t maxoff = 1000);

/// Real-valued Monge array via the density construction.
DenseArray<double> random_monge_real(std::size_t m, std::size_t n, Rng& rng);

/// Transportation-cost Monge array: phi(|x_i - y_j|) with phi convex
/// (phi(t) = t^2) and sorted random sites.
DenseArray<double> transportation_monge(std::size_t m, std::size_t n,
                                        Rng& rng);

/// Random non-increasing staircase frontier.  full_prob is the chance that
/// the first row's frontier is the full width; rows may end with frontier 0
/// (fully infinite rows), which the searching code must tolerate.
std::vector<std::size_t> random_frontier(std::size_t m, std::size_t n,
                                         Rng& rng);

/// Convenience bundle: base Monge array + frontier (wrap with
/// StaircaseArray<DenseArray<std::int64_t>> to search).
struct StaircaseInstance {
  DenseArray<std::int64_t> base;
  std::vector<std::size_t> frontier;
};
StaircaseInstance random_staircase_monge(std::size_t m, std::size_t n,
                                         Rng& rng);

/// A Monge-composite instance: c[i][j][k] = d[i][j] + e[j][k] with D, E
/// Monge (Section 1.1).  p x q and q x r.
struct CompositeInstance {
  DenseArray<std::int64_t> d;  // p x q
  DenseArray<std::int64_t> e;  // q x r
};
CompositeInstance random_composite(std::size_t p, std::size_t q, std::size_t r,
                                   Rng& rng);

}  // namespace pmonge::monge
