// SMAWK: linear-time row minima of totally monotone arrays
// (Aggarwal, Klawe, Moran, Shor, Wilber [AKM+87]).
//
// The core routine computes row minima of a totally monotone (e.g. Monge)
// array in O(m + n) entry probes.  The paper's four problem variants --
// {minima, maxima} x {Monge, inverse-Monge} -- are provided as wrappers
// that compose the Negate / ReverseCols views of array.hpp, with the tie
// policy arranged so that every wrapper returns the *leftmost* optimum of
// the original array (the convention fixed in Section 1.2).
#pragma once

#include <vector>

#include "monge/array.hpp"

namespace pmonge::monge {

namespace detail {

/// Tie policy for the core: prefer_left keeps the earliest column among
/// equal minima; !prefer_left keeps the latest.  Both are needed because
/// the view compositions reverse column order.
template <bool PreferLeft, Array2D A>
void smawk_rec(const A& a, const std::vector<std::size_t>& rows,
               std::vector<std::size_t> cols,
               std::vector<RowOpt<typename A::value_type>>& result) {
  using T = typename A::value_type;
  if (rows.empty()) return;

  // REDUCE: discard columns that cannot hold any row minimum until at most
  // |rows| survive.  The stack invariant is the classic one: column
  // stack[k] can still win only in rows k.. .
  if (cols.size() > rows.size()) {
    std::vector<std::size_t> stack;
    stack.reserve(rows.size());
    for (const std::size_t c : cols) {
      for (;;) {
        if (stack.empty()) break;
        const std::size_t r = rows[stack.size() - 1];
        const T incumbent = a(r, stack.back());
        const T challenger = a(r, c);
        const bool pop = PreferLeft ? (incumbent > challenger)
                                    : (incumbent >= challenger);
        if (!pop) break;
        stack.pop_back();
      }
      if (stack.size() < rows.size()) stack.push_back(c);
    }
    cols = std::move(stack);
  }

  if (rows.size() == 1) {
    RowOpt<T> best{a(rows[0], cols[0]), cols[0]};
    for (std::size_t k = 1; k < cols.size(); ++k) {
      const T v = a(rows[0], cols[k]);
      const bool take = PreferLeft ? (v < best.value) : (v <= best.value);
      if (take) best = {v, cols[k]};
    }
    result[rows[0]] = best;
    return;
  }

  // Recurse on rows at odd positions (1, 3, 5, ...).
  std::vector<std::size_t> half;
  half.reserve(rows.size() / 2);
  for (std::size_t p = 1; p < rows.size(); p += 2) half.push_back(rows[p]);
  smawk_rec<PreferLeft>(a, half, cols, result);

  // INTERPOLATE: each remaining row's minimum lies between the argmin
  // column positions of its recursive neighbors (argmins are monotone).
  std::size_t lo = 0;  // position within cols
  for (std::size_t p = 0; p < rows.size(); p += 2) {
    std::size_t hi = cols.size() - 1;
    if (p + 1 < rows.size()) {
      const std::size_t bound_col = result[rows[p + 1]].col;
      hi = lo;
      while (cols[hi] != bound_col) ++hi;
    }
    RowOpt<T> best{a(rows[p], cols[lo]), cols[lo]};
    for (std::size_t k = lo + 1; k <= hi; ++k) {
      const T v = a(rows[p], cols[k]);
      const bool take = PreferLeft ? (v < best.value) : (v <= best.value);
      if (take) best = {v, cols[k]};
    }
    result[rows[p]] = best;
    lo = hi;
  }
}

template <bool PreferLeft, Array2D A>
std::vector<RowOpt<typename A::value_type>> smawk_run(const A& a) {
  std::vector<RowOpt<typename A::value_type>> result(a.rows());
  if (a.rows() == 0 || a.cols() == 0) {
    for (auto& r : result) r = {inf<typename A::value_type>(), kNoCol};
    return result;
  }
  std::vector<std::size_t> rows(a.rows()), cols(a.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (std::size_t j = 0; j < cols.size(); ++j) cols[j] = j;
  smawk_rec<PreferLeft>(a, rows, cols, result);
  return result;
}

}  // namespace detail

/// Leftmost row minima of a Monge (or any totally monotone) array; O(m+n)
/// probes.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> smawk_row_minima(const A& a) {
  return detail::smawk_run<true>(a);
}

/// Leftmost row maxima of an inverse-Monge array (negation is Monge).
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> smawk_row_maxima_inverse_monge(
    const A& a) {
  Negate<A> neg(a);
  auto mins = detail::smawk_run<true>(neg);
  std::vector<RowOpt<typename A::value_type>> out(mins.size());
  for (std::size_t i = 0; i < mins.size(); ++i) {
    out[i] = {-mins[i].value, mins[i].col};
  }
  return out;
}

/// Leftmost row minima of an inverse-Monge array.  Column reversal turns
/// the array Monge; the rightmost-tie core maps back to leftmost.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> smawk_row_minima_inverse_monge(
    const A& a) {
  ReverseCols<A> rev(a);
  auto mins = detail::smawk_run<false>(rev);
  const std::size_t n = a.cols();
  for (auto& r : mins) {
    if (r.col != kNoCol) r.col = n - 1 - r.col;
  }
  return mins;
}

/// Leftmost row maxima of a Monge array (Table 1.1's problem).
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> smawk_row_maxima_monge(
    const A& a) {
  Negate<A> neg(a);              // inverse-Monge
  ReverseCols<decltype(neg)> rev(neg);  // Monge again
  auto mins = detail::smawk_run<false>(rev);
  const std::size_t n = a.cols();
  std::vector<RowOpt<typename A::value_type>> out(mins.size());
  for (std::size_t i = 0; i < mins.size(); ++i) {
    out[i] = {-mins[i].value,
              mins[i].col == kNoCol ? kNoCol : n - 1 - mins[i].col};
  }
  return out;
}

}  // namespace pmonge::monge
