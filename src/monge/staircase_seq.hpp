// Sequential row minima of staircase-Monge arrays.
//
// The paper cites Aggarwal-Klawe [AK88] (O((m+n) lglg(m+n))) and
// Klawe-Kleitman [KK88] (O(m + n alpha(m))) as the sequential state of the
// art.  Those algorithms serve only as baselines in the paper's tables;
// this library ships a simpler exact solver: group the rows by equal
// frontier value -- within such a group the finite region is a plain
// m_g x f_g Monge rectangle -- and run SMAWK per group.  Worst case
// O(m + sum_g f_g) probes, which degrades toward O(mn) only when almost
// every row has a distinct frontier; the benchmark harness reports probe
// counts so the substitution stays visible.  DESIGN.md documents this
// substitution.
#pragma once

#include <vector>

#include "monge/array.hpp"
#include "monge/smawk.hpp"

namespace pmonge::monge {

/// Leftmost row minima of a staircase-Monge array; exact.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_minima_seq(
    const StaircaseArray<A>& s) {
  using T = typename A::value_type;
  const std::size_t m = s.rows();
  std::vector<RowOpt<T>> out(m, RowOpt<T>{inf<T>(), kNoCol});
  std::size_t i = 0;
  while (i < m) {
    std::size_t j = i;
    while (j < m && s.frontier(j) == s.frontier(i)) ++j;
    const std::size_t width = s.frontier(i);
    if (width > 0) {
      SubArray<A> block(s.base(), i, j - i, 0, width);
      auto mins = smawk_row_minima(block);
      for (std::size_t r = 0; r < mins.size(); ++r) out[i + r] = mins[r];
    }
    i = j;
  }
  return out;
}

/// Leftmost row maxima over the finite staircase region.  The paper notes
/// ([AKM+87]) that staircase row *maxima* are as easy as the Monge case;
/// the same per-frontier-group decomposition applies.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_maxima_seq(
    const StaircaseArray<A>& s) {
  using T = typename A::value_type;
  const std::size_t m = s.rows();
  std::vector<RowOpt<T>> out(m, RowOpt<T>{-inf<T>(), kNoCol});
  std::size_t i = 0;
  while (i < m) {
    std::size_t j = i;
    while (j < m && s.frontier(j) == s.frontier(i)) ++j;
    const std::size_t width = s.frontier(i);
    if (width > 0) {
      SubArray<A> block(s.base(), i, j - i, 0, width);
      auto maxs = smawk_row_maxima_monge(block);
      for (std::size_t r = 0; r < maxs.size(); ++r) out[i + r] = maxs[r];
    }
    i = j;
  }
  return out;
}

}  // namespace pmonge::monge
