// Property validators for Monge / inverse-Monge / staircase-Monge arrays.
//
// All validators use the adjacent-quadruple reduction: the Monge condition
// (1.1) holds for all i < k, j < l iff it holds for all adjacent quadruples
// (i, i+1) x (j, j+1) -- the general inequality telescopes from adjacent
// ones.  For staircase arrays the reduction remains valid because the
// finite region is upper-left closed: if the bottom-right corner of a
// quadruple is finite, every entry of the enclosing rectangle is finite.
#pragma once

#include <cstddef>

#include "monge/array.hpp"

namespace pmonge::monge {

/// a[i][j] + a[i+1][j+1] <= a[i][j+1] + a[i+1][j] for all adjacent pairs.
template <Array2D A>
bool is_monge(const A& a) {
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    for (std::size_t j = 0; j + 1 < a.cols(); ++j) {
      if (a(i, j) + a(i + 1, j + 1) > a(i, j + 1) + a(i + 1, j)) return false;
    }
  }
  return true;
}

/// a[i][j] + a[i+1][j+1] >= a[i][j+1] + a[i+1][j] for all adjacent pairs.
template <Array2D A>
bool is_inverse_monge(const A& a) {
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    for (std::size_t j = 0; j + 1 < a.cols(); ++j) {
      if (a(i, j) + a(i + 1, j + 1) < a(i, j + 1) + a(i + 1, j)) return false;
    }
  }
  return true;
}

/// Total monotonicity (minima orientation): a[i][j] > a[i][l] for j < l
/// implies a[k][j] > a[k][l] for every k > i.  Monge implies this; SMAWK
/// only needs this weaker property.  Checked on adjacent rows/columns.
template <Array2D A>
bool is_totally_monotone_min(const A& a) {
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    for (std::size_t j = 0; j + 1 < a.cols(); ++j) {
      if (a(i, j) > a(i, j + 1) && a(i + 1, j) <= a(i + 1, j + 1)) return false;
    }
  }
  return true;
}

/// Checks the three conditions of a staircase-Monge array (Section 1.1):
/// entries real or +inf; infinities propagate right and down; the Monge
/// condition holds on every all-finite adjacent quadruple.
template <Array2D A>
bool is_staircase_monge(const A& a) {
  using T = typename A::value_type;
  // Condition 2: inf propagates right along rows and down along columns.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (is_infinite<T>(a(i, j))) {
        if (j + 1 < a.cols() && !is_infinite<T>(a(i, j + 1))) return false;
        if (i + 1 < a.rows() && !is_infinite<T>(a(i + 1, j))) return false;
      }
    }
  }
  // Condition 3: Monge on all-finite adjacent quadruples.
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    for (std::size_t j = 0; j + 1 < a.cols(); ++j) {
      if (is_infinite<T>(a(i + 1, j + 1))) continue;  // corner finite => all
      if (a(i, j) + a(i + 1, j + 1) > a(i, j + 1) + a(i + 1, j)) return false;
    }
  }
  return true;
}

/// Staircase-inverse-Monge variant (inequality (1.2) on finite quadruples).
template <Array2D A>
bool is_staircase_inverse_monge(const A& a) {
  using T = typename A::value_type;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (is_infinite<T>(a(i, j))) {
        if (j + 1 < a.cols() && !is_infinite<T>(a(i, j + 1))) return false;
        if (i + 1 < a.rows() && !is_infinite<T>(a(i + 1, j))) return false;
      }
    }
  }
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    for (std::size_t j = 0; j + 1 < a.cols(); ++j) {
      if (is_infinite<T>(a(i + 1, j + 1))) continue;
      if (a(i, j) + a(i + 1, j + 1) < a(i, j + 1) + a(i + 1, j)) return false;
    }
  }
  return true;
}

}  // namespace pmonge::monge
