// Normal-algorithm engine for hypercubic networks.
//
// Section 3's algorithms are *normal*: each synchronous step communicates
// across a single hypercube dimension, and consecutive steps use adjacent
// dimensions.  The engine executes such programs over a vector with one
// element per (virtual) hypercube node and meters
//   * comm_steps  -- wire-parallel communication steps, including the
//                    shuffle / cycle-rotation steps a shuffle-exchange or
//                    CCC host needs to align the requested dimension with
//                    its physical edges (this is the classic constant-
//                    slowdown emulation, and the benches measure it), and
//   * local_steps -- node-local compute steps, and
//   * messages    -- total values crossing wires.
//
// The paper's data-movement model (Section 3) is preserved: algorithms
// never address remote memory; every remote value arrives through an
// exchange() along an edge of the *emulated* dimension.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "support/check.hpp"

namespace pmonge::net {

struct NetMeter {
  std::uint64_t comm_steps = 0;
  std::uint64_t local_steps = 0;
  std::uint64_t messages = 0;

  std::uint64_t total_steps() const { return comm_steps + local_steps; }
  void reset() { comm_steps = local_steps = messages = 0; }
};

class Engine {
 public:
  Engine(TopologyKind kind, int dims)
      : kind_(kind), dims_(dims), size_(std::size_t{1} << dims) {
    PMONGE_REQUIRE(dims >= 0 && dims <= 30, "unreasonable dimension count");
  }

  TopologyKind kind() const { return kind_; }
  int dims() const { return dims_; }
  std::size_t size() const { return size_; }

  /// Physical processors of the host network (CCC hosts d * 2^d nodes to
  /// emulate a 2^d-node hypercube; the others host 2^d).
  std::size_t physical_nodes() const {
    return kind_ == TopologyKind::CubeConnectedCycles
               ? size_ * static_cast<std::size_t>(dims_ == 0 ? 1 : dims_)
               : size_;
  }

  NetMeter& meter() { return meter_; }
  const NetMeter& meter() const { return meter_; }

  /// One communication step across `dim`: every pair (L, H) with
  /// H = L | (1 << dim) exchanges; `f(L, lo, hi)` mutates both values.
  /// On CCC / shuffle-exchange hosts the charge additionally covers the
  /// rotations aligning `dim` with the physical exchange edges.
  template <class T, class F>
  void exchange(std::vector<T>& data, int dim, F&& f) {
    PMONGE_REQUIRE(dim >= 0 && dim < dims_, "dimension out of range");
    PMONGE_REQUIRE(data.size() == size_, "distributed vector size mismatch");
    charge_exchange(dim);
    const std::size_t bit = std::size_t{1} << dim;
    for (std::size_t u = 0; u < size_; ++u) {
      if (u & bit) continue;
      f(u, data[u], data[u | bit]);
    }
  }

  /// One node-local compute step: f(u, value) for every node.
  template <class T, class F>
  void local(std::vector<T>& data, F&& f) {
    PMONGE_REQUIRE(data.size() == size_, "distributed vector size mismatch");
    meter_.local_steps += 1;
    for (std::size_t u = 0; u < size_; ++u) f(u, data[u]);
  }

  /// Reset the emulation alignment (e.g. between independent phases).
  void reset_alignment() { align_ = 0; }

 private:
  void charge_exchange(int dim) {
    meter_.messages += size_;
    switch (kind_) {
      case TopologyKind::Hypercube:
        meter_.comm_steps += 1;
        break;
      case TopologyKind::ShuffleExchange:
      case TopologyKind::CubeConnectedCycles: {
        // Rotate (shuffle edges / cycle edges) until the requested
        // dimension aligns with the physical exchange / cross edges, in
        // whichever direction is shorter, then cross.  Normal dimension
        // orders make this O(1) amortized -- the constant-slowdown
        // emulation the paper appeals to.
        const int d = dims_ == 0 ? 1 : dims_;
        const int fwd = ((dim - align_) % d + d) % d;
        const int bwd = ((align_ - dim) % d + d) % d;
        meter_.comm_steps += static_cast<std::uint64_t>(std::min(fwd, bwd)) + 1;
        meter_.messages +=
            static_cast<std::uint64_t>(std::min(fwd, bwd)) * size_;
        align_ = dim;
        break;
      }
    }
  }

  TopologyKind kind_;
  int dims_;
  std::size_t size_;
  NetMeter meter_;
  int align_ = 0;
};

}  // namespace pmonge::net
