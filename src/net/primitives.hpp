// Normal-algorithm primitives on hypercubic networks: parallel prefix,
// segmented prefix, broadcast, reduction, bitonic merging/sorting, cyclic
// shift and the isotone (monotone) packet routing of Lemma 3.1.
//
// Every primitive is built solely from Engine::exchange / Engine::local,
// so each one is a normal algorithm and runs unchanged (with the metered
// constant-factor slowdown) on the shuffle-exchange and CCC hosts.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "net/engine.hpp"

namespace pmonge::net {

// ---------------------------------------------------------------------------
// Prefix scans
// ---------------------------------------------------------------------------

/// Inclusive prefix scan by node index (ascend over dims 0..d-1, the
/// classic (prefix, total) pair algorithm): d communication steps.
template <class T, class Op>
void prefix_scan(Engine& e, std::vector<T>& data, Op&& op) {
  struct PT {
    T pre, tot;
  };
  std::vector<PT> pt(e.size());
  e.local(pt, [&](std::size_t u, PT& x) { x = {data[u], data[u]}; });
  for (int k = 0; k < e.dims(); ++k) {
    e.exchange(pt, k, [&](std::size_t, PT& lo, PT& hi) {
      const T combined = op(lo.tot, hi.tot);
      hi.pre = op(lo.tot, hi.pre);
      lo.tot = combined;
      hi.tot = combined;
    });
  }
  e.local(pt, [&](std::size_t u, PT& x) { data[u] = x.pre; });
}

/// Segmented inclusive scan: seg[u] labels the segment of node u
/// (non-decreasing); the scan restarts at each new label.
template <class T, class Op>
void segmented_prefix_scan(Engine& e, std::vector<T>& data,
                           const std::vector<std::size_t>& seg, Op&& op) {
  struct SV {
    T v;
    std::size_t s;
  };
  std::vector<SV> sv(e.size());
  e.local(sv, [&](std::size_t u, SV& x) { x = {data[u], seg[u]}; });
  // The segmented combine is associative (classic): a then b.
  auto segop = [&](const SV& a, const SV& b) {
    return SV{a.s == b.s ? op(a.v, b.v) : b.v, b.s};
  };
  struct PT {
    SV pre, tot;
  };
  std::vector<PT> pt(e.size());
  e.local(pt, [&](std::size_t u, PT& x) { x = {sv[u], sv[u]}; });
  for (int k = 0; k < e.dims(); ++k) {
    e.exchange(pt, k, [&](std::size_t, PT& lo, PT& hi) {
      const SV combined = segop(lo.tot, hi.tot);
      hi.pre = segop(lo.tot, hi.pre);
      lo.tot = combined;
      hi.tot = combined;
    });
  }
  e.local(pt, [&](std::size_t u, PT& x) { data[u] = x.pre.v; });
}

// ---------------------------------------------------------------------------
// Broadcast and reduce
// ---------------------------------------------------------------------------

/// Broadcast the value at `root` to every node: d steps (descend).
template <class T>
void broadcast(Engine& e, std::vector<T>& data, std::size_t root) {
  PMONGE_REQUIRE(root < e.size(), "root out of range");
  // Descend dims; invariant: after processing dims d-1..k, the holders
  // are exactly the nodes agreeing with root on the unprocessed dims
  // (bits k-1..0).  Each step doubles the holder set across dim k.
  for (int k = e.dims() - 1; k >= 0; --k) {
    const std::size_t low_mask = (std::size_t{1} << k) - 1;
    e.exchange(data, k, [&](std::size_t u, T& lo, T& hi) {
      if ((u & low_mask) != (root & low_mask)) return;
      if (root & (std::size_t{1} << k)) {
        lo = hi;
      } else {
        hi = lo;
      }
    });
  }
}

/// All-nodes reduction: after d ascend+swap steps every node holds the
/// reduction of all values (allreduce).
template <class T, class Op>
void all_reduce(Engine& e, std::vector<T>& data, Op&& op) {
  for (int k = 0; k < e.dims(); ++k) {
    e.exchange(data, k, [&](std::size_t, T& lo, T& hi) {
      const T combined = op(lo, hi);
      lo = combined;
      hi = combined;
    });
  }
}

// ---------------------------------------------------------------------------
// Cyclic shift (via the prefix network) and bitonic merge / sort
// ---------------------------------------------------------------------------

/// Shift every value from node u to node u + delta (dropping values that
/// fall off the ends; vacated nodes receive `fill`).  Implemented as a
/// monotone bit-fixing route: |delta| in [0, 2^d), d steps.
template <class T>
void shift(Engine& e, std::vector<T>& data, std::ptrdiff_t delta,
           const T& fill) {
  struct Slot {
    T v;
    std::size_t dest;
    bool full;
  };
  std::vector<Slot> s(e.size());
  e.local(s, [&](std::size_t u, Slot& x) {
    const std::ptrdiff_t d =
        static_cast<std::ptrdiff_t>(u) + delta;
    if (d < 0 || d >= static_cast<std::ptrdiff_t>(e.size())) {
      x = {fill, 0, false};
    } else {
      x = {data[u], static_cast<std::size_t>(d), true};
    }
  });
  for (int k = e.dims() - 1; k >= 0; --k) {
    const std::size_t bit = std::size_t{1} << k;
    e.exchange(s, k, [&](std::size_t u, Slot& lo, Slot& hi) {
      const bool lo_up = lo.full && (lo.dest & bit);
      const bool hi_down = hi.full && !(hi.dest & bit);
      if (lo_up && hi_down) {
        std::swap(lo, hi);
      } else if (lo_up) {
        if (hi.full) throw ModelViolation("shift collision");
        hi = lo;
        lo.full = false;
      } else if (hi_down) {
        if (lo.full) throw ModelViolation("shift collision");
        lo = hi;
        hi.full = false;
      }
      (void)u;
    });
  }
  e.local(s, [&](std::size_t u, Slot& x) { data[u] = x.full ? x.v : fill; });
}

/// Compare-exchange network step helper for bitonic stages.
template <class T, class Less>
void bitonic_stage(Engine& e, std::vector<T>& data, int k, int j,
                   Less&& less) {
  e.exchange(data, j, [&](std::size_t u, T& lo, T& hi) {
    const bool descending = (u >> (k + 1)) & 1;
    const bool out_of_order = descending ? less(lo, hi) : less(hi, lo);
    if (out_of_order) std::swap(lo, hi);
  });
}

/// Full bitonic sort by `less`: d(d+1)/2 normal steps.
template <class T, class Less>
void bitonic_sort(Engine& e, std::vector<T>& data, Less&& less) {
  for (int k = 0; k < e.dims(); ++k) {
    for (int j = k; j >= 0; --j) bitonic_stage(e, data, k, j, less);
  }
}

/// Merge two sorted halves (each of size 2^(d-1), concatenated) into one
/// sorted sequence: reverse the upper half locally, then one bitonic
/// merging sweep of d steps ([LLS89]'s O(lg m) hypercube merge).
template <class T, class Less>
void bitonic_merge_halves(Engine& e, std::vector<T>& data, Less&& less) {
  if (e.dims() == 0) return;
  // Reverse the upper half: route u -> (3*2^(d-1) - 1 - u); this is the
  // dimension-wise bit flip of the low d-1 bits, d-1 exchange steps.
  const std::size_t half = e.size() / 2;
  for (int k = e.dims() - 2; k >= 0; --k) {
    e.exchange(data, k, [&](std::size_t u, T& lo, T& hi) {
      if (u & half) std::swap(lo, hi);  // only the upper half reverses
    });
  }
  for (int j = e.dims() - 1; j >= 0; --j) {
    e.exchange(data, j, [&](std::size_t, T& lo, T& hi) {
      if (less(hi, lo)) std::swap(lo, hi);
    });
  }
}

// ---------------------------------------------------------------------------
// Isotone (monotone) routing -- Lemma 3.1's data-distribution tool
// ---------------------------------------------------------------------------

/// A routable packet: empty nodes carry std::nullopt.
template <class T>
struct Packet {
  T payload;
  std::size_t dest;
};

namespace route_detail {

/// One bit-fixing pass toward per-packet targets held in `target`.
/// Throws ModelViolation on collision, making illegal uses self-detecting.
template <class P>
void fix_bit(Engine& e, std::vector<std::optional<P>>& slots, int k,
             auto&& target) {
  const std::size_t bit = std::size_t{1} << k;
  e.exchange(slots, k,
             [&](std::size_t, std::optional<P>& lo, std::optional<P>& hi) {
               const bool lo_up = lo && (target(*lo) & bit);
               const bool hi_down = hi && !(target(*hi) & bit);
               if (lo_up && hi_down) {
                 std::swap(lo, hi);
               } else if (lo_up) {
                 if (hi) throw ModelViolation("monotone_route collision");
                 hi = std::move(lo);
                 lo.reset();
               } else if (hi_down) {
                 if (lo) throw ModelViolation("monotone_route collision");
                 lo = std::move(hi);
                 hi.reset();
               }
             });
}

}  // namespace route_detail

/// Route packets to their destinations when the source -> destination map
/// is monotone (order-preserving) and injective -- the isotone routing of
/// [LLS89] used throughout Section 3.  Classic two-phase Nassimi-Sahni
/// scheme, 3d steps total, collision-free:
///   concentrate -- rank packets by a prefix count and bit-fix LSB-first
///                  into the packed prefix 0..k-1;
///   spread      -- bit-fix MSB-first from the packed prefix to the
///                  monotone destinations.
/// (One-phase bit-fixing is NOT collision-free for general monotone
/// routes; a stationary packet can block a mover.)  Any collision throws
/// ModelViolation, so illegal uses are self-detecting.
template <class T>
void monotone_route(Engine& e, std::vector<std::optional<Packet<T>>>& slots) {
  PMONGE_REQUIRE(slots.size() == e.size(), "slot vector size mismatch");
  struct Ranked {
    Packet<T> pkt;
    std::size_t rank;
  };
  // Rank = exclusive prefix count of occupied slots.
  std::vector<std::size_t> occ(e.size());
  e.local(occ, [&](std::size_t u, std::size_t& x) {
    x = slots[u] ? 1u : 0u;
  });
  prefix_scan(e, occ, [](std::size_t a, std::size_t b) { return a + b; });
  std::vector<std::optional<Ranked>> r(e.size());
  e.local(r, [&](std::size_t u, std::optional<Ranked>& x) {
    if (slots[u]) x = Ranked{std::move(*slots[u]), occ[u] - 1};
  });
  for (int k = 0; k < e.dims(); ++k) {  // concentrate, LSB-first
    route_detail::fix_bit(e, r, k, [](const Ranked& p) { return p.rank; });
  }
  for (int k = e.dims() - 1; k >= 0; --k) {  // spread, MSB-first
    route_detail::fix_bit(e, r, k,
                          [](const Ranked& p) { return p.pkt.dest; });
  }
  e.local(slots, [&](std::size_t u, std::optional<Packet<T>>& x) {
    x.reset();
    if (r[u]) x = std::move(r[u]->pkt);
  });
}

}  // namespace pmonge::net
