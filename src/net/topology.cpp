#include "net/topology.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace pmonge::net {

const char* topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::Hypercube:
      return "hypercube";
    case TopologyKind::CubeConnectedCycles:
      return "cube-connected-cycles";
    case TopologyKind::ShuffleExchange:
      return "shuffle-exchange";
  }
  return "?";
}

bool Hypercube::adjacent(std::size_t u, std::size_t v) const {
  const std::size_t x = u ^ v;
  return x != 0 && (x & (x - 1)) == 0 && x < size();
}

std::vector<std::pair<std::size_t, std::size_t>> Hypercube::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> e;
  for (std::size_t u = 0; u < size(); ++u) {
    for (int k = 0; k < dims; ++k) {
      const std::size_t v = neighbor(u, k);
      if (u < v) e.emplace_back(u, v);
    }
  }
  return e;
}

bool CubeConnectedCycles::adjacent(std::size_t u, std::size_t v) const {
  if (u == v) return false;
  const std::size_t cu = corner(u), cv = corner(v);
  const int pu = pos(u), pv = pos(v);
  if (cu == cv) {
    const int d = dims;
    const int diff = (pu - pv + d) % d;
    return diff == 1 || diff == d - 1;
  }
  return pu == pv && (cu ^ cv) == (std::size_t{1} << pu);
}

std::vector<std::pair<std::size_t, std::size_t>> CubeConnectedCycles::edges()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> e;
  const std::size_t corners = std::size_t{1} << dims;
  for (std::size_t c = 0; c < corners; ++c) {
    for (int l = 0; l < dims; ++l) {
      if (dims > 1) {
        const std::size_t a = node_id(c, l);
        const std::size_t b = node_id(c, (l + 1) % dims);
        e.emplace_back(std::min(a, b), std::max(a, b));
      }
      const std::size_t other = c ^ (std::size_t{1} << l);
      if (c < other) e.emplace_back(node_id(c, l), node_id(other, l));
    }
  }
  // Length-2 cycles (dims == 2) and the wrap edge both insert (a, b)
  // twice; dedupe.
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());
  return e;
}

bool ShuffleExchange::adjacent(std::size_t u, std::size_t v) const {
  if (u == v) return false;
  return v == exchange(u) || v == shuffle(u) || u == shuffle(v);
}

std::vector<std::pair<std::size_t, std::size_t>> ShuffleExchange::edges()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> e;
  for (std::size_t u = 0; u < size(); ++u) {
    if (u < exchange(u)) e.emplace_back(u, exchange(u));
    const std::size_t s = shuffle(u);
    if (u < s) e.emplace_back(u, s);
    if (u == s && u != exchange(u)) continue;  // self-loop at 0...0 / 1...1
  }
  std::sort(e.begin(), e.end());
  e.erase(std::unique(e.begin(), e.end()), e.end());
  return e;
}

bool edges_connected(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  if (n == 0) return true;
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> stack;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::size_t components = n;
  for (const auto& [u, v] : edges) {
    PMONGE_REQUIRE(u < n && v < n, "edge endpoint out of range");
    const auto ru = find(u), rv = find(v);
    if (ru != rv) {
      parent[ru] = rv;
      --components;
    }
  }
  return components == 1;
}

}  // namespace pmonge::net
