// Interconnection-network topologies of Section 3: hypercube,
// cube-connected cycles (CCC) and shuffle-exchange, as explicit edge sets.
//
// The Engine (engine.hpp) runs *normal* hypercube algorithms -- algorithms
// that use one dimension per step, consecutive dimensions in consecutive
// steps -- which is exactly the class that CCC and shuffle-exchange
// emulate with constant slowdown (the "hypercube, etc." rows of Tables
// 1.1-1.3).  This header owns the graph-theoretic side: node counts,
// adjacency predicates and edge enumeration, used by the engine for its
// charging rules and by the tests for structural invariants (degree
// bounds, connectivity, emulation legality).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pmonge::net {

enum class TopologyKind { Hypercube, CubeConnectedCycles, ShuffleExchange };

const char* topology_name(TopologyKind k);

/// d-dimensional hypercube: 2^d nodes, edges u ~ u ^ (1 << k).
struct Hypercube {
  int dims;
  std::size_t size() const { return std::size_t{1} << dims; }
  std::size_t neighbor(std::size_t u, int dim) const {
    return u ^ (std::size_t{1} << dim);
  }
  bool adjacent(std::size_t u, std::size_t v) const;
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;
};

/// Cube-connected cycles CCC(d): each hypercube corner c becomes a cycle
/// of d nodes (c, l); cycle edges (c,l)~(c,l+1 mod d) and one cross edge
/// (c,l)~(c ^ (1<<l), l) per position.  Constant degree 3.
struct CubeConnectedCycles {
  int dims;
  std::size_t size() const {
    return (std::size_t{1} << dims) * static_cast<std::size_t>(dims);
  }
  std::size_t node_id(std::size_t corner, int pos) const {
    return corner * static_cast<std::size_t>(dims) +
           static_cast<std::size_t>(pos);
  }
  std::size_t corner(std::size_t id) const {
    return id / static_cast<std::size_t>(dims);
  }
  int pos(std::size_t id) const {
    return static_cast<int>(id % static_cast<std::size_t>(dims));
  }
  bool adjacent(std::size_t u, std::size_t v) const;
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;
};

/// Shuffle-exchange graph on 2^d nodes: exchange edges u ~ u ^ 1 and
/// shuffle edges u ~ rotate_left(u) (undirected).  Constant degree 3.
struct ShuffleExchange {
  int dims;
  std::size_t size() const { return std::size_t{1} << dims; }
  std::size_t shuffle(std::size_t u) const {  // rotate-left within d bits
    const std::size_t mask = size() - 1;
    return ((u << 1) | (u >> (dims - 1))) & mask;
  }
  std::size_t unshuffle(std::size_t u) const {  // rotate-right
    const std::size_t mask = size() - 1;
    return ((u >> 1) | (u << (dims - 1))) & mask;
  }
  std::size_t exchange(std::size_t u) const { return u ^ 1; }
  bool adjacent(std::size_t u, std::size_t v) const;
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;
};

/// Is the whole edge list connected over n nodes?  (Test helper.)
bool edges_connected(std::size_t n,
                     const std::vector<std::pair<std::size_t, std::size_t>>&
                         edges);

}  // namespace pmonge::net
