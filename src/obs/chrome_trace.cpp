#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstddef>

namespace pmonge::obs {

using serve::Json;

serve::Json chrome_trace_json(const Snapshot& snap) {
  Json::Arr events;
  events.reserve(snap.spans.size() + snap.lanes.size() + 1);

  // Lane metadata first: one thread_name event per known lane (named
  // threads appear even before their first span -- a quiet pool worker
  // still shows as an empty track).
  for (std::size_t lane = 0; lane < snap.lanes.size(); ++lane) {
    Json::Obj meta;
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(lane);
    meta["name"] = "thread_name";
    Json::Obj args;
    args["name"] = snap.lanes[lane].empty()
                       ? "thread-" + std::to_string(lane)
                       : snap.lanes[lane];
    meta["args"] = Json(std::move(args));
    events.emplace_back(std::move(meta));
  }

  std::vector<std::size_t> order(snap.spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return snap.spans[a].start_us < snap.spans[b].start_us;
                   });

  for (const std::size_t i : order) {
    const SpanRecord& s = snap.spans[i];
    Json::Obj e;
    e["ph"] = "X";
    e["pid"] = 1;
    e["tid"] = static_cast<std::int64_t>(s.lane);
    e["cat"] = "pmonge";
    e["name"] = s.name == nullptr ? "?" : s.name;
    e["ts"] = static_cast<std::int64_t>(s.start_us);
    e["dur"] = static_cast<std::int64_t>(s.dur_us);
    Json::Obj args;
    if (s.trace_id != 0) {
      args["trace_id"] = static_cast<std::int64_t>(s.trace_id);
    }
    if (s.detail[0] != '\0') args["detail"] = std::string(s.detail);
    if (s.arg_name != nullptr) {
      args[s.arg_name] = static_cast<std::int64_t>(s.arg);
    }
    if (s.charged_time != 0 || s.charged_work != 0) {
      args["charged_time"] = static_cast<std::int64_t>(s.charged_time);
      args["charged_work"] = static_cast<std::int64_t>(s.charged_work);
    }
    if (!args.empty()) e["args"] = Json(std::move(args));
    events.emplace_back(std::move(e));
  }

  Json::Obj other;
  other["dropped_spans"] = static_cast<std::int64_t>(snap.dropped);
  other["enabled"] = enabled();
  other["span_count"] = static_cast<std::int64_t>(snap.spans.size());

  Json::Obj doc;
  doc["traceEvents"] = Json(std::move(events));
  doc["displayTimeUnit"] = "ms";
  doc["otherData"] = Json(std::move(other));
  return Json(std::move(doc));
}

}  // namespace pmonge::obs
