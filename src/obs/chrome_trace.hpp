// Chrome trace-event export: render a trace Snapshot as the JSON object
// format consumed by Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Every span becomes one complete ("ph":"X") event on its thread lane;
// lanes carry thread_name metadata ("serve-worker", "pool-worker-N"),
// so the exec pool's workers render as separate tracks.  Span args carry
// the trace id, the dynamic detail label, the numeric argument, and the
// charged PRAM time/work where recorded -- predicted-vs-measured side by
// side in the Perfetto args panel.
#pragma once

#include "obs/trace.hpp"
#include "serve/json.hpp"

namespace pmonge::obs {

/// The full trace document: {"traceEvents": [...], "displayTimeUnit":
/// "ms", "otherData": {"dropped_spans": N, "enabled": bool}}.  Events
/// are sorted by start time; metadata events name every known lane.
serve::Json chrome_trace_json(const Snapshot& snap);

}  // namespace pmonge::obs
