#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace pmonge::obs {

namespace {

using serve::Json;

/// One label pair; values get exposition-format escaping.
struct Label {
  const char* key;
  std::string value;
};

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string number(const Json& v) {
  switch (v.type()) {
    case Json::Type::Bool:
      return v.as_bool() ? "1" : "0";
    case Json::Type::Int: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, v.as_int());
      return buf;
    }
    case Json::Type::Double: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
      return buf;
    }
    default:
      return "0";
  }
}

class Writer {
 public:
  /// Start a metric family: HELP + TYPE emitted exactly once.
  void family(const char* name, const char* help, const char* type) {
    name_ = name;
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
  }

  void sample(const std::vector<Label>& labels, const std::string& value,
              const char* suffix = "") {
    out_ += name_;
    out_ += suffix;
    if (!labels.empty()) {
      out_ += '{';
      bool first = true;
      for (const auto& l : labels) {
        if (!first) out_ += ',';
        first = false;
        out_ += l.key;
        out_ += "=\"";
        out_ += escape_label(l.value);
        out_ += '"';
      }
      out_ += '}';
    }
    out_ += ' ';
    out_ += value;
    out_ += '\n';
  }

  void sample(const std::vector<Label>& labels, const Json& value,
              const char* suffix = "") {
    sample(labels, number(value), suffix);
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
  const char* name_ = "";
};

/// Emit one per-endpoint counter family from stats["endpoints"].
void endpoint_counters(Writer& w, const Json* endpoints, const char* field,
                       const char* name, const char* help) {
  if (endpoints == nullptr) return;
  w.family(name, help, "counter");
  for (const auto& [op, m] : endpoints->obj()) {
    if (const Json* v = m.find(field)) w.sample({{"op", op}}, *v);
  }
}

/// Emit per-endpoint latency histograms.  The JSON carries the sparse
/// LogHistogram buckets as [[bit_width, count], ...]; Prometheus wants
/// cumulative counts at each bucket's upper edge.
void endpoint_latency(Writer& w, const Json* endpoints) {
  if (endpoints == nullptr) return;
  w.family("pmonge_request_latency_us", "Submit-to-response latency",
           "histogram");
  for (const auto& [op, m] : endpoints->obj()) {
    const Json* lat = m.find("latency");
    if (lat == nullptr) continue;
    std::uint64_t cum = 0;
    if (const Json* buckets = lat->find("buckets")) {
      for (const Json& pair : buckets->arr()) {
        const auto b = static_cast<std::uint64_t>(pair.arr().at(0).as_int());
        const auto n = static_cast<std::uint64_t>(pair.arr().at(1).as_int());
        cum += n;
        if (b >= 64) continue;  // top bucket's edge is +Inf, emitted below
        const std::uint64_t edge = b == 0 ? 0 : (1ull << b) - 1;
        w.sample({{"op", op}, {"le", std::to_string(edge)}},
                 std::to_string(cum), "_bucket");
      }
    }
    const Json* count = lat->find("count");
    w.sample({{"op", op}, {"le", "+Inf"}},
             count != nullptr ? number(*count) : std::to_string(cum),
             "_bucket");
    if (const Json* sum = lat->find("sum_us")) {
      w.sample({{"op", op}}, *sum, "_sum");
    }
    if (count != nullptr) w.sample({{"op", op}}, *count, "_count");
  }
}

/// Emit a flat section's scalar fields, each as its own family.
struct Field {
  const char* json_key;
  const char* metric;
  const char* help;
  const char* type;
};

void section(Writer& w, const Json* sec, const std::vector<Field>& fields) {
  if (sec == nullptr) return;
  for (const Field& f : fields) {
    if (const Json* v = sec->find(f.json_key)) {
      w.family(f.metric, f.help, f.type);
      w.sample({}, *v);
    }
  }
}

}  // namespace

std::string prometheus_text(const Json& stats) {
  Writer w;
  const Json* endpoints = stats.find("endpoints");

  endpoint_counters(w, endpoints, "requests", "pmonge_requests_total",
                    "Requests admitted into processing");
  endpoint_counters(w, endpoints, "ok", "pmonge_requests_ok_total",
                    "Requests answered ok");
  endpoint_counters(w, endpoints, "errors", "pmonge_requests_errors_total",
                    "Requests answered with an error");
  endpoint_counters(w, endpoints, "overloaded",
                    "pmonge_requests_overloaded_total",
                    "Requests rejected at admission (queue full)");
  endpoint_counters(w, endpoints, "expired", "pmonge_requests_expired_total",
                    "Requests whose deadline expired in queue");
  endpoint_counters(w, endpoints, "unmeetable",
                    "pmonge_requests_unmeetable_total",
                    "Requests rejected as deadline-unmeetable");
  endpoint_counters(w, endpoints, "cache_hits",
                    "pmonge_request_cache_hits_total",
                    "Requests answered from the result cache");
  endpoint_counters(w, endpoints, "cache_misses",
                    "pmonge_request_cache_misses_total",
                    "Requests that missed the result cache");
  endpoint_counters(w, endpoints, "retried", "pmonge_requests_retried_total",
                    "Group retry attempts requests rode through");
  endpoint_counters(w, endpoints, "degraded",
                    "pmonge_requests_degraded_total",
                    "Requests answered via the degraded (breaker) path");
  endpoint_latency(w, endpoints);

  section(w, stats.find("batches"),
          {{"count", "pmonge_batches_total", "Batches popped by the worker",
            "counter"},
           {"p50_size_bound", "pmonge_batch_size_p50_bound",
            "Median batch size (log-bucket upper bound)", "gauge"},
           {"max_size_bound", "pmonge_batch_size_max_bound",
            "Max batch size (log-bucket upper bound)", "gauge"}});

  section(w, stats.find("charged"),
          {{"time", "pmonge_charged_time_total",
            "Summed simulated-PRAM time steps", "counter"},
           {"work", "pmonge_charged_work_total", "Summed simulated-PRAM work",
            "counter"}});

  if (const Json* plans = stats.find("plans")) {
    w.family("pmonge_plans_total", "Executed groups by chosen algorithm",
             "counter");
    for (const auto& [algo, v] : plans->obj()) {
      w.sample({{"algo", algo}}, v);
    }
  }

  section(w, stats.find("cache"),
          {{"enabled", "pmonge_cache_enabled", "Result cache enabled",
            "gauge"},
           {"hits", "pmonge_cache_hits_total", "Result cache hits", "counter"},
           {"misses", "pmonge_cache_misses_total", "Result cache misses",
            "counter"},
           {"insertions", "pmonge_cache_insertions_total",
            "Result cache insertions", "counter"},
           {"evictions", "pmonge_cache_evictions_total",
            "Result cache evictions", "counter"},
           {"invalidations", "pmonge_cache_invalidations_total",
            "Result cache invalidations", "counter"},
           {"poisoned", "pmonge_cache_poisoned_total",
            "Poisoned cache entries detected and dropped", "counter"},
           {"entries", "pmonge_cache_entries", "Result cache live entries",
            "gauge"}});

  section(w, stats.find("resilience"),
          {{"retries", "pmonge_group_retries_total",
            "Group dispatch retries after injected faults", "counter"},
           {"batch_retries", "pmonge_batch_retries_total",
            "Batch dispatch resubmissions after injected faults", "counter"},
           {"degraded_groups", "pmonge_degraded_groups_total",
            "Groups executed on the degraded (sequential) path", "counter"},
           {"breaker_opens", "pmonge_breaker_opens_total",
            "Circuit breaker open transitions", "counter"},
           {"fault_errors", "pmonge_fault_errors_total",
            "Groups answered fault_injected after exhausting retries",
            "counter"},
           {"breaker_open", "pmonge_breaker_open",
            "Circuit breaker currently open", "gauge"}});

  if (const Json* fault = stats.find("fault")) {
    section(w, fault,
            {{"armed", "pmonge_fault_armed", "Fault injection armed",
              "gauge"},
             {"rate_bp", "pmonge_fault_rate_bp",
              "Fault fire rate in basis points", "gauge"},
             {"total", "pmonge_fault_injected_sum",
              "Faults injected across all sites", "counter"}});
    if (const Json* injected = fault->find("injected")) {
      w.family("pmonge_fault_injected_total", "Faults injected by site",
               "counter");
      for (const auto& [site, v] : injected->obj()) {
        w.sample({{"site", site}}, v);
      }
    }
  }

  if (const Json* planner = stats.find("planner")) {
    section(w, planner,
            {{"enabled", "pmonge_planner_enabled", "Adaptive planner enabled",
              "gauge"},
             {"threads", "pmonge_planner_threads",
              "Thread count the planner costs against", "gauge"},
             {"plan_cache_hits", "pmonge_plan_cache_hits_total",
              "Plan cache hits", "counter"},
             {"plan_cache_misses", "pmonge_plan_cache_misses_total",
              "Plan cache misses", "counter"},
             {"plan_cache_size", "pmonge_plan_cache_size",
              "Plan cache entries", "gauge"}});
    if (const Json* profile = planner->find("profile")) {
      w.family("pmonge_planner_info", "Planner cost-profile identity",
               "gauge");
      w.sample({{"profile", profile->as_string()}}, std::string("1"));
    }
  }

  section(w, stats.find("queue"),
          {{"capacity", "pmonge_queue_capacity", "Admission queue capacity",
            "gauge"},
           {"depth", "pmonge_queue_depth", "Admission queue current depth",
            "gauge"},
           {"high_water", "pmonge_queue_high_water",
            "Admission queue high-water depth", "gauge"},
           {"admitted", "pmonge_queue_admitted_total",
            "Requests admitted to the queue", "counter"},
           {"overloaded", "pmonge_queue_overloaded_total",
            "Requests rejected by the queue", "counter"}});

  section(w, stats.find("registry"),
          {{"arrays", "pmonge_registry_arrays", "Registered arrays",
            "gauge"}});

  if (const Json* ex = stats.find("exec")) {
    section(w, ex,
            {{"threads", "pmonge_exec_threads", "Exec pool worker threads",
              "gauge"},
             {"batches", "pmonge_exec_batches_total",
              "Chunk batches submitted to the pool", "counter"},
             {"submit_waits", "pmonge_exec_submit_waits_total",
              "Submitter stalls waiting on pool workers", "counter"},
             {"submit_wait_us", "pmonge_exec_submit_wait_us_total",
              "Microseconds submitters spent stalled", "counter"}});
    const Json* workers = ex->find("workers");
    const Json* external = ex->find("external");
    if (workers != nullptr || external != nullptr) {
      w.family("pmonge_exec_worker_busy_us_total",
               "Microseconds each lane spent executing chunks", "counter");
      if (workers != nullptr) {
        std::size_t i = 0;
        for (const Json& wk : workers->arr()) {
          if (const Json* v = wk.find("busy_us")) {
            w.sample({{"worker", std::to_string(i)}}, *v);
          }
          ++i;
        }
      }
      if (external != nullptr) {
        if (const Json* v = external->find("busy_us")) {
          w.sample({{"worker", "external"}}, *v);
        }
      }
      w.family("pmonge_exec_worker_chunks_total",
               "Chunks each lane executed", "counter");
      if (workers != nullptr) {
        std::size_t i = 0;
        for (const Json& wk : workers->arr()) {
          if (const Json* v = wk.find("chunks")) {
            w.sample({{"worker", std::to_string(i)}}, *v);
          }
          ++i;
        }
      }
      if (external != nullptr) {
        if (const Json* v = external->find("chunks")) {
          w.sample({{"worker", "external"}}, *v);
        }
      }
    }
  }

  section(w, stats.find("index"),
          {{"arrays", "pmonge_index_arrays", "Arrays with a live query index",
            "gauge"},
           {"builds", "pmonge_index_builds_total", "Index builds completed",
            "counter"},
           {"drops", "pmonge_index_drops_total",
            "Indexes dropped (explicitly or via unregister)", "counter"},
           {"lookups", "pmonge_index_lookups_total",
            "Submatrix queries answered through an index", "counter"},
           {"corrupt_detected", "pmonge_index_corrupt_detected_total",
            "Index nodes failing checksum verification", "counter"},
           {"node_rebuilds", "pmonge_index_node_rebuilds_total",
            "Index nodes rebuilt from the source array", "counter"},
           {"nodes", "pmonge_index_nodes", "Live index tree nodes", "gauge"},
           {"memory_bytes", "pmonge_index_memory_bytes",
            "Bytes held by live index structures", "gauge"}});

  section(w, stats.find("alloc"),
          {{"arena_reserved_bytes", "pmonge_alloc_arena_reserved_bytes",
            "Bytes reserved by live bump arenas", "gauge"},
           {"arena_high_water_bytes", "pmonge_alloc_arena_high_water_bytes",
            "Peak bytes live in any arena scope", "gauge"},
           {"pool_hits", "pmonge_alloc_pool_hits_total",
            "Pooled-buffer reuses (no heap allocation)", "counter"},
           {"pool_misses", "pmonge_alloc_pool_misses_total",
            "Pooled-buffer acquisitions that had to allocate", "counter"},
           {"fast_path_hits", "pmonge_alloc_fast_path_hits_total",
            "Requests served by the zero-allocation cached-hit path",
            "counter"}});

  section(w, stats.find("trace"),
          {{"enabled", "pmonge_trace_enabled", "Span tracing enabled",
            "gauge"},
           {"dropped", "pmonge_trace_dropped_spans_total",
            "Spans dropped by full or contended rings", "counter"}});

  if (const Json* uptime = stats.find("uptime_ms")) {
    w.family("pmonge_uptime_ms", "Milliseconds since service start", "gauge");
    w.sample({}, *uptime);
  }

  if (const Json* build = stats.find("build")) {
    const Json* git = build->find("git");
    const Json* compiler = build->find("compiler");
    w.family("pmonge_build_info", "Build provenance of the running binary",
             "gauge");
    w.sample({{"git", git != nullptr ? git->as_string() : "unknown"},
              {"compiler",
               compiler != nullptr ? compiler->as_string() : "unknown"}},
             std::string("1"));
  }

  // Present only when the TCP front-end is live (Service::set_extra_stats).
  section(w, stats.find("rpc"),
          {{"accepted", "pmonge_rpc_connections_accepted_total",
            "TCP connections accepted", "counter"},
           {"rejected", "pmonge_rpc_connections_rejected_total",
            "Connections rejected over --max-conns", "counter"},
           {"closed", "pmonge_rpc_connections_closed_total",
            "Connections closed in an orderly way", "counter"},
           {"dropped", "pmonge_rpc_connections_dropped_total",
            "Connections dropped by the rpc.conn_drop fault site", "counter"},
           {"overflow_dropped", "pmonge_rpc_connections_overflow_total",
            "Connections dropped at the hard outbound-buffer valve",
            "counter"},
           {"idle_closed", "pmonge_rpc_connections_idle_closed_total",
            "Connections closed by the idle timeout", "counter"},
           {"active", "pmonge_rpc_connections_active",
            "Currently open connections", "gauge"},
           {"conn_high_water", "pmonge_rpc_connections_high_water",
            "Peak concurrent connections", "gauge"},
           {"lines_in", "pmonge_rpc_lines_in_total",
            "Request lines framed off sockets", "counter"},
           {"responses_out", "pmonge_rpc_responses_out_total",
            "Response lines fully written to sockets", "counter"},
           {"oversized_lines", "pmonge_rpc_oversized_lines_total",
            "Lines rejected as oversized", "counter"},
           {"overload_rejected", "pmonge_rpc_overload_rejected_total",
            "Framed lines rejected `overloaded` past the inflight valve",
            "counter"},
           {"bytes_in", "pmonge_rpc_bytes_in_total", "Bytes read from sockets",
            "counter"},
           {"bytes_out", "pmonge_rpc_bytes_out_total",
            "Bytes written to sockets", "counter"},
           {"read_pauses", "pmonge_rpc_read_pauses_total",
            "Backpressure engagements (reads paused)", "counter"},
           {"outbound_high_water_bytes", "pmonge_rpc_outbound_high_water_bytes",
            "Peak per-connection outbound buffer bytes", "gauge"}});

  return w.take();
}

}  // namespace pmonge::obs
