// Prometheus text exposition (format 0.0.4) of the service's `stats`
// snapshot: the same numbers the JSON form carries, rendered as
// scrape-ready `# HELP` / `# TYPE` / sample lines so a Prometheus agent
// can tail `{"op":"stats","format":"prometheus"}` responses.
//
// Latency histograms come out as real Prometheus histograms: the
// LogHistogram's power-of-two buckets become cumulative `_bucket{le=...}`
// series with `le` at each bucket's inclusive upper edge (2^b - 1),
// plus `_sum` / `_count`.
#pragma once

#include <string>

#include "serve/json.hpp"

namespace pmonge::obs {

/// Render a `stats` JSON snapshot (Service::stats_json() shape) as
/// Prometheus text.  Unknown or absent sections are skipped, never
/// fatal; each metric family appears exactly once.
std::string prometheus_text(const serve::Json& stats);

}  // namespace pmonge::obs
