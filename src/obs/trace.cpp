#include "obs/trace.hpp"

#include <atomic>
#include <memory>
#include <mutex>

#include "support/env.hpp"

namespace pmonge::obs {

namespace {

/// One thread's span buffer.  The owning thread is the only writer and
/// only ever try_lock()s `mu` (never blocks); the collector takes `mu`
/// blocking, copies, and clears.  Slots are allocated lazily on the
/// first span so threads that never trace cost ~nothing.
struct Ring {
  std::mutex mu;
  std::vector<SpanRecord> slots;  // ring storage, size == cap once used
  std::size_t cap = 0;
  std::size_t head = 0;           // next write position
  std::size_t size = 0;
  std::uint64_t dropped_full = 0;  // overwritten-oldest count (under mu)
  std::atomic<std::uint64_t> dropped_contended{0};  // try_lock failures
  std::uint32_t lane = 0;
  std::string name;  // under mu
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry* r = new Registry;  // immortal: threads may outlive main
  return *r;
}

std::atomic<int> g_enabled{-1};  // -1 = read PMONGE_TRACE on first use
std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::size_t> g_ring_cap{0};  // 0 = read PMONGE_TRACE_BUF

thread_local std::uint64_t t_trace_id = 0;
thread_local std::shared_ptr<Ring> t_ring;

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::size_t ring_capacity() {
  std::size_t c = g_ring_cap.load(std::memory_order_relaxed);
  if (c == 0) {
    c = static_cast<std::size_t>(
        support::env_uint_or("PMONGE_TRACE_BUF", 4096, /*lo=*/16));
    g_ring_cap.store(c, std::memory_order_relaxed);
  }
  return c;
}

Ring& my_ring() {
  if (!t_ring) {
    auto r = std::make_shared<Ring>();
    r->cap = ring_capacity();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    r->lane = static_cast<std::uint32_t>(reg.rings.size());
    r->name = "thread-" + std::to_string(r->lane);
    reg.rings.push_back(r);
    t_ring = std::move(r);
  }
  return *t_ring;
}

/// Writer-side append: non-blocking (try_lock), drop-oldest when full.
void push(Ring& r, const SpanRecord& rec) {
  std::unique_lock<std::mutex> lk(r.mu, std::try_to_lock);
  if (!lk.owns_lock()) {
    r.dropped_contended.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (r.slots.size() != r.cap) r.slots.resize(r.cap);
  r.slots[r.head] = rec;
  r.head = (r.head + 1) % r.cap;
  if (r.size == r.cap) {
    ++r.dropped_full;  // the slot we just reused held the oldest span
  } else {
    ++r.size;
  }
}

bool init_enabled() {
  // env_uint throws loudly on malformed values (the repo-wide knob
  // contract); pmonge-serve touches enabled() eagerly so a typo'd
  // PMONGE_TRACE fails at startup, not mid-serve.
  const auto v = support::env_uint("PMONGE_TRACE");
  const bool on = v.has_value() && *v != 0;
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

}  // namespace

bool enabled() {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return init_enabled();
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_trace_id() { return t_trace_id; }

TraceContext::TraceContext(std::uint64_t id) : saved_(t_trace_id) {
  t_trace_id = id;
}
TraceContext::~TraceContext() { t_trace_id = saved_; }

std::uint64_t now_us() {
  return to_trace_us(std::chrono::steady_clock::now());
}

std::uint64_t to_trace_us(std::chrono::steady_clock::time_point tp) {
  const auto d =
      std::chrono::duration_cast<std::chrono::microseconds>(tp - trace_epoch());
  return d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
}

Span::Span(const char* name) {
  if (!enabled()) return;
  active_ = true;
  rec_.name = name;
  rec_.trace_id = t_trace_id;
  rec_.start_us = now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_us();
  rec_.dur_us = end > rec_.start_us ? end - rec_.start_us : 0;
  Ring& r = my_ring();
  rec_.lane = r.lane;
  push(r, rec_);
}

void Span::set_trace(std::uint64_t id) {
  if (active_) rec_.trace_id = id;
}

void Span::set_charged(std::uint64_t time, std::uint64_t work) {
  if (!active_) return;
  rec_.charged_time = time;
  rec_.charged_work = work;
}

void Span::set_arg(const char* name, std::uint64_t value) {
  if (!active_) return;
  rec_.arg_name = name;
  rec_.arg = value;
}

void Span::set_detail(std::string_view d) {
  if (active_) rec_.set_detail(d);
}

void emit(SpanRecord rec) {
  if (!enabled()) return;
  if (rec.trace_id == 0) rec.trace_id = t_trace_id;
  Ring& r = my_ring();
  rec.lane = r.lane;
  push(r, rec);
}

void emit_all(const std::vector<SpanRecord>& recs) {
  if (recs.empty() || !enabled()) return;
  Ring& r = my_ring();
  std::unique_lock<std::mutex> lk(r.mu, std::try_to_lock);
  if (!lk.owns_lock()) {
    r.dropped_contended.fetch_add(recs.size(), std::memory_order_relaxed);
    return;
  }
  if (r.slots.size() != r.cap) r.slots.resize(r.cap);
  for (SpanRecord rec : recs) {
    if (rec.trace_id == 0) rec.trace_id = t_trace_id;
    rec.lane = r.lane;
    r.slots[r.head] = rec;
    r.head = (r.head + 1) % r.cap;
    if (r.size == r.cap) {
      ++r.dropped_full;
    } else {
      ++r.size;
    }
  }
}

Snapshot collect() {
  Snapshot out;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    rings = reg.rings;
  }
  for (const auto& rp : rings) {
    std::lock_guard<std::mutex> lk(rp->mu);
    if (out.lanes.size() <= rp->lane) out.lanes.resize(rp->lane + 1);
    out.lanes[rp->lane] = rp->name;
    const std::size_t start =
        rp->size == 0 ? 0 : (rp->head + rp->cap - rp->size) % rp->cap;
    for (std::size_t i = 0; i < rp->size; ++i) {
      out.spans.push_back(rp->slots[(start + i) % rp->cap]);
    }
    rp->head = 0;
    rp->size = 0;
    out.dropped += rp->dropped_full +
                   rp->dropped_contended.load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t dropped_total() {
  std::uint64_t total = 0;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    rings = reg.rings;
  }
  for (const auto& rp : rings) {
    std::lock_guard<std::mutex> lk(rp->mu);
    total += rp->dropped_full +
             rp->dropped_contended.load(std::memory_order_relaxed);
  }
  return total;
}

void reset() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    rings = reg.rings;
  }
  for (const auto& rp : rings) {
    std::lock_guard<std::mutex> lk(rp->mu);
    rp->head = 0;
    rp->size = 0;
    rp->dropped_full = 0;
    rp->dropped_contended.store(0, std::memory_order_relaxed);
  }
}

void set_ring_capacity(std::size_t cap) {
  g_ring_cap.store(cap < 16 ? 16 : cap, std::memory_order_relaxed);
}

void set_lane_name(std::string_view name) {
  Ring& r = my_ring();
  std::lock_guard<std::mutex> lk(r.mu);
  r.name.assign(name.begin(), name.end());
}

}  // namespace pmonge::obs
