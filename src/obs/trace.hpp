// End-to-end tracing: low-overhead span capture across the serving stack
// (serve admission -> batcher group -> plan selection -> par:: kernel ->
// exec engine chunks), exportable as Chrome trace-event JSON
// (obs/chrome_trace.hpp) and summarized into the `stats` endpoint.
//
// Design constraints (docs/observability.md has the full story):
//   * Off by default; enabled via PMONGE_TRACE=1 (or set_enabled()).  With
//     tracing off, a Span costs exactly one relaxed atomic load -- nothing
//     is timed, allocated or written.
//   * A worker thread is never blocked by tracing.  Completed spans go
//     into a fixed-capacity per-thread ring buffer; when the ring is full
//     the oldest span is overwritten (drop-oldest) and a dropped-span
//     counter advances.  The only synchronization on the write path is a
//     try_lock against the collector -- an uncontended CAS in steady
//     state; if the collector happens to hold the ring (it drains in
//     microseconds), the span is dropped and counted rather than waited
//     for.
//   * Tracing never influences results.  Trace ids ride in thread-local
//     context and a separate request-envelope field ("trace_id", stripped
//     from cache signatures like "id"); query response bytes are
//     bit-identical with tracing on or off (enforced by tests/test_obs).
//
// Span model: a SpanRecord is one closed interval on one thread lane,
// carrying wall-clock microseconds *and* the charged PRAM time/work of
// the computation it covers, so exported traces show the paper's
// predicted cost next to the measured one (Lemma 2.1 / Theorem 2.3
// accounting, in the work/span-profiling spirit of sptl).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmonge::obs {

/// One closed span.  `name` and `arg_name` must be static-lifetime
/// strings (literals); `detail` is a short truncating copy for dynamic
/// labels (op names, algorithm names).
struct SpanRecord {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no numeric argument
  std::uint64_t trace_id = 0;      // 0 = not tied to a request
  std::uint64_t start_us = 0;      // microseconds since the trace epoch
  std::uint64_t dur_us = 0;
  std::uint64_t charged_time = 0;  // simulated-PRAM steps covered
  std::uint64_t charged_work = 0;  // simulated-PRAM work covered
  std::uint64_t arg = 0;
  std::uint32_t lane = 0;          // thread lane (see Snapshot::lanes)
  char detail[20] = {};            // NUL-terminated, truncating

  void set_detail(std::string_view d) {
    const std::size_t n = d.size() < sizeof(detail) - 1 ? d.size()
                                                        : sizeof(detail) - 1;
    for (std::size_t i = 0; i < n; ++i) detail[i] = d[i];
    detail[n] = '\0';
  }
};

/// Is tracing on?  One relaxed atomic load (after first-use env read).
/// PMONGE_TRACE must be a clean non-negative integer; anything else
/// throws loudly at first use (pmonge-serve checks eagerly at startup).
bool enabled();
void set_enabled(bool on);

/// Fresh process-unique trace id (monotone from 1).  Client-supplied ids
/// (the "trace_id" request field) share the same namespace; collisions
/// are the client's concern.
std::uint64_t new_trace_id();

/// The calling thread's current trace id (0 = none).
std::uint64_t current_trace_id();

/// RAII: spans opened on this thread while alive carry `id`.  The exec
/// engine forwards the submitting thread's id to pool workers executing
/// its chunks, so kernel-internal spans stay attributed to the request.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t id);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// Microseconds since the trace epoch (a process-global steady-clock
/// origin established at first use).
std::uint64_t now_us();
std::uint64_t to_trace_us(std::chrono::steady_clock::time_point tp);

/// RAII span scope: opens at construction, records at destruction.
/// A no-op (active() == false) when tracing is off.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  void set_trace(std::uint64_t id);
  void set_charged(std::uint64_t time, std::uint64_t work);
  void set_arg(const char* name, std::uint64_t value);
  void set_detail(std::string_view d);
  /// Discard without recording.
  void cancel() { active_ = false; }

 private:
  SpanRecord rec_;
  bool active_ = false;
};

/// Record a fully-formed span (caller supplies start_us/dur_us, e.g. a
/// request interval measured against the admission clock).  Lane is
/// filled from the calling thread; trace_id is filled from the thread
/// context when zero.  No-op when tracing is off.
void emit(SpanRecord rec);

/// Emit many fully-formed spans with a single ring reservation -- one
/// try_lock instead of one per span.  The cheap path for per-request
/// spans, which are emitted a worker-batch at a time and are the one
/// tracing cost that scales with query throughput.  All-or-nothing on
/// collector contention (every span counted dropped).  No-op when
/// tracing is off.
void emit_all(const std::vector<SpanRecord>& recs);

struct Snapshot {
  std::vector<SpanRecord> spans;     // in per-lane ring order
  std::uint64_t dropped = 0;         // cumulative dropped-span count
  std::vector<std::string> lanes;    // lane index -> thread name
};

/// Drain every thread's ring into one snapshot.  Spans recorded
/// concurrently with the drain may land in the next snapshot; `dropped`
/// is cumulative (monotone across collects, zeroed by reset()).
Snapshot collect();

/// Cumulative dropped-span count without draining (for `stats`).
std::uint64_t dropped_total();

/// Clear all buffered spans and zero the dropped counters.  Lane
/// registrations (and their names) persist.  Test hook.
void reset();

/// Capacity for rings created *after* this call (each thread's ring is
/// created at its first span).  Default: PMONGE_TRACE_BUF (4096), floor
/// 16.  Test hook.
void set_ring_capacity(std::size_t cap);

/// Name the calling thread's lane in exported traces ("pool-worker-3",
/// "serve-worker", ...).  Registers the lane immediately, so named
/// threads appear in traces even before their first span.
void set_lane_name(std::string_view name);

}  // namespace pmonge::obs
