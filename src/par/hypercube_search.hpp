// Array searching on hypercubic networks (Section 3, Theorems 3.2-3.4).
//
// Data model (Section 3): the network has no global memory.  Entry (i, j)
// is computable only by a processor holding both v[i] and w[j]; the
// vectors start out one-element-per-node and every remote value moves
// along network edges through the Engine.  The core routine is the
// level-synchronous fill of Lemma 3.1: knowing the optima of rows at
// stride 2s, the rows at stride s are bracketed, and one round of
//   neighbor shifts  ->  prefix-sum slot allocation  ->  isotone routing
//   of row descriptors  ->  segmented spreading  ->  isotone w-fetch  ->
//   segmented prefix argopt  ->  isotone write-back
// resolves them, each piece a normal algorithm of O(lg n) steps.  With
// lg n levels the measured depth is O(lg^2 n); the paper states
// O(lg n lglg n) for Theorem 3.2 but omits the proof ("we omit the bulk
// of this proof"), and our per-level machinery spends a full O(lg n)
// allocation round where the omitted construction evidently cascades.
// EXPERIMENTS.md reports the measured series against both shapes.  The
// CCC and shuffle-exchange rows come for free: the whole computation is
// normal, so the engine's emulation charging measures the constant
// slowdown directly.
//
// Orientation: the core solves problems whose per-row argopt position is
// non-decreasing (row *minima* of Monge arrays; ties to the smallest
// column).  Row maxima of Monge arrays -- Theorem 3.2's own statement --
// reduce to it by reversing the column order (a Monge array reversed is
// inverse-Monge, whose rightmost argmax is non-decreasing), exactly the
// transformation Section 1.2 describes.
#pragma once

#include <optional>
#include <vector>

#include "monge/array.hpp"
#include "monge/composite.hpp"
#include "net/engine.hpp"
#include "net/primitives.hpp"
#include "support/series.hpp"

namespace pmonge::par {

namespace hc_detail {

using monge::kNoCol;
using monge::RowOpt;

/// Candidate-slot record used during a level's fill round.
template <class T>
struct Slot {
  bool active = false;
  std::size_t row = 0;     // row this slot serves
  std::size_t offset = 0;  // first slot of the row's segment
  std::size_t lo = 0;      // bracket start
  std::size_t j = 0;       // assigned column
  T cand{};                // F(v, w)
};

/// Core: row optima of an n x n array given by F(v[i], w[j]) on a 2n-node
/// network.  Requires: Better(a, b) is a strict "a beats b"; the leftmost
/// (TieLow) or rightmost (!TieLow) argopt must be non-decreasing in the
/// row index (Monge minima, or reversed-Monge maxima).  n a power of two.
template <bool TieLow, class T, class V, class F, class Better>
std::vector<RowOpt<T>> hc_row_opt(net::Engine& e, const std::vector<V>& v,
                                  const std::vector<V>& w, F&& f,
                                  Better&& better) {
  const std::size_t n = v.size();
  PMONGE_REQUIRE(n >= 1 && pmonge::is_pow2(n), "n must be a power of two");
  PMONGE_REQUIRE(w.size() == n, "square arrays only in the network core");
  PMONGE_REQUIRE(e.size() == 2 * n, "engine must have 2n nodes");

  auto pick = [&](const auto& a, const auto& b) {
    if (better(b.val, a.val)) return b;
    if (better(a.val, b.val)) return a;
    if (TieLow) return a.j <= b.j ? a : b;
    return a.j >= b.j ? a : b;
  };

  // Distributed state: node j < n holds w[j]; node n+i holds v[i] and,
  // once known, the row's answer (jcol, rval).
  std::vector<std::size_t> jcol(e.size(), kNoCol);
  std::vector<T> rval(e.size());

  // --- Base: row 0 by an all-node argopt over all columns. -------------
  {
    std::vector<V> v0(e.size());
    v0[n] = v[0];
    net::broadcast(e, v0, n);
    struct VI {
      T val;
      std::size_t j;
      bool live;
    };
    std::vector<VI> cand(e.size());
    e.local(cand, [&](std::size_t u, VI& x) {
      x.live = u < n;
      if (x.live) {
        x.val = f(v0[u], w[u]);
        x.j = u;
      }
    });
    net::all_reduce(e, cand, [&](const VI& a, const VI& b) {
      if (!a.live) return b;
      if (!b.live) return a;
      return pick(a, b);
    });
    jcol[n] = cand[0].j;
    rval[n] = cand[0].val;
  }
  if (n == 1) return {{rval[n], jcol[n]}};

  // --- Levels: stride n/2, n/4, ..., 1. --------------------------------
  for (std::size_t s = n / 2; s >= 1; s /= 2) {
    // 1. Brackets from the stride-2s neighbors via shifted copies; a
    //    missing below-neighbor unbounds the bracket at column n-1
    //    (argopt positions are non-decreasing in this orientation).
    std::vector<std::size_t> from_above = jcol;  // j(i-s) -> node n+i
    net::shift(e, from_above, static_cast<std::ptrdiff_t>(s), kNoCol);
    std::vector<std::size_t> from_below = jcol;  // j(i+s) -> node n+i
    net::shift(e, from_below, -static_cast<std::ptrdiff_t>(s), kNoCol);

    struct RowDesc {
      bool is_new = false;
      std::size_t lo = 0, hi = 0, width = 0;
    };
    std::vector<RowDesc> desc(e.size());
    e.local(desc, [&](std::size_t u, RowDesc& x) {
      if (u < n) return;
      const std::size_t i = u - n;
      if (i % s != 0 || (i / s) % 2 == 0) return;  // not a new row
      const std::size_t lo = from_above[u];        // j(i-s), always known
      const std::size_t hi = (i + s >= n) ? n - 1 : from_below[u];
      PMONGE_ASSERT(lo != kNoCol && hi != kNoCol && lo <= hi,
                    "bracket neighbors missing or inverted");
      x = {true, lo, hi, hi - lo + 1};
    });

    // 2. Slot offsets: prefix sum of widths over all nodes (total fits
    //    the 2n slots: brackets telescope to <= n + n/(2s) candidates).
    std::vector<std::size_t> off(e.size());
    e.local(off, [&](std::size_t u, std::size_t& x) {
      x = desc[u].is_new ? desc[u].width : 0;
    });
    net::prefix_scan(e, off,
                     [](std::size_t a, std::size_t b) { return a + b; });

    // 3. Route row descriptors to their segment-start slots (isotone:
    //    offsets strictly increase with the row index).
    struct DescPkt {
      std::size_t row, offset, lo, width;
      V vval;
    };
    std::vector<std::optional<net::Packet<DescPkt>>> slots(e.size());
    e.local(slots,
            [&](std::size_t u, std::optional<net::Packet<DescPkt>>& x) {
              if (u < n || !desc[u].is_new) return;
              const std::size_t start = off[u] - desc[u].width;
              x = net::Packet<DescPkt>{
                  {u - n, start, desc[u].lo, desc[u].width, v[u - n]},
                  start};
            });
    net::monotone_route(e, slots);

    // 4. Spread each descriptor across its segment (copy-last scan) and
    //    materialize the per-slot work records.
    std::vector<std::optional<DescPkt>> seg(e.size());
    e.local(seg, [&](std::size_t u, std::optional<DescPkt>& x) {
      if (slots[u]) x = slots[u]->payload;
    });
    net::prefix_scan(e, seg,
                     [](const std::optional<DescPkt>& a,
                        const std::optional<DescPkt>& b) {
                       return b ? b : a;
                     });
    std::vector<Slot<T>> work(e.size());
    e.local(work, [&](std::size_t u, Slot<T>& x) {
      if (!seg[u]) return;
      const DescPkt& d = *seg[u];
      if (u >= d.offset + d.width) return;  // past the final segment
      x.active = true;
      x.row = d.row;
      x.offset = d.offset;
      x.lo = d.lo;
      x.j = d.lo + (u - d.offset);
    });
    std::vector<V> vv(e.size());
    e.local(vv, [&](std::size_t u, V& x) {
      if (work[u].active) x = seg[u]->vval;
    });

    // 5. Fetch w[j]: slot columns are globally non-decreasing (adjacent
    //    brackets share only their endpoint), so run-starts request w
    //    from node j isotonely, replies return isotonely, and a
    //    j-segmented copy-last scan spreads them across each run.
    std::vector<std::size_t> jreq(e.size());
    e.local(jreq, [&](std::size_t u, std::size_t& x) {
      x = work[u].active ? work[u].j : kNoCol;
    });
    std::vector<std::size_t> jleft = jreq;
    net::shift(e, jleft, 1, kNoCol);  // left neighbor's column
    struct WReq {
      std::size_t src;
    };
    std::vector<std::optional<net::Packet<WReq>>> req(e.size());
    e.local(req, [&](std::size_t u, std::optional<net::Packet<WReq>>& x) {
      if (!work[u].active) return;
      if (jleft[u] == jreq[u]) return;  // not a run start
      x = net::Packet<WReq>{{u}, work[u].j};
    });
    net::monotone_route(e, req);
    struct WRep {
      V wv;
    };
    std::vector<std::optional<net::Packet<WRep>>> rep(e.size());
    e.local(rep, [&](std::size_t u, std::optional<net::Packet<WRep>>& x) {
      if (req[u]) x = net::Packet<WRep>{{w[u]}, req[u]->payload.src};
    });
    net::monotone_route(e, rep);
    std::vector<std::optional<V>> wv(e.size());
    e.local(wv, [&](std::size_t u, std::optional<V>& x) {
      if (rep[u]) x = rep[u]->payload.wv;
    });
    net::segmented_prefix_scan(
        e, wv, jreq,
        [](const std::optional<V>& a, const std::optional<V>& b) {
          return b ? b : a;
        });

    // 6. Evaluate candidates locally.
    e.local(work, [&](std::size_t u, Slot<T>& x) {
      if (!x.active) return;
      PMONGE_ASSERT(wv[u].has_value(), "w fetch failed");
      x.cand = f(vv[u], *wv[u]);
    });

    // 7. Row-segmented argopt; each segment's last slot holds its row's
    //    winner and writes it back to node n+row (isotone).
    struct Win {
      T val;
      std::size_t j;
      bool live;
    };
    std::vector<Win> win(e.size());
    e.local(win, [&](std::size_t u, Win& x) {
      x = {work[u].cand, work[u].j, work[u].active};
    });
    std::vector<std::size_t> rowkey(e.size());
    e.local(rowkey, [&](std::size_t u, std::size_t& x) {
      x = work[u].active ? work[u].row : kNoCol;
    });
    net::segmented_prefix_scan(e, win, rowkey,
                               [&](const Win& a, const Win& b) {
                                 if (!a.live) return b;
                                 if (!b.live) return a;
                                 return pick(a, b);
                               });
    std::vector<std::size_t> rowright = rowkey;
    net::shift(e, rowright, -1, kNoCol);  // right neighbor's row key
    std::vector<std::optional<net::Packet<Win>>> back(e.size());
    e.local(back, [&](std::size_t u, std::optional<net::Packet<Win>>& x) {
      if (!work[u].active) return;
      if (rowright[u] == rowkey[u]) return;  // not the segment end
      x = net::Packet<Win>{win[u], n + work[u].row};
    });
    net::monotone_route(e, back);
    e.local(back, [&](std::size_t u, std::optional<net::Packet<Win>>& x) {
      if (x) {
        jcol[u] = x->payload.j;
        rval[u] = x->payload.val;
      }
    });
    if (s == 1) break;
  }

  std::vector<RowOpt<T>> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = {rval[n + i], jcol[n + i]};
  return out;
}

}  // namespace hc_detail

/// Theorem 3.2 (row minima form): leftmost row minima of an n x n Monge
/// array, n a power of two, on a 2n-node hypercube / CCC /
/// shuffle-exchange network.  The array is given by its distance vectors
/// and evaluator: a[i][j] = f(v[i], w[j]); costs accrue in `engine`.
template <class T, class V, class F>
std::vector<monge::RowOpt<T>> hc_monge_row_minima(net::Engine& engine,
                                                  const std::vector<V>& v,
                                                  const std::vector<V>& w,
                                                  F&& f) {
  return hc_detail::hc_row_opt<true, T>(
      engine, v, w, std::forward<F>(f),
      [](const T& a, const T& b) { return a < b; });
}

/// Theorem 3.2: leftmost row maxima of an n x n Monge array.  Reduces to
/// the core by reversing the column order (rightmost argmax of the
/// reversed, inverse-Monge array is non-decreasing and maps back to the
/// leftmost argmax of the original).
template <class T, class V, class F>
std::vector<monge::RowOpt<T>> hc_monge_row_maxima(net::Engine& engine,
                                                  const std::vector<V>& v,
                                                  const std::vector<V>& w,
                                                  F&& f) {
  const std::size_t n = v.size();
  std::vector<V> wrev(w.rbegin(), w.rend());
  auto res = hc_detail::hc_row_opt<false, T>(
      engine, v, wrev, std::forward<F>(f),
      [](const T& a, const T& b) { return b < a; });
  for (auto& r : res) {
    if (r.col != monge::kNoCol) r.col = n - 1 - r.col;
  }
  return res;
}

/// Engine sized for the 2n-node square-array core.
inline net::Engine make_engine_for(std::size_t n, net::TopologyKind kind) {
  return net::Engine(kind, ceil_lg(2 * pmonge::next_pow2(n)));
}

/// Aggregate cost of a multi-engine network computation: phases run in
/// lockstep on disjoint sub-networks (padded to equal dimension so the
/// whole phase is one normal algorithm), so time is the max within each
/// phase, summed across phases; nodes is the peak total.
struct HcAggregate {
  std::uint64_t comm_steps = 0;
  std::uint64_t local_steps = 0;
  std::size_t physical_nodes = 0;
  std::uint64_t total_steps() const { return comm_steps + local_steps; }
};

/// Theorem 3.3: row minima of an m x n staircase-Monge array on a
/// hypercubic network.  Reuses the canonical-segment decomposition of
/// Theorem 2.3's implementation: each frontier segment is a plain Monge
/// block solved by the Theorem 3.2 core on its own (padded, power-of-two)
/// sub-network; blocks of one segment level run in lockstep.
template <class T, class EvalF>
std::pair<std::vector<monge::RowOpt<T>>, HcAggregate> hc_staircase_row_minima(
    net::TopologyKind kind, std::size_t m, std::size_t n,
    const std::vector<std::size_t>& frontier, const EvalF& eval) {
  PMONGE_REQUIRE(frontier.size() == m, "frontier arity");
  std::vector<monge::RowOpt<T>> out(
      m, monge::RowOpt<T>{monge::inf<T>(), monge::kNoCol});
  HcAggregate agg;
  if (m == 0 || n == 0) return {out, agg};

  struct Job {
    std::size_t level, col0, width, r0, r1;
  };
  std::vector<Job> jobs;
  for (std::size_t k = 0; (std::size_t{1} << k) <= n; ++k) {
    const std::size_t w = std::size_t{1} << k;
    std::size_t i = 0;
    while (i < m) {
      if (!(frontier[i] & w)) {
        ++i;
        continue;
      }
      const std::size_t col0 = frontier[i] & ~(2 * w - 1);
      std::size_t j = i;
      while (j < m && (frontier[j] & w) &&
             (frontier[j] & ~(2 * w - 1)) == col0) {
        ++j;
      }
      jobs.push_back({k, col0, w, i, j});
      i = j;
    }
  }

  std::vector<std::vector<monge::RowOpt<T>>> winners(m);
  const std::size_t max_level =
      static_cast<std::size_t>(std::max(1, ceil_lg(n + 1)));
  for (std::size_t k = 0; k <= max_level; ++k) {
    std::uint64_t phase_comm = 0, phase_local = 0;
    std::size_t phase_nodes = 0;
    for (const auto& job : jobs) {
      if (job.level != k) continue;
      // Pad the block to a power-of-two square (duplicated trailing rows
      // and columns keep the block Monge and do not disturb leftmost
      // argmins).
      const std::size_t rows = job.r1 - job.r0;
      const std::size_t side =
          pmonge::next_pow2(std::max(rows, job.width));
      std::vector<std::size_t> vi(side), wj(side);
      for (std::size_t t = 0; t < side; ++t) {
        vi[t] = job.r0 + std::min(t, rows - 1);
        wj[t] = job.col0 + std::min(t, job.width - 1);
      }
      net::Engine e(kind, ceil_lg(2 * side));
      auto res = hc_monge_row_minima<T>(
          e, vi, wj, [&](std::size_t i, std::size_t j) { return eval(i, j); });
      phase_comm = std::max(phase_comm, e.meter().comm_steps);
      phase_local = std::max(phase_local, e.meter().local_steps);
      phase_nodes += e.physical_nodes();
      for (std::size_t t = 0; t < rows; ++t) {
        auto r = res[t];
        if (r.col != monge::kNoCol) {
          r.col = wj[r.col];  // map padded column back
        }
        winners[job.r0 + t].push_back(r);
      }
    }
    agg.comm_steps += phase_comm;
    agg.local_steps += phase_local;
    agg.physical_nodes = std::max(agg.physical_nodes, phase_nodes);
  }

  // Final per-row argopt over <= lg n segment winners: one more lockstep
  // phase of lg-depth reductions.
  agg.comm_steps += static_cast<std::uint64_t>(
      std::max(1, ceil_lg(max_level + 2)));
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& cand : winners[i]) {
      if (cand.col == monge::kNoCol) continue;
      if (out[i].col == monge::kNoCol || cand.value < out[i].value ||
          (cand.value == out[i].value && cand.col < out[i].col)) {
        out[i] = cand;
      }
    }
  }
  return {out, agg};
}

/// Theorem 3.4: tube maxima of an n x n x n Monge-composite array on an
/// n^2-processor hypercubic network, n a power of two.  The r output
/// slices are independent n x n Monge row-maxima problems (the k-th slice
/// fixes the last coordinate) run in lockstep on disjoint 2n-node
/// sub-networks.
template <monge::Array2D D, monge::Array2D E>
std::pair<monge::TubePlane<typename D::value_type>, HcAggregate>
hc_tube_maxima(net::TopologyKind kind, const D& d, const E& e) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  PMONGE_REQUIRE(p == q && q == r && pmonge::is_pow2(p),
                 "cube with power-of-two side required");
  monge::TubePlane<T> out{p, r, std::vector<monge::TubeOpt<T>>(p * r)};
  HcAggregate agg;
  std::vector<std::size_t> idx(p);
  for (std::size_t i = 0; i < p; ++i) idx[i] = i;
  for (std::size_t k = 0; k < r; ++k) {
    net::Engine eng(kind, ceil_lg(2 * p));
    auto res = hc_monge_row_maxima<T>(
        eng, idx, idx,
        [&](std::size_t i, std::size_t j) { return d(i, j) + e(j, k); });
    agg.comm_steps = std::max(agg.comm_steps, eng.meter().comm_steps);
    agg.local_steps = std::max(agg.local_steps, eng.meter().local_steps);
    agg.physical_nodes += eng.physical_nodes();
    for (std::size_t i = 0; i < p; ++i) {
      out.at(i, k) = {res[i].value, res[i].col};
    }
  }
  return {out, agg};
}

}  // namespace pmonge::par
