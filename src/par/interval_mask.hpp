// Row optima of an implicit array under a per-row *interval* mask.
//
// The applications in Section 1.3 repeatedly face arrays whose valid
// entries form an interval [lo_i, hi_i) per row with both endpoint
// sequences monotone (visible / invisible arcs of a convex polygon,
// dominance-staircase validity in the rectangle problems).  Such a mask
// is the two-sided generalization of the staircase frontier, and the same
// canonical-segment decomposition applies: tile each row's interval with
// its O(lg n) maximal aligned binary segments; the rows tiled by a given
// segment sigma form (prefix by lo) \cap (suffix by hi) minus the rows
// where sigma's parent already fits -- at most two contiguous row blocks.
// Every (segment x block) piece is a fully-valid Monge or inverse-Monge
// subarray searched by par/monge_rowminima.hpp; each row then argopts
// over its O(lg n) piece winners.  Charged depth O(lg n) on CRCW with
// O((m+n) lg n) processors, like the staircase searcher it generalizes.
#pragma once

#include <span>
#include <vector>

#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/series.hpp"

namespace pmonge::par {

enum class MaskedProblem {
  MongeMinima,         // base array Monge, want row minima
  MongeMaxima,         // base array Monge, want row maxima
  InverseMongeMinima,  // base array inverse-Monge, want row minima
  InverseMongeMaxima,  // base array inverse-Monge, want row maxima
};

/// Row optima of the m x n implicit array `eval` restricted to
/// [lo[i], hi[i]) per row.  Requires lo and hi monotone non-decreasing
/// (PMONGE_REQUIRE'd) and lo[i] <= hi[i] <= n.  Rows with empty intervals
/// report {+-inf, kNoCol}.
template <class T, class EvalF>
std::vector<RowOpt<T>> interval_masked_row_opt(
    pram::Machine& mach, std::size_t m, std::size_t n,
    std::span<const std::size_t> lo, std::span<const std::size_t> hi,
    const EvalF& eval, MaskedProblem kind) {
  PMONGE_REQUIRE(lo.size() == m && hi.size() == m, "mask arity mismatch");
  const bool minima = kind == MaskedProblem::MongeMinima ||
                      kind == MaskedProblem::InverseMongeMinima;
  std::vector<RowOpt<T>> out(
      m, RowOpt<T>{minima ? monge::inf<T>() : -monge::inf<T>(), kNoCol});
  if (m == 0 || n == 0) return out;
  for (std::size_t i = 0; i < m; ++i) {
    PMONGE_REQUIRE(lo[i] <= hi[i] && hi[i] <= n, "bad mask interval");
    if (i) {
      PMONGE_REQUIRE(lo[i - 1] <= lo[i] && hi[i - 1] <= hi[i],
                     "mask endpoints must be monotone");
    }
  }

  // Charged allocation pass (flags + scans), as in the staircase case.
  const auto lgn = static_cast<std::uint64_t>(std::max(1, ceil_lg(n + 1)));
  mach.meter().charge(2 * lgn + 2, m + n, 4 * (m + n));

  struct Job {
    std::size_t col0, width, r0, r1;
  };
  std::vector<Job> jobs;

  // first row index with hi[i] >= x (suffix start)
  auto suffix_from = [&](std::size_t x) {
    std::size_t a = 0, b = m;
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (hi[mid] >= x) {
        b = mid;
      } else {
        a = mid + 1;
      }
    }
    return a;
  };
  // one past the last row index with lo[i] <= x (prefix end)
  auto prefix_upto = [&](std::size_t x) {
    std::size_t a = 0, b = m;
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (lo[mid] <= x) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return a;
  };
  // rows whose interval contains [start, start + w)
  auto contain_range = [&](std::size_t start,
                           std::size_t w) -> std::pair<std::size_t, std::size_t> {
    const std::size_t r0 = suffix_from(start + w);
    const std::size_t r1 = prefix_upto(start);
    return {r0, std::max(r0, r1)};
  };

  const std::size_t ncap = pmonge::next_pow2(n);
  for (std::size_t w = 1; w <= ncap; w *= 2) {
    for (std::size_t start = 0; start + w <= n; start += w) {
      const auto [r0, r1] = contain_range(start, w);
      if (r0 >= r1) continue;
      // Maximality: subtract rows where the parent segment also fits.
      const std::size_t pstart = start - (start % (2 * w));
      std::pair<std::size_t, std::size_t> pr{0, 0};
      if (pstart + 2 * w <= n) pr = contain_range(pstart, 2 * w);
      // Parent rows form a contiguous sub-range of [r0, r1); keep the
      // (at most two) leftover pieces.
      const std::size_t p0 = std::clamp(pr.first, r0, r1);
      const std::size_t p1 = std::clamp(pr.second, r0, r1);
      if (r0 < p0) jobs.push_back({start, w, r0, p0});
      if (p1 < r1) jobs.push_back({start, w, p1, r1});
      if (p0 >= p1) continue;  // no parent overlap handled above
    }
  }

  // Jobs of different segment widths can cover the same row and run
  // concurrently on the host engine, so each job fills a private result
  // slot; rows' candidate lists are assembled serially afterwards (in job
  // order, deterministic at every thread count).
  std::vector<std::vector<RowOpt<T>>> job_res(jobs.size());
  mach.parallel_branches(jobs.size(), [&](std::size_t t, pram::Machine& sub) {
    const Job& job = jobs[t];
    auto block = monge::make_func_array<T>(
        job.r1 - job.r0, job.width,
        [&, job](std::size_t i, std::size_t j) {
          return eval(job.r0 + i, job.col0 + j);
        });
    std::vector<RowOpt<T>> res;
    switch (kind) {
      case MaskedProblem::MongeMinima:
        res = monge_row_minima(sub, block);
        break;
      case MaskedProblem::MongeMaxima:
        res = monge_row_maxima(sub, block);
        break;
      case MaskedProblem::InverseMongeMinima:
        res = inverse_monge_row_minima(sub, block);
        break;
      case MaskedProblem::InverseMongeMaxima:
        res = inverse_monge_row_maxima(sub, block);
        break;
    }
    sub.meter().charge(1, res.size());
    for (auto& r : res) {
      if (r.col != kNoCol) r.col += job.col0;
    }
    job_res[t] = std::move(res);
  });

  std::vector<std::vector<RowOpt<T>>> winners(m);
  for (std::size_t t = 0; t < jobs.size(); ++t) {
    for (std::size_t i = 0; i < job_res[t].size(); ++i) {
      winners[jobs[t].r0 + i].push_back(job_res[t][i]);
    }
  }

  const auto lgcand = static_cast<std::uint64_t>(std::max(1, ceil_lg(n + 1)));
  mach.meter().charge(lgcand, m, static_cast<std::uint64_t>(m) * lgcand);
  mach.parallel_branches(m, [&](std::size_t i, pram::Machine& sub) {
    auto& cand = winners[i];
    if (cand.empty()) return;
    std::sort(cand.begin(), cand.end(),
              [](const RowOpt<T>& a, const RowOpt<T>& b) {
                return a.col < b.col;
              });
    auto r = pram::argopt<T>(
        sub, cand.size(), [&](std::size_t t) { return cand[t].value; },
        [&](const T& x, const T& y) { return minima ? x < y : y < x; });
    out[i] = cand[r.index];
  });
  return out;
}

}  // namespace pmonge::par
