// Parallel row minima / maxima of Monge and inverse-Monge arrays on a
// simulated PRAM ([AP89a]; used as the base primitive by Section 2).
//
// Structure (the sqrt-decomposition double recursion):
//   square m x m:  sample every s-th row with s = floor(sqrt(m)); solve the
//                  sampled sqrt(m) x m array (the wide case below); the
//                  leftmost argmins j(1) <= j(2) <= ... bracket the
//                  remaining rows into groups, each group a Monge subarray
//                  of < s rows whose column ranges overlap only at
//                  endpoints; solve all groups recursively in parallel.
//   m > n (Lemma 2.1 Case 1):  sample every ceil(m/n)-th row, solve the
//                  resulting <= n x n array, then the fill-in regions hold
//                  only O(m) candidate entries; search them directly.
//   n > m (Lemma 2.1 Case 2):  split the columns into ceil(n/m) blocks of
//                  <= m columns, solve the square blocks in parallel, and
//                  take each row's best block winner.
//
// Charged depth obeys D(m) = 2 D(sqrt(m)) + O(level), where `level` is
// O(lglg m) on CRCW (doubly-log interval minima) and O(lg m) on CREW
// (tree minima), giving the Table 1.1 shapes O(lg n) and O(lg n lglg n)
// respectively, with O(n) peak processors -- measured, not assumed; the
// benchmarks fit the series.
//
// Implementation note: recursion operates on an explicit row-id vector
// plus a contiguous column range over a single entry evaluator, so the
// compiler sees one instantiation per input array type (nesting SubArray/
// RowSelect view types recursively would blow up template depth).
//
// Host execution: every parallel_branches fan-out below runs concurrently
// on the src/exec engine.  Branch bodies write only disjoint slots of
// `out` / `block` (their branch's rows), which is the independence the
// simulated machine already required; `eval` must be a pure read.
// Scratch discipline: the recursion's bookkeeping temporaries (sampled
// positions, bracket lists, iota row vectors) live on the calling
// thread's bump arena (exec/scratch.hpp) -- built before any fan-out,
// read-only inside parallel branches, rewound on frame exit.  Branch-
// written result carriers (`out`, `block`) stay std::vector: children
// run on other threads and move their results in.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "exec/scratch.hpp"
#include "exec/thread_pool.hpp"
#include "monge/array.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/series.hpp"

namespace pmonge::par {

using monge::Array2D;
using monge::kNoCol;
using monge::RowOpt;

/// Small-input serial cutoff shared by the par/ entry points (and read by
/// the execution planner, src/plan): below this many cells the whole
/// search runs under an exec::SerialScope -- identical decomposition,
/// identical results and charged costs, but no pool submissions, because
/// at this size the dispatch overhead dwarfs the work.
inline constexpr std::size_t kSerialCutoffCells = 4096;

namespace detail {

/// SerialScope for searches the cutoff declares too small to farm out.
/// RowOpt results and meter charges are unchanged by construction (the
/// engine never influences either); only the execution strategy differs.
class MaybeSerial {
 public:
  explicit MaybeSerial(std::size_t cells) {
    if (cells <= kSerialCutoffCells) scope_.emplace();
  }

 private:
  std::optional<exec::SerialScope> scope_;  // in place: no per-call heap
};

/// Ranged argopt over columns [lo, hi] of one row, with tie policy.
template <bool PreferLeft, class T, class EvalF>
RowOpt<T> row_range_opt(pram::Machine& m, const EvalF& eval, std::size_t row,
                        std::size_t lo, std::size_t hi) {
  const std::size_t width = hi - lo + 1;
  auto res = pram::argopt<T>(
      m, width,
      [&](std::size_t t) { return eval(row, PreferLeft ? lo + t : hi - t); },
      [](const T& x, const T& y) { return x < y; });
  return {res.value, PreferLeft ? lo + res.index : hi - res.index};
}

/// Core recursion: leftmost (PreferLeft) or rightmost row minima of the
/// Monge array eval restricted to `rows` x [clo, chi].  Returns results
/// aligned with `rows`; column indices are global.
template <bool PreferLeft, class T, class EvalF>
std::vector<RowOpt<T>> rowmin_rec(pram::Machine& mach, const EvalF& eval,
                                  std::span<const std::size_t> rows,
                                  std::size_t clo, std::size_t chi) {
  const std::size_t m = rows.size();
  std::vector<RowOpt<T>> out(m);
  if (m == 0) return out;
  const std::size_t n = chi - clo + 1;

  if (m <= 4 || n <= 4 || m * n <= 64) {
    mach.parallel_branches(m, [&](std::size_t i, pram::Machine& sub) {
      out[i] = row_range_opt<PreferLeft, T>(sub, eval, rows[i], clo, chi);
    });
    return out;
  }

  if (n > m) {
    // Lemma 2.1 Case 2: column blocks of <= m columns solved in parallel,
    // then per-row argopt over block winners (ordered so index ties give
    // the right tie policy on the global column).
    const std::size_t nb = (n + m - 1) / m;
    std::vector<std::vector<RowOpt<T>>> block(nb);
    mach.parallel_branches(nb, [&](std::size_t b, pram::Machine& sub) {
      const std::size_t lo = clo + b * m;
      const std::size_t hi = std::min(chi, lo + m - 1);
      block[b] = rowmin_rec<PreferLeft, T>(sub, eval, rows, lo, hi);
    });
    mach.parallel_branches(m, [&](std::size_t i, pram::Machine& sub) {
      auto res = pram::argopt<T>(
          sub, nb,
          [&](std::size_t b) {
            return block[PreferLeft ? b : nb - 1 - b][i].value;
          },
          [](const T& x, const T& y) { return x < y; });
      out[i] = block[PreferLeft ? res.index : nb - 1 - res.index][i];
    });
    return out;
  }

  // Sample stride: sqrt for squares, ceil(m/n) when m > n (Case 1, whose
  // fill-in is small enough to search directly).
  const bool recurse_groups = (m <= n);
  const std::size_t stride =
      recurse_groups ? std::max<std::size_t>(2, pmonge::isqrt(m))
                     : (m + n - 1) / n;

  // Frame scratch: sampled positions/rows and the bracket list are built
  // before any fan-out, read-only in the branches, rewound on return.
  exec::ScratchScope scratch;
  auto sampled_pos = exec::scratch_vector<std::size_t>();
  for (std::size_t p = stride - 1; p < m; p += stride) sampled_pos.push_back(p);
  if (sampled_pos.empty()) sampled_pos.push_back(m - 1);
  auto sampled_rows = exec::scratch_vector<std::size_t>(sampled_pos.size());
  for (std::size_t t = 0; t < sampled_pos.size(); ++t) {
    sampled_rows[t] = rows[sampled_pos[t]];
  }
  auto sub = rowmin_rec<PreferLeft, T>(mach, eval, sampled_rows, clo, chi);
  mach.meter().charge(1, sub.size());
  for (std::size_t t = 0; t < sampled_pos.size(); ++t) {
    out[sampled_pos[t]] = sub[t];
  }

  // Fill-in groups between consecutive sampled positions; argopt
  // monotonicity brackets each group's columns (non-decreasing for both
  // tie policies on this orientation).
  struct Bracket {
    std::size_t p0, p1;  // positions [p0, p1) within `rows`
    std::size_t lo, hi;  // global column bracket
  };
  auto groups = exec::scratch_vector<Bracket>();
  std::size_t prev_pos = 0;
  std::size_t prev_col = clo;
  for (std::size_t t = 0; t <= sampled_pos.size(); ++t) {
    const std::size_t next_pos =
        t < sampled_pos.size() ? sampled_pos[t] : m;
    const std::size_t next_col = t < sampled_pos.size() ? sub[t].col : chi;
    // Monotone argopt positions are the load-bearing Monge consequence;
    // an inversion means the caller's array violates its claimed
    // property -- fail loudly instead of searching a bogus bracket.
    PMONGE_REQUIRE(next_col >= prev_col,
                   "argopt positions not monotone: input array is not "
                   "Monge/inverse-Monge as claimed");
    if (next_pos > prev_pos) {
      groups.push_back({prev_pos, next_pos, prev_col, next_col});
    }
    prev_pos = next_pos + 1;
    prev_col = next_col;
  }

  mach.parallel_branches(groups.size(), [&](std::size_t g,
                                            pram::Machine& gm) {
    const Bracket& b = groups[g];
    const auto grows = rows.subspan(b.p0, b.p1 - b.p0);
    if (recurse_groups) {
      auto res = rowmin_rec<PreferLeft, T>(gm, eval, grows, b.lo, b.hi);
      gm.meter().charge(1, res.size());
      for (std::size_t i = 0; i < res.size(); ++i) out[b.p0 + i] = res[i];
    } else {
      gm.parallel_branches(grows.size(), [&](std::size_t i,
                                             pram::Machine& rm) {
        out[b.p0 + i] =
            row_range_opt<PreferLeft, T>(rm, eval, grows[i], b.lo, b.hi);
      });
    }
  });
  return out;
}

template <bool PreferLeft, class T, class EvalF>
std::vector<RowOpt<T>> rowmin_entry(pram::Machine& mach, std::size_t m,
                                    std::size_t n, const EvalF& eval) {
  std::vector<RowOpt<T>> empty_out(m, RowOpt<T>{monge::inf<T>(), kNoCol});
  if (m == 0 || n == 0) return empty_out;
  MaybeSerial serial(m * n);
  exec::ScratchScope scratch;  // outlives the recursion; rows is read-only
  auto rows = exec::scratch_vector<std::size_t>(m);
  for (std::size_t i = 0; i < m; ++i) rows[i] = i;
  return rowmin_rec<PreferLeft, T>(
      mach, eval, std::span<const std::size_t>(rows.data(), rows.size()), 0,
      n - 1);
}

/// Batched entry: same recursion restricted to an explicit strictly-
/// increasing row subset (the serve layer's coalescing hook).  Results
/// align with `rows`; each equals what a one-row query would return.
template <bool PreferLeft, class T, class EvalF>
std::vector<RowOpt<T>> rowmin_rows_entry(pram::Machine& mach,
                                         std::size_t total_rows,
                                         std::size_t n,
                                         std::span<const std::size_t> rows,
                                         const EvalF& eval) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    PMONGE_REQUIRE(rows[i] < total_rows, "row query out of range");
    PMONGE_REQUIRE(i == 0 || rows[i - 1] < rows[i],
                   "batched row queries must be strictly increasing");
  }
  if (rows.empty() || n == 0) {
    return std::vector<RowOpt<T>>(rows.size(),
                                  RowOpt<T>{monge::inf<T>(), kNoCol});
  }
  MaybeSerial serial(rows.size() * n);
  return rowmin_rec<PreferLeft, T>(mach, eval, rows, 0, n - 1);
}

}  // namespace detail

/// Leftmost row minima of a Monge array on the simulated PRAM whose model
/// `mach` carries.  Charged depth: O(lg n) on CRCW models; O(lg n lglg n)
/// under Brent scheduling at n/lglg n processors on CREW.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> monge_row_minima(
    pram::Machine& mach, const A& a) {
  using T = typename A::value_type;
  auto eval = [&a](std::size_t i, std::size_t j) { return a(i, j); };
  return detail::rowmin_entry<true, T>(mach, a.rows(), a.cols(), eval);
}

/// Leftmost row maxima of a Monge array (Table 1.1's problem), via the
/// negate + reverse-columns reduction with a rightmost-tie core.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> monge_row_maxima(
    pram::Machine& mach, const A& a) {
  using T = typename A::value_type;
  const std::size_t n = a.cols();
  auto eval = [&a, n](std::size_t i, std::size_t j) {
    return -a(i, n - 1 - j);
  };
  auto mins = detail::rowmin_entry<false, T>(mach, a.rows(), n, eval);
  for (auto& r : mins) {
    r = {-r.value, r.col == kNoCol ? kNoCol : n - 1 - r.col};
  }
  return mins;
}

/// Leftmost row maxima of an inverse-Monge array (e.g. the convex-polygon
/// distance arrays of Figure 1.1).
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> inverse_monge_row_maxima(
    pram::Machine& mach, const A& a) {
  using T = typename A::value_type;
  auto eval = [&a](std::size_t i, std::size_t j) { return -a(i, j); };
  auto mins = detail::rowmin_entry<true, T>(mach, a.rows(), a.cols(), eval);
  for (auto& r : mins) r.value = -r.value;
  return mins;
}

/// Leftmost row minima of an inverse-Monge array.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> inverse_monge_row_minima(
    pram::Machine& mach, const A& a) {
  using T = typename A::value_type;
  const std::size_t n = a.cols();
  auto eval = [&a, n](std::size_t i, std::size_t j) {
    return a(i, n - 1 - j);
  };
  auto mins = detail::rowmin_entry<false, T>(mach, a.rows(), n, eval);
  for (auto& r : mins) {
    if (r.col != kNoCol) r.col = n - 1 - r.col;
  }
  return mins;
}

// ---------------------------------------------------------------------------
// Batched row queries (serve-layer coalescing entry points)
// ---------------------------------------------------------------------------
//
// Many independent "row r of array A" queries against the same array are
// one invocation of the recursion restricted to those rows -- a Monge
// array stays Monge under any row subset, so the sampled/bracketed
// decomposition applies unchanged.  Each returned RowOpt is exactly what
// the corresponding single-row query returns (row optima are per-row
// facts; the batch only changes how the search amortizes), which is what
// makes service responses independent of batching.  `rows` must be
// strictly increasing (the monotone-argmin bracketing needs row order).

/// Leftmost row minima of a Monge array, restricted to `rows`.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> monge_row_minima_rows(
    pram::Machine& mach, const A& a, std::span<const std::size_t> rows) {
  using T = typename A::value_type;
  auto eval = [&a](std::size_t i, std::size_t j) { return a(i, j); };
  return detail::rowmin_rows_entry<true, T>(mach, a.rows(), a.cols(), rows,
                                            eval);
}

/// Leftmost row maxima of a Monge array, restricted to `rows`.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> monge_row_maxima_rows(
    pram::Machine& mach, const A& a, std::span<const std::size_t> rows) {
  using T = typename A::value_type;
  const std::size_t n = a.cols();
  auto eval = [&a, n](std::size_t i, std::size_t j) {
    return -a(i, n - 1 - j);
  };
  auto res = detail::rowmin_rows_entry<false, T>(mach, a.rows(), n, rows,
                                                 eval);
  for (auto& r : res) {
    r = {-r.value, r.col == kNoCol ? kNoCol : n - 1 - r.col};
  }
  return res;
}

/// Leftmost row maxima of an inverse-Monge array, restricted to `rows`.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> inverse_monge_row_maxima_rows(
    pram::Machine& mach, const A& a, std::span<const std::size_t> rows) {
  using T = typename A::value_type;
  auto eval = [&a](std::size_t i, std::size_t j) { return -a(i, j); };
  auto res = detail::rowmin_rows_entry<true, T>(mach, a.rows(), a.cols(),
                                                rows, eval);
  for (auto& r : res) r.value = -r.value;
  return res;
}

/// Leftmost row minima of an inverse-Monge array, restricted to `rows`.
template <Array2D A>
std::vector<RowOpt<typename A::value_type>> inverse_monge_row_minima_rows(
    pram::Machine& mach, const A& a, std::span<const std::size_t> rows) {
  using T = typename A::value_type;
  const std::size_t n = a.cols();
  auto eval = [&a, n](std::size_t i, std::size_t j) {
    return a(i, n - 1 - j);
  };
  auto res = detail::rowmin_rows_entry<false, T>(mach, a.rows(), n, rows,
                                                 eval);
  for (auto& r : res) {
    if (r.col != kNoCol) r.col = n - 1 - r.col;
  }
  return res;
}

}  // namespace pmonge::par
