// Parallel row minima of staircase-Monge arrays (the paper's primary
// contribution: Theorem 2.3 / Corollary 2.4).
//
// The extended abstract sketches a sampling algorithm whose fill-in phase
// partitions the array into feasible Monge and staircase regions using
// ANSV-based "bracketed minima" bookkeeping (Lemma 2.2, Figure 2.2) whose
// full details were deferred to the never-published final version.  This
// library implements the same theorem through an equivalent decomposition
// with a transparent correctness argument:
//
//   Canonical-segment decomposition.  Write each row's finite prefix
//   [0, f_i) as the disjoint union of canonical binary segments -- one
//   segment per set bit of f_i, at most ceil(lg n) of them.  For a fixed
//   canonical segment sigma = [start, start + 2^k), the rows whose
//   decomposition uses sigma are exactly those with f_i in
//   [start + 2^k, start + 2^(k+1)), a contiguous row block because the
//   frontier is non-increasing.  Every (segment x row-block) piece is a
//   *plain Monge* subarray (all entries finite), so the Monge searcher of
//   [AP89a] (par/monge_rowminima.hpp) applies; each row then takes the
//   best of its <= ceil(lg n) segment winners.
//
// Two schedules expose the time/processor trade (Table 1.2):
//   * MaxParallel:    all segments solved concurrently.
//       depth O(lg n) on CRCW (matching Theorem 2.3's time bound) with
//       O((m+n) lg n) processors;
//   * WorkEfficient:  one segment level (segments of equal size) at a
//       time -- levels are column-disjoint and each row appears at most
//       once per level, so O(m+n) processors suffice at depth O(lg^2 n).
// The paper's Lemma 2.2 allocation machinery attains O(lg n) depth *and*
// O(n) processors simultaneously; our two schedules bracket that point
// from both sides, and EXPERIMENTS.md reports both.  Under Brent
// scheduling at the paper's processor counts both schedules reproduce the
// Table 1.2 rows (see bench_table_1_2).
#pragma once

#include <vector>

#include "exec/scratch.hpp"
#include "monge/array.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/series.hpp"

namespace pmonge::par {

enum class StaircaseSchedule {
  MaxParallel,   // O(lg n) CRCW depth, O((m+n) lg n) processors
  WorkEfficient, // O(lg^2 n) depth, O(m+n) processors
  ColumnSplit,   // recursive halving; O(lg^2 n) depth, O(m+n) processors
};

namespace detail {

/// One canonical piece: segment [col0, col0 + width) solved for the
/// contiguous row block [row0, row1).
struct SegmentJob {
  std::size_t level;  // lg(width)
  std::size_t col0;
  std::size_t width;
  std::size_t row0, row1;
};

/// Enumerate the canonical pieces of a staircase frontier into `jobs`
/// (any vector-like container -- the hot path hands in a scratch vector).
/// Host-side O(m lg n); charged as a scan-based allocation pass (each row
/// flags its <= lg n set bits, a prefix scan compacts jobs), which is
/// O(lg n) depth with m+n processors on any model here.
template <class JobVec>
void segment_jobs_into(pram::Machine& mach, const std::vector<std::size_t>& f,
                       std::size_t n, JobVec& jobs) {
  const std::size_t m = f.size();
  if (m == 0 || n == 0) return;
  const auto lgn = static_cast<std::uint64_t>(std::max(1, ceil_lg(n + 1)));
  mach.meter().charge(2 * lgn + 2, m + n, 4 * (m + n));
  // Frontiers are non-increasing, so rows sharing the same canonical
  // segment are consecutive; sweep rows once per bit level.
  for (std::size_t k = 0; (1ull << k) <= n; ++k) {
    const std::size_t w = std::size_t{1} << k;
    std::size_t i = 0;
    while (i < m) {
      if (!(f[i] & w)) {
        ++i;
        continue;
      }
      const std::size_t col0 = f[i] & ~(2 * w - 1);
      std::size_t j = i;
      while (j < m && (f[j] & w) && (f[j] & ~(2 * w - 1)) == col0) ++j;
      jobs.push_back({k, col0, w, i, j});
      i = j;
    }
  }
}

inline std::vector<SegmentJob> segment_jobs(pram::Machine& mach,
                                            const std::vector<std::size_t>& f,
                                            std::size_t n) {
  std::vector<SegmentJob> jobs;
  segment_jobs_into(mach, f, n, jobs);
  return jobs;
}

/// Column-split divide and conquer -- an independent third algorithm for
/// Theorem 2.3, used for cross-validation and the ablation bench.
/// Recurse on the column range [c0, c1): rows whose frontier exceeds the
/// midpoint form a contiguous prefix (frontiers are non-increasing) whose
/// left half is a plain Monge rectangle (batch-searched) and whose right
/// half recurses; the remaining rows recurse left.  Depth O(lg^2 n)
/// (lg n column levels x lg-depth Monge searches), processors O(m+n):
/// every row belongs to exactly one Monge batch per level.
template <bool Minima, monge::Array2D A>
void staircase_colsplit(pram::Machine& mach,
                        const monge::StaircaseArray<A>& s, std::size_t r0,
                        std::size_t r1, std::size_t c0, std::size_t c1,
                        std::vector<RowOpt<typename A::value_type>>& out) {
  using T = typename A::value_type;
  if (r0 >= r1 || c0 >= c1) return;
  auto better = [&](const RowOpt<T>& a, const RowOpt<T>& b) {
    if (b.col == monge::kNoCol) return true;
    if (a.col == monge::kNoCol) return false;
    if (Minima ? a.value < b.value : b.value < a.value) return true;
    if (Minima ? b.value < a.value : a.value < b.value) return false;
    return a.col <= b.col;
  };
  const std::size_t width = c1 - c0;
  if (width <= 4 || r1 - r0 <= 1) {
    // Direct: each row scans its live prefix of this column range.
    mach.parallel_branches(r1 - r0, [&](std::size_t t, pram::Machine& sub) {
      const std::size_t i = r0 + t;
      const std::size_t hi = std::min(c1, s.frontier(i));
      if (hi <= c0) return;
      auto res = pram::argopt<T>(
          sub, hi - c0, [&](std::size_t k) { return s.base()(i, c0 + k); },
          [](const T& x, const T& y) { return Minima ? x < y : y < x; });
      RowOpt<T> cand{res.value, c0 + res.index};
      if (better(cand, out[i])) out[i] = cand;
    });
    return;
  }
  const std::size_t mid = c0 + width / 2;
  // Rows with frontier > mid form a prefix [r0, split).
  std::size_t split = r0;
  while (split < r1 && s.frontier(split) > mid) ++split;
  mach.meter().charge(static_cast<std::uint64_t>(
                          std::max(1, ceil_lg(r1 - r0 + 1))),
                      r1 - r0);  // find the split by parallel search
  mach.parallel_branches(2, [&](std::size_t h, pram::Machine& sub) {
    if (h == 0) {
      if (split > r0) {
        // Left half is fully alive for these rows: one Monge batch...
        monge::SubArray<A> block(s.base(), r0, split - r0, c0, mid - c0);
        auto res = Minima ? monge_row_minima(sub, block)
                          : monge_row_maxima(sub, block);
        sub.meter().charge(1, split - r0);
        for (std::size_t t = 0; t < res.size(); ++t) {
          RowOpt<T> cand = res[t];
          if (cand.col != monge::kNoCol) cand.col += c0;
          if (better(cand, out[r0 + t])) out[r0 + t] = cand;
        }
        // ...and their tail recurses right.
        staircase_colsplit<Minima>(sub, s, r0, split, mid, c1, out);
      }
    } else if (split < r1) {
      staircase_colsplit<Minima>(sub, s, split, r1, c0, mid, out);
    }
  });
}

template <bool Minima, monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_opt(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    StaircaseSchedule sched) {
  using T = typename A::value_type;
  const std::size_t m = s.rows(), n = s.cols();
  std::vector<RowOpt<T>> out(
      m, RowOpt<T>{Minima ? monge::inf<T>() : -monge::inf<T>(),
                   monge::kNoCol});
  if (m == 0 || n == 0) return out;

  if (sched == StaircaseSchedule::ColumnSplit) {
    staircase_colsplit<Minima>(mach, s, 0, m, 0, n, out);
    return out;
  }

  // Frame scratch: the job list and the per-level index lists are exact
  // call-lifetime bookkeeping -- bump-allocated, read-only inside the
  // parallel branches, rewound on return.  job_res/winners stay on
  // std::vector (branch threads move results into / sort through them).
  exec::ScratchScope scratch;
  auto jobs = exec::scratch_vector<SegmentJob>();
  segment_jobs_into(mach, s.frontiers(), n, jobs);
  // Jobs at different levels can share rows, and under MaxParallel they
  // run concurrently on the host engine -- so each job writes its own
  // result slot, and the candidate lists are assembled serially below in
  // job order (deterministic at every thread count).
  std::vector<std::vector<RowOpt<T>>> job_res(jobs.size());
  const auto lgn = static_cast<std::size_t>(std::max(1, ceil_lg(n + 1)));

  auto run_job = [&](std::size_t t, pram::Machine& sub) {
    const SegmentJob& job = jobs[t];
    monge::SubArray<A> block(s.base(), job.row0, job.row1 - job.row0,
                             job.col0, job.width);
    auto res = Minima ? monge_row_minima(sub, block)
                      : monge_row_maxima(sub, block);
    sub.meter().charge(1, job.row1 - job.row0);
    for (auto& r : res) {
      if (r.col != monge::kNoCol) r.col += job.col0;
    }
    job_res[t] = std::move(res);
  };

  if (sched == StaircaseSchedule::MaxParallel) {
    mach.parallel_branches(jobs.size(), run_job);
  } else {
    // Level-phased: segments of one width at a time.  Within a level the
    // segments are column-disjoint and row blocks meet each row once.
    std::size_t done = 0;
    auto level = exec::scratch_vector<std::size_t>();
    for (std::size_t k = 0; done < jobs.size(); ++k) {
      level.clear();
      for (std::size_t t = 0; t < jobs.size(); ++t) {
        if (jobs[t].level == k) level.push_back(t);
      }
      done += level.size();
      if (level.empty()) continue;
      mach.parallel_branches(level.size(), [&](std::size_t t,
                                               pram::Machine& sub) {
        run_job(level[t], sub);
      });
    }
  }

  // winners[i] holds row i's candidates ordered by segment start so the
  // final argopt's smallest-index tie rule yields the leftmost column.
  // Assembly is host bookkeeping of already-charged job results.
  std::vector<std::vector<RowOpt<T>>> winners(m);
  for (auto& wv : winners) wv.reserve(lgn);
  for (std::size_t t = 0; t < jobs.size(); ++t) {
    for (std::size_t i = jobs[t].row0; i < jobs[t].row1; ++i) {
      winners[i].push_back(job_res[t][i - jobs[t].row0]);
    }
  }

  // Segment winners arrive ordered by level (width), not by column; sort
  // each row's handful of candidates by column so ties resolve leftmost.
  // Host cost O(m lg n lg lg n); charged as one comparison step per row
  // over lg n candidates (each row's candidates fit one processor group).
  mach.meter().charge(static_cast<std::uint64_t>(lgn), m,
                      static_cast<std::uint64_t>(m) * lgn);
  mach.parallel_branches(m, [&](std::size_t i, pram::Machine& sub) {
    auto& cand = winners[i];
    if (cand.empty()) return;  // f_i == 0: row stays {inf, kNoCol}
    std::sort(cand.begin(), cand.end(),
              [](const RowOpt<T>& a, const RowOpt<T>& b) {
                return a.col < b.col;
              });
    auto r = pram::argopt<T>(
        sub, cand.size(), [&](std::size_t t) { return cand[t].value; },
        [](const T& x, const T& y) { return Minima ? x < y : y < x; });
    out[i] = cand[r.index];
  });
  return out;
}

}  // namespace detail

/// Theorem 2.3 / Corollary 2.4: leftmost row minima of an m x n
/// staircase-Monge array on the simulated PRAM.  Rows with no finite
/// entry report {inf, kNoCol}.
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_minima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  detail::MaybeSerial serial(s.rows() * s.cols());
  return detail::staircase_opt<true>(mach, s, sched);
}

/// Leftmost row maxima over the finite region of a staircase-Monge array
/// (the "easy direction" the paper attributes to [AKM+87]).
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_maxima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  detail::MaybeSerial serial(s.rows() * s.cols());
  return detail::staircase_opt<false>(mach, s, sched);
}

/// Staircase-*inverse*-Monge variants (Section 1.1 defines them; the
/// rectangle applications consume them).  Negating the base swaps the
/// Monge orientation and min <-> max, so these are thin reductions.
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_inverse_row_minima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  using T = typename A::value_type;
  monge::Negate<A> neg(s.base());
  monge::StaircaseArray<monge::Negate<A>> ns(neg, s.frontiers());
  auto res = detail::staircase_opt<false>(mach, ns, sched);
  for (auto& r : res) {
    r.value = r.col == monge::kNoCol ? monge::inf<T>() : -r.value;
  }
  return res;
}

template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_inverse_row_maxima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  using T = typename A::value_type;
  monge::Negate<A> neg(s.base());
  monge::StaircaseArray<monge::Negate<A>> ns(neg, s.frontiers());
  auto res = detail::staircase_opt<true>(mach, ns, sched);
  for (auto& r : res) {
    r.value = r.col == monge::kNoCol ? -monge::inf<T>() : -r.value;
  }
  return res;
}

// ---------------------------------------------------------------------------
// Batched row queries (serve-layer coalescing entry points)
// ---------------------------------------------------------------------------
//
// A row subset of a staircase-Monge array is staircase-Monge (the
// selected frontiers inherit non-increasingness), so many row queries
// against one staircase array coalesce into a single Theorem-2.3
// invocation over the row-selected view.  Results align with `rows`,
// which must be strictly increasing.

namespace detail {

template <bool Minima, monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_rows_entry(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    std::span<const std::size_t> rows, StaircaseSchedule sched) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    PMONGE_REQUIRE(rows[i] < s.rows(), "row query out of range");
    PMONGE_REQUIRE(i == 0 || rows[i - 1] < rows[i],
                   "batched row queries must be strictly increasing");
  }
  MaybeSerial serial(rows.size() * s.cols());
  monge::RowSelect<A> sel(s.base(),
                          std::vector<std::size_t>(rows.begin(), rows.end()));
  std::vector<std::size_t> frontier;
  frontier.reserve(rows.size());
  for (const std::size_t r : rows) frontier.push_back(s.frontier(r));
  monge::StaircaseArray<monge::RowSelect<A>> sub(sel, std::move(frontier));
  return staircase_opt<Minima>(mach, sub, sched);
}

}  // namespace detail

/// Leftmost row minima of a staircase-Monge array, restricted to `rows`.
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_minima_rows(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    std::span<const std::size_t> rows,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  return detail::staircase_rows_entry<true>(mach, s, rows, sched);
}

/// Leftmost row maxima over the finite region, restricted to `rows`.
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> staircase_row_maxima_rows(
    pram::Machine& mach, const monge::StaircaseArray<A>& s,
    std::span<const std::size_t> rows,
    StaircaseSchedule sched = StaircaseSchedule::MaxParallel) {
  return detail::staircase_rows_entry<false>(mach, s, rows, sched);
}

}  // namespace pmonge::par
