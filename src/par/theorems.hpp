// Paper-to-code map: every numbered result of the paper as a named entry
// point, with its claimed bound in the doc comment and the implementing
// routine in the body.  Use these when you want the paper's statement;
// use the underlying headers when you want the knobs (schedules,
// strategies, tie policies).
//
//   Lemma 2.1      m x n Monge row minima, O(lg m + lg n) CRCW time,
//                  m/lg m + n processors.
//   Theorem 2.3    n x n staircase-Monge row minima, O(lg n) CRCW /
//                  O(lg n lglg n) CREW.
//   Corollary 2.4  m x n staircase-Monge row minima, O(lg m + lg n) CRCW.
//   Theorem 3.2    n x n Monge row maxima on an (n/lglg n)-processor
//                  hypercube, O(lg n lglg n).
//   Theorem 3.3    staircase row minima, same network bounds.
//   Theorem 3.4    n x n x n tube maxima on an n^2-processor hypercube,
//                  O(lg n).
//
// (Table 1.1's row-maxima problem and the tube problems live in
// par/monge_rowminima.hpp and par/tube_maxima.hpp.)
#pragma once

#include "par/hypercube_search.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "par/tube_maxima.hpp"

namespace pmonge::par {

/// Lemma 2.1: row minima of an m x n Monge array.  Charged O(lg m + lg n)
/// depth on CRCW machines (the rectangular cases of the sqrt recursion).
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> lemma_2_1_row_minima(
    pram::Machine& mach, const A& a) {
  return monge_row_minima(mach, a);
}

/// Theorem 2.3: row minima of an n x n staircase-Monge array.
/// CRCW: O(lg n) depth (MaxParallel schedule).  On a CREW machine the
/// Brent-scheduled time at n/lglg n processors is O(lg n lglg n).
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> theorem_2_3_row_minima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s) {
  return staircase_row_minima(mach, s, StaircaseSchedule::MaxParallel);
}

/// Corollary 2.4: the rectangular m x n staircase case; same entry point
/// (the decomposition is shape-agnostic), named for the paper mapping.
template <monge::Array2D A>
std::vector<RowOpt<typename A::value_type>> corollary_2_4_row_minima(
    pram::Machine& mach, const monge::StaircaseArray<A>& s) {
  return staircase_row_minima(mach, s, StaircaseSchedule::MaxParallel);
}

/// Theorem 3.2: row maxima of an n x n Monge array on a hypercubic
/// network, given the paper's distance-vector data model
/// a[i][j] = f(v[i], w[j]).  Measured O(lg^2 n) normal steps (the paper's
/// omitted construction claims O(lg n lglg n); see EXPERIMENTS.md).
template <class T, class V, class F>
std::vector<monge::RowOpt<T>> theorem_3_2_row_maxima(net::Engine& engine,
                                                     const std::vector<V>& v,
                                                     const std::vector<V>& w,
                                                     F&& f) {
  return hc_monge_row_maxima<T>(engine, v, w, std::forward<F>(f));
}

/// Theorem 3.3: staircase-Monge row minima on a hypercubic network.
template <class T, class EvalF>
std::pair<std::vector<monge::RowOpt<T>>, HcAggregate>
theorem_3_3_row_minima(net::TopologyKind kind, std::size_t m, std::size_t n,
                       const std::vector<std::size_t>& frontier,
                       const EvalF& eval) {
  return hc_staircase_row_minima<T>(kind, m, n, frontier, eval);
}

/// Theorem 3.4: tube maxima of an n x n x n Monge-composite array on an
/// n^2-processor hypercubic network.
template <monge::Array2D D, monge::Array2D E>
std::pair<monge::TubePlane<typename D::value_type>, HcAggregate>
theorem_3_4_tube_maxima(net::TopologyKind kind, const D& d, const E& e) {
  return hc_tube_maxima(kind, d, e);
}

}  // namespace pmonge::par
