// Parallel tube maxima / minima of Monge-composite arrays (Table 1.3).
//
// Given Monge D (p x q) and E (q x r), compute opt_j d[i][j] + e[j][k]
// for every (i, k), ties to the smallest j.  Two strategies:
//
//  * PerSlice (the CREW row, Theta(lg n)):  for fixed k the array
//    F_k[i][j] = d[i][j] + e[j][k] is plain Monge (e[.][k] is a column
//    offset), so the r slices are r independent Monge row-optima problems
//    solved concurrently by par/monge_rowminima.hpp.  Charged depth is the
//    depth of one Monge search: O(lg n) on CREW -- exactly the Table 1.3
//    CREW time -- with O(n^2) processors (the paper trims this to
//    n^2/lg n with a scheduling trick it defers to the final version; we
//    report Brent time at that count instead).
//
//  * SampledDoublyLog (the CRCW row, Theta(lglg n), after [Ata89]):
//    sample every s-th row and s-th column of the output plane and solve
//    the sampled outputs directly with the doubly-logarithmic CRCW argopt
//    over all q middle indices; the monotone theta of the sampled grid
//    brackets the j-range of every remaining output, which is then
//    searched with one more doubly-log argopt.  Charged depth
//    O(lglg n) + O(lglg n) = Theta(lglg n), matching the CRCW row.
//    Processor count is q/s per sampled output plus bracket widths for
//    the fill; on non-adversarial inputs this stays near n^2 (the
//    benches report the measured peak).
//
// Host execution: the fan-outs run concurrently on the src/exec engine.
// Every branch writes its own out.at(i, k) cells; the fill phase only
// *reads* sampled cells (membership-checked, never re-solved), which
// were fully written by the preceding phase's barrier (parallel_branches
// returns only when all branches retire), so the phases never race.
#pragma once

#include <algorithm>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "exec/scratch.hpp"
#include "monge/array.hpp"
#include "monge/composite.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/series.hpp"

namespace pmonge::par {

using monge::TubeOpt;
using monge::TubePlane;

enum class TubeStrategy {
  PerSlice,          // Theta(lg n) depth (CREW row of Table 1.3)
  SampledDoublyLog,  // Theta(lglg n) depth on CRCW (CRCW row of Table 1.3)
};

namespace detail {

/// Direct argopt over a j-range for one output (i, k).
template <bool Minima, monge::Array2D D, monge::Array2D E>
TubeOpt<typename D::value_type> tube_point(pram::Machine& m, const D& d,
                                           const E& e, std::size_t i,
                                           std::size_t k, std::size_t jlo,
                                           std::size_t jhi) {
  using T = typename D::value_type;
  auto r = pram::argopt<T>(
      m, jhi - jlo + 1,
      [&](std::size_t t) { return d(i, jlo + t) + e(jlo + t, k); },
      [](const T& x, const T& y) { return Minima ? x < y : y < x; });
  return {r.value, jlo + r.index};
}

template <bool Minima, monge::Array2D D, monge::Array2D E>
TubePlane<typename D::value_type> tube_per_slice(pram::Machine& mach,
                                                 const D& d, const E& e) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  TubePlane<T> out{p, r, std::vector<TubeOpt<T>>(p * r)};
  mach.parallel_branches(r, [&](std::size_t k, pram::Machine& sub) {
    auto fk = monge::make_func_array<T>(
        p, q, [&, k](std::size_t i, std::size_t j) {
          return d(i, j) + e(j, k);
        });
    auto res = Minima ? monge_row_minima(sub, fk) : monge_row_maxima(sub, fk);
    sub.meter().charge(1, p);
    for (std::size_t i = 0; i < p; ++i) out.at(i, k) = {res[i].value,
                                                        res[i].col};
  });
  return out;
}

template <bool Minima, monge::Array2D D, monge::Array2D E>
TubePlane<typename D::value_type> tube_sampled(pram::Machine& mach,
                                               const D& d, const E& e) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  TubePlane<T> out{p, r, std::vector<TubeOpt<T>>(p * r)};
  const std::size_t s =
      std::max<std::size_t>(1, pmonge::isqrt(std::max(p, r)));

  // Sampled grid: rows {0, s, 2s, ..., p-1} x cols {0, s, ..., r-1}; the
  // boundary rows/cols are always included so every output is bracketed.
  // Scratch: built before the fan-outs, read-only inside the branches.
  exec::ScratchScope scratch;
  auto sample_axis = [&](std::size_t extent) {
    auto v = exec::scratch_vector<std::size_t>();
    for (std::size_t x = 0; x < extent; x += s) v.push_back(x);
    if (v.back() != extent - 1) v.push_back(extent - 1);
    return v;
  };
  const auto si = sample_axis(p);
  const auto sk = sample_axis(r);

  if (si.size() < 2 || sk.size() < 2) {
    // Degenerate plane: solve every output directly (still doubly-log).
    mach.parallel_branches(p * r, [&](std::size_t t, pram::Machine& sub) {
      out.at(t / r, t % r) =
          tube_point<Minima>(sub, d, e, t / r, t % r, 0, q - 1);
    });
    return out;
  }

  mach.parallel_branches(si.size() * sk.size(), [&](std::size_t t,
                                                    pram::Machine& sub) {
    const std::size_t i = si[t / sk.size()];
    const std::size_t k = sk[t % sk.size()];
    out.at(i, k) = tube_point<Minima>(sub, d, e, i, k, 0, q - 1);
  });

  // Membership masks for the fill's "already solved" test.  Stride
  // arithmetic (i % s == aligned) is not enough: the appended boundary
  // row/column is sampled but not stride-aligned, and a fill branch that
  // re-solved such a cell would write it while concurrent branches read
  // it as a bracket corner.
  auto row_sampled = exec::scratch_vector<char>(p, char{0});
  auto col_sampled = exec::scratch_vector<char>(r, char{0});
  for (std::size_t x : si) row_sampled[x] = 1;
  for (std::size_t x : sk) col_sampled[x] = 1;

  // Fill: bracket each remaining output by the thetas of the enclosing
  // sampled grid corners.  Theta is non-decreasing in (i, k) for minima
  // and non-increasing for maxima; take the corner pair accordingly.
  mach.parallel_branches(p * r, [&](std::size_t t, pram::Machine& sub) {
    const std::size_t i = t / r;
    const std::size_t k = t % r;
    if (row_sampled[i] && col_sampled[k]) return;  // phase 2 owns this cell
    // Locate the enclosing sampled cell.
    const std::size_t a = std::min((i / s), si.size() - 2);
    const std::size_t b = std::min((k / s), sk.size() - 2);
    const std::size_t jlo_min = out.at(si[a], sk[b]).j;
    const std::size_t jhi_min = out.at(si[a + 1], sk[b + 1]).j;
    std::size_t jlo, jhi;
    if (Minima) {
      jlo = jlo_min;
      jhi = jhi_min;
    } else {
      jlo = jhi_min;  // maxima: theta non-increasing
      jhi = jlo_min;
    }
    PMONGE_ASSERT(jlo <= jhi, "tube bracket inverted");
    out.at(i, k) = tube_point<Minima>(sub, d, e, i, k, jlo, jhi);
  });
  return out;
}

}  // namespace detail

/// Tube minima of the Monge-composite array (D, E); smallest-j ties.
template <monge::Array2D D, monge::Array2D E>
TubePlane<typename D::value_type> tube_minima(
    pram::Machine& mach, const D& d, const E& e,
    TubeStrategy strategy = TubeStrategy::PerSlice) {
  PMONGE_REQUIRE(d.cols() == e.rows(), "composite dimensions mismatch");
  PMONGE_REQUIRE(d.rows() > 0 && d.cols() > 0 && e.cols() > 0,
                 "empty composite array");
  return strategy == TubeStrategy::PerSlice
             ? detail::tube_per_slice<true>(mach, d, e)
             : detail::tube_sampled<true>(mach, d, e);
}

/// Tube maxima of the Monge-composite array (D, E); smallest-j ties
/// (the paper's "minimum third coordinate" rule).
template <monge::Array2D D, monge::Array2D E>
TubePlane<typename D::value_type> tube_maxima(
    pram::Machine& mach, const D& d, const E& e,
    TubeStrategy strategy = TubeStrategy::PerSlice) {
  PMONGE_REQUIRE(d.cols() == e.rows(), "composite dimensions mismatch");
  PMONGE_REQUIRE(d.rows() > 0 && d.cols() > 0 && e.cols() > 0,
                 "empty composite array");
  return strategy == TubeStrategy::PerSlice
             ? detail::tube_per_slice<false>(mach, d, e)
             : detail::tube_sampled<false>(mach, d, e);
}

// ---------------------------------------------------------------------------
// Batched point queries (serve-layer coalescing entry points)
// ---------------------------------------------------------------------------

/// One output cell of the tube plane: opt over j of d[i][j] + e[j][k].
struct TubeQuery {
  std::size_t i = 0;
  std::size_t k = 0;
};

namespace detail {

/// Grouped execution: queries sharing a k live in the same Monge slice
/// F_k[i][j] = d[i][j] + e[j][k], so each distinct k costs one batched
/// row search over its queried rows; distinct slices run as parallel
/// branches.  Results align with `qs` (duplicates allowed, any order).
template <bool Minima, monge::Array2D D, monge::Array2D E>
std::vector<TubeOpt<typename D::value_type>> tube_points_impl(
    pram::Machine& mach, const D& d, const E& e,
    std::span<const TubeQuery> qs) {
  using T = typename D::value_type;
  const std::size_t p = d.rows(), q = d.cols(), r = e.cols();
  for (const TubeQuery& tq : qs) {
    PMONGE_REQUIRE(tq.i < p && tq.k < r, "tube query out of range");
  }
  std::vector<TubeOpt<T>> out(qs.size());
  MaybeSerial serial(qs.size() * q);
  std::map<std::size_t, std::vector<std::size_t>> by_k;  // k -> query idxs
  for (std::size_t t = 0; t < qs.size(); ++t) by_k[qs[t].k].push_back(t);
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups(
      by_k.begin(), by_k.end());
  mach.parallel_branches(groups.size(), [&](std::size_t g,
                                            pram::Machine& sub) {
    const std::size_t k = groups[g].first;
    const std::vector<std::size_t>& members = groups[g].second;
    // Branch-local scratch: this lambda runs on some worker thread, so
    // the row list bumps *that* thread's arena and rewinds at branch end.
    exec::ScratchScope branch_scratch;
    auto rows = exec::scratch_vector<std::size_t>();
    rows.reserve(members.size());
    for (const std::size_t t : members) rows.push_back(qs[t].i);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    auto fk = monge::make_func_array<T>(
        p, q, [&, k](std::size_t i, std::size_t j) {
          return d(i, j) + e(j, k);
        });
    auto res = Minima ? monge_row_minima_rows(sub, fk, rows)
                      : monge_row_maxima_rows(sub, fk, rows);
    for (const std::size_t t : members) {
      const auto it =
          std::lower_bound(rows.begin(), rows.end(), qs[t].i);
      const auto& ro = res[static_cast<std::size_t>(it - rows.begin())];
      out[t] = {ro.value, ro.col};
    }
  });
  return out;
}

}  // namespace detail

/// Batched tube-maxima point queries; each result equals the matching
/// cell of tube_maxima(mach, d, e) (smallest-j ties).
template <monge::Array2D D, monge::Array2D E>
std::vector<TubeOpt<typename D::value_type>> tube_maxima_points(
    pram::Machine& mach, const D& d, const E& e,
    std::span<const TubeQuery> qs) {
  PMONGE_REQUIRE(d.cols() == e.rows(), "composite dimensions mismatch");
  PMONGE_REQUIRE(d.rows() > 0 && d.cols() > 0 && e.cols() > 0,
                 "empty composite array");
  return detail::tube_points_impl<false>(mach, d, e, qs);
}

/// Batched tube-minima point queries.
template <monge::Array2D D, monge::Array2D E>
std::vector<TubeOpt<typename D::value_type>> tube_minima_points(
    pram::Machine& mach, const D& d, const E& e,
    std::span<const TubeQuery> qs) {
  PMONGE_REQUIRE(d.cols() == e.rows(), "composite dimensions mismatch");
  PMONGE_REQUIRE(d.rows() > 0 && d.cols() > 0 && e.cols() > 0,
                 "empty composite array");
  return detail::tube_points_impl<true>(mach, d, e, qs);
}

}  // namespace pmonge::par
