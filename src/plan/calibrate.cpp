#include "plan/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/string_edit.hpp"
#include "exec/thread_pool.hpp"
#include "index/index.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "serve/json.hpp"
#include "support/rng.hpp"

namespace pmonge::plan {

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall nanoseconds for `body` (min is the right statistic
/// for a constant-fitting microbenchmark: noise only adds).
template <class Body>
double best_ns(int reps, Body&& body) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (r == 0 || ns < best) best = ns;
  }
  return best < 1 ? 1 : best;
}

}  // namespace

CostProfile calibrate() {
  CostProfile prof;  // start from the deterministic defaults
  Rng rng(12345);
  const std::size_t threads = exec::num_threads();

  // Brute: scan every cell of a 512x512 array, tracking the row minimum.
  {
    const std::size_t n = 512;
    auto a = monge::random_monge(n, n, rng);
    volatile std::int64_t sink = 0;
    const double ns = best_ns(5, [&] {
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t best = a(i, 0);
        for (std::size_t j = 1; j < n; ++j) best = std::min(best, a(i, j));
        acc += best;
      }
      sink = acc;
    });
    prof.brute_ns_per_cell = std::max(0.05, ns / static_cast<double>(n * n));
  }

  // Sequential: SMAWK on 1024x1024 is O(m + n) probes.
  {
    const std::size_t n = 1024;
    auto a = monge::random_monge(n, n, rng);
    volatile std::int64_t sink = 0;
    const double ns = best_ns(5, [&] {
      auto r = monge::smawk_row_minima(a);
      sink = r[0].value;
    });
    prof.seq_ns_per_probe = std::max(0.5, ns / static_cast<double>(2 * n));
  }

  // Edit DP: one cell of the Wagner-Fischer recurrence.
  {
    const std::size_t n = 256;
    const std::string x(n, 'a'), y(n, 'b');
    volatile std::int64_t sink = 0;
    const double ns = best_ns(3, [&] {
      auto r = apps::edit_distance_seq(x, y, apps::EditCosts{});
      sink = r.cost;
    });
    prof.edit_ns_per_cell = std::max(0.2, ns / static_cast<double>(n * n));
  }

  // Parallel: two row-minima runs; meter work W and wall time t obey
  // t ~= spawn + c_work * W / T, so two points recover both constants.
  {
    double t1 = 0, t2 = 0, w1 = 0, w2 = 0;
    for (int which = 0; which < 2; ++which) {
      const std::size_t n = which == 0 ? 256 : 2048;
      auto a = monge::random_monge(n, n, rng);
      std::uint64_t work = 0;
      volatile std::int64_t sink = 0;
      const double ns = best_ns(3, [&] {
        pram::Machine mach(pram::Model::CRCW_COMMON);
        auto r = par::monge_row_minima(mach, a);
        work = mach.meter().work;
        sink = r[0].value;
      });
      (which == 0 ? t1 : t2) = ns;
      (which == 0 ? w1 : w2) = static_cast<double>(work);
    }
    const double t = static_cast<double>(threads);
    if (w2 > w1) {
      const double c_work = std::max(0.2, (t2 - t1) * t / (w2 - w1));
      prof.par_ns_per_work = c_work;
      prof.par_dispatch_ns = std::max(500.0, t1 - c_work * w1 / t);
    }
    // Depth folds into the fitted dispatch constant at these sizes.
    prof.par_depth_ns = 0;
  }

  // Index node visit: build a submatrix query index over 512x512 and
  // time a fixed batch of lookups; each costs ~(lg m + lg n) node
  // visits (canonical nodes + partial-piece solves folded in).
  {
    const std::size_t n = 512;
    serve::ArrayEntry entry;
    entry.kind = serve::ArrayEntry::Kind::Monge;
    entry.data = monge::random_monge(n, n, rng);
    index::Index idx(std::make_shared<const serve::ArrayEntry>(
        std::move(entry)));
    idx.build();
    volatile std::int64_t sink = 0;
    const std::size_t queries = 64;
    const double ns = best_ns(5, [&] {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < queries; ++k) {
        const std::size_t r0 = (k * 7) % (n / 2);
        const std::size_t c0 = (k * 13) % (n / 2);
        const auto r = idx.submatrix_opt(false, r0, r0 + n / 2, c0,
                                         c0 + n / 2);
        acc += r.value;
      }
      sink = acc;
    });
    const double lgn = detail::lg2(static_cast<double>(n) + 2);
    prof.index_node_ns =
        std::max(5.0, ns / (static_cast<double>(queries) * 2 * lgn));
  }

  prof.id = "calibrated-v1-" + std::to_string(threads) + "t";
  return prof;
}

std::string profile_to_json(const CostProfile& prof) {
  serve::Json::Obj o;
  o["format"] = serve::Json("pmonge-profile-v1");
  o["id"] = serve::Json(prof.id);
  o["brute_ns_per_cell"] = serve::Json(prof.brute_ns_per_cell);
  o["seq_ns_per_probe"] = serve::Json(prof.seq_ns_per_probe);
  o["edit_ns_per_cell"] = serve::Json(prof.edit_ns_per_cell);
  o["par_ns_per_work"] = serve::Json(prof.par_ns_per_work);
  o["par_dispatch_ns"] = serve::Json(prof.par_dispatch_ns);
  o["par_depth_ns"] = serve::Json(prof.par_depth_ns);
  o["index_node_ns"] = serve::Json(prof.index_node_ns);
  return serve::Json(std::move(o)).dump();
}

CostProfile profile_from_json(const std::string& text,
                              const std::string& origin) {
  const auto fail = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error("invalid cost profile \"" + origin +
                              "\": " + why);
  };
  serve::Json j;
  try {
    j = serve::Json::parse(text);
  } catch (const serve::JsonError& e) {
    throw fail(e.what());
  }
  if (j.type() != serve::Json::Type::Object) {
    throw fail("top level is not an object");
  }
  const serve::Json* fmt = j.find("format");
  if (fmt == nullptr || fmt->type() != serve::Json::Type::String ||
      fmt->as_string() != "pmonge-profile-v1") {
    throw fail("missing or unsupported \"format\" (want pmonge-profile-v1)");
  }
  CostProfile prof;
  const serve::Json* id = j.find("id");
  if (id == nullptr || id->type() != serve::Json::Type::String ||
      id->as_string().empty()) {
    throw fail("missing or empty \"id\"");
  }
  prof.id = id->as_string();

  const auto num = [&](const char* key, bool allow_zero) {
    const serve::Json* v = j.find(key);
    if (v == nullptr || !v->is_number()) {
      throw fail(std::string("missing numeric \"") + key + "\"");
    }
    const double d = v->as_double();
    if (d < 0 || (!allow_zero && d <= 0)) {
      throw fail(std::string("\"") + key + "\" must be " +
                 (allow_zero ? ">= 0" : "> 0"));
    }
    return d;
  };
  prof.brute_ns_per_cell = num("brute_ns_per_cell", false);
  prof.seq_ns_per_probe = num("seq_ns_per_probe", false);
  prof.edit_ns_per_cell = num("edit_ns_per_cell", false);
  prof.par_ns_per_work = num("par_ns_per_work", false);
  prof.par_dispatch_ns = num("par_dispatch_ns", true);
  prof.par_depth_ns = num("par_depth_ns", true);
  // Added after pmonge-profile-v1 shipped: older profiles omit it and
  // keep the built-in default.
  if (j.find("index_node_ns") != nullptr) {
    prof.index_node_ns = num("index_node_ns", false);
  }
  return prof;
}

void save_profile(const CostProfile& prof, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write cost profile \"" + path + "\"");
  }
  out << profile_to_json(prof) << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("cannot write cost profile \"" + path + "\"");
  }
}

CostProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read cost profile \"" + path + "\"");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return profile_from_json(ss.str(), path);
}

}  // namespace pmonge::plan
