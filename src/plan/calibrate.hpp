// Calibration: fit the CostProfile constants to this machine.
//
// The cost model's *shapes* come from the paper; the *constants* are
// machine facts (cache behavior, pool dispatch latency, simulator
// overhead).  calibrate() measures them with short microbenchmarks --
// a tight brute scan, a SMAWK run, a sequential edit DP, and two
// parallel row-minima runs whose charged work the meter reports (the
// two-point fit recovers ns-per-work and the dispatch constant) -- and
// returns a profile stamped with the machine's thread count.
//
// Profiles persist as JSON ({"format":"pmonge-profile-v1", ...}) and
// load via `pmonge-serve --profile PATH` or PMONGE_PROFILE.  Loading
// fails loudly -- std::runtime_error quoting the offending path --
// on a missing file, unparseable JSON, a wrong format tag, or a
// non-positive constant, matching the env-knob convention of
// support/env.hpp.  Planning never *requires* a profile: the built-in
// default (plan/cost_model.hpp) is deterministic and always available,
// and responses are bit-identical under every profile regardless.
#pragma once

#include <string>

#include "plan/cost_model.hpp"

namespace pmonge::plan {

/// Run the microbenchmark pass and return a fitted profile (id
/// "calibrated-v1-<threads>t").  Takes a fraction of a second; intended
/// for `pmonge-serve --calibrate PATH`, not per-request use.
CostProfile calibrate();

/// Serialize `prof` as canonical profile JSON (one line).
std::string profile_to_json(const CostProfile& prof);

/// Parse profile JSON; throws std::runtime_error (message mentions
/// `origin`, e.g. a path) on bad format or non-positive constants.
CostProfile profile_from_json(const std::string& text,
                              const std::string& origin);

/// Write `prof` to `path`; throws std::runtime_error quoting the path on
/// I/O failure.
void save_profile(const CostProfile& prof, const std::string& path);

/// Load a profile from `path`; throws std::runtime_error quoting the
/// path when the file is missing, unreadable, or invalid.
CostProfile load_profile(const std::string& path);

}  // namespace pmonge::plan
