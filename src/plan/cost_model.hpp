// Analytic cost model for the execution planner (src/plan).
//
// Every query the serve layer answers has several interchangeable
// routes to the same bytes: a brute-force scan of exactly the queried
// cells, the sequential O(m+n)-probe SMAWK solver (monge/smawk.hpp,
// monge/staircase_seq.hpp), or the paper's parallel kernels (src/par)
// on the simulated PRAM over the host engine.  The planner picks the
// cheapest by evaluating, per variant, an analytic wall-time prediction
// whose *shape* comes from the paper's bounds --
//
//   brute       c_cell * (queried cells)                      (n^2-ish)
//   sequential  c_probe * (m + n)                             ([AKM+87])
//   parallel    c_spawn + c_depth * lg n lglg n
//                       + c_work * W / T                      (Lemma 2.1 /
//                                                              Thm 2.3 work,
//                                                              Brent on T
//                                                              host lanes)
//
// -- and whose *constants* come from a CostProfile: either the
// deterministic built-in defaults below or a machine profile fitted by
// plan/calibrate and loaded from JSON (`--profile` / PMONGE_PROFILE).
// Predictions steer execution strategy and admission only; they never
// change response bytes (every variant returns the leftmost optimum).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pmonge::plan {

/// Which family of query a shape describes; fixes which cost formulas
/// apply.  Staircase row searches share RowSearch (the sequential
/// staircase solver's probe count is also O(m + n)).
enum class OpClass : std::uint8_t {
  RowSearch,     // rowmin/rowmax/staircase_*: operand m x n, b queried rows
  TubeSearch,    // tubemax/tubemin: rows = p, cols = q (middle), b points
  EditDistance,  // string_edit: rows = |x|, cols = |y|, b jobs
  GeometricApp,  // largest_rect / empty_rect / polygon_neighbors: rows =
                 // points, b instances (no sequential twin: always parallel)
  SubmatrixSearch,  // submatrix_min/submatrix_max: operand m x n, b regions
};

inline const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::RowSearch: return "row_search";
    case OpClass::TubeSearch: return "tube_search";
    case OpClass::EditDistance: return "edit_distance";
    case OpClass::GeometricApp: return "geometric_app";
    case OpClass::SubmatrixSearch: return "submatrix_search";
  }
  return "?";
}

/// Algorithm variant a plan selects.
enum class Algo : std::uint8_t {
  Brute,       // scan exactly the queried cells
  Sequential,  // SMAWK / sequential staircase solver / sequential DP
  Parallel,    // the paper's parallel kernel on the exec engine
};

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::Brute: return "brute";
    case Algo::Sequential: return "sequential";
    case Algo::Parallel: return "parallel";
  }
  return "?";
}

/// What a query touches, in the units OpClass defines.  batch is the
/// number of coalesced queries sharing the run (>= 1).
struct QueryShape {
  OpClass op = OpClass::RowSearch;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t batch = 1;
};

/// Per-machine constants (nanoseconds).  The built-in profile is a
/// deterministic compile-time default, so planner behavior -- and
/// therefore every test -- never depends on having run calibration.
struct CostProfile {
  std::string id = "builtin-v1";
  double brute_ns_per_cell = 1.5;   // one entry probe in a tight scan
  double seq_ns_per_probe = 6.0;    // one SMAWK probe (view composition)
  double edit_ns_per_cell = 3.0;    // one DP cell of the edit recurrence
  double par_ns_per_work = 4.0;     // one unit of charged PRAM work
  double par_dispatch_ns = 20000;   // entering the pool (submission+sync)
  double par_depth_ns = 250;        // one charged parallel step (barrier)
  double index_node_ns = 120;       // one query-index node visit (segment-
                                    // tree range query + breakpoint search)
};

/// The deterministic built-in profile (the CostProfile defaults).
inline CostProfile builtin_profile() { return CostProfile{}; }

namespace detail {

inline double lg2(double x) {
  double l = 0;
  while (x > 1) {
    x /= 2;
    ++l;
  }
  return l < 1 ? 1 : l;
}

}  // namespace detail

/// Predicted wall nanoseconds for running `shape` with `algo` under
/// `prof` on `threads` execution lanes.  Monotone (non-decreasing) in
/// rows, cols and batch for every variant, so the min over variants is
/// monotone too.
inline double predicted_ns(const CostProfile& prof, Algo algo,
                           const QueryShape& shape, std::size_t threads) {
  const double m = static_cast<double>(shape.rows);
  const double n = static_cast<double>(shape.cols);
  const double b = static_cast<double>(shape.batch == 0 ? 1 : shape.batch);
  const double t = static_cast<double>(threads == 0 ? 1 : threads);
  const double lgn = detail::lg2(n + 2);
  const double lglgn = detail::lg2(lgn + 2);

  switch (shape.op) {
    case OpClass::RowSearch:
      switch (algo) {
        case Algo::Brute:  // scan the b queried rows, n cells each
          return prof.brute_ns_per_cell * b * n;
        case Algo::Sequential:  // SMAWK over the whole operand + read-off
          return prof.seq_ns_per_probe * (m + n) + prof.brute_ns_per_cell * b;
        case Algo::Parallel: {  // Lemma 2.1 work (b+n) lg n, depth lg n lglg n
          const double work = (b + n) * lgn;
          return prof.par_dispatch_ns + prof.par_depth_ns * lgn * lglgn +
                 prof.par_ns_per_work * work / t;
        }
      }
      break;
    case OpClass::TubeSearch:
      switch (algo) {
        case Algo::Brute:
        case Algo::Sequential:  // scan the q middle indices per point
          return prof.brute_ns_per_cell * b * n;
        case Algo::Parallel: {  // sampled/bracketed search over the points
          const double work = (b + n) * lgn;
          return prof.par_dispatch_ns + prof.par_depth_ns * lgn * lglgn +
                 prof.par_ns_per_work * work / t;
        }
      }
      break;
    case OpClass::EditDistance:
      switch (algo) {
        case Algo::Brute:
        case Algo::Sequential:  // the classic DP fills every cell once
          return prof.edit_ns_per_cell * b * (m + 1) * (n + 1);
        case Algo::Parallel: {  // DIST-matrix composition: same cells, Brent
          const double work = b * (m + 1) * (n + 1);
          return prof.par_dispatch_ns + prof.par_depth_ns * (m + n + 2) +
                 prof.par_ns_per_work * work / t;
        }
      }
      break;
    case OpClass::GeometricApp:
      // No sequential twin is wired; all variants price the parallel run
      // (n lg n per instance) so the choice degenerates to Parallel.
      {
        const double work = b * (m + 2) * detail::lg2(m + 2);
        return prof.par_dispatch_ns + prof.par_ns_per_work * work / t;
      }
    case OpClass::SubmatrixSearch:
      switch (algo) {
        case Algo::Brute:  // scan every cell of each queried region
          return prof.brute_ns_per_cell * b * m * n;
        case Algo::Sequential:  // one SMAWK pass per region
          return prof.seq_ns_per_probe * b * (m + n);
        case Algo::Parallel: {  // chunked SMAWK: O(m + T n) work, Brent
          const double work = (m + n) * lgn;
          return prof.par_dispatch_ns + prof.par_depth_ns * lgn * lglgn +
                 prof.par_ns_per_work * b * work / t;
        }
      }
      break;
  }
  return 0;
}

/// Predicted wall nanoseconds for answering `shape` through a built
/// query index (src/index): O(lg m) node visits plus the partial-piece
/// solves, each visit one segment-tree range query over n columns.
inline double index_lookup_ns(const CostProfile& prof,
                              const QueryShape& shape) {
  const double m = static_cast<double>(shape.rows);
  const double n = static_cast<double>(shape.cols);
  const double b = static_cast<double>(shape.batch == 0 ? 1 : shape.batch);
  return prof.index_node_ns * b *
         (detail::lg2(m + 2) + detail::lg2(n + 2));
}

}  // namespace pmonge::plan
