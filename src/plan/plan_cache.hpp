// Shape-class plan memoization.
//
// Planning a query is cheap but not free (three cost evaluations and a
// handful of branches), and service traffic concentrates on a small set
// of operand shapes.  The planner therefore memoizes one Plan per
// *shape class*: the key quantizes each of rows/cols/batch to its
// ceil-lg bucket, so e.g. all row searches on operands in (512, 1024]
// columns share a plan.  Plans are computed at the bucket's power-of-two
// representative -- the largest shape in the class -- which keeps the
// cached choice conservative (predicted cost at the representative
// bounds every member) and makes predictions exactly reproducible and
// monotone across classes.
//
// The cache is a single mutex-guarded open map: planning sits far off
// the per-query hot path (one lookup per *group*, not per request), and
// the key space is tiny (4 ops x ~33^3 buckets), so contention and
// growth are non-issues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "plan/cost_model.hpp"

namespace pmonge::plan {

/// ceil(lg2(x)) for x >= 1 (0 maps to bucket 0 as well).
inline std::uint32_t lg_bucket(std::size_t x) {
  std::uint32_t b = 0;
  std::size_t r = 1;
  while (r < x) {
    r *= 2;
    ++b;
  }
  return b;
}

/// Power-of-two representative of a bucket: the largest shape in it.
inline std::size_t bucket_rep(std::uint32_t b) {
  return static_cast<std::size_t>(1) << b;
}

/// Packed shape-class key: op in the top byte, then the three lg
/// buckets (each < 64 for any std::size_t).
inline std::uint32_t shape_class_key(const QueryShape& s) {
  return (static_cast<std::uint32_t>(s.op) << 24) |
         (lg_bucket(s.rows) << 16) | (lg_bucket(s.cols) << 8) |
         lg_bucket(s.batch);
}

/// The planner's decision for one shape class.
struct Plan {
  Algo algo = Algo::Parallel;
  std::size_t grain = 0;      // exec grain hint; 0 = engine default
  double predicted_us = 0;    // at the class representative shape
  QueryShape rep;             // the representative the numbers refer to
};

class PlanCache {
 public:
  /// Cached plan for shape's class, or compute via `make(rep)` and
  /// remember it.  `make` receives the class representative shape.
  template <class Make>
  Plan get_or_plan(const QueryShape& shape, Make&& make) {
    const std::uint32_t key = shape_class_key(shape);
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        return it->second;
      }
      ++misses_;
    }
    QueryShape rep = shape;
    rep.rows = bucket_rep(lg_bucket(shape.rows));
    rep.cols = bucket_rep(lg_bucket(shape.cols));
    rep.batch = bucket_rep(lg_bucket(shape.batch));
    const Plan p = make(rep);
    std::lock_guard<std::mutex> lk(mu_);
    map_.emplace(key, p);  // racing computers produce the identical plan
    return p;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t size = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {hits_, misses_, map_.size()};
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, Plan> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pmonge::plan
