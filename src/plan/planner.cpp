#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace pmonge::plan {

Planner::Planner(CostProfile profile, bool enabled, std::size_t threads)
    : profile_(std::move(profile)),
      enabled_(enabled),
      threads_(threads == 0 ? 1 : threads),
      cache_(std::make_unique<PlanCache>()) {}

Plan Planner::plan(const QueryShape& shape) const {
  obs::Span span("plan.select");
  span.set_detail(op_class_name(shape.op));
  if (!enabled_) {
    // Fixed dispatch: the pre-planner behavior, still priced so the
    // explain op and admission control stay meaningful.
    Plan p;
    p.algo = Algo::Parallel;
    p.grain = 0;
    p.rep = shape;
    p.predicted_us =
        predicted_ns(profile_, Algo::Parallel, shape, threads_) / 1000.0;
    span.set_arg("predicted_us",
                 static_cast<std::uint64_t>(std::llround(
                     p.predicted_us < 0 ? 0.0 : p.predicted_us)));
    return p;
  }
  Plan p = cache_->get_or_plan(
      shape, [this](const QueryShape& rep) { return plan_at(rep); });
  span.set_arg("predicted_us",
               static_cast<std::uint64_t>(
                   std::llround(p.predicted_us < 0 ? 0.0 : p.predicted_us)));
  return p;
}

bool Planner::prefer_index(const QueryShape& shape) const {
  if (!enabled_) return true;
  return index_lookup_ns(profile_, shape) < plan(shape).predicted_us * 1000.0;
}

Plan Planner::plan_at(const QueryShape& rep) const {
  Plan p;
  p.rep = rep;

  if (rep.op == OpClass::GeometricApp) {
    // Only the parallel pipeline is wired for the geometric apps.
    p.algo = Algo::Parallel;
  } else {
    const double brute = predicted_ns(profile_, Algo::Brute, rep, threads_);
    const double seq = predicted_ns(profile_, Algo::Sequential, rep, threads_);
    const double par = predicted_ns(profile_, Algo::Parallel, rep, threads_);
    // Ties break toward the simpler variant: brute beats sequential
    // beats parallel at equal predicted cost.  The order of comparison
    // is fixed so the plan is a deterministic function of (profile,
    // shape class, threads).
    p.algo = Algo::Brute;
    double best = brute;
    if (seq < best) {
      p.algo = Algo::Sequential;
      best = seq;
    }
    if (par < best) {
      p.algo = Algo::Parallel;
      best = par;
    }
  }

  p.predicted_us = predicted_ns(profile_, p.algo, rep, threads_) / 1000.0;

  if (p.algo == Algo::Parallel) {
    // Grain hint: a chunk should amortize the dispatch cost, i.e. hold
    // roughly par_dispatch_ns / par_ns_per_work unit operations.
    // Clamped to a sane band; 0 would mean "engine default".
    const double per = profile_.par_ns_per_work > 0 ? profile_.par_ns_per_work
                                                    : 1.0;
    const double g = profile_.par_dispatch_ns / per;
    p.grain = static_cast<std::size_t>(
        std::clamp(g, 64.0, 65536.0));
  } else {
    p.grain = 0;
  }
  return p;
}

}  // namespace pmonge::plan
