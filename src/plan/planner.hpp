// The execution planner: per-query algorithm selection.
//
// Given what a query touches (a QueryShape), the Planner evaluates the
// cost model for every admissible variant and returns the cheapest as a
// Plan {algo, grain hint, predicted cost}.  The serve batcher executes
// the group with the plan's algorithm (all variants produce the same
// leftmost-optimum bytes); Service::submit uses predicted_us to reject
// requests whose deadline is unmeetable before they enter the engine.
//
// A disabled planner (--no-plan) always answers {Parallel, grain 0} --
// exactly the pre-planner fixed dispatch -- which is what the
// bit-identity tests compare against.
#pragma once

#include <cstddef>
#include <memory>

#include "plan/cost_model.hpp"
#include "plan/plan_cache.hpp"

namespace pmonge::plan {

class Planner {
 public:
  /// threads = execution lanes the parallel variant may assume
  /// (exec::num_threads() of the serving process).
  Planner(CostProfile profile, bool enabled, std::size_t threads);

  /// The chosen plan for shape's class (memoized; see plan_cache.hpp).
  Plan plan(const QueryShape& shape) const;

  /// Predicted wall microseconds for running `shape` its chosen way --
  /// the admission-control number.
  double predicted_us(const QueryShape& shape) const {
    return plan(shape).predicted_us;
  }

  /// For a SubmatrixSearch shape with a built index available: should
  /// the lookup go through the index rather than a direct recompute?
  /// Disabled planner -> always true (fixed dispatch uses an index
  /// whenever one exists).  Enabled -> compare index_lookup_ns against
  /// the best direct plan.  Either way the answer never changes the
  /// response bytes, only the route.
  bool prefer_index(const QueryShape& shape) const;

  bool enabled() const { return enabled_; }
  const CostProfile& profile() const { return profile_; }
  std::size_t threads() const { return threads_; }
  PlanCache::Stats cache_stats() const { return cache_->stats(); }
  void clear_cache() const { cache_->clear(); }

 private:
  Plan plan_at(const QueryShape& rep) const;

  CostProfile profile_;
  bool enabled_;
  std::size_t threads_;
  std::unique_ptr<PlanCache> cache_;
};

}  // namespace pmonge::plan
