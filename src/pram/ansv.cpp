#include "pram/ansv.hpp"

#include <algorithm>
#include <limits>

#include "support/series.hpp"

namespace pmonge::pram {

AnsvResult ansv_seq(std::span<const std::int64_t> a) {
  const std::size_t n = a.size();
  AnsvResult r;
  r.left.assign(n, AnsvResult::kNone);
  r.right.assign(n, AnsvResult::kNone);
  std::vector<std::size_t> stack;
  stack.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    while (!stack.empty() && a[stack.back()] >= a[i]) stack.pop_back();
    if (!stack.empty()) r.left[i] = stack.back();
    stack.push_back(i);
  }
  stack.clear();
  for (std::size_t ii = n; ii-- > 0;) {
    while (!stack.empty() && a[stack.back()] >= a[ii]) stack.pop_back();
    if (!stack.empty()) r.right[ii] = stack.back();
    stack.push_back(ii);
  }
  return r;
}

AnsvResult ansv(Machine& m, std::span<const std::int64_t> a) {
  const std::size_t n = a.size();
  if (n == 0) return {};
  // Charge the blocked parallel algorithm:
  //   block size b = ceil(lg n); n/b blocks
  //   (1) block minima:            b steps with n/b processors
  //   (2) tree over block minima:  lg(n/b) steps
  //   (3) per element: scan own block (b steps) + tree search (lg steps)
  //       + scan the located block (b steps), all elements in parallel.
  const auto lgn = static_cast<std::uint64_t>(std::max(1, ceil_lg(n)));
  const std::uint64_t b = lgn;
  const std::uint64_t blocks = (n + b - 1) / b;
  m.meter().charge(b, blocks, n);               // (1)
  m.meter().charge(lgn, blocks, 2 * blocks);    // (2)
  m.meter().charge(2 * b + lgn, n, n * (2 * b + lgn));  // (3)
  // Host execution: the stack algorithm yields the identical answer.
  return ansv_seq(a);
}

}  // namespace pmonge::pram
