// All Nearest Smaller Values (ANSV), the processor-allocation workhorse of
// Lemma 2.2: for each element of a sequence, find the nearest element to
// its left and to its right that is strictly smaller.
//
// Berkman, Breslauer, Galil, Schieber and Vishkin [BBG+89] solve ANSV in
// O(lg n) time with n/lg n CREW processors.  This module provides
//   * ansv_seq  -- the classic O(n) stack algorithm (host baseline), and
//   * ansv      -- a metered simulation of the blocked parallel algorithm
//                  (block minima + complete tree over blocks + per-element
//                  block scan and tree descent), charged at O(lg n) steps
//                  with n processors / O(n lg n) work.  That charge keeps
//                  every bound in Section 2 intact: the CRCW rows use n
//                  processors, and under Brent scheduling at p = n/lglg n
//                  the work term contributes lg n lglg n, matching the
//                  CREW row of Table 1.2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.hpp"

namespace pmonge::pram {

struct AnsvResult {
  // left[i]  = largest j < i with a[j] < a[i], or kNone
  // right[i] = smallest j > i with a[j] < a[i], or kNone
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
};

/// Sequential stack-based ANSV; O(n).
AnsvResult ansv_seq(std::span<const std::int64_t> a);

/// Metered parallel ANSV; identical output to ansv_seq.
AnsvResult ansv(Machine& m, std::span<const std::int64_t> a);

}  // namespace pmonge::pram
