#include "pram/machine.hpp"

namespace pmonge::pram {

const char* model_name(Model m) {
  switch (m) {
    case Model::CREW:
      return "CREW";
    case Model::CRCW_COMMON:
      return "CRCW-COMMON";
    case Model::CRCW_ARBITRARY:
      return "CRCW-ARBITRARY";
    case Model::CRCW_PRIORITY:
      return "CRCW-PRIORITY";
    case Model::CRCW_COMBINING:
      return "CRCW-COMBINING";
  }
  return "?";
}

bool is_crcw(Model m) { return m != Model::CREW; }

void CostMeter::charge(std::uint64_t steps, std::uint64_t procs) {
  charge(steps, procs, steps * procs);
}

void CostMeter::charge(std::uint64_t steps, std::uint64_t procs,
                       std::uint64_t ops) {
  time += steps;
  work += ops;
  peak_processors = std::max(peak_processors, procs);
}

double CostMeter::brent_time(std::uint64_t p) const {
  PMONGE_REQUIRE(p >= 1, "Brent scheduling needs at least one processor");
  return static_cast<double>(work) / static_cast<double>(p) +
         static_cast<double>(time);
}

void CostMeter::reset() {
  time = 0;
  work = 0;
  peak_processors = 0;
}

}  // namespace pmonge::pram
