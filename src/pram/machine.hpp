// PRAM simulator with charged-step cost accounting.
//
// The paper's results are stated for CREW and CRCW PRAMs.  Neither exists
// as hardware, so this module *simulates* them: algorithms are expressed in
// terms of synchronous parallel primitives, each primitive executes on the
// host (concurrently, via the src/exec thread-pool engine) and charges its
// textbook parallel depth and work to a meter.  The meter's three outputs -- parallel time (steps),
// work (processor-steps) and peak concurrent processors -- are exactly the
// quantities the paper's Tables 1.1-1.3 bound, so measured series can be
// compared against the claimed shapes on any host.
//
// Model enforcement: the simulator does not merely *trust* an algorithm's
// claimed model.  Scatter writes performed under CREW are checked for
// write conflicts, and COMMON-CRCW writes are checked for disagreeing
// concurrent values; violations throw pmonge::ModelViolation, and tests
// assert both that legal algorithms never trip the checks and that rigged
// conflicting programs do.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "support/check.hpp"

namespace pmonge::pram {

/// PRAM submodel.  Concurrent reads are always allowed (all models here
/// are at least CREW); the submodel governs concurrent *writes*.
enum class Model {
  CREW,            // exclusive write: concurrent writes are a model violation
  CRCW_COMMON,     // concurrent writes allowed iff all writers agree
  CRCW_ARBITRARY,  // one arbitrary writer wins (simulator: lowest proc id)
  CRCW_PRIORITY,   // lowest-numbered processor wins
  CRCW_COMBINING,  // writes combined with an associative operator
};

const char* model_name(Model m);
bool is_crcw(Model m);

/// Charged-cost accumulator.
///
/// time  -- parallel steps (the paper's "time")
/// work  -- total operations across all processors (processor-time product
///          actually consumed, i.e. sum over steps of active processors)
/// peak_processors -- maximum processors active in any single step
struct CostMeter {
  std::uint64_t time = 0;
  std::uint64_t work = 0;
  std::uint64_t peak_processors = 0;

  /// Charge `steps` synchronous steps with `procs` active processors.
  /// `ops` defaults to steps*procs; pass it explicitly when activity decays
  /// geometrically (e.g. a reduction tree does n + n/2 + ... ~ 2n ops over
  /// lg n steps, not n lg n).
  void charge(std::uint64_t steps, std::uint64_t procs);
  void charge(std::uint64_t steps, std::uint64_t procs, std::uint64_t ops);

  /// Brent's theorem: running this computation on p physical processors
  /// takes at most work/p + time steps.  This is how the simulator reports
  /// the paper's processor-count columns (e.g. n/lglg n processors).
  double brent_time(std::uint64_t p) const;

  void reset();
};

/// A simulated PRAM.  Cheap to construct; algorithms take `Machine&` and
/// express all array touches through the primitives in primitives.hpp so
/// the meter stays honest.
class Machine {
 public:
  explicit Machine(Model model) : model_(model) {}

  Model model() const { return model_; }
  CostMeter& meter() { return meter_; }
  const CostMeter& meter() const { return meter_; }

  /// Run `k` independent branches that the algorithm executes in parallel
  /// (e.g. row minima of many disjoint subarrays).  Each branch runs on a
  /// fresh sub-machine of the same model; afterwards the parent meter
  /// advances by the *maximum* branch time, the *sum* of branch work, and
  /// peak processors equal to the sum of branch peaks (all branches are
  /// concurrently active in the simulated machine).
  ///
  /// Branches execute concurrently on the host engine.  Each branch owns
  /// its sub-machine, so no meter is ever charged from two threads, and
  /// the merge below folds the sub-meters serially in branch order --
  /// charged totals are identical at every PMONGE_THREADS setting.
  /// Branch bodies must write only branch-private state (disjoint output
  /// slots); that is the same independence the simulated machine already
  /// required of them.
  template <class F>
  void parallel_branches(std::size_t k, F&& run_branch) {
    if (k == 0) return;
    std::vector<Machine> subs;
    subs.reserve(k);
    for (std::size_t b = 0; b < k; ++b) subs.emplace_back(model_);
    exec::parallel_tasks(k, [&](std::size_t b) { run_branch(b, subs[b]); });
    std::uint64_t max_time = 0;
    std::uint64_t sum_work = 0;
    std::uint64_t sum_peak = 0;
    for (const Machine& sub : subs) {
      max_time = std::max(max_time, sub.meter().time);
      sum_work += sub.meter().work;
      sum_peak += sub.meter().peak_processors;
    }
    meter_.time += max_time;
    meter_.work += sum_work;
    meter_.peak_processors = std::max(meter_.peak_processors, sum_peak);
  }

 private:
  Model model_;
  CostMeter meter_;
};

}  // namespace pmonge::pram
