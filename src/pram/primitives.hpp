// Metered PRAM primitives.
//
// Every primitive executes on the host (producing exactly the result the
// simulated machine would) and charges the machine's meter with the
// textbook parallel depth and work of the corresponding PRAM algorithm:
//
//   parallel_for          1 step, n processors
//   broadcast             1 step (concurrent read is free on CREW/CRCW)
//   reduce / argopt CREW  ceil(lg n) steps, ~2n work (balanced tree)
//   argopt CRCW           O(lglg n) steps, O(n) work per round
//                         (the doubly-logarithmic accelerated-cascading
//                         max-finding of Valiant / Shiloach-Vishkin,
//                         executed round by round)
//   argopt COMBINING      1 step (min/max-combining concurrent write)
//   prefix_scan           2 ceil(lg n) steps, ~4n work (Blelchoch up/down)
//   scatter_write         1 step, with *real* write-conflict detection
//   parallel_merge        ceil(lg n) steps (cross-ranking binary search)
//   merge_sort            ceil(lg n)^2 steps, n lg n work
//   radix_sort            O(bits * lg n) steps (stable bit split via scans)
//   pack                  2 ceil(lg n) + 1 steps (scan + scatter)
//
// Algorithms in src/par never touch arrays except through these, so the
// measured step/work series reported by the benchmarks are honest.
//
// Host execution: every primitive *charges* the simulated machine's cost
// analytically (a pure function of n and the model) and then *executes*
// on the host-parallel engine of src/exec -- data-parallel skeletons over
// a shared thread pool with fixed, thread-count-independent chunking.
// Results and charged costs are therefore identical at every
// PMONGE_THREADS setting; only wall-clock time changes.  Charging always
// happens on the calling thread, never inside an engine task, so one
// meter is never touched from two threads (see docs/cost_model.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "exec/parallel.hpp"
#include "pram/machine.hpp"
#include "support/check.hpp"
#include "support/series.hpp"

namespace pmonge::pram {

inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Result of a parallel argmin/argmax.
template <class T>
struct OptResult {
  T value{};
  std::size_t index = kNoIndex;
};

// ---------------------------------------------------------------------------
// Elementwise parallelism
// ---------------------------------------------------------------------------

/// Execute body(i) for i in [0, n) as one synchronous step with n
/// processors.  Bodies must be independent (the engine runs them
/// concurrently in an unspecified order).
template <class F>
void parallel_for(Machine& m, std::size_t n, F&& body) {
  if (n == 0) return;
  m.meter().charge(1, n);
  exec::parallel_for(n, exec::grain_for(), body);
}

/// Concurrent read of one shared cell by n processors: a single step on
/// any concurrent-read model.
template <class F>
void broadcast(Machine& m, std::size_t n, F&& body) {
  if (n == 0) return;
  m.meter().charge(1, n);
  exec::parallel_for(n, exec::grain_for(), body);
}

// ---------------------------------------------------------------------------
// Reductions and parallel argmin / argmax
// ---------------------------------------------------------------------------

/// Tree reduction of eval(0..n-1) under `op`; CREW cost (lg-depth tree).
/// `op` must be associative with identity `identity`; the engine folds
/// fixed chunks left-to-right, so results match the serial fold exactly
/// at every thread count.
template <class T, class Eval, class Op>
T reduce(Machine& m, std::size_t n, Eval&& eval, Op&& op, T identity) {
  if (n == 0) return identity;
  m.meter().charge(static_cast<std::uint64_t>(ceil_lg(n)),
                   (n + 1) / 2, 2 * n);
  return exec::parallel_reduce(n, exec::grain_for(), identity, eval, op);
}

namespace detail {

/// Engine-parallel leftmost argopt: chunk winners combined in index
/// order, so ties resolve to the smallest index exactly as the serial
/// sweep would.  `better(a, b)` is the strict preference of argopt.
template <class T, class Eval, class Better>
OptResult<T> engine_argopt(std::size_t n, const Eval& eval,
                           const Better& better) {
  return exec::parallel_reduce(
      n, exec::grain_for(2), OptResult<T>{},
      [&](std::size_t i) {
        return OptResult<T>{eval(i), i};
      },
      [&](const OptResult<T>& a, const OptResult<T>& b) {
        if (b.index == kNoIndex) return a;
        if (a.index == kNoIndex) return b;
        return better(b, a) ? b : a;
      });
}

/// Doubly-logarithmic CRCW argopt round schedule: candidate set sizes fall
/// as s -> s / g with g = max(2, n / s), reaching 1 in O(lglg n) rounds
/// while every round uses at most ~2n processors (g^2 per group, s/g
/// groups => s*g <= 2n).  `better(a, b)` returns true when a strictly
/// beats b; ties resolve to the smaller index.
template <class T, class Better>
OptResult<T> crcw_argopt(Machine& m, std::vector<OptResult<T>> cand,
                         Better&& better) {
  const std::size_t n = cand.size();
  while (cand.size() > 1) {
    const std::size_t s = cand.size();
    std::size_t g = std::max<std::size_t>(2, n / s);
    g = std::min(g, s);
    const std::size_t groups = (s + g - 1) / g;
    // One step of all-pairs loser-marking (COMMON writes of `true` agree)
    // plus one step in which the unique unmarked processor in each group
    // writes the winner.
    m.meter().charge(2, s * g, s * g + s);
    std::vector<OptResult<T>> next(groups);
    exec::parallel_for(groups, exec::grain_for(g), [&](std::size_t b) {
      const std::size_t lo = b * g;
      const std::size_t hi = std::min(s, lo + g);
      OptResult<T> best = cand[lo];
      for (std::size_t i = lo + 1; i < hi; ++i) {
        if (better(cand[i], best)) best = cand[i];
      }
      next[b] = best;
    });
    cand = std::move(next);
  }
  return cand.empty() ? OptResult<T>{} : cand[0];
}

}  // namespace detail

/// Parallel argmin over eval(0..n-1) with `less`; leftmost winner on ties.
/// Depth depends on the machine model:
///   CREW            ceil(lg n)            (balanced tree)
///   CRCW common/arb/pri   O(lglg n)       (doubly-log cascading)
///   CRCW combining  1                     (min-combining write)
template <class T, class Eval, class Less>
OptResult<T> argopt(Machine& m, std::size_t n, Eval&& eval, Less&& less) {
  if (n == 0) return {};
  auto better = [&](const OptResult<T>& a, const OptResult<T>& b) {
    if (less(a.value, b.value)) return true;
    if (less(b.value, a.value)) return false;
    return a.index < b.index;
  };
  switch (m.model()) {
    case Model::CREW: {
      m.meter().charge(static_cast<std::uint64_t>(ceil_lg(n)),
                       (n + 1) / 2, 2 * n);
      return detail::engine_argopt<T>(n, eval, better);
    }
    case Model::CRCW_COMBINING: {
      m.meter().charge(1, n);
      return detail::engine_argopt<T>(n, eval, better);
    }
    default: {  // COMMON / ARBITRARY / PRIORITY: doubly-logarithmic
      std::vector<OptResult<T>> cand(n);
      m.meter().charge(1, n);  // load candidates
      exec::parallel_for(n, exec::grain_for(), [&](std::size_t i) {
        cand[i] = {eval(i), i};
      });
      return detail::crcw_argopt(m, std::move(cand), better);
    }
  }
}

/// Parallel minimum (value + leftmost index) of a materialized span.
template <class T>
OptResult<T> min_element_par(Machine& m, std::span<const T> xs) {
  return argopt<T>(
      m, xs.size(), [&](std::size_t i) { return xs[i]; },
      [](const T& a, const T& b) { return a < b; });
}

template <class T>
OptResult<T> max_element_par(Machine& m, std::span<const T> xs) {
  return argopt<T>(
      m, xs.size(), [&](std::size_t i) { return xs[i]; },
      [](const T& a, const T& b) { return b < a; });
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Work-efficient exclusive prefix scan (Blelloch up-sweep/down-sweep):
/// 2 ceil(lg n) steps, ~4n work.  Returns the total as well.  `op` must
/// be associative with identity `identity`.
template <class T, class Op>
T exclusive_scan_par(Machine& m, std::span<T> xs, Op&& op, T identity) {
  const std::size_t n = xs.size();
  if (n == 0) return identity;
  m.meter().charge(2 * static_cast<std::uint64_t>(ceil_lg(n)),
                   (n + 1) / 2, 4 * n);
  return exec::parallel_scan_exclusive(xs, exec::grain_for(), op, identity);
}

/// Inclusive prefix scan; same cost as the exclusive scan.  `op` must be
/// associative.
template <class T, class Op>
T inclusive_scan_par(Machine& m, std::span<T> xs, Op&& op) {
  const std::size_t n = xs.size();
  if (n == 0) return T{};
  m.meter().charge(2 * static_cast<std::uint64_t>(ceil_lg(n)),
                   (n + 1) / 2, 4 * n);
  return exec::parallel_scan_inclusive(xs, exec::grain_for(), op);
}

// ---------------------------------------------------------------------------
// Scatter writes with model enforcement
// ---------------------------------------------------------------------------

template <class T>
struct WriteIntent {
  std::size_t proc;  // issuing processor (decides ARBITRARY/PRIORITY races)
  std::size_t addr;  // destination cell
  T value;
};

/// One synchronous write step: all intents fire simultaneously into
/// `cells`.  Under CREW, two intents for one address throw ModelViolation;
/// under CRCW_COMMON, disagreeing values throw; ARBITRARY and PRIORITY
/// resolve races to the lowest processor id; COMBINING folds values with
/// `combine` (which must be associative and commutative).
template <class T, class Combine>
void scatter_write(Machine& m, std::span<T> cells,
                   std::span<const WriteIntent<T>> intents, Combine&& combine) {
  if (intents.empty()) return;
  m.meter().charge(1, intents.size());
  // Validate addresses on the engine, then detect races with a serial
  // sorted sweep: conflict detection must see the *complete* write set of
  // the step at once, so it runs single-threaded no matter how the
  // intents were produced -- exactness does not depend on PMONGE_THREADS.
  const bool in_range = exec::parallel_reduce(
      intents.size(), exec::grain_for(), true,
      [&](std::size_t i) { return intents[i].addr < cells.size(); },
      [](bool a, bool b) { return a && b; });
  PMONGE_REQUIRE(in_range, "scatter_write out of range");
  // Sorting a copy keeps the public span const.
  std::vector<const WriteIntent<T>*> by_addr(intents.size());
  exec::parallel_for(intents.size(), exec::grain_for(),
                     [&](std::size_t i) { by_addr[i] = &intents[i]; });
  std::sort(by_addr.begin(), by_addr.end(),
            [](const WriteIntent<T>* a, const WriteIntent<T>* b) {
              if (a->addr != b->addr) return a->addr < b->addr;
              return a->proc < b->proc;
            });
  for (std::size_t i = 0; i < by_addr.size();) {
    std::size_t j = i;
    while (j < by_addr.size() && by_addr[j]->addr == by_addr[i]->addr) ++j;
    const std::size_t addr = by_addr[i]->addr;
    if (j - i > 1) {
      switch (m.model()) {
        case Model::CREW:
          throw ModelViolation("CREW write conflict at cell " +
                               std::to_string(addr));
        case Model::CRCW_COMMON:
          for (std::size_t k = i + 1; k < j; ++k) {
            if (!(by_addr[k]->value == by_addr[i]->value)) {
              throw ModelViolation(
                  "CRCW-COMMON disagreeing writes at cell " +
                  std::to_string(addr));
            }
          }
          cells[addr] = by_addr[i]->value;
          break;
        case Model::CRCW_ARBITRARY:
        case Model::CRCW_PRIORITY:
          cells[addr] = by_addr[i]->value;  // lowest proc id wins
          break;
        case Model::CRCW_COMBINING: {
          T acc = by_addr[i]->value;
          for (std::size_t k = i + 1; k < j; ++k)
            acc = combine(acc, by_addr[k]->value);
          cells[addr] = acc;
          break;
        }
      }
    } else {
      cells[addr] = by_addr[i]->value;
    }
    i = j;
  }
}

/// scatter_write with a "last writer would win" combiner that is only legal
/// when no combining is required.
template <class T>
void scatter_write(Machine& m, std::span<T> cells,
                   std::span<const WriteIntent<T>> intents) {
  scatter_write(m, cells, intents, [](const T& a, const T&) { return a; });
}

// ---------------------------------------------------------------------------
// Pack / compaction
// ---------------------------------------------------------------------------

/// Stable compaction: returns the indices i with keep(i) true, in order.
/// Cost: one flag step + exclusive scan + scatter.
template <class Keep>
std::vector<std::size_t> pack_indices(Machine& m, std::size_t n, Keep&& keep) {
  std::vector<std::size_t> flags(n, 0);
  parallel_for(m, n, [&](std::size_t i) { flags[i] = keep(i) ? 1 : 0; });
  const std::size_t total = exclusive_scan_par<std::size_t>(
      m, flags, std::plus<std::size_t>{}, 0);
  std::vector<std::size_t> out(total);
  parallel_for(m, n, [&](std::size_t i) {
    if (keep(i)) out[flags[i]] = i;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Merging and sorting
// ---------------------------------------------------------------------------

/// Merge two sorted sequences by cross-ranking (every element binary
/// searches the other sequence): ceil(lg(|a|+|b|)) steps, (|a|+|b|) procs.
/// Host execution is serial (std::merge): the charged cost models the
/// PRAM; no call site is wall-clock-hot enough to justify an engine path.
template <class T, class Less>
std::vector<T> parallel_merge(Machine& m, std::span<const T> a,
                              std::span<const T> b, Less&& less) {
  const std::size_t n = a.size() + b.size();
  if (n == 0) return {};
  m.meter().charge(static_cast<std::uint64_t>(ceil_lg(n)), n,
                   n * static_cast<std::uint64_t>(std::max(1, ceil_lg(n))));
  std::vector<T> out;
  out.reserve(n);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             less);
  return out;
}

/// Stable parallel merge sort: ceil(lg n) rounds of parallel merges, so
/// ceil(lg n)^2 steps and n lg n work.  (Cole's O(lg n) merge sort exists;
/// the library charges the simpler bound and the few call sites that need
/// an O(lg n)-depth sort on bounded integer keys use radix_sort_cost.)
template <class T, class Less>
void merge_sort_par(Machine& m, std::vector<T>& xs, Less&& less) {
  const std::size_t n = xs.size();
  if (n <= 1) return;
  const auto lgn = static_cast<std::uint64_t>(ceil_lg(n));
  m.meter().charge(lgn * lgn, n, n * lgn);
  std::stable_sort(xs.begin(), xs.end(), less);
}

/// Stable radix sort of non-negative integer keys bounded by 2^bits:
/// per bit, a stable binary split costs one flag step, one scan and one
/// scatter, so the whole sort is O(bits * lg n) steps with n processors.
/// `key(x)` must be in [0, 2^bits).
template <class T, class Key>
void radix_sort_par(Machine& m, std::vector<T>& xs, Key&& key, int bits) {
  const std::size_t n = xs.size();
  if (n <= 1) return;
  PMONGE_REQUIRE(bits >= 1 && bits <= 62, "radix width out of range");
  const auto lgn = static_cast<std::uint64_t>(std::max(1, ceil_lg(n)));
  m.meter().charge(static_cast<std::uint64_t>(bits) * (2 * lgn + 2), n,
                   static_cast<std::uint64_t>(bits) * 4 * n);
  std::stable_sort(xs.begin(), xs.end(), [&](const T& a, const T& b) {
    return key(a) < key(b);
  });
}

}  // namespace pmonge::pram
