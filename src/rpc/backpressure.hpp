// The transport backpressure contract, shared by both front-ends of the
// serve layer (docs/networking.md spells it out in full):
//
//   A request source may have at most `max_inflight` requests submitted
//   whose responses have not yet been written back.  When a source hits
//   the bound, the transport STOPS READING from it -- the pipe blocks or
//   the socket's receive window fills, pushing the pressure onto the
//   client -- instead of buffering unbounded futures or responses.
//
// The stdin front-end enforces it with the InflightLimiter below (the
// reader thread blocks in acquire() until the printer catches up); the
// TCP server enforces the same bound per connection by deregistering the
// socket from epoll, plus two byte-level valves on the outbound buffer a
// pipe does not need:
//
//   * soft_buffer_bytes: a slow reader whose responses pile up past this
//     stops being read (same pressure, different trigger);
//   * overload_inflight: lines already framed when the window is full
//     (one read can deliver many) are answered `overloaded` without
//     touching the service, the exact rejection the admission queue
//     gives -- the client sees backpressure, never silence;
//   * hard_buffer_bytes: the never-unbounded-memory backstop.  A reader
//     so slow (or dead) that even the stopped-read buffer keeps growing
//     past this is dropped.  In-flight responses can still land after
//     reads stop, so soft alone cannot bound memory; hard does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace pmonge::rpc {

struct BackpressureLimits {
  std::size_t max_inflight = 128;          // stop reading above this
  std::size_t overload_inflight = 256;     // reject framed lines above this
  std::size_t soft_buffer_bytes = 1u << 20;   // stop reading above this
  std::size_t hard_buffer_bytes = 8u << 20;   // drop the connection above this
};

/// Counting semaphore capping submitted-but-unprinted requests.  The
/// stdin reader acquires before submitting; the printer releases after
/// each response is written.  Capacity 0 means "unbounded" (no valve).
class InflightLimiter {
 public:
  explicit InflightLimiter(std::size_t capacity) : capacity_(capacity) {}

  /// Block until a slot is free, then take it.
  void acquire() {
    if (capacity_ == 0) return;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inflight_ < capacity_; });
    ++inflight_;
  }

  void release() {
    if (capacity_ == 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (inflight_ > 0) --inflight_;
    }
    cv_.notify_one();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t inflight() const {
    if (capacity_ == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t inflight_ = 0;
};

}  // namespace pmonge::rpc
