#include "rpc/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pmonge::rpc {

namespace {

/// Connect with an optional deadline.  timeout_ms < 0 is a plain
/// blocking ::connect.  Otherwise: flip the socket non-blocking, start
/// the connect, poll for writability up to the deadline, read the
/// outcome from SO_ERROR, and restore blocking mode on success.
/// Returns 0 on success, an errno value (ETIMEDOUT on expiry) otherwise.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                         int timeout_ms) {
  if (timeout_ms < 0) {
    return ::connect(fd, addr, len) == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int err = 0;
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) {
      err = errno;
    } else {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        err = ETIMEDOUT;
      } else if (rc < 0) {
        err = errno;
      } else {
        socklen_t elen = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) < 0) {
          err = errno;
        }
      }
    }
  }
  if (err == 0 && ::fcntl(fd, F_SETFL, flags) < 0) err = errno;
  return err;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      connect_timeout_ms_(other.connect_timeout_ms_),
      framer_(std::move(other.framer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    connect_timeout_ms_ = other.connect_timeout_ms_;
    framer_ = std::move(other.framer_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    throw RpcError("rpc: cannot resolve \"" + host + ":" + port_str +
                   "\": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int err = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      err = errno;
      continue;
    }
    const int cerr = connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen,
                                          connect_timeout_ms_);
    if (cerr == 0) break;
    err = cerr;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw RpcError("rpc: cannot connect to \"" + host + ":" + port_str +
                   "\": " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  framer_ = LineFramer(std::size_t{64} << 20);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw RpcError("rpc: not connected");
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t k = ::send(fd_, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw RpcError(std::string("rpc: send failed: ") + std::strerror(err));
    }
    off += static_cast<std::size_t>(k);
  }
}

std::string Client::recv_line() {
  if (fd_ < 0) throw RpcError("rpc: not connected");
  std::string line;
  while (true) {
    const LineFramer::Result r = framer_.next(line);
    if (r == LineFramer::Result::Line) return line;
    if (r == LineFramer::Result::Oversized) {
      throw RpcError("rpc: oversized response line");
    }
    char buf[65536];
    const ssize_t k = ::recv(fd_, buf, sizeof(buf), 0);
    if (k == 0) {
      close();
      throw RpcError("rpc: connection closed by server");
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw RpcError(std::string("rpc: recv failed: ") + std::strerror(err));
    }
    framer_.feed(buf, static_cast<std::size_t>(k));
  }
}

std::string Client::request(const std::string& line) {
  send_line(line);
  return recv_line();
}

std::vector<std::string> Client::pipeline(
    const std::vector<std::string>& lines) {
  for (const auto& l : lines) send_line(l);
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) out.push_back(recv_line());
  return out;
}

}  // namespace pmonge::rpc
