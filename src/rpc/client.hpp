// Small blocking client for the NDJSON-over-TCP protocol
// (docs/networking.md): connect, send request lines, receive response
// lines.  Supports pipelining -- send_line() does not wait, recv_line()
// returns responses in the order the requests were sent (the server
// writes per-connection responses in submission order) -- which is what
// the load generator's open-loop mode and the examples build on.
//
// Errors are exceptions (RpcError): a refused connect, a peer that
// closed mid-stream, a write into a vanished server.  All writes use
// MSG_NOSIGNAL, so a dead peer raises RpcError instead of SIGPIPE.
// The class is NOT thread-safe for concurrent use of the same instance,
// with one deliberate exception: one thread may send while another
// receives (the loadgen's open-loop split), because the send and receive
// paths touch disjoint state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "rpc/framing.hpp"

namespace pmonge::rpc {

struct RpcError : std::runtime_error {
  explicit RpcError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  Client() = default;
  Client(const std::string& host, std::uint16_t port) { connect(host, port); }
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect (blocking); throws RpcError naming host:port on failure.
  /// Honors the connect timeout set below, per address attempted.
  void connect(const std::string& host, std::uint16_t port);

  /// Cap each connect() attempt at `ms` milliseconds (non-blocking
  /// connect + poll; the socket is restored to blocking mode once the
  /// handshake completes).  -1, the default, blocks without limit.
  /// Must be set before connect() to take effect.
  void set_connect_timeout_ms(int ms) { connect_timeout_ms_ = ms; }
  int connect_timeout_ms() const { return connect_timeout_ms_; }

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Half-close the write side: the server sees EOF, drains every
  /// in-flight response to us, then closes.  recv_line() keeps working
  /// until the stream ends.
  void shutdown_write();

  /// Send one request line (a '\n' is appended).  Does not wait for the
  /// response; pair with recv_line().
  void send_line(const std::string& line);

  /// Receive the next response line (blocking).  Throws RpcError when
  /// the server closes the stream first.
  std::string recv_line();

  /// send_line + recv_line.
  std::string request(const std::string& line);

  /// Pipelined round trip: send every line, then collect the responses
  /// in order.
  std::vector<std::string> pipeline(const std::vector<std::string>& lines);

  /// The raw socket (tests use it to exercise split/coalesced writes).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int connect_timeout_ms_ = -1;
  LineFramer framer_{std::size_t{64} << 20};  // responses can be large (trace)
};

}  // namespace pmonge::rpc
