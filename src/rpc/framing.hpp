// Incremental newline-delimited framing for the NDJSON wire protocol
// over a byte stream (TCP).  A socket read can deliver half a line, one
// line, or twenty coalesced lines; the framer turns that arbitrary
// chunking back into the exact lines the stdin front-end would have seen
// from getline -- the transport must never change which bytes form a
// request (docs/networking.md states the framing contract).
//
// Oversized lines are a protocol violation, not a fatal one: the framer
// reports the line once (Result::Oversized), discards its bytes without
// ever buffering more than max_line_bytes of it, and resynchronizes at
// the next newline -- a client that sends one absurd line gets one error
// response and keeps its connection.  A trailing '\r' is stripped
// (telnet/CRLF tolerance); empty lines are surfaced and skipped by the
// caller, matching the stdin loop.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>

namespace pmonge::rpc {

class LineFramer {
 public:
  enum class Result {
    Line,      // `out` holds one complete line (newline stripped)
    NeedMore,  // no complete line buffered; feed more bytes
    Oversized  // a line exceeded max_line_bytes; it is being discarded
  };

  explicit LineFramer(std::size_t max_line_bytes = std::size_t{1} << 20)
      : max_(max_line_bytes) {}

  std::size_t max_line_bytes() const { return max_; }

  /// Append raw bytes from the stream.  While a previous oversized line
  /// is being discarded, its bytes are dropped here instead of buffered,
  /// so a hostile 1 GB line costs max_line_bytes of memory, not 1 GB.
  void feed(const char* data, std::size_t n) {
    if (discarding_) {
      const char* nl = static_cast<const char*>(std::memchr(data, '\n', n));
      if (nl == nullptr) return;  // still inside the oversized line
      discarding_ = false;
      const std::size_t skip = static_cast<std::size_t>(nl - data) + 1;
      data += skip;
      n -= skip;
    }
    buf_.append(data, n);
  }

  /// Extract the next complete line, if any.
  Result next(std::string& out) {
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
      if (buf_.size() > max_) {
        // The line is already too long and its end has not arrived;
        // report it now and drop everything buffered (feed() keeps
        // dropping until the newline shows up).
        buf_.clear();
        discarding_ = true;
        return Result::Oversized;
      }
      return Result::NeedMore;
    }
    std::size_t len = nl;
    if (len > 0 && buf_[len - 1] == '\r') --len;  // CRLF tolerance
    if (nl > max_) {
      buf_.erase(0, nl + 1);
      return Result::Oversized;
    }
    out.assign(buf_, 0, len);
    buf_.erase(0, nl + 1);
    return Result::Line;
  }

  /// Bytes buffered awaiting a newline.
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_;
  bool discarding_ = false;
};

}  // namespace pmonge::rpc
