// pmonge-loadgen: load generator for pmonge-serve --listen
// (docs/networking.md).  Two driving disciplines over N connections:
//
//   closed loop (default): each connection keeps a fixed window of
//   pipelined requests outstanding (--window, default 1) -- throughput
//   is whatever the server sustains, latency excludes queueing at the
//   client.
//
//   open loop (--rate R): requests arrive by a Poisson process at R
//   req/s total (exponential inter-arrival times, split evenly across
//   connections), sent regardless of whether earlier responses came
//   back -- the discipline that surfaces real tail latency, because a
//   slow server cannot slow the arrival process down
//   (coordinated-omission-free by construction).
//
// The workload is a seeded deterministic mix over registered arrays:
// each connection registers its own Monge and staircase operands during
// an untimed setup phase, then draws rowmin / rowmax / staircase_rowmin
// / string_edit (and, when --mix weights them, submatrix_min /
// submatrix_max) queries from an Rng derived from --seed and the
// connection index.  Same seed, same flags => byte-identical request
// streams; in particular the default mix reproduces the historical
// 55/20/15/10 stream byte-for-byte.  --index builds the submatrix query
// index on every registered operand during setup (docs/indexing.md), so
// a submatrix-heavy mix measures the indexed serving path.
//
// Reported: achieved throughput and exact (sorted-sample) p50 / p95 /
// p99 / p99.9 latency, per the usual bench conventions:
//
//   $ pmonge-loadgen --port 7333 --conns 32 --duration-s 5 --rate 2000
//       --seed 42 --json=BENCH_net.json
//
// Exit status: 0 on success; 1 when any request failed (transport error
// or an unexpected error response -- `overloaded` rejections are
// counted and reported, not failures) or when --p99-gate-us is set and
// breached.  CI's `net` job is built on exactly that contract.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "rpc/client.hpp"
#include "serve/json.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pmonge::serve::Json;

struct ConnResult {
  std::vector<double> latencies_us;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  std::string first_error;
};

// Cumulative thresholds over [0,1) in a fixed op order; one uniform01
// draw selects the op.  The defaults reproduce the historical
// 55/20/15/10 rowmin/rowmax/staircase_rowmin/string_edit stream
// byte-for-byte (the submatrix bands are zero-width, so their extra
// coordinate draws never happen).
struct Mix {
  double rowmin = 0.55;
  double rowmax = 0.75;
  double staircase = 0.9;
  double submatrix_min = 0.9;
  double submatrix_max = 0.9;
  // string_edit takes the remainder up to 1.

  /// Parse "name=weight,..." (e.g. "rowmin=40,submatrix_min=30,
  /// submatrix_max=30"); weights are non-negative and normalized, ops
  /// not named get weight 0.  Returns false with `err` set on a bad
  /// spec.
  static bool parse(const std::string& spec, Mix& out, std::string& err) {
    static const char* kOps[] = {"rowmin",        "rowmax",
                                 "staircase_rowmin", "submatrix_min",
                                 "submatrix_max", "string_edit"};
    double w[6] = {0, 0, 0, 0, 0, 0};
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string item = spec.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        err = "bad --mix item \"" + item + "\" (want name=weight)";
        return false;
      }
      const std::string name = item.substr(0, eq);
      double weight = 0;
      try {
        weight = std::stod(item.substr(eq + 1));
      } catch (const std::exception&) {
        err = "bad --mix weight in \"" + item + "\"";
        return false;
      }
      if (weight < 0) {
        err = "negative --mix weight in \"" + item + "\"";
        return false;
      }
      bool known = false;
      for (std::size_t i = 0; i < 6; ++i) {
        if (name == kOps[i]) {
          w[i] = weight;
          known = true;
          break;
        }
      }
      if (!known) {
        err = "unknown --mix op \"" + name + "\"";
        return false;
      }
    }
    const double total = w[0] + w[1] + w[2] + w[3] + w[4] + w[5];
    if (total <= 0) {
      err = "--mix weights sum to zero";
      return false;
    }
    out.rowmin = w[0] / total;
    out.rowmax = out.rowmin + w[1] / total;
    out.staircase = out.rowmax + w[2] / total;
    out.submatrix_min = out.staircase + w[3] / total;
    out.submatrix_max = out.submatrix_min + w[4] / total;
    return true;
  }
};

struct Workload {
  // Per-connection deterministic request stream over the arrays the
  // connection registered in setup.
  pmonge::Rng rng;
  Mix mix;
  std::int64_t monge_array = -1;
  std::int64_t staircase_array = -1;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t next_id = 1;

  explicit Workload(std::uint64_t seed) : rng(seed) {}

  std::string next_request() {
    const std::int64_t id = next_id++;
    const double dice = rng.uniform01();
    const std::int64_t row = rng.uniform_int(0, rows - 1);
    if (dice < mix.rowmin) {
      return R"({"op":"rowmin","id":)" + std::to_string(id) +
             R"(,"array":)" + std::to_string(monge_array) + R"(,"row":)" +
             std::to_string(row) + "}";
    }
    if (dice < mix.rowmax) {
      return R"({"op":"rowmax","id":)" + std::to_string(id) +
             R"(,"array":)" + std::to_string(monge_array) + R"(,"row":)" +
             std::to_string(row) + "}";
    }
    if (dice < mix.staircase) {
      return R"({"op":"staircase_rowmin","id":)" + std::to_string(id) +
             R"(,"array":)" + std::to_string(staircase_array) + R"(,"row":)" +
             std::to_string(row) + "}";
    }
    if (dice < mix.submatrix_max) {
      // Submatrix search on the Monge operand; `row` is one row bound,
      // a second row and two column draws complete the region.
      const std::int64_t row2 = rng.uniform_int(0, rows - 1);
      const std::int64_t ca = rng.uniform_int(0, cols - 1);
      const std::int64_t cb = rng.uniform_int(0, cols - 1);
      const char* op =
          dice < mix.submatrix_min ? "submatrix_min" : "submatrix_max";
      return std::string(R"({"op":")") + op + R"(","id":)" +
             std::to_string(id) + R"(,"array":)" +
             std::to_string(monge_array) + R"(,"r0":)" +
             std::to_string(std::min(row, row2)) + R"(,"r1":)" +
             std::to_string(std::max(row, row2)) + R"(,"c0":)" +
             std::to_string(std::min(ca, cb)) + R"(,"c1":)" +
             std::to_string(std::max(ca, cb)) + "}";
    }
    static const char* kWords[] = {"kitten",  "sitting", "monge",
                                   "montage", "parallel", "partial"};
    const auto x = kWords[rng.uniform_int(0, 5)];
    const auto y = kWords[rng.uniform_int(0, 5)];
    return R"({"op":"string_edit","id":)" + std::to_string(id) +
           R"(,"x":")" + x + R"(","y":")" + y + R"("})";
  }
};

/// Classify a response line: ok, an `overloaded`-family rejection, or a
/// real failure (recorded in `r`).
void tally(const std::string& resp, ConnResult& r) {
  try {
    const Json j = Json::parse(resp);
    const Json* ok = j.find("ok");
    if (ok != nullptr && ok->as_bool()) return;
    const Json* err = j.find("error");
    const std::string msg = err != nullptr ? err->as_string() : resp;
    if (msg.rfind("overloaded", 0) == 0 ||
        msg.rfind("deadline_", 0) == 0) {
      ++r.overloaded;
      return;
    }
    ++r.errors;
    if (r.first_error.empty()) r.first_error = msg;
  } catch (const std::exception& e) {
    ++r.errors;
    if (r.first_error.empty()) {
      r.first_error = std::string("unparseable response: ") + e.what();
    }
  }
}

/// Untimed setup: register this connection's operands and learn their
/// ids; with `build_index`, also build the submatrix query index on each
/// operand so the timed phase measures indexed serving.
bool setup(pmonge::rpc::Client& c, Workload& w, std::uint64_t seed,
           std::int64_t rows, std::int64_t cols, bool build_index,
           std::string& err) {
  Json last;
  const auto check = [&](const std::string& req) -> bool {
    last = Json::parse(c.request(req));
    const Json* ok = last.find("ok");
    if (ok == nullptr || !ok->as_bool()) {
      const Json* e = last.find("error");
      err = e != nullptr ? e->as_string() : "setup request failed";
      return false;
    }
    return true;
  };
  const auto reg = [&](const std::string& req) -> std::int64_t {
    if (!check(req)) return -1;
    return last.find("result")->find("array")->as_int();
  };
  w.rows = rows;
  w.cols = cols;
  w.monge_array =
      reg(R"({"op":"register_random","id":0,"rows":)" + std::to_string(rows) +
          R"(,"cols":)" + std::to_string(cols) + R"(,"seed":)" +
          std::to_string(seed) + "}");
  if (w.monge_array < 0) return false;
  w.staircase_array =
      reg(R"({"op":"register_random","id":0,"rows":)" + std::to_string(rows) +
          R"(,"cols":)" + std::to_string(cols) +
          R"(,"kind":"staircase","seed":)" + std::to_string(seed + 1) + "}");
  if (w.staircase_array < 0) return false;
  if (build_index) {
    for (const std::int64_t id : {w.monge_array, w.staircase_array}) {
      if (!check(R"({"op":"index_build","id":0,"array":)" +
                 std::to_string(id) + "}")) {
        return false;
      }
    }
  }
  return true;
}

/// Closed loop: a sliding window of `window` pipelined requests; every
/// response immediately refills the window until the deadline passes.
void run_closed(pmonge::rpc::Client& c, Workload& w, Clock::time_point until,
                std::size_t window, ConnResult& r) {
  std::deque<Clock::time_point> sent_at;
  const auto send_one = [&] {
    const std::string req = w.next_request();
    sent_at.push_back(Clock::now());
    c.send_line(req);
    ++r.sent;
  };
  for (std::size_t i = 0; i < window; ++i) send_one();
  while (!sent_at.empty()) {
    const std::string resp = c.recv_line();
    const auto now = Clock::now();
    r.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - sent_at.front())
            .count());
    sent_at.pop_front();
    ++r.received;
    tally(resp, r);
    if (now < until) send_one();
  }
}

/// Open loop: the sender thread paces a Poisson arrival process and never
/// waits for responses; the receiver matches responses FIFO (the server
/// answers per connection in submission order).
void run_open(pmonge::rpc::Client& c, Workload& w, Clock::time_point start,
              Clock::time_point until, double conn_rate, ConnResult& r) {
  std::mutex mu;
  std::deque<Clock::time_point> sent_at;
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (sent_at.empty() && sender_done.load()) break;
      }
      if ([&] {
            std::lock_guard<std::mutex> lock(mu);
            return sent_at.empty();
          }()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      const std::string resp = c.recv_line();
      const auto now = Clock::now();
      Clock::time_point t0;
      {
        std::lock_guard<std::mutex> lock(mu);
        t0 = sent_at.front();
        sent_at.pop_front();
      }
      r.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(now - t0).count());
      ++r.received;
      tally(resp, r);
    }
  });

  pmonge::Rng arrivals(w.rng());  // arrival process independent of the mix
  auto next = start;
  while (true) {
    // Exponential inter-arrival: -ln(1-U)/lambda.
    const double gap_s = -std::log1p(-arrivals.uniform01()) / conn_rate;
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
    if (next >= until) break;
    std::this_thread::sleep_until(next);
    const std::string req = w.next_request();
    {
      std::lock_guard<std::mutex> lock(mu);
      sent_at.push_back(Clock::now());
    }
    c.send_line(req);
    ++r.sent;
  }
  sender_done.store(true);
  receiver.join();
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::puts(
        "pmonge-loadgen: load generator for pmonge-serve --listen\n"
        "  --host H         server host (default 127.0.0.1)\n"
        "  --port P         server port (required)\n"
        "  --conns N        concurrent connections (default 8)\n"
        "  --duration-s S   measured duration in seconds (default 5)\n"
        "  --rate R         open loop: total request rate in req/s,\n"
        "                   Poisson arrivals; 0 = closed loop (default 0)\n"
        "  --window D       closed loop: pipelined requests per connection\n"
        "                   (default 1)\n"
        "  --seed S         workload seed (default 42)\n"
        "  --rows N --cols N  registered operand shape (default 64x48)\n"
        "  --mix SPEC       op mix as name=weight pairs over rowmin, rowmax,\n"
        "                   staircase_rowmin, submatrix_min, submatrix_max,\n"
        "                   string_edit; weights normalized, unnamed ops get\n"
        "                   0 (default: the historical 55/20/15/10 mix)\n"
        "  --index          build the submatrix query index on every operand\n"
        "                   during untimed setup (docs/indexing.md)\n"
        "  --connect-timeout-ms N  cap each connect attempt; -1 = unlimited\n"
        "                   (default -1)\n"
        "  --p99-gate-us N  exit 1 if p99 latency exceeds N microseconds\n"
        "  --json[=PATH]    write the result record (default BENCH_net.json)");
    return 0;
  }
  if (!cli.has("port")) {
    std::fprintf(stderr, "pmonge-loadgen: --port is required (see --help)\n");
    return 2;
  }
  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto conns = static_cast<std::size_t>(cli.get_int("conns", 8));
  const double duration_s =
      static_cast<double>(cli.get_int("duration-s", 5));
  const double rate = static_cast<double>(cli.get_int("rate", 0));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t rows = cli.get_int("rows", 64);
  const std::int64_t cols = cli.get_int("cols", 48);
  const std::int64_t gate_us = cli.get_int("p99-gate-us", -1);
  const std::string mix_spec = cli.get("mix", "");
  const bool build_index = cli.has("index");
  const int connect_timeout_ms =
      static_cast<int>(cli.get_int("connect-timeout-ms", -1));
  Mix mix;
  if (!mix_spec.empty()) {
    std::string mix_err;
    if (!Mix::parse(mix_spec, mix, mix_err)) {
      std::fprintf(stderr, "pmonge-loadgen: %s\n", mix_err.c_str());
      return 2;
    }
  }

  // Connect + untimed setup for every connection before the clock starts.
  std::vector<pmonge::rpc::Client> clients(conns);
  std::vector<Workload> work;
  work.reserve(conns);
  std::vector<ConnResult> results(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    const std::uint64_t conn_seed = seed * 1000003ULL + i;
    work.emplace_back(conn_seed);
    work[i].mix = mix;
    std::string err;
    try {
      clients[i].set_connect_timeout_ms(connect_timeout_ms);
      clients[i].connect(host, port);
      if (!setup(clients[i], work[i], conn_seed, rows, cols, build_index,
                 err)) {
        std::fprintf(stderr, "pmonge-loadgen: conn %zu setup: %s\n", i,
                     err.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-loadgen: conn %zu: %s\n", i, e.what());
      return 1;
    }
  }

  const auto start = Clock::now();
  const auto until =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(duration_s));
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    threads.emplace_back([&, i] {
      try {
        if (rate > 0) {
          run_open(clients[i], work[i], start, until,
                   rate / static_cast<double>(conns), results[i]);
        } else {
          run_closed(clients[i], work[i], until, window, results[i]);
        }
      } catch (const std::exception& e) {
        ++results[i].errors;
        if (results[i].first_error.empty()) results[i].first_error = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> lat;
  std::uint64_t sent = 0, received = 0, overloaded = 0, errors = 0;
  std::string first_error;
  for (const auto& r : results) {
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
    sent += r.sent;
    received += r.received;
    overloaded += r.overloaded;
    errors += r.errors;
    if (first_error.empty()) first_error = r.first_error;
  }
  std::sort(lat.begin(), lat.end());
  const double p50 = quantile(lat, 0.50);
  const double p95 = quantile(lat, 0.95);
  const double p99 = quantile(lat, 0.99);
  const double p999 = quantile(lat, 0.999);
  const double throughput =
      elapsed_s > 0 ? static_cast<double>(received) / elapsed_s : 0;

  std::printf(
      "mode=%s conns=%zu duration=%.2fs sent=%llu received=%llu "
      "overloaded=%llu errors=%llu\n",
      rate > 0 ? "open" : "closed", conns, elapsed_s,
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(received),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(errors));
  std::printf("throughput=%.1f req/s\n", throughput);
  std::printf("latency_us p50=%.1f p95=%.1f p99=%.1f p99.9=%.1f\n", p50, p95,
              p99, p999);
  if (errors > 0) {
    std::fprintf(stderr, "pmonge-loadgen: first error: %s\n",
                 first_error.c_str());
  }

  auto records = pmonge::bench::JsonRecords::from_cli(cli, "net",
                                                      "BENCH_net.json");
  Json::Obj rec;
  rec["mode"] = std::string(rate > 0 ? "open" : "closed");
  rec["conns"] = static_cast<std::int64_t>(conns);
  rec["rate"] = rate;
  rec["window"] = static_cast<std::int64_t>(window);
  rec["seed"] = static_cast<std::int64_t>(seed);
  rec["rows"] = rows;
  rec["cols"] = cols;
  rec["mix"] = mix_spec.empty() ? std::string("default") : mix_spec;
  rec["index"] = build_index;
  rec["duration_s"] = elapsed_s;
  rec["sent"] = static_cast<std::int64_t>(sent);
  rec["received"] = static_cast<std::int64_t>(received);
  rec["overloaded"] = static_cast<std::int64_t>(overloaded);
  rec["errors"] = static_cast<std::int64_t>(errors);
  rec["throughput_rps"] = throughput;
  rec["p50_us"] = p50;
  rec["p95_us"] = p95;
  rec["p99_us"] = p99;
  rec["p999_us"] = p999;
  rec["repro"] = pmonge::bench::repro_line(
      "PMONGE_LOADGEN_SEED=" + std::to_string(seed), "rpc");
  records.add(std::move(rec));
  records.write();

  if (errors > 0) return 1;
  if (gate_us >= 0 && p99 > static_cast<double>(gate_us)) {
    std::fprintf(stderr,
                 "pmonge-loadgen: p99 gate breached: %.1fus > %lldus\n", p99,
                 static_cast<long long>(gate_us));
    return 1;
  }
  return 0;
}
