#include "rpc/server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "rpc/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace pmonge::rpc {

namespace {

using Clock = std::chrono::steady_clock;

void bump_max(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  std::uint64_t cur = hw.load(std::memory_order_relaxed);
  while (v > cur &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// One submitted request's response slot.  The service worker fills
/// `resp` then publishes with the release store; the loop thread only
/// reads `resp` after the acquire load sees true.  Responses for one
/// connection are written strictly in pending order, which is what makes
/// the TCP bytes match stdin mode's FIFO awaiting.
struct Slot {
  std::string resp;
  std::atomic<bool> ready{false};
};

struct Conn {
  int fd = -1;
  LineFramer framer;
  std::deque<std::shared_ptr<Slot>> pending;  // loop thread only
  std::string outbound;                       // loop thread only
  std::size_t out_off = 0;  // flushed prefix of outbound (erase lazily)
  std::uint32_t mask = 0;   // current epoll interest
  bool peer_eof = false;
  bool paused = false;      // reads stopped by backpressure
  Clock::time_point last_active{};
  std::atomic<bool> queued{false};  // already in the wakeup list

  explicit Conn(std::size_t max_line) : framer(max_line) {}
  ~Conn() { close_fd(); }
  void close_fd() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  std::size_t outbound_len() const { return outbound.size() - out_off; }
};

/// Completion rendezvous between the service worker and the event loop.
/// Owned jointly by the server and every outstanding callback, so a
/// response that lands while the server is tearing down still has a live
/// list and eventfd to write to (it is simply never drained).
struct Wakeup {
  std::mutex mu;
  std::vector<std::shared_ptr<Conn>> ready;
  int efd = -1;

  Wakeup() { efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }
  ~Wakeup() {
    if (efd >= 0) ::close(efd);
  }
  void signal() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(efd, &one, sizeof(one));
  }
};

/// The std::function a submitted line resolves through.  Copyable (the
/// service keeps a copy to answer `overloaded` on a full queue).
struct Completion {
  std::shared_ptr<Wakeup> wake;
  std::shared_ptr<Conn> conn;
  std::shared_ptr<Slot> slot;

  void operator()(std::string resp) const {
    slot->resp = std::move(resp);
    slot->ready.store(true, std::memory_order_release);
    if (!conn->queued.exchange(true, std::memory_order_acq_rel)) {
      {
        std::lock_guard<std::mutex> lock(wake->mu);
        wake->ready.push_back(conn);
      }
      wake->signal();
    }
  }
};

}  // namespace

struct Server::Impl {
  serve::Service& service;
  ServerOptions opts;
  ServerStats stats;
  std::shared_ptr<Wakeup> wakeup = std::make_shared<Wakeup>();

  int ep = -1;
  int lfd = -1;
  std::uint16_t bound_port = 0;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::atomic<bool> stop_requested{false};
  bool draining = false;
  Clock::time_point drain_deadline{};

  Impl(serve::Service& s, ServerOptions o) : service(s), opts(std::move(o)) {}

  ~Impl() {
    conns.clear();
    if (lfd >= 0) ::close(lfd);
    if (ep >= 0) ::close(ep);
  }

  // -- setup ---------------------------------------------------------------

  void listen() {
    if (wakeup->efd < 0) throw std::runtime_error("rpc: eventfd failed");
    ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0) throw std::runtime_error("rpc: epoll_create1 failed");

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(opts.port);
    const int rc = ::getaddrinfo(opts.host.c_str(), port_str.c_str(), &hints,
                                 &res);
    if (rc != 0) {
      throw std::runtime_error("rpc: cannot resolve \"" + opts.host + ":" +
                               port_str + "\": " + ::gai_strerror(rc));
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC,
                    ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      throw std::runtime_error("rpc: cannot bind \"" + opts.host + ":" +
                               port_str + "\": " + std::strerror(errno));
    }
    if (::listen(fd, SOMAXCONN) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("rpc: listen on \"" + opts.host + ":" +
                               port_str + "\" failed: " + std::strerror(err));
    }
    sockaddr_storage ss{};
    socklen_t slen = sizeof(ss);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &slen) == 0) {
      if (ss.ss_family == AF_INET) {
        bound_port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
      } else if (ss.ss_family == AF_INET6) {
        bound_port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_port);
      }
    }
    lfd = fd;
    add_epoll(lfd, EPOLLIN);
    add_epoll(wakeup->efd, EPOLLIN);
  }

  void add_epoll(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  }

  // -- event loop ----------------------------------------------------------

  void run() {
    std::vector<epoll_event> events(128);
    while (true) {
      if (stop_requested.load(std::memory_order_acquire) && !draining) {
        begin_drain();
      }
      if (draining) {
        if (conns.empty()) break;
        if (Clock::now() >= drain_deadline) {
          // The drain budget is spent; whatever is still stuck (a client
          // that will not read its responses) is cut loose.
          std::vector<std::shared_ptr<Conn>> left;
          left.reserve(conns.size());
          for (auto& [fd, c] : conns) left.push_back(c);
          for (auto& c : left) close_conn(*c, stats.closed);
          break;
        }
      }
      int timeout_ms = 200;
      if (draining) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            drain_deadline - Clock::now());
        timeout_ms = static_cast<int>(
            std::max<std::int64_t>(0, std::min<std::int64_t>(50,
                                                             left.count())));
      }
      const int n =
          ::epoll_wait(ep, events.data(), static_cast<int>(events.size()),
                       timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      bool accept_ready = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wakeup->efd) {
          std::uint64_t drainv = 0;
          [[maybe_unused]] const auto r =
              ::read(wakeup->efd, &drainv, sizeof(drainv));
          process_completions();
        } else if (fd == lfd) {
          // Accept after every close in this batch has been processed, so
          // a recycled fd number can never be confused with the stale
          // connection that used to own it.
          accept_ready = true;
        } else {
          const auto it = conns.find(fd);
          if (it == conns.end()) continue;  // closed earlier in this batch
          std::shared_ptr<Conn> conn = it->second;
          const std::uint32_t ev = events[i].events;
          if ((ev & (EPOLLERR | EPOLLHUP)) != 0 &&
              (ev & (EPOLLIN | EPOLLOUT)) == 0) {
            close_conn(*conn, stats.closed);
            continue;
          }
          if ((ev & EPOLLOUT) != 0) pump(conn);
          if ((ev & EPOLLIN) != 0 && conn->fd >= 0) handle_readable(conn);
        }
      }
      if (accept_ready && !draining) accept_loop();
      sweep_idle();
    }
  }

  void begin_drain() {
    draining = true;
    drain_deadline =
        Clock::now() + std::chrono::milliseconds(
                           opts.drain_timeout_ms < 0 ? 0
                                                     : opts.drain_timeout_ms);
    if (lfd >= 0) {
      ::epoll_ctl(ep, EPOLL_CTL_DEL, lfd, nullptr);
      ::close(lfd);
      lfd = -1;
    }
    // Stop reading everywhere; flush / finish whatever is in flight.
    std::vector<std::shared_ptr<Conn>> all;
    all.reserve(conns.size());
    for (auto& [fd, c] : conns) all.push_back(c);
    for (auto& c : all) pump(c);
  }

  void accept_loop() {
    while (true) {
      const int cfd =
          ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) return;  // EAGAIN, or a transient accept error
      if (conns.size() >= opts.max_conns) {
        stats.rejected_conns.fetch_add(1, std::memory_order_relaxed);
        const std::string line =
            serve::make_error_response(serve::kNoId,
                                       "overloaded: connection limit") +
            "\n";
        [[maybe_unused]] const auto r =
            ::send(cfd, line.data(), line.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(cfd);
        continue;
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>(opts.max_line_bytes);
      conn->fd = cfd;
      conn->last_active = Clock::now();
      conns.emplace(cfd, conn);
      stats.accepted.fetch_add(1, std::memory_order_relaxed);
      const auto active = conns.size();
      stats.active_conns.store(active, std::memory_order_relaxed);
      bump_max(stats.conn_high_water, active);
      conn->mask = EPOLLIN;
      add_epoll(cfd, conn->mask);
    }
  }

  void process_completions() {
    std::vector<std::shared_ptr<Conn>> ready;
    {
      std::lock_guard<std::mutex> lock(wakeup->mu);
      ready.swap(wakeup->ready);
    }
    for (auto& conn : ready) {
      conn->queued.store(false, std::memory_order_release);
      if (conn->fd < 0) continue;  // dropped while the response was computed
      pump(conn);
    }
  }

  // -- per-connection machinery --------------------------------------------

  void handle_readable(const std::shared_ptr<Conn>& conn) {
    if (fault::armed() && fault::should_fire(fault::Site::RpcReadStall)) {
      // A seeded stall on the read side: requests sit in the kernel
      // buffer a little longer.  Latency only -- the bytes that
      // eventually arrive are identical.
      fault::fire_delay(fault::Site::RpcReadStall);
    }
    char buf[65536];
    const ssize_t k = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (k == 0) {
      conn->peer_eof = true;
      pump(conn);
      return;
    }
    if (k < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(*conn, stats.closed);
      return;
    }
    stats.bytes_in.fetch_add(static_cast<std::uint64_t>(k),
                             std::memory_order_relaxed);
    conn->last_active = Clock::now();
    conn->framer.feed(buf, static_cast<std::size_t>(k));

    std::string line;
    while (true) {
      const LineFramer::Result r = conn->framer.next(line);
      if (r == LineFramer::Result::NeedMore) break;
      if (r == LineFramer::Result::Oversized) {
        stats.oversized_lines.fetch_add(1, std::memory_order_relaxed);
        local_response(
            conn, serve::make_error_response(
                      serve::kNoId,
                      "bad_request: line exceeds " +
                          std::to_string(opts.max_line_bytes) + " bytes"));
        continue;
      }
      if (line.empty()) continue;  // stdin mode skips blank lines too
      stats.lines_in.fetch_add(1, std::memory_order_relaxed);
      if (conn->pending.size() >= opts.limits.overload_inflight) {
        // Reads are already paused past max_inflight, but one recv can
        // deliver many framed lines; past the overload valve they are
        // answered exactly like an admission-queue rejection.
        stats.overload_rejected.fetch_add(1, std::memory_order_relaxed);
        std::int64_t id = serve::kNoId;
        try {
          id = serve::parse_request(line).id;
        } catch (...) {
        }
        local_response(conn, serve::make_error_response(id, "overloaded"));
        continue;
      }
      if (conn->pending.empty() &&
          service.try_serve_fast(line, conn->outbound)) {
        // Cached-hit fast path: the response bytes went straight into the
        // outbound buffer -- no Slot, no Completion, no wakeup round
        // trip.  Only legal with nothing pending, which is what keeps
        // per-connection FIFO ordering intact.  (With requests pending,
        // submit_cb below still takes its own fast path; the answer just
        // rides the Slot so it drains in order.)
        conn->outbound += '\n';
        stats.responses_out.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      auto slot = std::make_shared<Slot>();
      conn->pending.push_back(slot);
      service.submit_cb(std::move(line),
                        Completion{wakeup, conn, std::move(slot)});
    }
    pump(conn);
  }

  /// Answer a framed line without touching the service (oversized /
  /// overload rejections).  Goes through the pending FIFO so ordering
  /// relative to in-flight requests is preserved.
  void local_response(const std::shared_ptr<Conn>& conn, std::string resp) {
    auto slot = std::make_shared<Slot>();
    slot->resp = std::move(resp);
    slot->ready.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(slot));
  }

  /// Move ready responses into the outbound buffer, flush what the
  /// socket accepts, and recompute epoll interest + backpressure state.
  void pump(const std::shared_ptr<Conn>& conn) {
    if (conn->fd < 0) return;
    while (!conn->pending.empty() &&
           conn->pending.front()->ready.load(std::memory_order_acquire)) {
      const auto& slot = conn->pending.front();
      conn->outbound += slot->resp;
      conn->outbound += '\n';
      stats.responses_out.fetch_add(1, std::memory_order_relaxed);
      conn->pending.pop_front();
    }
    bump_max(stats.outbound_high_water, conn->outbound_len());
    if (conn->outbound_len() > opts.limits.hard_buffer_bytes) {
      // The never-unbounded-memory backstop: the peer stopped reading
      // long enough ago that even the post-pause responses overflowed.
      stats.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      close_conn(*conn, stats.dropped_conns);
      return;
    }
    if (!flush(conn)) return;  // connection died mid-write
    if ((conn->peer_eof || draining) && conn->pending.empty() &&
        conn->outbound_len() == 0) {
      close_conn(*conn, stats.closed);
      return;
    }
    update_interest(conn);
  }

  /// Write as much of outbound as the socket accepts.  Returns false if
  /// the connection was closed (error or injected drop).
  bool flush(const std::shared_ptr<Conn>& conn) {
    if (conn->outbound_len() > 0 && fault::armed() &&
        fault::should_fire(fault::Site::RpcConnDrop)) {
      // Injected abrupt disconnect: answers already computed are lost
      // with the connection, exactly like a peer yanked mid-write.  The
      // service-side books stay consistent; only delivery suffers.
      close_conn(*conn, stats.dropped_conns);
      return false;
    }
    while (conn->outbound_len() > 0) {
      const ssize_t k = ::send(conn->fd, conn->outbound.data() + conn->out_off,
                               conn->outbound_len(), MSG_NOSIGNAL);
      if (k > 0) {
        stats.bytes_out.fetch_add(static_cast<std::uint64_t>(k),
                                  std::memory_order_relaxed);
        conn->out_off += static_cast<std::size_t>(k);
        conn->last_active = Clock::now();
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (k < 0 && errno == EINTR) continue;
      close_conn(*conn, stats.closed);  // EPIPE/ECONNRESET: peer is gone
      return false;
    }
    if (conn->out_off == conn->outbound.size()) {
      conn->outbound.clear();
      conn->out_off = 0;
    } else if (conn->out_off > (std::size_t{1} << 16)) {
      conn->outbound.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    return true;
  }

  void update_interest(const std::shared_ptr<Conn>& conn) {
    const bool want_pause =
        conn->pending.size() >= opts.limits.max_inflight ||
        conn->outbound_len() >= opts.limits.soft_buffer_bytes;
    if (want_pause && !conn->paused) {
      stats.read_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    conn->paused = want_pause;
    std::uint32_t mask = 0;
    if (!conn->paused && !conn->peer_eof && !draining) mask |= EPOLLIN;
    if (conn->outbound_len() > 0) mask |= EPOLLOUT;
    if (mask != conn->mask) {
      epoll_event ev{};
      ev.events = mask;
      ev.data.fd = conn->fd;
      ::epoll_ctl(ep, EPOLL_CTL_MOD, conn->fd, &ev);
      conn->mask = mask;
    }
  }

  void close_conn(Conn& conn, std::atomic<std::uint64_t>& counter) {
    if (conn.fd < 0) return;
    ::epoll_ctl(ep, EPOLL_CTL_DEL, conn.fd, nullptr);
    const int fd = conn.fd;
    conn.close_fd();
    conns.erase(fd);
    counter.fetch_add(1, std::memory_order_relaxed);
    stats.active_conns.store(conns.size(), std::memory_order_relaxed);
  }

  void sweep_idle() {
    if (opts.idle_timeout_ms <= 0 || draining) return;
    const auto cutoff =
        Clock::now() - std::chrono::milliseconds(opts.idle_timeout_ms);
    std::vector<std::shared_ptr<Conn>> idle;
    for (auto& [fd, c] : conns) {
      if (c->pending.empty() && c->outbound_len() == 0 &&
          c->last_active < cutoff) {
        idle.push_back(c);
      }
    }
    for (auto& c : idle) close_conn(*c, stats.idle_closed);
  }
};

Server::Server(serve::Service& service, ServerOptions opts)
    : impl_(std::make_unique<Impl>(service, std::move(opts))) {}

Server::~Server() = default;

void Server::listen() { impl_->listen(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

void Server::run() { impl_->run(); }

void Server::request_stop() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->wakeup->signal();
}

const ServerStats& Server::stats() const { return impl_->stats; }

serve::Json Server::stats_json() const {
  const ServerStats& s = impl_->stats;
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  serve::Json::Obj o;
  o["accepted"] = v(s.accepted);
  o["rejected"] = v(s.rejected_conns);
  o["closed"] = v(s.closed);
  o["dropped"] = v(s.dropped_conns);
  o["overflow_dropped"] = v(s.overflow_drops);
  o["idle_closed"] = v(s.idle_closed);
  o["active"] = v(s.active_conns);
  o["conn_high_water"] = v(s.conn_high_water);
  o["lines_in"] = v(s.lines_in);
  o["responses_out"] = v(s.responses_out);
  o["oversized_lines"] = v(s.oversized_lines);
  o["overload_rejected"] = v(s.overload_rejected);
  o["bytes_in"] = v(s.bytes_in);
  o["bytes_out"] = v(s.bytes_out);
  o["read_pauses"] = v(s.read_pauses);
  o["outbound_high_water_bytes"] = v(s.outbound_high_water);
  return serve::Json(std::move(o));
}

}  // namespace pmonge::rpc
