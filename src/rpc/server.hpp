// Epoll-based non-blocking TCP front-end for serve::Service: the same
// one-JSON-object-per-line protocol pmonge-serve speaks on stdin, framed
// per connection and multiplexed onto the one shared admission/batching
// pipeline.  Response bytes are identical to stdin mode by construction
// -- the server only frames lines in and writes the service's canonical
// response strings out, in per-connection submission order.
//
// One thread runs the event loop (run()); the service's worker resolves
// responses on its own thread and wakes the loop through an eventfd.
// Everything per-connection (read buffer, pending-response window,
// outbound buffer) is touched only by the loop thread; the completion
// path touches one atomic per response plus the wakeup queue.
//
// Robustness contract (docs/networking.md):
//   * per-connection backpressure per rpc/backpressure.hpp -- stop
//     reading at the inflight/soft valves, `overloaded` rejections for
//     framed excess, connection drop at the hard valve; memory per
//     connection is bounded by construction;
//   * --max-conns: surplus connections are answered one `overloaded:
//     connection limit` line and closed;
//   * oversized lines answer `bad_request: line exceeds N bytes` and the
//     connection resynchronizes at the next newline;
//   * idle connections (no traffic, nothing in flight) are closed after
//     idle_timeout_ms;
//   * SIGPIPE-safe: all writes use MSG_NOSIGNAL; a vanished peer is a
//     closed connection, never a dead process;
//   * request_stop() (async-signal-safe) starts a graceful drain: stop
//     accepting, stop reading, flush every in-flight response, then
//     close -- bounded by drain_timeout_ms;
//   * fault sites rpc.conn_drop / rpc.read_stall (docs/robustness.md)
//     inject abrupt disconnects and read-side stalls for the chaos
//     harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "rpc/backpressure.hpp"
#include "serve/json.hpp"

namespace pmonge::serve {
class Service;
}

namespace pmonge::rpc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;               // 0 = ephemeral (see Server::port())
  std::size_t max_conns = 256;
  std::size_t max_line_bytes = 1u << 20;
  std::int64_t idle_timeout_ms = 300000;  // <= 0 disables
  std::int64_t drain_timeout_ms = 5000;   // graceful-drain bound
  BackpressureLimits limits;
};

/// Monotone transport counters (gauges noted), exported through the
/// service's `stats` op as the "rpc" section and as pmonge_rpc_* in the
/// Prometheus exposition.  All relaxed atomics, same contract as
/// support::Counter.
struct ServerStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_conns{0};   // over --max-conns
  std::atomic<std::uint64_t> closed{0};           // orderly closes
  std::atomic<std::uint64_t> dropped_conns{0};    // rpc.conn_drop injections
  std::atomic<std::uint64_t> overflow_drops{0};   // hard-valve drops
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> lines_in{0};
  std::atomic<std::uint64_t> responses_out{0};
  std::atomic<std::uint64_t> oversized_lines{0};
  std::atomic<std::uint64_t> overload_rejected{0};  // framed-excess rejections
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> read_pauses{0};      // backpressure engagements
  std::atomic<std::uint64_t> active_conns{0};     // gauge
  std::atomic<std::uint64_t> conn_high_water{0};  // peak concurrent conns
  std::atomic<std::uint64_t> outbound_high_water{0};  // peak per-conn bytes
};

class Server {
 public:
  Server(serve::Service& service, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen; throws std::runtime_error naming host:port on
  /// failure.  Must be called before run().
  void listen();

  /// The bound port (after listen()); the way tests and --listen :0
  /// discover an ephemeral port.
  std::uint16_t port() const;

  /// Run the event loop in the calling thread until request_stop(),
  /// then drain gracefully and return.
  void run();

  /// Begin a graceful drain.  Async-signal-safe (one atomic store and
  /// one write(2)); callable from any thread or a signal handler.
  void request_stop();

  const ServerStats& stats() const;

  /// The "rpc" stats section (wired into Service::set_extra_stats by
  /// pmonge-serve --listen).
  serve::Json stats_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmonge::rpc
