// Bounded admission queue with per-item deadlines: the backpressure
// valve between request producers and the service worker.
//
// Invariants the service relies on:
//   * Bounded: try_push on a full queue returns Overloaded immediately --
//     the producer answers the client with an explicit `overloaded`
//     rejection instead of queueing unbounded work.
//   * No silent drops: every admitted item is eventually returned by a
//     pop_batch call, even after stop() (remaining items drain) and even
//     when its deadline has passed (the item comes back flagged
//     `expired` so the worker can answer `deadline_expired`; the queue
//     never discards it).
//   * FIFO: items pop in admission order, so responses for one client
//     stream are computed in the order sent.
//
// pause(true) holds poppers without blocking producers -- the test and
// bench hook that lets a caller accumulate a burst and observe it as one
// coalesced batch.  stop() overrides pause so shutdown always drains.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace pmonge::serve {

using ServeClock = std::chrono::steady_clock;

/// Deadline sentinel: no deadline.
inline constexpr ServeClock::time_point kNoDeadline =
    ServeClock::time_point::max();

enum class AdmitResult { Admitted, Overloaded };

template <class T>
class AdmissionQueue {
 public:
  struct Popped {
    T item;
    ServeClock::time_point enqueued;
    ServeClock::time_point deadline;
    bool expired = false;  // deadline had passed by the time it popped
  };

  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit `item` unless the queue is full.  Never blocks.
  AdmitResult try_push(T item,
                       ServeClock::time_point deadline = kNoDeadline) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (q_.size() >= capacity_) {
        ++overloaded_;
        return AdmitResult::Overloaded;
      }
      q_.push_back(Entry{std::move(item), ServeClock::now(), deadline});
      ++admitted_;
      if (q_.size() > high_water_) high_water_ = q_.size();
    }
    cv_.notify_one();
    return AdmitResult::Admitted;
  }

  /// Pop up to `max_n` items in FIFO order.  Blocks while the queue is
  /// empty or paused; returns an empty vector only after stop() once the
  /// queue has fully drained.
  std::vector<Popped> pop_batch(std::size_t max_n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stopped_ || (!paused_ && !q_.empty()); });
    return take_locked(max_n);
  }

  /// Non-blocking pop (still honors pause unless stopped).
  std::vector<Popped> try_pop_batch(std::size_t max_n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopped_ && paused_) return {};
    return take_locked(max_n);
  }

  /// Hold poppers (true) or release them (false).  Producers are never
  /// blocked by pause; stop() overrides it.
  void pause(bool on) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = on;
    }
    cv_.notify_all();
  }

  /// Wake all poppers; subsequent pops drain the remaining items and then
  /// return empty.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t admitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_;
  }
  std::uint64_t overloaded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overloaded_;
  }
  /// Deepest the queue has ever been (standing depth, not rejects).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  struct Entry {
    T item;
    ServeClock::time_point enqueued;
    ServeClock::time_point deadline;
  };

  std::vector<Popped> take_locked(std::size_t max_n) {
    const auto now = ServeClock::now();
    std::vector<Popped> out;
    while (!q_.empty() && out.size() < max_n) {
      Entry& e = q_.front();
      out.push_back(Popped{std::move(e.item), e.enqueued, e.deadline,
                           e.deadline != kNoDeadline && now >= e.deadline});
      q_.pop_front();
    }
    return out;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> q_;
  bool paused_ = false;
  bool stopped_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t overloaded_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace pmonge::serve
