#include "serve/batcher.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "apps/empty_rect.hpp"
#include "apps/largest_rect.hpp"
#include "apps/polygon_neighbors.hpp"
#include "apps/string_edit.hpp"
#include "exec/parallel.hpp"
#include "geom/geometry.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "par/tube_maxima.hpp"

namespace pmonge::serve {

namespace {

using monge::kNoCol;
using monge::RowOpt;

/// A request slot inside one coalesced group.
struct Member {
  const Request* req;
  BatchOutcome* out;
};

void set_error(BatchOutcome& out, std::string why) {
  out.ok = false;
  out.error = std::move(why);
}

void set_ok(BatchOutcome& out, Json result) {
  out.ok = true;
  out.result = std::move(result);
}

/// Mark every member that has no outcome yet with a group-level error.
void fail_unanswered(std::vector<Member>& members, const std::string& why) {
  for (Member& m : members) {
    if (!m.out->ok && m.out->error.empty()) set_error(*m.out, why);
  }
}

std::int64_t int_field_or(const Json& body, const std::string& key,
                          std::int64_t def) {
  const Json* p = body.find(key);
  return p == nullptr ? def : p->as_int();
}

/// Group-key helper: any malformed field maps to -1 here; the handler
/// re-validates and produces the per-member error.
std::int64_t group_int(const Json& body, const std::string& key) {
  const Json* p = body.find(key);
  if (p == nullptr || p->type() != Json::Type::Int) return -1;
  return p->as_int();
}

/// Non-negative index field, checked against an exclusive bound.
std::size_t index_field(const Json& body, const std::string& key,
                        std::size_t bound, const char* what) {
  const std::int64_t v = body.at(key).as_int();
  if (v < 0 || static_cast<std::size_t>(v) >= bound) {
    throw JsonError(std::string("bad_request: ") + what + " out of range");
  }
  return static_cast<std::size_t>(v);
}

Json rowopt_result(const RowOpt<std::int64_t>& r) {
  Json::Obj o;
  if (r.col == kNoCol) {
    o["col"] = -1;
    o["value"] = nullptr;
  } else {
    o["col"] = static_cast<std::int64_t>(r.col);
    o["value"] = r.value;
  }
  return Json(std::move(o));
}

/// Resolve a registered array or record a per-member error.
std::shared_ptr<const ArrayEntry> resolve(Registry& reg, const Json& body,
                                          const std::string& key,
                                          BatchOutcome& out) {
  const Json* p = body.find(key);
  if (p == nullptr || p->type() != Json::Type::Int) {
    set_error(out, "bad_request: missing or non-integer field \"" + key +
                       "\"");
    return nullptr;
  }
  const std::int64_t id = p->as_int();
  std::shared_ptr<const ArrayEntry> entry =
      id < 0 ? nullptr : reg.get(static_cast<std::uint64_t>(id));
  if (entry == nullptr) {
    set_error(out, "unknown_array: " + std::to_string(id));
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Group handlers.  Each answers every member (outcome or error) and never
// throws across the job boundary.
// ---------------------------------------------------------------------------

void run_row_group(std::vector<Member>& members,
                   const std::shared_ptr<const ArrayEntry>& entry, bool maxima,
                   pram::Model model, ServiceMetrics& metrics) {
  if (entry->kind == ArrayEntry::Kind::Staircase) {
    fail_unanswered(members, "wrong_kind: array is staircase; use "
                             "staircase_rowmin / staircase_rowmax");
    return;
  }
  std::vector<std::size_t> rows;
  std::vector<std::pair<std::size_t, Member*>> live;  // row -> member
  for (Member& m : members) {
    try {
      const std::size_t row =
          index_field(m.req->body, "row", entry->data.rows(), "row");
      rows.push_back(row);
      live.emplace_back(row, &m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  pram::Machine mach(model);
  const bool inverse = entry->kind == ArrayEntry::Kind::InverseMonge;
  std::vector<RowOpt<std::int64_t>> res;
  if (!inverse && !maxima) {
    res = par::monge_row_minima_rows(mach, entry->data, rows);
  } else if (!inverse && maxima) {
    res = par::monge_row_maxima_rows(mach, entry->data, rows);
  } else if (inverse && !maxima) {
    res = par::inverse_monge_row_minima_rows(mach, entry->data, rows);
  } else {
    res = par::inverse_monge_row_maxima_rows(mach, entry->data, rows);
  }
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  for (auto& [row, m] : live) {
    const auto it = std::lower_bound(rows.begin(), rows.end(), row);
    set_ok(*m->out, rowopt_result(res[static_cast<std::size_t>(
                        it - rows.begin())]));
  }
}

void run_staircase_group(std::vector<Member>& members,
                         const std::shared_ptr<const ArrayEntry>& entry,
                         bool maxima, pram::Model model,
                         ServiceMetrics& metrics) {
  if (entry->kind != ArrayEntry::Kind::Staircase) {
    fail_unanswered(members, "wrong_kind: array is not staircase");
    return;
  }
  std::vector<std::size_t> rows;
  std::vector<std::pair<std::size_t, Member*>> live;
  for (Member& m : members) {
    try {
      const std::size_t row =
          index_field(m.req->body, "row", entry->data.rows(), "row");
      rows.push_back(row);
      live.emplace_back(row, &m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  pram::Machine mach(model);
  monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(entry->data,
                                                           entry->frontier);
  auto res = maxima ? par::staircase_row_maxima_rows(mach, s, rows)
                    : par::staircase_row_minima_rows(mach, s, rows);
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  for (auto& [row, m] : live) {
    const auto it = std::lower_bound(rows.begin(), rows.end(), row);
    set_ok(*m->out, rowopt_result(res[static_cast<std::size_t>(
                        it - rows.begin())]));
  }
}

void run_tube_group(std::vector<Member>& members,
                    const std::shared_ptr<const ArrayEntry>& d,
                    const std::shared_ptr<const ArrayEntry>& e, bool maxima,
                    pram::Model model, ServiceMetrics& metrics) {
  if (d->kind != ArrayEntry::Kind::Monge ||
      e->kind != ArrayEntry::Kind::Monge) {
    fail_unanswered(members, "wrong_kind: tube operands must be monge");
    return;
  }
  if (d->data.cols() != e->data.rows()) {
    fail_unanswered(members, "bad_request: composite dimensions mismatch");
    return;
  }
  std::vector<par::TubeQuery> qs;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      par::TubeQuery q;
      q.i = index_field(m.req->body, "i", d->data.rows(), "i");
      q.k = index_field(m.req->body, "k", e->data.cols(), "k");
      qs.push_back(q);
      live.push_back(&m);
    } catch (const JsonError& ex) {
      set_error(*m.out, ex.what());
    }
  }
  if (live.empty()) return;
  pram::Machine mach(model);
  auto res = maxima ? par::tube_maxima_points(mach, d->data, e->data, qs)
                    : par::tube_minima_points(mach, d->data, e->data, qs);
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["value"] = res[t].value;
    o["j"] = static_cast<std::int64_t>(res[t].j);
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_edit_group(std::vector<Member>& members, pram::Model model,
                    ServiceMetrics& metrics) {
  std::vector<apps::EditJob> jobs;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      apps::EditJob job;
      job.x = m.req->body.at("x").as_string();
      job.y = m.req->body.at("y").as_string();
      job.costs.ins = int_field_or(m.req->body, "ins", 1);
      job.costs.del = int_field_or(m.req->body, "del", 1);
      job.costs.sub = int_field_or(m.req->body, "sub", 1);
      jobs.push_back(std::move(job));
      live.push_back(&m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  pram::Machine mach(model);
  const auto costs = apps::edit_distance_par_batch(mach, jobs);
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["cost"] = costs[t];
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_largest_rect_group(std::vector<Member>& members, pram::Model model,
                            ServiceMetrics& metrics) {
  std::vector<std::vector<apps::IPoint>> instances;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      std::vector<apps::IPoint> pts;
      for (const Json& p : m.req->body.at("points").arr()) {
        const auto& xy = p.arr();
        if (xy.size() != 2) throw JsonError("bad_request: point is not [x,y]");
        pts.push_back({xy[0].as_int(), xy[1].as_int()});
      }
      if (pts.size() < 2) {
        throw JsonError("bad_request: need at least two points");
      }
      instances.push_back(std::move(pts));
      live.push_back(&m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  pram::Machine mach(model);
  const auto best = apps::largest_rect_par_batch(mach, instances);
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["area"] = best[t].area;
    o["a"] = Json(Json::Arr{Json(best[t].a.x), Json(best[t].a.y)});
    o["b"] = Json(Json::Arr{Json(best[t].b.x), Json(best[t].b.y)});
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_empty_rect_group(std::vector<Member>& members, pram::Model model,
                          ServiceMetrics& metrics) {
  pram::Machine mach(model);
  mach.parallel_branches(members.size(), [&](std::size_t t,
                                             pram::Machine& sub) {
    Member& m = members[t];
    try {
      const auto& b = m.req->body.at("bound").arr();
      if (b.size() != 4) throw JsonError("bad_request: bound is not [x1,y1,x2,y2]");
      apps::Rect bound{b[0].as_double(), b[1].as_double(), b[2].as_double(),
                       b[3].as_double()};
      std::vector<apps::DPoint> pts;
      for (const Json& p : m.req->body.at("points").arr()) {
        const auto& xy = p.arr();
        if (xy.size() != 2) throw JsonError("bad_request: point is not [x,y]");
        pts.push_back({xy[0].as_double(), xy[1].as_double()});
      }
      const apps::Rect r = apps::largest_empty_rect_par(sub, std::move(pts),
                                                        bound);
      Json::Obj o;
      o["x1"] = r.x1;
      o["y1"] = r.y1;
      o["x2"] = r.x2;
      o["y2"] = r.y2;
      o["area"] = r.area();
      set_ok(*m.out, Json(std::move(o)));
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    } catch (const std::exception& e) {
      set_error(*m.out, std::string("internal: ") + e.what());
    }
  });
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
}

apps::NeighborKind parse_neighbor_kind(const std::string& s) {
  if (s == "nearest_visible") return apps::NeighborKind::NearestVisible;
  if (s == "nearest_invisible") return apps::NeighborKind::NearestInvisible;
  if (s == "farthest_visible") return apps::NeighborKind::FarthestVisible;
  if (s == "farthest_invisible") return apps::NeighborKind::FarthestInvisible;
  throw JsonError("bad_request: unknown neighbor kind \"" + s + "\"");
}

void run_polygon_group(std::vector<Member>& members, pram::Model model,
                       ServiceMetrics& metrics) {
  pram::Machine mach(model);
  mach.parallel_branches(members.size(), [&](std::size_t t,
                                             pram::Machine& sub) {
    Member& m = members[t];
    try {
      auto parse_poly = [&](const char* key) {
        std::vector<geom::Point> v;
        for (const Json& p : m.req->body.at(key).arr()) {
          const auto& xy = p.arr();
          if (xy.size() != 2) throw JsonError("bad_request: vertex is not [x,y]");
          v.push_back({xy[0].as_double(), xy[1].as_double()});
        }
        return geom::ConvexPolygon(std::move(v));
      };
      const geom::ConvexPolygon P = parse_poly("p");
      const geom::ConvexPolygon Q = parse_poly("q");
      const auto kind = parse_neighbor_kind(m.req->body.at("kind").as_string());
      const auto res = apps::neighbors_par(sub, P, Q, kind);
      Json::Arr neighbor, distance;
      for (std::size_t i = 0; i < res.neighbor.size(); ++i) {
        const bool miss = res.neighbor[i] == apps::NeighborResult::npos;
        neighbor.push_back(miss ? Json(-1)
                                : Json(static_cast<std::int64_t>(
                                      res.neighbor[i])));
        distance.push_back(miss ? Json(nullptr) : Json(res.distance[i]));
      }
      Json::Obj o;
      o["neighbor"] = Json(std::move(neighbor));
      o["distance"] = Json(std::move(distance));
      set_ok(*m.out, Json(std::move(o)));
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    } catch (const std::exception& e) {
      set_error(*m.out, std::string("internal: ") + e.what());
    }
  });
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
}

}  // namespace

std::vector<BatchOutcome> Batcher::run(std::span<const Request> reqs) {
  std::vector<BatchOutcome> out(reqs.size());

  // Cache pass: answered hits never reach a group.
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (cache_.enabled()) {
      if (auto hit = cache_.get(reqs[i].signature)) {
        out[i].ok = true;
        out[i].cache_hit = true;
        out[i].result = Json::parse(*hit);
        metrics_.endpoint(reqs[i].op).cache_hits.add();
        continue;
      }
      metrics_.endpoint(reqs[i].op).cache_misses.add();
    }
    misses.push_back(i);
  }

  // Group the misses.  The key fixes everything a handler dispatches on;
  // with coalescing off every request is its own group (same code path,
  // so responses cannot depend on the toggle).
  std::map<std::string, std::vector<Member>> groups;
  for (const std::size_t i : misses) {
    const Request& r = reqs[i];
    std::string key = r.op;
    if (r.op == "rowmin" || r.op == "rowmax" || r.op == "staircase_rowmin" ||
        r.op == "staircase_rowmax") {
      key += ":" + std::to_string(group_int(r.body, "array"));
    } else if (r.op == "tubemax" || r.op == "tubemin") {
      key += ":" + std::to_string(group_int(r.body, "d")) + ":" +
             std::to_string(group_int(r.body, "e"));
    }
    if (!coalesce_) key += "#" + std::to_string(i);
    groups[key].push_back(Member{&reqs[i], &out[i]});
  }

  // One engine submission for the whole batch; handlers never throw.
  std::vector<std::function<void()>> jobs;
  jobs.reserve(groups.size());
  for (auto& [key, members_ref] : groups) {
    std::vector<Member>* members = &members_ref;
    jobs.push_back([this, members] {
      std::vector<Member>& ms = *members;
      const std::string& op = ms.front().req->op;
      try {
        if (op == "rowmin" || op == "rowmax") {
          auto entry = resolve(registry_, ms.front().req->body, "array",
                               *ms.front().out);
          if (entry == nullptr) {
            fail_unanswered(ms, ms.front().out->error);
            return;
          }
          run_row_group(ms, entry, op == "rowmax", model_, metrics_);
        } else if (op == "staircase_rowmin" || op == "staircase_rowmax") {
          auto entry = resolve(registry_, ms.front().req->body, "array",
                               *ms.front().out);
          if (entry == nullptr) {
            fail_unanswered(ms, ms.front().out->error);
            return;
          }
          run_staircase_group(ms, entry, op == "staircase_rowmax", model_,
                              metrics_);
        } else if (op == "tubemax" || op == "tubemin") {
          auto d = resolve(registry_, ms.front().req->body, "d",
                           *ms.front().out);
          auto e = d == nullptr ? nullptr
                                : resolve(registry_, ms.front().req->body,
                                          "e", *ms.front().out);
          if (d == nullptr || e == nullptr) {
            fail_unanswered(ms, ms.front().out->error);
            return;
          }
          run_tube_group(ms, d, e, op == "tubemax", model_, metrics_);
        } else if (op == "string_edit") {
          run_edit_group(ms, model_, metrics_);
        } else if (op == "largest_rect") {
          run_largest_rect_group(ms, model_, metrics_);
        } else if (op == "empty_rect") {
          run_empty_rect_group(ms, model_, metrics_);
        } else if (op == "polygon_neighbors") {
          run_polygon_group(ms, model_, metrics_);
        } else {
          fail_unanswered(ms, "unknown_op: " + op);
        }
      } catch (const std::exception& e) {
        fail_unanswered(ms, std::string("internal: ") + e.what());
      }
    });
  }
  exec::parallel_jobs(jobs);

  // Memoize fresh successes under their signatures.
  if (cache_.enabled()) {
    for (const std::size_t i : misses) {
      if (out[i].ok) cache_.put(reqs[i].signature, out[i].result.dump());
    }
  }
  return out;
}

}  // namespace pmonge::serve
