#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "apps/empty_rect.hpp"
#include "apps/largest_rect.hpp"
#include "apps/polygon_neighbors.hpp"
#include "apps/string_edit.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "geom/geometry.hpp"
#include "index/index.hpp"
#include "monge/staircase_seq.hpp"
#include "obs/trace.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "par/tube_maxima.hpp"

namespace pmonge::serve {

using Member = detail::BatchMember;

namespace {

using monge::kNoCol;
using monge::RowOpt;

void count_plan(ServiceMetrics& metrics, plan::Algo algo) {
  switch (algo) {
    case plan::Algo::Brute: metrics.plans_brute().add(); break;
    case plan::Algo::Sequential: metrics.plans_sequential().add(); break;
    case plan::Algo::Parallel: metrics.plans_parallel().add(); break;
  }
}

/// Close out a parallel-path kernel: fold the machine's charged PRAM
/// costs into the service totals and onto the kernel span, so exported
/// traces show predicted cost next to measured wall time.
void charge(ServiceMetrics& metrics, const pram::Machine& mach,
            obs::Span& span) {
  metrics.charged_time().add(mach.meter().time);
  metrics.charged_work().add(mach.meter().work);
  span.set_charged(mach.meter().time, mach.meter().work);
}

void set_error(BatchOutcome& out, std::string why) {
  out.ok = false;
  out.error = std::move(why);
}

void set_ok(BatchOutcome& out, Json result) {
  out.ok = true;
  out.result = std::move(result);
}

/// Mark every member that has no outcome yet with a group-level error.
void fail_unanswered(std::vector<Member>& members, const std::string& why) {
  for (Member& m : members) {
    if (!m.out->ok && m.out->error.empty()) set_error(*m.out, why);
  }
}

std::int64_t int_field_or(const Json& body, const std::string& key,
                          std::int64_t def) {
  const Json* p = body.find(key);
  return p == nullptr ? def : p->as_int();
}

/// Group-key helper: any malformed field maps to -1 here; the handler
/// re-validates and produces the per-member error.
std::int64_t group_int(const Json& body, const std::string& key) {
  const Json* p = body.find(key);
  if (p == nullptr || p->type() != Json::Type::Int) return -1;
  return p->as_int();
}

/// Non-negative index field, checked against an exclusive bound.
std::size_t index_field(const Json& body, const std::string& key,
                        std::size_t bound, const char* what) {
  const std::int64_t v = body.at(key).as_int();
  if (v < 0 || static_cast<std::size_t>(v) >= bound) {
    throw JsonError(std::string("bad_request: ") + what + " out of range");
  }
  return static_cast<std::size_t>(v);
}

Json rowopt_result(const RowOpt<std::int64_t>& r) {
  Json::Obj o;
  if (r.col == kNoCol) {
    o["col"] = -1;
    o["value"] = nullptr;
  } else {
    o["col"] = static_cast<std::int64_t>(r.col);
    o["value"] = r.value;
  }
  return Json(std::move(o));
}

/// Resolve a registered array or record a per-member error.
std::shared_ptr<const ArrayEntry> resolve(Registry& reg, const Json& body,
                                          const std::string& key,
                                          BatchOutcome& out) {
  const Json* p = body.find(key);
  if (p == nullptr || p->type() != Json::Type::Int) {
    set_error(out, "bad_request: missing or non-integer field \"" + key +
                       "\"");
    return nullptr;
  }
  const std::int64_t id = p->as_int();
  std::shared_ptr<const ArrayEntry> entry =
      id < 0 ? nullptr : reg.get(static_cast<std::uint64_t>(id));
  if (entry == nullptr) {
    set_error(out, "unknown_array: " + std::to_string(id));
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Group handlers.  Each answers every member (outcome or error) and never
// throws across the job boundary.
// ---------------------------------------------------------------------------

void run_row_group(std::vector<Member>& members,
                   const std::shared_ptr<const ArrayEntry>& entry, bool maxima,
                   pram::Model model, ServiceMetrics& metrics,
                   const plan::Plan& pl) {
  if (entry->kind == ArrayEntry::Kind::Staircase) {
    fail_unanswered(members, "wrong_kind: array is staircase; use "
                             "staircase_rowmin / staircase_rowmax");
    return;
  }
  std::vector<std::size_t> rows;
  std::vector<std::pair<std::size_t, Member*>> live;  // row -> member
  for (Member& m : members) {
    try {
      const std::size_t row =
          index_field(m.req->body, "row", entry->data.rows(), "row");
      rows.push_back(row);
      live.emplace_back(row, &m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  // Every variant below returns the *leftmost* optimum of each queried
  // row, so the plan choice never shows in the response bytes.
  obs::Span kspan("serve.kernel");
  kspan.set_detail(plan::algo_name(pl.algo));
  const bool inverse = entry->kind == ArrayEntry::Kind::InverseMonge;
  const auto& a = entry->data;
  std::vector<RowOpt<std::int64_t>> res;
  if (pl.algo == plan::Algo::Brute) {
    res.reserve(rows.size());
    for (const std::size_t r : rows) {
      RowOpt<std::int64_t> best{a(r, 0), 0};
      for (std::size_t j = 1; j < a.cols(); ++j) {
        const std::int64_t v = a(r, j);
        if (maxima ? v > best.value : v < best.value) best = {v, j};
      }
      res.push_back(best);
    }
  } else if (pl.algo == plan::Algo::Sequential) {
    std::vector<RowOpt<std::int64_t>> all;
    if (!inverse && !maxima) {
      all = monge::smawk_row_minima(a);
    } else if (!inverse && maxima) {
      all = monge::smawk_row_maxima_monge(a);
    } else if (inverse && !maxima) {
      all = monge::smawk_row_minima_inverse_monge(a);
    } else {
      all = monge::smawk_row_maxima_inverse_monge(a);
    }
    res.reserve(rows.size());
    for (const std::size_t r : rows) res.push_back(all[r]);
  } else {
    pram::Machine mach(model);
    exec::GrainScope grain(pl.grain);
    if (!inverse && !maxima) {
      res = par::monge_row_minima_rows(mach, a, rows);
    } else if (!inverse && maxima) {
      res = par::monge_row_maxima_rows(mach, a, rows);
    } else if (inverse && !maxima) {
      res = par::inverse_monge_row_minima_rows(mach, a, rows);
    } else {
      res = par::inverse_monge_row_maxima_rows(mach, a, rows);
    }
    charge(metrics, mach, kspan);
  }
  for (auto& [row, m] : live) {
    const auto it = std::lower_bound(rows.begin(), rows.end(), row);
    set_ok(*m->out, rowopt_result(res[static_cast<std::size_t>(
                        it - rows.begin())]));
  }
}

void run_staircase_group(std::vector<Member>& members,
                         const std::shared_ptr<const ArrayEntry>& entry,
                         bool maxima, pram::Model model,
                         ServiceMetrics& metrics, const plan::Plan& pl) {
  if (entry->kind != ArrayEntry::Kind::Staircase) {
    fail_unanswered(members, "wrong_kind: array is not staircase");
    return;
  }
  std::vector<std::size_t> rows;
  std::vector<std::pair<std::size_t, Member*>> live;
  for (Member& m : members) {
    try {
      const std::size_t row =
          index_field(m.req->body, "row", entry->data.rows(), "row");
      rows.push_back(row);
      live.emplace_back(row, &m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  obs::Span kspan("serve.kernel");
  kspan.set_detail(plan::algo_name(pl.algo));
  monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(entry->data,
                                                           entry->frontier);
  std::vector<RowOpt<std::int64_t>> res;
  if (pl.algo == plan::Algo::Brute) {
    // Leftmost optimum over each queried row's finite prefix.
    res.reserve(rows.size());
    for (const std::size_t r : rows) {
      const std::size_t width = s.frontier(r);
      RowOpt<std::int64_t> best{0, kNoCol};
      for (std::size_t j = 0; j < width; ++j) {
        const std::int64_t v = entry->data(r, j);
        if (best.col == kNoCol || (maxima ? v > best.value : v < best.value)) {
          best = {v, j};
        }
      }
      res.push_back(best);
    }
  } else if (pl.algo == plan::Algo::Sequential) {
    auto all = maxima ? monge::staircase_row_maxima_seq(s)
                      : monge::staircase_row_minima_seq(s);
    res.reserve(rows.size());
    for (const std::size_t r : rows) res.push_back(all[r]);
  } else {
    pram::Machine mach(model);
    exec::GrainScope grain(pl.grain);
    res = maxima ? par::staircase_row_maxima_rows(mach, s, rows)
                 : par::staircase_row_minima_rows(mach, s, rows);
    charge(metrics, mach, kspan);
  }
  for (auto& [row, m] : live) {
    const auto it = std::lower_bound(rows.begin(), rows.end(), row);
    set_ok(*m->out, rowopt_result(res[static_cast<std::size_t>(
                        it - rows.begin())]));
  }
}

Json region_result(const index::RegionOpt& r) {
  Json::Obj o;
  if (!r.has) {
    o["value"] = nullptr;
    o["row"] = -1;
    o["col"] = -1;
  } else {
    o["value"] = r.value;
    o["row"] = static_cast<std::int64_t>(r.row);
    o["col"] = static_cast<std::int64_t>(r.col);
  }
  return Json(std::move(o));
}

/// Submatrix min/max over a registered array.  With `idx` set, every
/// member is answered through the query index; otherwise each runs the
/// direct sub-block solver under the planned algorithm.  Both paths
/// reduce candidates under the same total order (value, leftmost col,
/// topmost row), so the route never shows in the response bytes.
void run_submatrix_group(std::vector<Member>& members,
                         const std::shared_ptr<const ArrayEntry>& entry,
                         const std::shared_ptr<index::Index>& idx,
                         bool maxima, const plan::Plan& pl) {
  obs::Span kspan("serve.kernel");
  kspan.set_detail(idx != nullptr ? "index" : plan::algo_name(pl.algo));
  for (Member& m : members) {
    try {
      const Json& b = m.req->body;
      const std::size_t r0 =
          index_field(b, "r0", entry->data.rows(), "r0");
      const std::size_t r1 =
          index_field(b, "r1", entry->data.rows(), "r1");
      const std::size_t c0 =
          index_field(b, "c0", entry->data.cols(), "c0");
      const std::size_t c1 =
          index_field(b, "c1", entry->data.cols(), "c1");
      if (r1 < r0) throw JsonError("bad_request: r1 < r0");
      if (c1 < c0) throw JsonError("bad_request: c1 < c0");
      const index::RegionOpt r =
          idx != nullptr
              ? idx->submatrix_opt(maxima, r0, r1, c0, c1)
              : index::submatrix_direct(*entry, maxima, pl.algo, r0, r1,
                                        c0, c1);
      set_ok(*m.out, region_result(r));
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
}

void run_tube_group(std::vector<Member>& members,
                    const std::shared_ptr<const ArrayEntry>& d,
                    const std::shared_ptr<const ArrayEntry>& e, bool maxima,
                    pram::Model model, ServiceMetrics& metrics,
                    const plan::Plan& pl) {
  if (d->kind != ArrayEntry::Kind::Monge ||
      e->kind != ArrayEntry::Kind::Monge) {
    fail_unanswered(members, "wrong_kind: tube operands must be monge");
    return;
  }
  if (d->data.cols() != e->data.rows()) {
    fail_unanswered(members, "bad_request: composite dimensions mismatch");
    return;
  }
  std::vector<par::TubeQuery> qs;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      par::TubeQuery q;
      q.i = index_field(m.req->body, "i", d->data.rows(), "i");
      q.k = index_field(m.req->body, "k", e->data.cols(), "k");
      qs.push_back(q);
      live.push_back(&m);
    } catch (const JsonError& ex) {
      set_error(*m.out, ex.what());
    }
  }
  if (live.empty()) return;
  obs::Span kspan("serve.kernel");
  kspan.set_detail(plan::algo_name(pl.algo));
  if (pl.algo != plan::Algo::Parallel) {
    // Per-point scan over the middle index, smallest j on ties --
    // exactly the tube_*_brute convention of monge/composite.hpp.
    const std::size_t q = d->data.cols();
    for (std::size_t t = 0; t < live.size(); ++t) {
      const par::TubeQuery& tq = qs[t];
      std::int64_t best = d->data(tq.i, 0) + e->data(0, tq.k);
      std::size_t bestj = 0;
      for (std::size_t j = 1; j < q; ++j) {
        const std::int64_t v = d->data(tq.i, j) + e->data(j, tq.k);
        if (maxima ? v > best : v < best) {
          best = v;
          bestj = j;
        }
      }
      Json::Obj o;
      o["value"] = best;
      o["j"] = static_cast<std::int64_t>(bestj);
      set_ok(*live[t]->out, Json(std::move(o)));
    }
    return;
  }
  pram::Machine mach(model);
  exec::GrainScope grain(pl.grain);
  auto res = maxima ? par::tube_maxima_points(mach, d->data, e->data, qs)
                    : par::tube_minima_points(mach, d->data, e->data, qs);
  charge(metrics, mach, kspan);
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["value"] = res[t].value;
    o["j"] = static_cast<std::int64_t>(res[t].j);
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_edit_group(std::vector<Member>& members, pram::Model model,
                    ServiceMetrics& metrics, const plan::Plan& pl) {
  std::vector<apps::EditJob> jobs;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      apps::EditJob job;
      job.x = m.req->body.at("x").as_string();
      job.y = m.req->body.at("y").as_string();
      job.costs.ins = int_field_or(m.req->body, "ins", 1);
      job.costs.del = int_field_or(m.req->body, "del", 1);
      job.costs.sub = int_field_or(m.req->body, "sub", 1);
      jobs.push_back(std::move(job));
      live.push_back(&m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  obs::Span kspan("serve.kernel");
  kspan.set_detail(plan::algo_name(pl.algo));
  std::vector<std::int64_t> costs;
  if (pl.algo != plan::Algo::Parallel) {
    costs.reserve(jobs.size());
    for (const apps::EditJob& job : jobs) {
      costs.push_back(apps::edit_distance_seq(job.x, job.y, job.costs).cost);
    }
  } else {
    pram::Machine mach(model);
    costs = apps::edit_distance_par_batch(mach, jobs);
    charge(metrics, mach, kspan);
  }
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["cost"] = costs[t];
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_largest_rect_group(std::vector<Member>& members, pram::Model model,
                            ServiceMetrics& metrics) {
  std::vector<std::vector<apps::IPoint>> instances;
  std::vector<Member*> live;
  for (Member& m : members) {
    try {
      std::vector<apps::IPoint> pts;
      for (const Json& p : m.req->body.at("points").arr()) {
        const auto& xy = p.arr();
        if (xy.size() != 2) throw JsonError("bad_request: point is not [x,y]");
        pts.push_back({xy[0].as_int(), xy[1].as_int()});
      }
      if (pts.size() < 2) {
        throw JsonError("bad_request: need at least two points");
      }
      instances.push_back(std::move(pts));
      live.push_back(&m);
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    }
  }
  if (live.empty()) return;
  obs::Span kspan("serve.kernel");
  kspan.set_detail("parallel");
  pram::Machine mach(model);
  const auto best = apps::largest_rect_par_batch(mach, instances);
  charge(metrics, mach, kspan);
  for (std::size_t t = 0; t < live.size(); ++t) {
    Json::Obj o;
    o["area"] = best[t].area;
    o["a"] = Json(Json::Arr{Json(best[t].a.x), Json(best[t].a.y)});
    o["b"] = Json(Json::Arr{Json(best[t].b.x), Json(best[t].b.y)});
    set_ok(*live[t]->out, Json(std::move(o)));
  }
}

void run_empty_rect_group(std::vector<Member>& members, pram::Model model,
                          ServiceMetrics& metrics) {
  obs::Span kspan("serve.kernel");
  kspan.set_detail("parallel");
  pram::Machine mach(model);
  mach.parallel_branches(members.size(), [&](std::size_t t,
                                             pram::Machine& sub) {
    Member& m = members[t];
    try {
      const auto& b = m.req->body.at("bound").arr();
      if (b.size() != 4) throw JsonError("bad_request: bound is not [x1,y1,x2,y2]");
      apps::Rect bound{b[0].as_double(), b[1].as_double(), b[2].as_double(),
                       b[3].as_double()};
      std::vector<apps::DPoint> pts;
      for (const Json& p : m.req->body.at("points").arr()) {
        const auto& xy = p.arr();
        if (xy.size() != 2) throw JsonError("bad_request: point is not [x,y]");
        pts.push_back({xy[0].as_double(), xy[1].as_double()});
      }
      const apps::Rect r = apps::largest_empty_rect_par(sub, std::move(pts),
                                                        bound);
      Json::Obj o;
      o["x1"] = r.x1;
      o["y1"] = r.y1;
      o["x2"] = r.x2;
      o["y2"] = r.y2;
      o["area"] = r.area();
      set_ok(*m.out, Json(std::move(o)));
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    } catch (const fault::InjectedFault&) {
      // Transient by contract: let it reach the group retry loop instead
      // of freezing into a per-member "internal" error.
      throw;
    } catch (const std::exception& e) {
      set_error(*m.out, std::string("internal: ") + e.what());
    }
  });
  charge(metrics, mach, kspan);
}

apps::NeighborKind parse_neighbor_kind(const std::string& s) {
  if (s == "nearest_visible") return apps::NeighborKind::NearestVisible;
  if (s == "nearest_invisible") return apps::NeighborKind::NearestInvisible;
  if (s == "farthest_visible") return apps::NeighborKind::FarthestVisible;
  if (s == "farthest_invisible") return apps::NeighborKind::FarthestInvisible;
  throw JsonError("bad_request: unknown neighbor kind \"" + s + "\"");
}

void run_polygon_group(std::vector<Member>& members, pram::Model model,
                       ServiceMetrics& metrics) {
  obs::Span kspan("serve.kernel");
  kspan.set_detail("parallel");
  pram::Machine mach(model);
  mach.parallel_branches(members.size(), [&](std::size_t t,
                                             pram::Machine& sub) {
    Member& m = members[t];
    try {
      auto parse_poly = [&](const char* key) {
        std::vector<geom::Point> v;
        for (const Json& p : m.req->body.at(key).arr()) {
          const auto& xy = p.arr();
          if (xy.size() != 2) throw JsonError("bad_request: vertex is not [x,y]");
          v.push_back({xy[0].as_double(), xy[1].as_double()});
        }
        return geom::ConvexPolygon(std::move(v));
      };
      const geom::ConvexPolygon P = parse_poly("p");
      const geom::ConvexPolygon Q = parse_poly("q");
      const auto kind = parse_neighbor_kind(m.req->body.at("kind").as_string());
      const auto res = apps::neighbors_par(sub, P, Q, kind);
      Json::Arr neighbor, distance;
      for (std::size_t i = 0; i < res.neighbor.size(); ++i) {
        if (res.neighbor[i] == apps::NeighborResult::npos) {
          neighbor.emplace_back(-1);
          distance.emplace_back(nullptr);
        } else {
          neighbor.emplace_back(static_cast<std::int64_t>(res.neighbor[i]));
          distance.emplace_back(res.distance[i]);
        }
      }
      Json::Obj o;
      o["neighbor"] = Json(std::move(neighbor));
      o["distance"] = Json(std::move(distance));
      set_ok(*m.out, Json(std::move(o)));
    } catch (const JsonError& e) {
      set_error(*m.out, e.what());
    } catch (const fault::InjectedFault&) {
      throw;  // transient: belongs to the group retry loop
    } catch (const std::exception& e) {
      set_error(*m.out, std::string("internal: ") + e.what());
    }
  });
  charge(metrics, mach, kspan);
}

/// Ids of the registered arrays `req` reads -- the cache-entry tags that
/// unregister invalidates.
std::vector<std::uint64_t> result_tags(const Request& req) {
  std::vector<std::uint64_t> tags;
  for (const char* key : {"array", "d", "e"}) {
    const Json* p = req.body.find(key);
    if (p != nullptr && p->type() == Json::Type::Int && p->as_int() >= 0) {
      tags.push_back(static_cast<std::uint64_t>(p->as_int()));
    }
  }
  return tags;
}

}  // namespace

plan::QueryShape query_shape(const Request& req, Registry& reg) {
  plan::QueryShape s;
  const Json& b = req.body;
  const auto entry_of =
      [&](const char* key) -> std::shared_ptr<const ArrayEntry> {
    const Json* p = b.find(key);
    if (p == nullptr || p->type() != Json::Type::Int || p->as_int() < 0) {
      return nullptr;
    }
    return reg.get(static_cast<std::uint64_t>(p->as_int()));
  };
  const auto points_of = [&](const char* key) -> std::size_t {
    const Json* p = b.find(key);
    return p != nullptr && p->type() == Json::Type::Array ? p->arr().size()
                                                          : 0;
  };
  if (req.op == "rowmin" || req.op == "rowmax" ||
      req.op == "staircase_rowmin" || req.op == "staircase_rowmax") {
    s.op = plan::OpClass::RowSearch;
    if (const auto e = entry_of("array")) {
      s.rows = e->data.rows();
      s.cols = e->data.cols();
    }
  } else if (req.op == "submatrix_min" || req.op == "submatrix_max") {
    s.op = plan::OpClass::SubmatrixSearch;
    if (const auto e = entry_of("array")) {
      s.rows = e->data.rows();
      s.cols = e->data.cols();
    }
  } else if (req.op == "tubemax" || req.op == "tubemin") {
    s.op = plan::OpClass::TubeSearch;
    if (const auto d = entry_of("d")) {
      s.rows = d->data.rows();
      s.cols = d->data.cols();
    }
  } else if (req.op == "string_edit") {
    s.op = plan::OpClass::EditDistance;
    const Json* x = b.find("x");
    const Json* y = b.find("y");
    if (x != nullptr && x->type() == Json::Type::String) {
      s.rows = x->as_string().size();
    }
    if (y != nullptr && y->type() == Json::Type::String) {
      s.cols = y->as_string().size();
    }
  } else {
    s.op = plan::OpClass::GeometricApp;
    s.rows = points_of("points") + points_of("p") + points_of("q");
  }
  s.batch = 1;
  return s;
}

plan::Plan Batcher::plan_for(const plan::QueryShape& shape,
                             bool degraded) const {
  plan::Plan pl = planner_.plan(shape);
  if (degraded) {
    // The degradation contract: sequential-SMAWK under a SerialScope
    // never touches the pool, and returns the same leftmost-optimum
    // bytes as every other variant.
    pl.algo = plan::Algo::Sequential;
    pl.grain = 0;
    return pl;
  }
  if (fault::armed() && fault::should_fire(fault::Site::PlanCorruptPlan)) {
    // Rotate to a different variant.  Byte-identity across variants is
    // exactly the invariant the chaos harness checks, so a "corrupted"
    // plan may cost time but can never change a response.
    switch (pl.algo) {
      case plan::Algo::Brute: pl.algo = plan::Algo::Sequential; break;
      case plan::Algo::Sequential: pl.algo = plan::Algo::Parallel; break;
      case plan::Algo::Parallel: pl.algo = plan::Algo::Brute; break;
    }
    pl.grain = 0;
  }
  return pl;
}

bool Batcher::breaker_open() const {
  return breaker_budget_.load(std::memory_order_relaxed) > 0;
}

void Batcher::note_failure() {
  const std::uint64_t n =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= std::max<std::size_t>(1, res_.breaker_threshold) &&
      res_.breaker_cooldown > 0 && !breaker_open()) {
    breaker_budget_.store(static_cast<std::int64_t>(res_.breaker_cooldown),
                          std::memory_order_relaxed);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    consecutive_failures_.store(0, std::memory_order_relaxed);
  }
}

void Batcher::note_group_done(bool degraded) {
  if (!degraded) return;
  degraded_groups_.fetch_add(1, std::memory_order_relaxed);
  breaker_budget_.fetch_sub(1, std::memory_order_relaxed);
}

void Batcher::dispatch_group(std::vector<Member>& ms) {
  // Retry budget: the tightest member deadline, further tightened by the
  // optional per-op timeout.  Attempts never sleep past it.
  ServeClock::time_point deadline = kNoDeadline;
  for (const Member& m : ms) deadline = std::min(deadline, m.deadline);
  if (res_.op_timeout_ms >= 0) {
    deadline = std::min(
        deadline,
        ServeClock::now() + std::chrono::milliseconds(res_.op_timeout_ms));
  }
  for (std::size_t attempt = 1;; ++attempt) {
    const bool degraded = breaker_open();
    try {
      // The group-fault site models the *parallel* plan failing; the
      // degraded path is the sequential fallback, so it is exempt --
      // which is also what makes breaker recovery deterministic under a
      // 100% injection rate (tests/test_chaos.cpp).
      if (!degraded && fault::armed() &&
          fault::should_fire(fault::Site::ServeGroupFault)) {
        throw fault::InjectedFault(fault::Site::ServeGroupFault);
      }
      dispatch_group_once(ms, degraded);
      note_group_done(degraded);
      if (degraded) {
        for (const Member& m : ms) {
          metrics_.endpoint(m.req->op).degraded.add();
        }
      }
      if (attempt == 1) {
        // A clean first-attempt success closes the failure streak.
        consecutive_failures_.store(0, std::memory_order_relaxed);
      }
      return;
    } catch (const fault::InjectedFault& f) {
      note_failure();
      auto backoff = std::chrono::microseconds(
          200ull << std::min<std::size_t>(attempt - 1, 10));
      if (backoff > std::chrono::microseconds(5000)) {
        backoff = std::chrono::microseconds(5000);
      }
      const auto now = ServeClock::now();
      if (attempt > res_.max_retries ||
          (deadline != kNoDeadline && now + backoff >= deadline)) {
        // Out of budget: one coherent group-level error (partial
        // outcomes from the failed attempt are discarded first).
        for (Member& m : ms) *m.out = BatchOutcome{};
        fail_unanswered(ms, std::string("fault_injected: ") +
                                fault::site_name(f.site) + " after " +
                                std::to_string(attempt) + " attempt(s)");
        fault_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      for (const Member& m : ms) {
        metrics_.endpoint(m.req->op).retried.add();
      }
      {
        obs::TraceContext tctx(ms.front().req->trace_id);
        obs::Span rspan("serve.retry");
        rspan.set_detail(fault::site_name(f.site));
        rspan.set_arg("attempt", attempt);
        std::this_thread::sleep_for(backoff);
      }
      // Kernels are deterministic: recomputation reproduces the exact
      // bytes, so resetting partial outcomes cannot change a response.
      for (Member& m : ms) *m.out = BatchOutcome{};
    }
  }
}

void Batcher::dispatch_group_once(std::vector<Member>& ms, bool degraded) {
  const std::string& op = ms.front().req->op;
  // Group-level spans (and the plan/kernel spans they enclose) carry a
  // representative trace id: the first member's.  Per-request intervals
  // are separately visible as serve.request spans.
  obs::TraceContext tctx(ms.front().req->trace_id);
  obs::Span span("serve.group");
  span.set_detail(op);
  span.set_arg("members", ms.size());
  // Degraded execution stays off the pool entirely (see thread_pool.cpp:
  // serial scopes never enter the pooled chunk loop, where the exec
  // fault sites live), so a breaker-opened batcher genuinely dodges the
  // injections that opened it.
  std::optional<exec::SerialScope> serial;
  if (degraded) serial.emplace();
  try {
    if (op == "rowmin" || op == "rowmax") {
      auto entry = resolve(registry_, ms.front().req->body, "array",
                           *ms.front().out);
      if (entry == nullptr) {
        fail_unanswered(ms, ms.front().out->error);
        return;
      }
      const plan::QueryShape shape{plan::OpClass::RowSearch,
                                   entry->data.rows(), entry->data.cols(),
                                   ms.size()};
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      run_row_group(ms, entry, op == "rowmax", model_, metrics_, pl);
    } else if (op == "staircase_rowmin" || op == "staircase_rowmax") {
      auto entry = resolve(registry_, ms.front().req->body, "array",
                           *ms.front().out);
      if (entry == nullptr) {
        fail_unanswered(ms, ms.front().out->error);
        return;
      }
      const plan::QueryShape shape{plan::OpClass::RowSearch,
                                   entry->data.rows(), entry->data.cols(),
                                   ms.size()};
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      run_staircase_group(ms, entry, op == "staircase_rowmax", model_,
                          metrics_, pl);
    } else if (op == "submatrix_min" || op == "submatrix_max") {
      auto entry = resolve(registry_, ms.front().req->body, "array",
                           *ms.front().out);
      if (entry == nullptr) {
        fail_unanswered(ms, ms.front().out->error);
        return;
      }
      const plan::QueryShape shape{plan::OpClass::SubmatrixSearch,
                                   entry->data.rows(), entry->data.cols(),
                                   ms.size()};
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      // Route through the index only when one exists and the planner
      // predicts the O(lg m) lookups beat the best direct plan.  The
      // degraded path (breaker open) stays on the direct sequential
      // solver -- same bytes either way, so the route is free to vary.
      std::shared_ptr<index::Index> idx;
      if (!degraded) {
        idx = indexes_.get(
            static_cast<std::uint64_t>(group_int(ms.front().req->body,
                                                 "array")));
        if (idx != nullptr && !planner_.prefer_index(shape)) idx = nullptr;
      }
      run_submatrix_group(ms, entry, idx, op == "submatrix_max", pl);
    } else if (op == "tubemax" || op == "tubemin") {
      auto d = resolve(registry_, ms.front().req->body, "d",
                       *ms.front().out);
      auto e = d == nullptr ? nullptr
                            : resolve(registry_, ms.front().req->body,
                                      "e", *ms.front().out);
      if (d == nullptr || e == nullptr) {
        fail_unanswered(ms, ms.front().out->error);
        return;
      }
      const plan::QueryShape shape{plan::OpClass::TubeSearch,
                                   d->data.rows(), d->data.cols(),
                                   ms.size()};
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      run_tube_group(ms, d, e, op == "tubemax", model_, metrics_, pl);
    } else if (op == "string_edit") {
      plan::QueryShape shape;
      shape.op = plan::OpClass::EditDistance;
      shape.batch = ms.size();
      for (const Member& m : ms) {
        const plan::QueryShape one = query_shape(*m.req, registry_);
        shape.rows = std::max(shape.rows, one.rows);
        shape.cols = std::max(shape.cols, one.cols);
      }
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      run_edit_group(ms, model_, metrics_, pl);
    } else if (op == "largest_rect" || op == "empty_rect" ||
               op == "polygon_neighbors") {
      plan::QueryShape shape;
      shape.op = plan::OpClass::GeometricApp;
      shape.batch = ms.size();
      for (const Member& m : ms) {
        shape.rows =
            std::max(shape.rows, query_shape(*m.req, registry_).rows);
      }
      const plan::Plan pl = plan_for(shape, degraded);
      count_plan(metrics_, pl.algo);
      if (op == "largest_rect") {
        run_largest_rect_group(ms, model_, metrics_);
      } else if (op == "empty_rect") {
        run_empty_rect_group(ms, model_, metrics_);
      } else {
        run_polygon_group(ms, model_, metrics_);
      }
    } else {
      fail_unanswered(ms, "unknown_op: " + op);
    }
  } catch (const fault::InjectedFault&) {
    throw;  // transient by contract: dispatch_group's retry loop owns it
  } catch (const std::exception& e) {
    fail_unanswered(ms, std::string("internal: ") + e.what());
  }
}

void Batcher::run_explain(const Request& req, BatchOutcome& out) {
  const Json* q = req.body.find("query");
  if (q == nullptr || q->type() != Json::Type::Object) {
    set_error(out, "bad_request: explain requires an object field \"query\"");
    return;
  }
  Request inner;
  try {
    inner = parse_request(q->dump());
  } catch (const JsonError& e) {
    set_error(out, e.what());
    return;
  }
  if (!is_query_op(inner.op) || inner.op == "explain") {
    set_error(out,
              "bad_request: explain \"query\" must be a query op other than "
              "explain");
    return;
  }

  const plan::QueryShape shape = query_shape(inner, registry_);
  const plan::Plan pl = planner_.plan(shape);

  // One uncached run of the inner query, timed.  explain is
  // observability: neither this run nor its timing touches the result
  // cache, and the inner bytes it reports are the same bytes the plain
  // query produces.
  BatchOutcome sub;
  std::vector<Member> ms{Member{&inner, &sub}};
  const auto t0 = std::chrono::steady_clock::now();
  dispatch_group(ms);
  const auto t1 = std::chrono::steady_clock::now();
  const double actual_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0)
                              .count()) /
      1000.0;

  Json::Obj shape_o;
  shape_o["op_class"] = plan::op_class_name(shape.op);
  shape_o["rows"] = static_cast<std::int64_t>(shape.rows);
  shape_o["cols"] = static_cast<std::int64_t>(shape.cols);
  shape_o["batch"] = static_cast<std::int64_t>(shape.batch);
  Json::Obj plan_o;
  plan_o["algo"] = plan::algo_name(pl.algo);
  plan_o["grain"] = static_cast<std::int64_t>(pl.grain);
  plan_o["predicted_us"] = pl.predicted_us;
  plan_o["profile"] = planner_.profile().id;
  plan_o["planner_enabled"] = planner_.enabled();
  if (inner.op == "submatrix_min" || inner.op == "submatrix_max") {
    // Whether the non-degraded dispatch would route through the query
    // index: one must exist for the operand AND the planner must predict
    // the lookup beats the best direct plan (docs/indexing.md).
    const std::int64_t id = group_int(inner.body, "array");
    const bool have_index =
        id >= 0 &&
        indexes_.get(static_cast<std::uint64_t>(id)) != nullptr;
    plan_o["use_index"] = have_index && planner_.prefer_index(shape);
  }
  plan_o["shape"] = Json(std::move(shape_o));
  Json::Obj outcome_o;
  outcome_o["ok"] = sub.ok;
  if (sub.ok) {
    outcome_o["result"] = sub.result;
  } else {
    outcome_o["error"] = sub.error;
  }
  Json::Obj o;
  o["plan"] = Json(std::move(plan_o));
  o["actual_us"] = actual_us;
  o["outcome"] = Json(std::move(outcome_o));
  set_ok(out, Json(std::move(o)));
}

ResilienceSnapshot Batcher::resilience() const {
  ResilienceSnapshot s;
  s.retries = retries_.load(std::memory_order_relaxed);
  s.batch_retries = batch_retries_.load(std::memory_order_relaxed);
  s.degraded_groups = degraded_groups_.load(std::memory_order_relaxed);
  s.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  s.fault_errors = fault_errors_.load(std::memory_order_relaxed);
  s.breaker_open = breaker_budget_.load(std::memory_order_relaxed) > 0;
  return s;
}

std::vector<BatchOutcome> Batcher::run(
    std::span<const Request> reqs,
    std::span<const ServeClock::time_point> deadlines) {
  std::vector<BatchOutcome> out(reqs.size());

  // Cache pass: answered hits never reach a group.  explain requests
  // bypass the cache entirely (their payload embeds a measured time).
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].op == "explain") {
      run_explain(reqs[i], out[i]);
      continue;
    }
    if (cache_.enabled()) {
      if (auto hit = cache_.get(reqs[i].signature)) {
        out[i].ok = true;
        out[i].cache_hit = true;
        out[i].result = Json::parse(*hit);
        metrics_.endpoint(reqs[i].op).cache_hits.add();
        continue;
      }
      metrics_.endpoint(reqs[i].op).cache_misses.add();
    }
    misses.push_back(i);
  }

  // Group the misses.  The key fixes everything a handler dispatches on;
  // with coalescing off every request is its own group (same code path,
  // so responses cannot depend on the toggle).
  std::map<std::string, std::vector<Member>> groups;
  for (const std::size_t i : misses) {
    const Request& r = reqs[i];
    std::string key = r.op;
    if (r.op == "rowmin" || r.op == "rowmax" || r.op == "staircase_rowmin" ||
        r.op == "staircase_rowmax" || r.op == "submatrix_min" ||
        r.op == "submatrix_max") {
      key += ":" + std::to_string(group_int(r.body, "array"));
    } else if (r.op == "tubemax" || r.op == "tubemin") {
      key += ":" + std::to_string(group_int(r.body, "d")) + ":" +
             std::to_string(group_int(r.body, "e"));
    }
    if (!coalesce_) key += "#" + std::to_string(i);
    groups[key].push_back(
        Member{&reqs[i], &out[i],
               deadlines.empty() ? kNoDeadline : deadlines[i]});
  }

  // One engine submission for the whole batch; dispatch_group never
  // throws.  The submission itself is pooled, though, so an exec fault
  // site can fire on a jobs chunk *before* its group ran -- in which
  // case that group is completely untouched (a group is all-answered or
  // untouched, never partial).  Resubmit the untouched groups, bounded
  // by max_retries.
  std::vector<std::vector<Member>*> pending;
  pending.reserve(groups.size());
  for (auto& [key, members_ref] : groups) pending.push_back(&members_ref);
  for (std::size_t attempt = 0; !pending.empty(); ++attempt) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(pending.size());
    for (std::vector<Member>* members : pending) {
      jobs.push_back([this, members] { dispatch_group(*members); });
    }
    try {
      exec::parallel_jobs(jobs);
      break;
    } catch (const fault::InjectedFault& f) {
      std::vector<std::vector<Member>*> untouched;
      for (std::vector<Member>* members : pending) {
        const bool unanswered =
            std::any_of(members->begin(), members->end(), [](const Member& m) {
              return !m.out->ok && m.out->error.empty();
            });
        if (unanswered) untouched.push_back(members);
      }
      pending = std::move(untouched);
      if (pending.empty()) break;
      if (attempt >= res_.max_retries) {
        for (std::vector<Member>* members : pending) {
          fail_unanswered(*members, std::string("fault_injected: ") +
                                        fault::site_name(f.site) +
                                        " at batch dispatch");
          fault_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      batch_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Memoize fresh successes under their signatures, tagged with the
  // array ids they read so unregister can invalidate them.
  if (cache_.enabled()) {
    for (const std::size_t i : misses) {
      if (out[i].ok) {
        cache_.put_tagged(reqs[i].signature, out[i].result.dump(),
                          result_tags(reqs[i]));
      }
    }
  }
  return out;
}

}  // namespace pmonge::serve
