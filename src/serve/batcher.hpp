// Query batcher: turns one admitted batch of heterogeneous requests into
// the fewest engine runs that answer all of them.
//
// Coalescing rules (the tentpole's point -- see docs/serving.md):
//   * row queries against the same registered array and direction become
//     ONE batched row-search invocation (par/monge_rowminima.hpp's
//     *_rows entry points), so B queries cost one recursive decomposition
//     over B rows instead of B independent scans;
//   * staircase row queries group the same way through the row-selected
//     Theorem-2.3 view;
//   * tube point queries group by (d, e) pair and share per-slice row
//     searches (par/tube_maxima.hpp's *_points entry points);
//   * application queries (string_edit, largest_rect, empty_rect,
//     polygon_neighbors) group by op and fan out as parallel branches of
//     one Machine.
// All groups of a batch are then pushed into the exec engine as ONE
// submission (exec::parallel_jobs).
//
// Planning: each group consults the execution planner (src/plan) for the
// cheapest variant -- a brute scan of exactly the queried cells, the
// sequential SMAWK-family solver, or the parallel kernel (with the
// plan's grain hint).  All variants return the leftmost optimum, so the
// chosen algorithm is invisible in the response bytes; a disabled
// planner reproduces the old fixed parallel dispatch exactly.
//
// Correctness contract: outcome[i] depends only on request i -- never on
// what else shared its batch, which profile is loaded, or what the plan
// cache holds -- so responses are bit-identical whether coalescing or
// planning is on or off.  Per-request failures (bad fields, unknown
// arrays) are per-request errors; a group-level algorithm failure marks
// only that group's members, never its batch siblings.
//
// The `explain` op ({"op":"explain","query":{...}}) answers with the
// inner query's plan, its predicted cost, the measured wall time of one
// uncached run, and the inner outcome.  Like `stats` it is
// observability output: never cached, bytes may vary run to run.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "plan/planner.hpp"
#include "pram/machine.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace pmonge::serve {

struct BatchOutcome {
  bool ok = false;
  Json result;        // valid when ok
  std::string error;  // valid when !ok
  bool cache_hit = false;
};

namespace detail {
/// A request slot inside one coalesced group.
struct BatchMember {
  const Request* req;
  BatchOutcome* out;
};
}  // namespace detail

/// What `req` would touch, in cost-model units (batch = 1): operand
/// dimensions resolved through the registry where the op references a
/// registered array.  Unknown arrays / malformed fields yield a zero
/// shape (predicts ~nothing; the query itself then fails normally).
/// Shared by admission control and the explain op.
plan::QueryShape query_shape(const Request& req, Registry& reg);

class Batcher {
 public:
  Batcher(Registry& registry, ShardedLruCache& cache, ServiceMetrics& metrics,
          const plan::Planner& planner, pram::Model model, bool coalesce)
      : registry_(registry),
        cache_(cache),
        metrics_(metrics),
        planner_(planner),
        model_(model),
        coalesce_(coalesce) {}

  /// Answer every query request in `reqs` (all must be query-plane ops).
  /// Outcomes align with `reqs`; every request gets exactly one outcome.
  std::vector<BatchOutcome> run(std::span<const Request> reqs);

 private:
  void dispatch_group(std::vector<detail::BatchMember>& ms);
  void run_explain(const Request& req, BatchOutcome& out);

  Registry& registry_;
  ShardedLruCache& cache_;
  ServiceMetrics& metrics_;
  const plan::Planner& planner_;
  pram::Model model_;
  bool coalesce_;
};

}  // namespace pmonge::serve
