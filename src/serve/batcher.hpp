// Query batcher: turns one admitted batch of heterogeneous requests into
// the fewest engine runs that answer all of them.
//
// Coalescing rules (the tentpole's point -- see docs/serving.md):
//   * row queries against the same registered array and direction become
//     ONE batched row-search invocation (par/monge_rowminima.hpp's
//     *_rows entry points), so B queries cost one recursive decomposition
//     over B rows instead of B independent scans;
//   * staircase row queries group the same way through the row-selected
//     Theorem-2.3 view;
//   * tube point queries group by (d, e) pair and share per-slice row
//     searches (par/tube_maxima.hpp's *_points entry points);
//   * application queries (string_edit, largest_rect, empty_rect,
//     polygon_neighbors) group by op and fan out as parallel branches of
//     one Machine.
// All groups of a batch are then pushed into the exec engine as ONE
// submission (exec::parallel_jobs).
//
// Correctness contract: outcome[i] depends only on request i -- never on
// what else shared its batch -- so responses are bit-identical whether
// coalescing is on or off.  Per-request failures (bad fields, unknown
// arrays) are per-request errors; a group-level algorithm failure marks
// only that group's members, never its batch siblings.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pram/machine.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace pmonge::serve {

struct BatchOutcome {
  bool ok = false;
  Json result;        // valid when ok
  std::string error;  // valid when !ok
  bool cache_hit = false;
};

class Batcher {
 public:
  Batcher(Registry& registry, ShardedLruCache& cache, ServiceMetrics& metrics,
          pram::Model model, bool coalesce)
      : registry_(registry),
        cache_(cache),
        metrics_(metrics),
        model_(model),
        coalesce_(coalesce) {}

  /// Answer every query request in `reqs` (all must be query-plane ops).
  /// Outcomes align with `reqs`; every request gets exactly one outcome.
  std::vector<BatchOutcome> run(std::span<const Request> reqs);

 private:
  Registry& registry_;
  ShardedLruCache& cache_;
  ServiceMetrics& metrics_;
  pram::Model model_;
  bool coalesce_;
};

}  // namespace pmonge::serve
