// Query batcher: turns one admitted batch of heterogeneous requests into
// the fewest engine runs that answer all of them.
//
// Coalescing rules (the tentpole's point -- see docs/serving.md):
//   * row queries against the same registered array and direction become
//     ONE batched row-search invocation (par/monge_rowminima.hpp's
//     *_rows entry points), so B queries cost one recursive decomposition
//     over B rows instead of B independent scans;
//   * staircase row queries group the same way through the row-selected
//     Theorem-2.3 view;
//   * tube point queries group by (d, e) pair and share per-slice row
//     searches (par/tube_maxima.hpp's *_points entry points);
//   * application queries (string_edit, largest_rect, empty_rect,
//     polygon_neighbors) group by op and fan out as parallel branches of
//     one Machine.
// All groups of a batch are then pushed into the exec engine as ONE
// submission (exec::parallel_jobs).
//
// Planning: each group consults the execution planner (src/plan) for the
// cheapest variant -- a brute scan of exactly the queried cells, the
// sequential SMAWK-family solver, or the parallel kernel (with the
// plan's grain hint).  All variants return the leftmost optimum, so the
// chosen algorithm is invisible in the response bytes; a disabled
// planner reproduces the old fixed parallel dispatch exactly.
//
// Correctness contract: outcome[i] depends only on request i -- never on
// what else shared its batch, which profile is loaded, or what the plan
// cache holds -- so responses are bit-identical whether coalescing or
// planning is on or off.  Per-request failures (bad fields, unknown
// arrays) are per-request errors; a group-level algorithm failure marks
// only that group's members, never its batch siblings.
//
// The `explain` op ({"op":"explain","query":{...}}) answers with the
// inner query's plan, its predicted cost, the measured wall time of one
// uncached run, and the inner outcome.  Like `stats` it is
// observability output: never cached, bytes may vary run to run.
//
// Resilience (docs/robustness.md): a group whose kernel raises a
// fault::InjectedFault -- the one exception class the stack treats as
// transient -- is retried with exponential backoff, bounded by
// max_retries and by the tightest member deadline (plus the optional
// per-op timeout).  Repeated failures open a circuit breaker that runs
// the next `breaker_cooldown` groups degraded: sequential-SMAWK plans
// under a SerialScope, which never touch the pool (so pool-side
// injections cannot reach them) and produce the same leftmost-optimum
// bytes as every other variant.  Exhausted retries answer a
// `fault_injected` error.  Since all variants are byte-identical,
// neither retries nor degradation can change a response.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "plan/planner.hpp"
#include "pram/machine.hpp"

namespace pmonge::index {
class IndexManager;
}
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace pmonge::serve {

struct BatchOutcome {
  bool ok = false;
  Json result;        // valid when ok
  std::string error;  // valid when !ok
  bool cache_hit = false;
};

/// Retry / timeout / circuit-breaker knobs (ServiceOptions embeds one).
struct ResilienceOptions {
  std::size_t max_retries = 3;       // retry attempts per group
  std::int64_t op_timeout_ms = -1;   // per-group execution budget; -1 none
  std::size_t breaker_threshold = 5; // consecutive failures that open it
  std::size_t breaker_cooldown = 32; // groups run degraded while open
};

/// Live resilience counters (stats `resilience` section).
struct ResilienceSnapshot {
  std::uint64_t retries = 0;         // group-level retry attempts
  std::uint64_t batch_retries = 0;   // batch-dispatch resubmissions
  std::uint64_t degraded_groups = 0; // groups answered degraded
  std::uint64_t breaker_opens = 0;
  std::uint64_t fault_errors = 0;    // groups answered fault_injected
  bool breaker_open = false;
};

namespace detail {
/// A request slot inside one coalesced group.
struct BatchMember {
  const Request* req;
  BatchOutcome* out;
  ServeClock::time_point deadline = kNoDeadline;
};
}  // namespace detail

/// What `req` would touch, in cost-model units (batch = 1): operand
/// dimensions resolved through the registry where the op references a
/// registered array.  Unknown arrays / malformed fields yield a zero
/// shape (predicts ~nothing; the query itself then fails normally).
/// Shared by admission control and the explain op.
plan::QueryShape query_shape(const Request& req, Registry& reg);

class Batcher {
 public:
  Batcher(Registry& registry, ShardedLruCache& cache, ServiceMetrics& metrics,
          const plan::Planner& planner, index::IndexManager& indexes,
          pram::Model model, bool coalesce, ResilienceOptions resilience = {})
      : registry_(registry),
        cache_(cache),
        metrics_(metrics),
        planner_(planner),
        indexes_(indexes),
        model_(model),
        coalesce_(coalesce),
        res_(resilience) {}

  /// Answer every query request in `reqs` (all must be query-plane ops).
  /// Outcomes align with `reqs`; every request gets exactly one outcome.
  /// `deadlines` (absolute, kNoDeadline sentinel), when non-empty, aligns
  /// with `reqs` and bounds that request's retry budget.
  std::vector<BatchOutcome> run(
      std::span<const Request> reqs,
      std::span<const ServeClock::time_point> deadlines = {});

  ResilienceSnapshot resilience() const;

 private:
  void dispatch_group(std::vector<detail::BatchMember>& ms);
  void dispatch_group_once(std::vector<detail::BatchMember>& ms,
                           bool degraded);
  plan::Plan plan_for(const plan::QueryShape& shape, bool degraded) const;
  void run_explain(const Request& req, BatchOutcome& out);
  bool breaker_open() const;
  void note_failure();
  void note_group_done(bool degraded);

  Registry& registry_;
  ShardedLruCache& cache_;
  ServiceMetrics& metrics_;
  const plan::Planner& planner_;
  index::IndexManager& indexes_;
  pram::Model model_;
  bool coalesce_;
  ResilienceOptions res_;

  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> batch_retries_{0};
  std::atomic<std::uint64_t> degraded_groups_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> fault_errors_{0};
  std::atomic<std::uint64_t> consecutive_failures_{0};
  // > 0: open, counts the degraded groups remaining before it re-closes.
  std::atomic<std::int64_t> breaker_budget_{0};
};

}  // namespace pmonge::serve
