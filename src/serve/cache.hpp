// Sharded LRU result cache for the query service.
//
// Keys are canonical query signatures "(op, array id, parameters)" --
// the canonical JSON dump of the request body minus transport fields --
// and values are canonical result payloads, so a cache hit reproduces a
// computed response byte for byte (the warm-vs-cold bit-identical
// guarantee of docs/serving.md).
//
// Sharding: the key hash picks one of `shards` independent LRU maps,
// each behind its own mutex, so concurrent producers rarely contend on
// one lock.  Eviction is per shard (capacity is split evenly), which
// bounds total residency at `capacity` entries while keeping eviction
// decisions lock-local.
//
// Tagged invalidation: entries inserted with put_tagged() carry the ids
// of the registered arrays their result depends on; invalidate_tag(id)
// drops every such entry.  Unregistering an array invalidates its tag,
// which closes the stale-read hole where a re-registered or removed id
// could still answer `ok` from cache.  Invalidation scans the shards --
// unregister is rare and the cache is small, so an O(entries) sweep
// beats maintaining a reverse index on the hot put path.
//
// Poisoning detection: every entry stores the FNV-1a checksum of its
// value at insertion; get() re-verifies before answering.  A mismatch
// (memory corruption, or the serve.cache_poison fault site in a chaos
// run) drops the entry and reports a miss, so a poisoned cache degrades
// to recomputation -- the response bytes stay correct -- and the
// `poisoned` counter records the detection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"

namespace pmonge::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidate_tag
  std::uint64_t poisoned = 0;       // checksum mismatches detected on get
  std::size_t entries = 0;
};

/// FNV-1a over the cached value bytes: the poisoning detector.  The same
/// hash keys the shard index, so the streaming codec can compute a
/// lookup hash incrementally while emitting the canonical signature.
inline std::uint64_t cache_checksum(std::string_view v) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : v) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Transparent (heterogeneous-lookup) FNV-1a hasher: std::string keys and
/// std::string_view probes hash identically, so lookups never materialize
/// a std::string key.
struct CacheKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view v) const {
    return static_cast<std::size_t>(cache_checksum(v));
  }
};

struct CacheKeyEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

class ShardedLruCache {
 public:
  /// A cache holding at most ~`capacity` entries across `shards` shards
  /// (each shard holds at most ceil(capacity / shards)).  capacity == 0
  /// disables the cache: get() always misses, put() is a no-op.
  ShardedLruCache(std::size_t capacity, std::size_t shards)
      : per_shard_(shards == 0 ? capacity
                               : (capacity + shards - 1) / std::max<std::size_t>(1, shards)) {
    const std::size_t n = std::max<std::size_t>(1, shards);
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  bool enabled() const { return per_shard_ > 0; }

  /// Look up `key`; a hit refreshes its recency.
  std::optional<std::string> get(const std::string& key) {
    if (!enabled()) return std::nullopt;
    Shard& sh = shard_of(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it == sh.index.end()) {
      ++sh.misses;
      return std::nullopt;
    }
    if (cache_checksum(it->second->value) != it->second->sum) {
      // Poisoned entry: never serve it.  Dropping it turns the hit into
      // a miss, so the caller recomputes and the response stays correct.
      sh.lru.erase(it->second);
      sh.index.erase(it);
      ++sh.poisoned;
      ++sh.misses;
      return std::nullopt;
    }
    ++sh.hits;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return it->second->value;
  }

  /// Hit-only probe for the zero-alloc fast path: on a hit, appends the
  /// cached value into `out` (caller-owned, warm capacity) and returns
  /// true.  On a miss it counts *nothing* -- the caller falls back to the
  /// slow path, whose get() records the miss, so counters stay single-
  /// counted.  Poisoned entries are dropped and counted exactly as get()
  /// does, then reported as a miss.
  bool get_hit(std::string_view key, std::string& out) {
    return get_hit(key, cache_checksum(key), out);
  }

  /// get_hit with the key's FNV-1a hash already in hand (the codec
  /// computes it while emitting the canonical signature).
  bool get_hit(std::string_view key, std::uint64_t key_hash,
               std::string& out) {
    if (!enabled()) return false;
    Shard& sh = *shards_[key_hash % shards_.size()];
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it == sh.index.end()) return false;
    if (cache_checksum(it->second->value) != it->second->sum) {
      sh.lru.erase(it->second);
      sh.index.erase(it);
      ++sh.poisoned;
      return false;
    }
    ++sh.hits;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    out += it->second->value;
    return true;
  }

  /// Insert or refresh `key`; evicts the shard's least-recently-used
  /// entry when the shard is at capacity.
  void put(const std::string& key, std::string value) {
    put_tagged(key, std::move(value), {});
  }

  /// put() plus dependency tags: the entry is dropped when any of its
  /// tags is invalidated.  The serve layer tags each result with the ids
  /// of the arrays it read.
  void put_tagged(const std::string& key, std::string value,
                  std::vector<std::uint64_t> tags) {
    if (!enabled()) return;
    // The checksum is taken over the *correct* bytes; the fault site
    // then corrupts the stored copy, so a later get() detects the
    // mismatch -- the detection path the chaos harness exercises.
    const std::uint64_t sum = cache_checksum(value);
    if (fault::armed() &&
        fault::should_fire(fault::Site::ServeCachePoison) && !value.empty()) {
      value[value.size() / 2] ^= 0x40;
    }
    Shard& sh = shard_of(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it != sh.index.end()) {
      it->second->value = std::move(value);
      it->second->tags = std::move(tags);
      it->second->sum = sum;
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      return;
    }
    sh.lru.push_front(Entry{key, std::move(value), std::move(tags), sum});
    sh.index.emplace(key, sh.lru.begin());
    ++sh.insertions;
    if (sh.lru.size() > per_shard_) {
      sh.index.erase(sh.lru.back().key);
      sh.lru.pop_back();
      ++sh.evictions;
    }
  }

  /// Drop every entry tagged with `tag`; returns the number dropped.
  std::size_t invalidate_tag(std::uint64_t tag) {
    std::size_t dropped = 0;
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      std::lock_guard<std::mutex> lock(sh.mu);
      for (auto it = sh.lru.begin(); it != sh.lru.end();) {
        const bool hit = std::find(it->tags.begin(), it->tags.end(), tag) !=
                         it->tags.end();
        if (hit) {
          sh.index.erase(it->key);
          it = sh.lru.erase(it);
          ++sh.invalidations;
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    return dropped;
  }

  void clear() {
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      sh->lru.clear();
      sh->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      n += sh->lru.size();
    }
    return n;
  }

  CacheStats stats() const {
    CacheStats s;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      s.hits += sh->hits;
      s.misses += sh->misses;
      s.insertions += sh->insertions;
      s.evictions += sh->evictions;
      s.invalidations += sh->invalidations;
      s.poisoned += sh->poisoned;
      s.entries += sh->lru.size();
    }
    return s;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    std::vector<std::uint64_t> tags;  // array ids the value depends on
    std::uint64_t sum = 0;            // cache_checksum(value) at insertion
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = newest
    std::unordered_map<std::string, std::list<Entry>::iterator, CacheKeyHash,
                       CacheKeyEq>
        index;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0,
                  invalidations = 0, poisoned = 0;
  };

  Shard& shard_of(std::string_view key) {
    return *shards_[CacheKeyHash{}(key) % shards_.size()];
  }

  std::size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pmonge::serve
