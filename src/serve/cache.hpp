// Sharded LRU result cache for the query service.
//
// Keys are canonical query signatures "(op, array id, parameters)" --
// the canonical JSON dump of the request body minus transport fields --
// and values are canonical result payloads, so a cache hit reproduces a
// computed response byte for byte (the warm-vs-cold bit-identical
// guarantee of docs/serving.md).
//
// Sharding: the key hash picks one of `shards` independent LRU maps,
// each behind its own mutex, so concurrent producers rarely contend on
// one lock.  Eviction is per shard (capacity is split evenly), which
// bounds total residency at `capacity` entries while keeping eviction
// decisions lock-local.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pmonge::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

class ShardedLruCache {
 public:
  /// A cache holding at most ~`capacity` entries across `shards` shards
  /// (each shard holds at most ceil(capacity / shards)).  capacity == 0
  /// disables the cache: get() always misses, put() is a no-op.
  ShardedLruCache(std::size_t capacity, std::size_t shards)
      : per_shard_(shards == 0 ? capacity
                               : (capacity + shards - 1) / std::max<std::size_t>(1, shards)) {
    const std::size_t n = std::max<std::size_t>(1, shards);
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  bool enabled() const { return per_shard_ > 0; }

  /// Look up `key`; a hit refreshes its recency.
  std::optional<std::string> get(const std::string& key) {
    if (!enabled()) return std::nullopt;
    Shard& sh = shard_of(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it == sh.index.end()) {
      ++sh.misses;
      return std::nullopt;
    }
    ++sh.hits;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return it->second->second;
  }

  /// Insert or refresh `key`; evicts the shard's least-recently-used
  /// entry when the shard is at capacity.
  void put(const std::string& key, std::string value) {
    if (!enabled()) return;
    Shard& sh = shard_of(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it != sh.index.end()) {
      it->second->second = std::move(value);
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      return;
    }
    sh.lru.emplace_front(key, std::move(value));
    sh.index.emplace(key, sh.lru.begin());
    ++sh.insertions;
    if (sh.lru.size() > per_shard_) {
      sh.index.erase(sh.lru.back().first);
      sh.lru.pop_back();
      ++sh.evictions;
    }
  }

  void clear() {
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      sh->lru.clear();
      sh->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      n += sh->lru.size();
    }
    return n;
  }

  CacheStats stats() const {
    CacheStats s;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      s.hits += sh->hits;
      s.misses += sh->misses;
      s.insertions += sh->insertions;
      s.evictions += sh->evictions;
      s.entries += sh->lru.size();
    }
    return s;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<std::string, std::string>> lru;  // front = newest
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& shard_of(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pmonge::serve
