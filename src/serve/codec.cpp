#include "serve/codec.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "support/fmt.hpp"

namespace pmonge::serve {

namespace {

// Nesting beyond this refuses to the slow path; real query bodies are
// two or three levels deep.
constexpr int kMaxDepth = 64;

bool is_dig(char c) { return c >= '0' && c <= '9'; }

}  // namespace

void RequestCodec::skip_ws() {
  while (pos_ < s_.size() &&
         (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
          s_[pos_] == '\r')) {
    ++pos_;
  }
}

// Unescape + re-escape a string value exactly as parse-then-dump would:
// the source escapes may be non-canonical ("A", "\/"), so the value
// is first unescaped into strbuf_ (mirroring Parser::parse_string,
// including surrogate pairs) and then emitted through the same escaper
// dump() uses.  Any lexical problem refuses.
bool RequestCodec::canon_string() {
  if (pos_ >= s_.size() || s_[pos_] != '"') return false;
  const std::size_t raw_start = ++pos_;
  strbuf_.clear();
  bool escaped = false;
  while (true) {
    if (pos_ >= s_.size()) return false;  // unterminated
    const char c = s_[pos_++];
    if (c == '"') break;
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (c != '\\') {
      strbuf_.push_back(c);
      continue;
    }
    escaped = true;
    if (pos_ >= s_.size()) return false;
    const char e = s_[pos_++];
    switch (e) {
      case '"': strbuf_.push_back('"'); break;
      case '\\': strbuf_.push_back('\\'); break;
      case '/': strbuf_.push_back('/'); break;
      case 'b': strbuf_.push_back('\b'); break;
      case 'f': strbuf_.push_back('\f'); break;
      case 'n': strbuf_.push_back('\n'); break;
      case 'r': strbuf_.push_back('\r'); break;
      case 't': strbuf_.push_back('\t'); break;
      case 'u': {
        const auto hex4 = [&]() -> int {
          if (pos_ + 4 > s_.size()) return -1;
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return -1;
          }
          return static_cast<int>(v);
        };
        int cp = hex4();
        if (cp < 0) return false;
        unsigned u = static_cast<unsigned>(cp);
        if (u >= 0xD800 && u <= 0xDBFF) {  // surrogate pair
          if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u')
            return false;
          pos_ += 2;
          const int lo = hex4();
          if (lo < 0 || lo < 0xDC00 || lo > 0xDFFF) return false;
          u = 0x10000 + ((u - 0xD800) << 10) +
              (static_cast<unsigned>(lo) - 0xDC00);
        }
        if (u < 0x80) {
          strbuf_.push_back(static_cast<char>(u));
        } else if (u < 0x800) {
          strbuf_.push_back(static_cast<char>(0xC0 | (u >> 6)));
          strbuf_.push_back(static_cast<char>(0x80 | (u & 0x3F)));
        } else if (u < 0x10000) {
          strbuf_.push_back(static_cast<char>(0xE0 | (u >> 12)));
          strbuf_.push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
          strbuf_.push_back(static_cast<char>(0x80 | (u & 0x3F)));
        } else {
          strbuf_.push_back(static_cast<char>(0xF0 | (u >> 18)));
          strbuf_.push_back(static_cast<char>(0x80 | ((u >> 12) & 0x3F)));
          strbuf_.push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
          strbuf_.push_back(static_cast<char>(0x80 | (u & 0x3F)));
        }
        break;
      }
      default:
        return false;
    }
  }
  last_str_raw_ = s_.substr(raw_start, pos_ - 1 - raw_start);
  last_str_escaped_ = escaped;
  last_kind_ = Kind::Str;
  append_json_string(strbuf_, canon_);
  return true;
}

// Replicates Parser::parse_number exactly: token scan, integral tokens
// through strtoll (falling through to strtod on overflow), doubles via
// %.17g, non-finite as null.
bool RequestCodec::canon_number() {
  const std::size_t start = pos_;
  if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
  while (pos_ < s_.size() && is_dig(s_[pos_])) ++pos_;
  bool integral = true;
  if (pos_ < s_.size() && s_[pos_] == '.') {
    integral = false;
    ++pos_;
    while (pos_ < s_.size() && is_dig(s_[pos_])) ++pos_;
  }
  if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
    integral = false;
    ++pos_;
    if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
    while (pos_ < s_.size() && is_dig(s_[pos_])) ++pos_;
  }
  if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) return false;
  strbuf_.assign(s_.data() + start, pos_ - start);
  if (integral) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(strbuf_.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      support::append_int(canon_, static_cast<std::int64_t>(v));
      last_kind_ = Kind::Int;
      return true;
    }
  }
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(strbuf_.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!std::isfinite(d)) {
    canon_ += "null";
  } else {
    support::append_double(canon_, d);
  }
  last_kind_ = Kind::Other;
  return true;
}

bool RequestCodec::canon_array() {
  ++pos_;  // '['
  canon_.push_back('[');
  skip_ws();
  if (pos_ < s_.size() && s_[pos_] == ']') {
    ++pos_;
    canon_.push_back(']');
    return true;
  }
  bool first = true;
  while (true) {
    if (!first) canon_.push_back(',');
    first = false;
    if (!canon_value()) return false;
    skip_ws();
    if (pos_ >= s_.size()) return false;
    if (s_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (s_[pos_] == ']') {
      ++pos_;
      canon_.push_back(']');
      return true;
    }
    return false;
  }
}

// Emit an object's members, tracking whether the source order is already
// strictly sorted; when it is not (or keys repeat), rebuild_object sorts
// the emitted pairs and keeps the last duplicate, matching the std::map
// parse tree (sorted iteration, operator[] last-wins).
bool RequestCodec::canon_object() {
  ++pos_;  // '{'
  const std::size_t base = members_.size();
  const std::size_t body_start = canon_.size() + 1;
  canon_.push_back('{');
  skip_ws();
  if (pos_ < s_.size() && s_[pos_] == '}') {
    ++pos_;
    canon_.push_back('}');
    return true;
  }
  bool sorted = true;
  while (true) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const std::size_t key_src = ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      // An escaped or control-bearing key refuses: escaped-form byte
      // order is not unescaped-key order, so sorting would diverge.
      if (c == '\\' || c < 0x20) return false;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    const std::string_view key = s_.substr(key_src, pos_ - key_src);
    ++pos_;  // closing quote
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != ':') return false;
    ++pos_;
    if (members_.size() > base) canon_.push_back(',');
    const std::size_t pair_off = canon_.size();
    canon_.push_back('"');
    canon_.append(key);
    canon_ += "\":";
    if (!canon_value()) return false;
    Member m;
    m.key_off = static_cast<std::uint32_t>(pair_off + 1);
    m.key_len = static_cast<std::uint32_t>(key.size());
    m.pair_off = static_cast<std::uint32_t>(pair_off);
    m.pair_len = static_cast<std::uint32_t>(canon_.size() - pair_off);
    if (members_.size() > base && !(key_of(members_.back()) < key_of(m))) {
      sorted = false;
    }
    members_.push_back(m);
    skip_ws();
    if (pos_ >= s_.size()) return false;
    if (s_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (s_[pos_] == '}') {
      ++pos_;
      break;
    }
    return false;
  }
  if (!sorted) rebuild_object(base, body_start);
  canon_.push_back('}');
  members_.resize(base);
  return true;
}

void RequestCodec::rebuild_object(std::size_t base, std::size_t body_start) {
  // Stable insertion sort: request objects hold a handful of members, and
  // std::stable_sort would heap-allocate its merge buffer on every call.
  for (std::size_t i = base + 1; i < members_.size(); ++i) {
    const Member m = members_[i];
    std::size_t j = i;
    while (j > base && key_of(m) < key_of(members_[j - 1])) {
      members_[j] = members_[j - 1];
      --j;
    }
    members_[j] = m;
  }
  reorder_.clear();
  for (std::size_t i = base; i < members_.size(); ++i) {
    // Duplicate keys: the stable sort kept source order within a run, so
    // skipping all but the run's last entry is std::map last-wins.
    if (i + 1 < members_.size() &&
        key_of(members_[i + 1]) == key_of(members_[i])) {
      continue;
    }
    if (!reorder_.empty()) reorder_.push_back(',');
    reorder_.append(canon_, members_[i].pair_off, members_[i].pair_len);
  }
  canon_.resize(body_start);
  canon_.append(reorder_);
}

bool RequestCodec::canon_value() {
  if (++depth_ > kMaxDepth) return false;
  skip_ws();
  if (pos_ >= s_.size()) return false;
  bool ok = false;
  switch (s_[pos_]) {
    case 'n':
      ok = s_.substr(pos_, 4) == "null";
      if (ok) {
        pos_ += 4;
        canon_ += "null";
        last_kind_ = Kind::Other;
      }
      break;
    case 't':
      ok = s_.substr(pos_, 4) == "true";
      if (ok) {
        pos_ += 4;
        canon_ += "true";
        last_kind_ = Kind::Other;
      }
      break;
    case 'f':
      ok = s_.substr(pos_, 5) == "false";
      if (ok) {
        pos_ += 5;
        canon_ += "false";
        last_kind_ = Kind::Other;
      }
      break;
    case '"':
      ok = canon_string();
      break;
    case '[':
      ok = canon_array();
      last_kind_ = Kind::Other;
      break;
    case '{':
      ok = canon_object();
      last_kind_ = Kind::Other;
      break;
    default:
      ok = canon_number();
      break;
  }
  --depth_;
  return ok;
}

// The "id" transport field: must be a plain int64 (anything else makes
// the slow path's as_int() throw, so refuse and let it).  Not emitted --
// the signature strips it.
bool RequestCodec::parse_id_value() {
  skip_ws();
  const std::size_t start = pos_;
  if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
  const std::size_t digits = pos_;
  while (pos_ < s_.size() && is_dig(s_[pos_])) ++pos_;
  if (pos_ == digits) return false;
  if (pos_ < s_.size() &&
      (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
    return false;
  }
  strbuf_.assign(s_.data() + start, pos_ - start);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(strbuf_.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  id_value_ = static_cast<std::int64_t>(v);
  return true;
}

bool RequestCodec::canonicalize_query(std::string_view line, FastQuery& out) {
  s_ = line;
  pos_ = 0;
  depth_ = 0;
  canon_.clear();
  members_.clear();
  bool have_op = false;
  bool have_id = false;
  id_value_ = kNoId;

  skip_ws();
  if (pos_ >= s_.size() || s_[pos_] != '{') return false;
  ++pos_;
  canon_.push_back('{');
  skip_ws();
  if (pos_ < s_.size() && s_[pos_] == '}') return false;  // no "op"

  // Top-level loop: like canon_object, plus transport-field handling and
  // op extraction.
  bool sorted = true;
  while (true) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const std::size_t key_src = ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '\\' || c < 0x20) return false;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    const std::string_view key = s_.substr(key_src, pos_ - key_src);
    ++pos_;
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != ':') return false;
    ++pos_;

    // deadline_ms / trace_id carry admission semantics of their own
    // (deadline checks, span minting) -- those requests take the slow
    // path wholesale.
    if (key == "deadline_ms" || key == "trace_id") return false;

    if (key == "id") {
      if (!parse_id_value()) return false;
      have_id = true;  // duplicates: last parse wins, like operator[]
    } else {
      if (!members_.empty()) canon_.push_back(',');
      const std::size_t pair_off = canon_.size();
      canon_.push_back('"');
      canon_.append(key);
      canon_ += "\":";
      if (!canon_value()) return false;
      if (key == "op") {
        if (last_kind_ != Kind::Str || last_str_escaped_) return false;
        opbuf_.assign(last_str_raw_);
        have_op = true;
      }
      Member m;
      m.key_off = static_cast<std::uint32_t>(pair_off + 1);
      m.key_len = static_cast<std::uint32_t>(key.size());
      m.pair_off = static_cast<std::uint32_t>(pair_off);
      m.pair_len = static_cast<std::uint32_t>(canon_.size() - pair_off);
      if (!members_.empty() && !(key_of(members_.back()) < key_of(m))) {
        sorted = false;
      }
      members_.push_back(m);
    }
    skip_ws();
    if (pos_ >= s_.size()) return false;
    if (s_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (s_[pos_] == '}') {
      ++pos_;
      break;
    }
    return false;
  }
  skip_ws();
  if (pos_ != s_.size()) return false;  // trailing bytes: parse error
  if (!have_op) return false;
  if (!sorted) rebuild_object(0, 1);
  canon_.push_back('}');
  members_.clear();

  out.signature = canon_;
  out.op = opbuf_;
  out.id = have_id ? id_value_ : kNoId;
  out.hash = cache_checksum(out.signature);
  return true;
}

RequestCodec& thread_codec() {
  thread_local RequestCodec codec;
  return codec;
}

}  // namespace pmonge::serve
