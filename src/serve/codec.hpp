// Streaming request canonicalizer: the zero-allocation front half of the
// serve fast path.
//
// The slow path turns a request line into its cache signature by parsing
// a DOM (`Json::parse`), copying the body object, erasing the transport
// fields and re-dumping -- a dozen-plus heap allocations per request.
// For the cached-hit case all of that work exists only to recover the
// canonical bytes the cache is keyed on, so this codec computes those
// bytes directly: one pass over the line, emitting the canonical form
// (sorted keys, no whitespace, canonical numbers and string escapes)
// into reusable per-thread buffers, skipping the transport fields as it
// goes.  A cache probe on the result needs no Json value, no Request,
// and no per-request allocation once the thread's buffers are warm.
//
// Correctness contract: for every line the codec ACCEPTS, the emitted
// signature is byte-identical to `parse_request(line).signature`, and the
// extracted op/id match the slow path's.  For every line it is unsure
// about -- malformed input (the slow path's error text embeds byte
// offsets), escaped object keys (escaped-form ordering diverges from the
// parse tree's unescaped-key ordering), transport fields with their own
// admission semantics (`deadline_ms`, `trace_id`), nesting deeper than
// the guard -- it REFUSES, and the caller falls back to the slow path.
// Refusal is always correct; acceptance is what tests/test_codec.cpp
// fuzzes against the slow path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace pmonge::serve {

/// A successfully canonicalized query request.  The views point into the
/// codec's reusable buffers: valid until the next canonicalize_query()
/// call on the same codec.
struct FastQuery {
  std::string_view signature;  // canonical body minus transport fields
  std::string_view op;         // unescaped op name
  std::int64_t id = kNoId;     // echoed id (kNoId when absent)
  std::uint64_t hash = 0;      // FNV-1a of signature (the cache key hash)
};

class RequestCodec {
 public:
  /// One-pass canonicalization of a request line.  True: `out` is filled
  /// and the line is a well-formed query request with no deadline_ms /
  /// trace_id.  False: fall back to the slow path (which may still
  /// answer it fine -- refusal is conservative, see header comment).
  bool canonicalize_query(std::string_view line, FastQuery& out);

  /// Reusable response-assembly buffer for this codec's thread.
  std::string& response_buffer() { return respbuf_; }

 private:
  enum class Kind { Other, Int, Str };

  bool canon_value();
  bool canon_object();
  bool canon_array();
  bool canon_string();
  bool canon_number();
  bool parse_id_value();
  void skip_ws();
  void rebuild_object(std::size_t base, std::size_t body_start);

  struct Member {
    std::uint32_t key_off, key_len;    // key bytes within canon_
    std::uint32_t pair_off, pair_len;  // "key":value bytes within canon_
  };

  std::string_view key_of(const Member& m) const {
    return std::string_view(canon_).substr(m.key_off, m.key_len);
  }

  // Parse state (per canonicalize_query call).
  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;

  // Last value kind, for top-level op/id extraction.
  Kind last_kind_ = Kind::Other;
  bool last_str_escaped_ = false;
  std::string_view last_str_raw_;  // source bytes of the last string value
  std::int64_t id_value_ = kNoId;

  // Reusable buffers (capacity persists across requests; the steady
  // state allocates nothing).
  std::string canon_;             // the canonical signature being emitted
  std::string strbuf_;            // number tokens / unescaped strings
  std::string reorder_;           // object-member reorder scratch
  std::string opbuf_;             // extracted op name
  std::string respbuf_;           // response assembly (service fast path)
  std::vector<Member> members_;   // flat per-depth member stack
};

/// The calling thread's codec (created on first use).
RequestCodec& thread_codec();

}  // namespace pmonge::serve
