#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/fmt.hpp"

namespace pmonge::serve {

namespace {

/// Recursive-descent parser over a string_view with a position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return Json(nullptr);
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
      if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    const std::string tok(s_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") fail("bad number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Json(d);
  }

  Json parse_array() {
    expect('[');
    Json::Arr out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(out));
    }
  }

  Json parse_object() {
    expect('{');
    Json::Obj out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(out));
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void dump_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::Null:
      out += "null";
      break;
    case Json::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Type::Int:
      support::append_int(out, v.as_int());
      break;
    case Json::Type::Double: {
      const double d = v.as_double();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan; protocol values are finite
        break;
      }
      support::append_double(out, d);
      break;
    }
    case Json::Type::String:
      dump_string(v.as_string(), out);
      break;
    case Json::Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& e : v.arr()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.obj()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(e, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

void Json::dump_to(std::string& out) const { dump_value(*this, out); }

void append_json_string(std::string_view s, std::string& out) {
  dump_string(s, out);
}

}  // namespace pmonge::serve
