// Minimal JSON value / parser / serializer for the serve layer's
// newline-delimited protocol.  No external dependency: the container
// toolchain ships none, and the subset the protocol needs (null, bool,
// 64-bit integers, doubles, strings, arrays, objects) is small.
//
// Serialization is *canonical*: object keys emit in sorted order (the
// storage is a std::map), no insignificant whitespace, integers as
// decimal int64, doubles via "%.17g" (shortest round-trippable form is
// not required -- only determinism is, and 17 significant digits make
// dump(parse(dump(x))) == dump(x) hold exactly).  Canonical bytes are
// what the serve cache keys on and what the bit-identical-response
// guarantee is stated over.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace pmonge::serve {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };
  using Arr = std::vector<Json>;
  using Obj = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  template <class I>
    requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
  Json(I n) : v_(static_cast<std::int64_t>(n)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Arr a) : v_(std::move(a)) {}
  Json(Obj o) : v_(std::move(o)) {}

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_number() const {
    return type() == Type::Int || type() == Type::Double;
  }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const { return get<std::int64_t>("integer"); }
  /// Numeric accessor: accepts Int or Double.
  double as_double() const {
    if (type() == Type::Int) {
      return static_cast<double>(std::get<std::int64_t>(v_));
    }
    return get<double>("number");
  }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Arr& arr() const { return get<Arr>("array"); }
  const Obj& obj() const { return get<Obj>("object"); }
  Arr& arr() { return std::get<Arr>(v_); }
  Obj& obj() { return std::get<Obj>(v_); }

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const {
    if (type() != Type::Object) return nullptr;
    const auto& o = std::get<Obj>(v_);
    const auto it = o.find(key);
    return it == o.end() ? nullptr : &it->second;
  }
  /// Object member lookup; throws JsonError naming the key when absent.
  const Json& at(const std::string& key) const {
    const Json* p = find(key);
    if (p == nullptr)
      throw JsonError("bad_request: missing field \"" + key + "\"");
    return *p;
  }

  /// Parse one JSON document; trailing non-whitespace rejects.
  static Json parse(std::string_view text);

  /// Canonical serialization (see header comment).
  std::string dump() const;

  /// Canonical serialization appended to a caller-owned buffer; the
  /// allocation-free form of dump() for pooled response assembly.
  void dump_to(std::string& out) const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  template <class T>
  const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw JsonError(std::string("bad_request: expected ") + what);
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Arr,
               Obj>
      v_;
};

/// Append `s` as a canonical JSON string literal (quotes + escapes),
/// byte-identical to how dump() emits strings and object keys.  Shared
/// with the streaming request codec (serve/codec.cpp).
void append_json_string(std::string_view s, std::string& out);

}  // namespace pmonge::serve
