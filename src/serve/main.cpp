// pmonge-serve: newline-delimited JSON service front-end over
// serve::Service.  One request object per stdin line, one response object
// per stdout line, in request order (the admission queue is FIFO, so
// in-order awaiting never starves).  EOF on stdin drains in-flight work
// and exits.
//
//   $ printf '%s\n%s\n' <register_random request> <rowmin request> \
//       | pmonge-serve
// (see docs/serving.md and examples/serve_client.cpp for full requests)
//
// Flags (see docs/serving.md): --queue N --batch N --cache N --shards N
// --no-batch --no-cache --model NAME --deadline-ms N --max-cells N
// --profile PATH --no-plan --calibrate PATH (PMONGE_PROFILE is the env
// equivalent of --profile; the flag wins when both are set) plus the
// resilience knobs --retries --op-timeout-ms --breaker-threshold
// --breaker-cooldown (docs/robustness.md)
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "plan/calibrate.hpp"
#include "pram/machine.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"

namespace {

pmonge::pram::Model parse_model(const std::string& name) {
  using pmonge::pram::Model;
  if (name == "crew") return Model::CREW;
  if (name == "crcw" || name == "crcw_common") return Model::CRCW_COMMON;
  if (name == "crcw_arbitrary") return Model::CRCW_ARBITRARY;
  if (name == "crcw_priority") return Model::CRCW_PRIORITY;
  std::fprintf(stderr,
               "pmonge-serve: unknown model \"%s\" (want crew, crcw, "
               "crcw_arbitrary, crcw_priority)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::puts(
        "pmonge-serve: NDJSON query service (one request per line on stdin,\n"
        "one response per line on stdout; see docs/serving.md)\n"
        "  --queue N        admission queue capacity (default 1024)\n"
        "  --batch N        max requests coalesced per batch (default 64)\n"
        "  --cache N        result cache capacity, 0 disables (default 4096)\n"
        "  --shards N       cache shard count (default 8)\n"
        "  --no-batch       disable coalescing (batch-of-one per request)\n"
        "  --no-cache       disable the result cache\n"
        "  --model NAME     crew | crcw | crcw_arbitrary | crcw_priority\n"
        "                   (default crcw)\n"
        "  --deadline-ms N  default per-request deadline (default: none)\n"
        "  --max-cells N    register_* size guard (default 2^24)\n"
        "  --profile PATH   load a calibrated cost profile (JSON); the\n"
        "                   PMONGE_PROFILE env var is equivalent, the flag\n"
        "                   wins; default: the deterministic built-in\n"
        "  --no-plan        disable the execution planner (fixed parallel\n"
        "                   dispatch, no deadline_unmeetable admission)\n"
        "  --calibrate PATH run the calibration microbenchmarks, write the\n"
        "                   fitted profile to PATH, and exit\n"
        "  --trace-out PATH enable span tracing (as if PMONGE_TRACE=1) and\n"
        "                   write the Chrome trace-event JSON of the whole\n"
        "                   run to PATH at exit (load in ui.perfetto.dev)\n"
        "  --retries N      group retry attempts on injected faults\n"
        "                   (default 3)\n"
        "  --op-timeout-ms N  per-group execution budget, -1 = none\n"
        "                   (default -1)\n"
        "  --breaker-threshold N  consecutive failures that open the\n"
        "                   circuit breaker (default 5)\n"
        "  --breaker-cooldown N   groups run degraded (sequential) while\n"
        "                   the breaker is open (default 32)\n"
        "Fault injection (docs/robustness.md): PMONGE_FAULT_RATE (basis\n"
        "points; unset or 0 = off), PMONGE_FAULT_SEED, PMONGE_FAULT_SITES.");
    return 0;
  }

  // Touch the engine knobs eagerly: the pool initializes lazily, so a
  // malformed PMONGE_THREADS / PMONGE_GRAIN / PMONGE_TRACE would
  // otherwise surface only on the first query large enough to fan out --
  // or never, for a service that happens to stay serial.  Fail loudly
  // before serving.
  try {
    pmonge::exec::num_threads();
    pmonge::exec::default_grain();
    pmonge::obs::enabled();
    pmonge::fault::armed();  // PMONGE_FAULT_* typos fail here, not mid-run
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
    return 2;
  }

  const std::string trace_out = cli.get("trace-out", "");
  if (!trace_out.empty()) pmonge::obs::set_enabled(true);

  if (cli.has("calibrate")) {
    const std::string path = cli.get("calibrate", "");
    if (path.empty()) {
      std::fprintf(stderr, "pmonge-serve: --calibrate needs a path\n");
      return 2;
    }
    try {
      const auto prof = pmonge::plan::calibrate();
      pmonge::plan::save_profile(prof, path);
      std::fprintf(stderr, "pmonge-serve: wrote profile \"%s\" (%s)\n",
                   path.c_str(), prof.id.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  pmonge::serve::ServiceOptions opts;
  opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 1024));
  opts.batch_max = static_cast<std::size_t>(cli.get_int("batch", 64));
  opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 4096));
  opts.cache_shards = static_cast<std::size_t>(cli.get_int("shards", 8));
  if (cli.has("no-batch")) opts.coalesce = false;
  if (cli.has("no-cache")) opts.cache_capacity = 0;
  opts.model = parse_model(cli.get("model", "crcw"));
  opts.default_deadline_ms = cli.get_int("deadline-ms", -1);
  opts.max_register_cells =
      static_cast<std::size_t>(cli.get_int("max-cells", std::int64_t{1} << 24));
  if (cli.has("no-plan")) opts.planner = false;
  opts.resilience.max_retries =
      static_cast<std::size_t>(cli.get_int("retries", 3));
  opts.resilience.op_timeout_ms = cli.get_int("op-timeout-ms", -1);
  opts.resilience.breaker_threshold =
      static_cast<std::size_t>(cli.get_int("breaker-threshold", 5));
  opts.resilience.breaker_cooldown =
      static_cast<std::size_t>(cli.get_int("breaker-cooldown", 32));

  // Cost profile: --profile beats PMONGE_PROFILE beats the built-in.
  // A profile that cannot be loaded is a hard startup error (exit 2
  // quoting the path), never a silent fallback.
  std::string profile_path = cli.get("profile", "");
  if (profile_path.empty()) {
    if (const char* env = std::getenv("PMONGE_PROFILE")) profile_path = env;
  }
  if (!profile_path.empty()) {
    try {
      opts.profile = pmonge::plan::load_profile(profile_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
      return 2;
    }
  }

  pmonge::serve::Service service(opts);

  // The reader thread submits lines as fast as stdin yields them (so
  // bursts actually coalesce); the main thread awaits and prints in
  // submission order.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<std::string>> pending;
  bool done = false;

  std::thread reader([&] {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto fut = service.submit(std::move(line));
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(std::move(fut));
      }
      cv.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
  });

  while (true) {
    std::future<std::string> fut;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done || !pending.empty(); });
      if (pending.empty()) break;
      fut = std::move(pending.front());
      pending.pop_front();
    }
    const std::string resp = fut.get();
    std::fwrite(resp.data(), 1, resp.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

  reader.join();

  if (!trace_out.empty()) {
    // Everything still buffered across every thread's ring, as one
    // Perfetto-loadable document.  A path that cannot be written is a
    // hard error: the user asked for the trace.
    const std::string doc =
        pmonge::obs::chrome_trace_json(pmonge::obs::collect()).dump();
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.flush();
    if (!out) {
      std::fprintf(stderr, "pmonge-serve: cannot write trace to \"%s\"\n",
                   trace_out.c_str());
      return 2;
    }
  }
  return 0;
}
