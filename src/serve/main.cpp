// pmonge-serve: newline-delimited JSON service front-end over
// serve::Service, in two transport modes:
//
//   stdin mode (default): one request object per stdin line, one
//   response object per stdout line, in request order (the admission
//   queue is FIFO, so in-order awaiting never starves).  EOF on stdin
//   drains in-flight work and exits.  The reader honors the shared
//   backpressure contract (rpc/backpressure.hpp): at most max_inflight
//   submitted-but-unanswered lines, so a fast pipe cannot grow the
//   pending window without bound.
//
//   --listen HOST:PORT: the same protocol over TCP (rpc/server.hpp) --
//   an epoll event loop multiplexes concurrent connections onto the one
//   service, with per-connection backpressure, --max-conns, idle
//   timeouts, and graceful drain on SIGTERM/SIGINT.  Response bytes are
//   identical to stdin mode.  PORT 0 binds an ephemeral port (printed
//   on stderr).
//
//   $ printf '%s\n%s\n' <register request> <rowmin request> | pmonge-serve
//   $ pmonge-serve --listen 127.0.0.1:7333
// (see docs/serving.md, docs/networking.md, examples/serve_client.cpp)
//
// Flags (see docs/serving.md): --queue N --batch N --cache N --shards N
// --no-batch --no-cache --model NAME --deadline-ms N --max-cells N
// --profile PATH --no-plan --calibrate PATH (PMONGE_PROFILE is the env
// equivalent of --profile; the flag wins when both are set) plus the
// resilience knobs --retries --op-timeout-ms --breaker-threshold
// --breaker-cooldown (docs/robustness.md) and the transport knobs
// --listen --max-conns --max-inflight --max-line-bytes --idle-timeout-ms
// --drain-timeout-ms (docs/networking.md)
#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "plan/calibrate.hpp"
#include "pram/machine.hpp"
#include "rpc/backpressure.hpp"
#include "rpc/server.hpp"
#include "serve/service.hpp"
#include "support/arena.hpp"
#include "support/cli.hpp"

namespace {

pmonge::pram::Model parse_model(const std::string& name) {
  using pmonge::pram::Model;
  if (name == "crew") return Model::CREW;
  if (name == "crcw" || name == "crcw_common") return Model::CRCW_COMMON;
  if (name == "crcw_arbitrary") return Model::CRCW_ARBITRARY;
  if (name == "crcw_priority") return Model::CRCW_PRIORITY;
  std::fprintf(stderr,
               "pmonge-serve: unknown model \"%s\" (want crew, crcw, "
               "crcw_arbitrary, crcw_priority)\n",
               name.c_str());
  std::exit(2);
}

// --listen target for the signal handlers.  request_stop() is
// async-signal-safe (one atomic store + one write(2)) and the pointer
// load is lock-free, so the handler body is safe.
std::atomic<pmonge::rpc::Server*> g_server{nullptr};

void handle_stop_signal(int) {
  if (pmonge::rpc::Server* s = g_server.load(std::memory_order_acquire)) {
    s->request_stop();
  }
}

// Writes the whole-process Chrome trace, if --trace-out asked for one.
// A path that cannot be written is a hard error: the user asked for it.
int write_trace(const std::string& trace_out) {
  if (trace_out.empty()) return 0;
  const std::string doc =
      pmonge::obs::chrome_trace_json(pmonge::obs::collect()).dump();
  std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "pmonge-serve: cannot write trace to \"%s\"\n",
                 trace_out.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pmonge::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::puts(
        "pmonge-serve: NDJSON query service (one request per line on stdin,\n"
        "one response per line on stdout; see docs/serving.md)\n"
        "  --listen HOST:PORT serve the same protocol over TCP instead of\n"
        "                   stdin/stdout (port 0 = ephemeral, printed on\n"
        "                   stderr; see docs/networking.md)\n"
        "  --max-conns N    TCP only: concurrent connection cap; surplus\n"
        "                   connects get one `overloaded` line (default 256)\n"
        "  --max-inflight N submitted-but-unanswered lines per connection\n"
        "                   (and for the stdin reader) before the transport\n"
        "                   stops reading (default 128)\n"
        "  --max-line-bytes N  TCP only: oversized-line threshold\n"
        "                   (default 1048576)\n"
        "  --idle-timeout-ms N  TCP only: close idle connections, <=0\n"
        "                   disables (default 300000)\n"
        "  --drain-timeout-ms N TCP only: graceful-drain bound on\n"
        "                   SIGTERM/SIGINT (default 5000)\n"
        "  --queue N        admission queue capacity (default 1024)\n"
        "  --batch N        max requests coalesced per batch (default 64)\n"
        "  --cache N        result cache capacity, 0 disables (default 4096)\n"
        "  --shards N       cache shard count (default 8)\n"
        "  --no-batch       disable coalescing (batch-of-one per request)\n"
        "  --no-cache       disable the result cache\n"
        "  --model NAME     crew | crcw | crcw_arbitrary | crcw_priority\n"
        "                   (default crcw)\n"
        "  --deadline-ms N  default per-request deadline (default: none)\n"
        "  --max-cells N    register_* size guard (default 2^24)\n"
        "  --profile PATH   load a calibrated cost profile (JSON); the\n"
        "                   PMONGE_PROFILE env var is equivalent, the flag\n"
        "                   wins; default: the deterministic built-in\n"
        "  --no-plan        disable the execution planner (fixed parallel\n"
        "                   dispatch, no deadline_unmeetable admission)\n"
        "  --calibrate PATH run the calibration microbenchmarks, write the\n"
        "                   fitted profile to PATH, and exit\n"
        "  --trace-out PATH enable span tracing (as if PMONGE_TRACE=1) and\n"
        "                   write the Chrome trace-event JSON of the whole\n"
        "                   run to PATH at exit (load in ui.perfetto.dev)\n"
        "  --retries N      group retry attempts on injected faults\n"
        "                   (default 3)\n"
        "  --op-timeout-ms N  per-group execution budget, -1 = none\n"
        "                   (default -1)\n"
        "  --breaker-threshold N  consecutive failures that open the\n"
        "                   circuit breaker (default 5)\n"
        "  --breaker-cooldown N   groups run degraded (sequential) while\n"
        "                   the breaker is open (default 32)\n"
        "Fault injection (docs/robustness.md): PMONGE_FAULT_RATE (basis\n"
        "points; unset or 0 = off), PMONGE_FAULT_SEED, PMONGE_FAULT_SITES.");
    return 0;
  }

  // A vanished peer (closed stdout pipe, dropped TCP connection) must be
  // a write error we handle, never a SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);

  // Touch the engine knobs eagerly: the pool initializes lazily, so a
  // malformed PMONGE_THREADS / PMONGE_GRAIN / PMONGE_TRACE would
  // otherwise surface only on the first query large enough to fan out --
  // or never, for a service that happens to stay serial.  Fail loudly
  // before serving.
  try {
    pmonge::exec::num_threads();
    pmonge::exec::default_grain();
    pmonge::obs::enabled();
    pmonge::fault::armed();  // PMONGE_FAULT_* typos fail here, not mid-run
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
    return 2;
  }

  const std::string trace_out = cli.get("trace-out", "");
  if (!trace_out.empty()) pmonge::obs::set_enabled(true);

  if (cli.has("calibrate")) {
    const std::string path = cli.get("calibrate", "");
    if (path.empty()) {
      std::fprintf(stderr, "pmonge-serve: --calibrate needs a path\n");
      return 2;
    }
    try {
      const auto prof = pmonge::plan::calibrate();
      pmonge::plan::save_profile(prof, path);
      std::fprintf(stderr, "pmonge-serve: wrote profile \"%s\" (%s)\n",
                   path.c_str(), prof.id.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  pmonge::serve::ServiceOptions opts;
  opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 1024));
  opts.batch_max = static_cast<std::size_t>(cli.get_int("batch", 64));
  opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 4096));
  opts.cache_shards = static_cast<std::size_t>(cli.get_int("shards", 8));
  if (cli.has("no-batch")) opts.coalesce = false;
  if (cli.has("no-cache")) opts.cache_capacity = 0;
  opts.model = parse_model(cli.get("model", "crcw"));
  opts.default_deadline_ms = cli.get_int("deadline-ms", -1);
  opts.max_register_cells =
      static_cast<std::size_t>(cli.get_int("max-cells", std::int64_t{1} << 24));
  if (cli.has("no-plan")) opts.planner = false;
  opts.resilience.max_retries =
      static_cast<std::size_t>(cli.get_int("retries", 3));
  opts.resilience.op_timeout_ms = cli.get_int("op-timeout-ms", -1);
  opts.resilience.breaker_threshold =
      static_cast<std::size_t>(cli.get_int("breaker-threshold", 5));
  opts.resilience.breaker_cooldown =
      static_cast<std::size_t>(cli.get_int("breaker-cooldown", 32));

  // Cost profile: --profile beats PMONGE_PROFILE beats the built-in.
  // A profile that cannot be loaded is a hard startup error (exit 2
  // quoting the path), never a silent fallback.
  std::string profile_path = cli.get("profile", "");
  if (profile_path.empty()) {
    if (const char* env = std::getenv("PMONGE_PROFILE")) profile_path = env;
  }
  if (!profile_path.empty()) {
    try {
      opts.profile = pmonge::plan::load_profile(profile_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
      return 2;
    }
  }

  pmonge::rpc::BackpressureLimits limits;
  limits.max_inflight =
      static_cast<std::size_t>(cli.get_int("max-inflight", 128));
  if (limits.overload_inflight < limits.max_inflight * 2) {
    limits.overload_inflight = limits.max_inflight * 2;
  }

  pmonge::serve::Service service(opts);

  if (cli.has("listen")) {
    // --listen HOST:PORT (":PORT" and bare "PORT" default the host).
    const std::string addr = cli.get("listen", "");
    pmonge::rpc::ServerOptions sopts;
    sopts.limits = limits;
    const std::size_t colon = addr.rfind(':');
    std::string port_str;
    if (colon == std::string::npos) {
      port_str = addr;
    } else {
      if (colon > 0) sopts.host = addr.substr(0, colon);
      port_str = addr.substr(colon + 1);
    }
    try {
      if (port_str.empty()) throw std::invalid_argument("empty port");
      const unsigned long p = std::stoul(port_str);
      if (p > 65535) throw std::out_of_range("port > 65535");
      sopts.port = static_cast<std::uint16_t>(p);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "pmonge-serve: --listen wants HOST:PORT, got \"%s\"\n",
                   addr.c_str());
      return 2;
    }
    sopts.max_conns = static_cast<std::size_t>(cli.get_int("max-conns", 256));
    sopts.max_line_bytes =
        static_cast<std::size_t>(cli.get_int("max-line-bytes", 1 << 20));
    sopts.idle_timeout_ms = cli.get_int("idle-timeout-ms", 300000);
    sopts.drain_timeout_ms = cli.get_int("drain-timeout-ms", 5000);

    pmonge::rpc::Server server(service, sopts);
    try {
      server.listen();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pmonge-serve: %s\n", e.what());
      return 2;
    }
    service.set_extra_stats(
        "rpc", [&server] { return server.stats_json(); });

    g_server.store(&server, std::memory_order_release);
    struct sigaction sa {};
    sa.sa_handler = handle_stop_signal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    std::fprintf(stderr, "pmonge-serve: listening on %s:%u\n",
                 sopts.host.c_str(), static_cast<unsigned>(server.port()));
    server.run();
    g_server.store(nullptr, std::memory_order_release);

    const pmonge::rpc::ServerStats& st = server.stats();
    std::fprintf(stderr,
                 "pmonge-serve: drained (conns=%llu lines=%llu "
                 "responses=%llu dropped=%llu)\n",
                 static_cast<unsigned long long>(st.accepted.load()),
                 static_cast<unsigned long long>(st.lines_in.load()),
                 static_cast<unsigned long long>(st.responses_out.load()),
                 static_cast<unsigned long long>(st.dropped_conns.load() +
                                                 st.overflow_drops.load()));
    return write_trace(trace_out);
  }

  // stdin mode.  The reader thread submits lines as stdin yields them
  // (so bursts actually coalesce); the main thread awaits and prints in
  // submission order.  The limiter is the reader-side valve of the
  // shared backpressure contract: once max_inflight submissions are
  // unanswered, the reader blocks instead of growing `pending`.
  pmonge::rpc::InflightLimiter limiter(limits.max_inflight);
  std::atomic<std::uint64_t> lines_in{0};
  std::uint64_t responses_out = 0;

  // An output slot is either an already-serialized response (the
  // cached-hit fast path answered on the reader thread) or a future the
  // worker will fulfill.  Ready slots draw their buffers from `spare`, a
  // small pool of retired response strings, so a steady cached-hit
  // stream recycles warm capacity instead of allocating per line.
  struct OutItem {
    std::future<std::string> fut;
    std::string ready;
    bool is_ready = false;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<OutItem> pending;
  std::vector<std::string> spare;  // pooled response buffers (under mu)
  bool done = false;

  std::thread reader([&] {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      limiter.acquire();
      lines_in.fetch_add(1, std::memory_order_relaxed);
      OutItem item;
      bool pooled = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!spare.empty()) {
          item.ready = std::move(spare.back());
          spare.pop_back();
          pooled = true;
        }
      }
      item.ready.clear();
      if (pooled) {
        pmonge::support::alloc_note_pool_hit();
      } else {
        pmonge::support::alloc_note_pool_miss();
      }
      if (service.try_serve_fast(line, item.ready)) {
        item.is_ready = true;
      } else {
        item.fut = service.submit(std::move(line));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(std::move(item));
      }
      cv.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
  });

  while (true) {
    OutItem item;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done || !pending.empty(); });
      if (pending.empty()) break;
      item = std::move(pending.front());
      pending.pop_front();
    }
    if (!item.is_ready) {
      item.ready.clear();
      item.ready += item.fut.get();
    }
    const std::string& resp = item.ready;
    limiter.release();
    const bool wrote =
        std::fwrite(resp.data(), 1, resp.size(), stdout) == resp.size() &&
        std::fputc('\n', stdout) != EOF && std::fflush(stdout) == 0;
    if (!wrote) {
      // The consumer went away (closed pipe).  SIGPIPE is ignored, so
      // this is an orderly exit: report what was served and what was
      // still in flight, then leave without unwinding -- the reader may
      // be parked in getline() and std::exit() skips joining it.
      std::fprintf(
          stderr,
          "pmonge-serve: stdout closed; exiting (lines=%llu responses=%llu "
          "in_flight=%llu)\n",
          static_cast<unsigned long long>(
              lines_in.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(responses_out),
          static_cast<unsigned long long>(limiter.inflight()));
      std::exit(0);
    }
    ++responses_out;
    {
      // Retire the response buffer into the pool (capacity kept).  The
      // pool never outgrows the inflight window, so memory stays bounded.
      std::lock_guard<std::mutex> lock(mu);
      if (spare.size() < limits.max_inflight) {
        spare.push_back(std::move(item.ready));
      }
    }
  }

  reader.join();

  return write_trace(trace_out);
}
