// Per-endpoint service metrics: request/outcome counters and latency
// histograms, exported by the `stats` endpoint.
//
// All mutation paths are lock-free atomics (support/histogram.hpp); the
// endpoint map itself is built once at construction over the fixed op
// vocabulary and never restructured, so readers and writers touch it
// without locks.  Unknown ops land in the "_other" slot.
//
// Stats are observability, not results: they are the one part of the
// service whose bytes legitimately vary run to run, which is why query
// responses never embed them (see the bit-identical guarantee in
// docs/serving.md).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/json.hpp"
#include "support/histogram.hpp"

namespace pmonge::serve {

struct EndpointMetrics {
  support::Counter requests;      // admitted into processing
  support::Counter ok;            // answered with ok:true
  support::Counter errors;        // answered with ok:false (any reason)
  support::Counter overloaded;    // rejected at admission
  support::Counter expired;       // answered deadline_expired
  support::Counter unmeetable;    // rejected deadline_unmeetable at admission
  support::Counter cache_hits;
  support::Counter cache_misses;
  support::Counter retried;       // group retry attempts this op rode
  support::Counter degraded;      // answered via the degraded (breaker) path
  support::LogHistogram latency_us;  // submit -> response, microseconds
};

class ServiceMetrics {
 public:
  explicit ServiceMetrics(const std::vector<std::string>& ops) {
    for (const auto& op : ops) {
      by_op_.emplace(op, std::make_unique<EndpointMetrics>());
    }
    other_ =
        by_op_.emplace(kOther, std::make_unique<EndpointMetrics>())
            .first->second.get();
  }

  /// string_view overload (and transparent map comparator) so the
  /// fast path's op -- a view into codec scratch -- needs no key copy.
  EndpointMetrics& endpoint(std::string_view op) {
    const auto it = by_op_.find(op);
    return it == by_op_.end() ? *other_ : *it->second;
  }

  support::Counter& batches() { return batches_; }
  support::LogHistogram& batch_size() { return batch_size_; }
  support::Counter& charged_time() { return charged_time_; }
  support::Counter& charged_work() { return charged_work_; }

  // Planner choice counters (one per executed group, by chosen variant).
  support::Counter& plans_brute() { return plans_brute_; }
  support::Counter& plans_sequential() { return plans_sequential_; }
  support::Counter& plans_parallel() { return plans_parallel_; }

  /// Snapshot as a JSON object (endpoints with zero requests and zero
  /// rejections are omitted to keep `stats` responses readable).
  Json snapshot() const {
    Json::Obj endpoints;
    for (const auto& [op, m] : by_op_) {
      if (m->requests.value() == 0 && m->overloaded.value() == 0 &&
          m->unmeetable.value() == 0) {
        continue;
      }
      Json::Obj e;
      e["requests"] = m->requests.value();
      e["ok"] = m->ok.value();
      e["errors"] = m->errors.value();
      e["overloaded"] = m->overloaded.value();
      e["expired"] = m->expired.value();
      e["unmeetable"] = m->unmeetable.value();
      e["cache_hits"] = m->cache_hits.value();
      e["cache_misses"] = m->cache_misses.value();
      e["retried"] = m->retried.value();
      e["degraded"] = m->degraded.value();
      Json::Obj lat;
      lat["count"] = m->latency_us.count();
      lat["sum_us"] = m->latency_us.sum();
      lat["p50_us_bound"] = m->latency_us.quantile_bound(0.50);
      lat["p99_us_bound"] = m->latency_us.quantile_bound(0.99);
      // Sparse bucket dump [[bit_width, count], ...] so the Prometheus
      // exposition (obs/prometheus.cpp) can render a real histogram.
      Json::Arr buckets;
      const auto counts = m->latency_us.buckets();
      for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0) continue;
        Json::Arr pair;
        pair.emplace_back(static_cast<std::int64_t>(b));
        pair.emplace_back(counts[b]);
        buckets.emplace_back(std::move(pair));
      }
      lat["buckets"] = Json(std::move(buckets));
      e["latency"] = Json(std::move(lat));
      endpoints[op] = Json(std::move(e));
    }
    Json::Obj out;
    out["endpoints"] = Json(std::move(endpoints));
    Json::Obj batch;
    batch["count"] = batches_.value();
    batch["p50_size_bound"] = batch_size_.quantile_bound(0.50);
    batch["max_size_bound"] = batch_size_.quantile_bound(1.0);
    out["batches"] = Json(std::move(batch));
    Json::Obj charged;
    charged["time"] = charged_time_.value();
    charged["work"] = charged_work_.value();
    out["charged"] = Json(std::move(charged));
    Json::Obj plans;
    plans["brute"] = plans_brute_.value();
    plans["sequential"] = plans_sequential_.value();
    plans["parallel"] = plans_parallel_.value();
    out["plans"] = Json(std::move(plans));
    return Json(std::move(out));
  }

 private:
  static constexpr const char* kOther = "_other";
  std::map<std::string, std::unique_ptr<EndpointMetrics>, std::less<>> by_op_;
  EndpointMetrics* other_ = nullptr;  // the "_other" slot, cached
  support::Counter batches_;
  support::LogHistogram batch_size_;
  support::Counter charged_time_;  // summed simulated-PRAM steps
  support::Counter charged_work_;  // summed simulated-PRAM work
  support::Counter plans_brute_;
  support::Counter plans_sequential_;
  support::Counter plans_parallel_;
};

}  // namespace pmonge::serve
