#include "serve/protocol.hpp"

#include <algorithm>

#include "support/fmt.hpp"

namespace pmonge::serve {

const std::vector<std::string>& query_ops() {
  static const std::vector<std::string> ops = {
      "rowmin",      "rowmax",       "staircase_rowmin", "staircase_rowmax",
      "tubemax",     "tubemin",      "string_edit",      "largest_rect",
      "empty_rect",  "polygon_neighbors", "submatrix_min", "submatrix_max",
      "explain",
  };
  return ops;
}

bool is_query_op(std::string_view op) {
  const auto& ops = query_ops();
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

bool is_control_op(std::string_view op) {
  return op == "register_dense" || op == "register_staircase" ||
         op == "register_random" || op == "unregister" || op == "stats" ||
         op == "ping" || op == "trace" || op == "index_build" ||
         op == "index_drop" || op == "index_stats";
}

Request parse_request(const std::string& line) {
  Request req;
  req.body = Json::parse(line);
  if (req.body.type() != Json::Type::Object) {
    throw JsonError("bad_request: request must be a JSON object");
  }
  req.op = req.body.at("op").as_string();
  if (const Json* id = req.body.find("id")) req.id = id->as_int();
  if (const Json* dl = req.body.find("deadline_ms")) {
    req.deadline_ms = dl->as_int();
    if (req.deadline_ms < 0) {
      throw JsonError("bad_request: deadline_ms must be >= 0");
    }
  }
  if (const Json* tid = req.body.find("trace_id")) {
    const std::int64_t t = tid->as_int();
    if (t <= 0) throw JsonError("bad_request: trace_id must be positive");
    req.trace_id = static_cast<std::uint64_t>(t);
  }
  if (is_query_op(req.op)) {
    // Canonical body with transport fields skipped, emitted straight from
    // the sorted parse tree -- no copied-and-erased Obj per request.
    req.signature.reserve(line.size());
    req.signature.push_back('{');
    bool first = true;
    for (const auto& [k, v] : req.body.obj()) {
      if (k == "id" || k == "deadline_ms" || k == "trace_id") continue;
      if (!first) req.signature.push_back(',');
      first = false;
      append_json_string(k, req.signature);
      req.signature.push_back(':');
      v.dump_to(req.signature);
    }
    req.signature.push_back('}');
  }
  return req;
}

// Handwritten response assembly relies on the sorted-key canonical order:
// "error" < "id" < "ok" < "result", so emitting fields in that fixed
// order matches what dumping a std::map-backed Obj produces.

void append_ok_response_raw(std::int64_t id, std::string_view result_canonical,
                            std::string& out) {
  if (id != kNoId) {
    out += "{\"id\":";
    support::append_int(out, id);
    out += ",\"ok\":true,\"result\":";
  } else {
    out += "{\"ok\":true,\"result\":";
  }
  out += result_canonical;
  out.push_back('}');
}

void append_error_response(std::int64_t id, std::string_view error,
                           std::string& out) {
  out += "{\"error\":";
  append_json_string(error, out);
  if (id != kNoId) {
    out += ",\"id\":";
    support::append_int(out, id);
  }
  out += ",\"ok\":false}";
}

std::string make_ok_response(std::int64_t id, Json result) {
  std::string out;
  std::string body;
  result.dump_to(body);
  out.reserve(body.size() + 40);
  append_ok_response_raw(id, body, out);
  return out;
}

std::string make_error_response(std::int64_t id, const std::string& error) {
  std::string out;
  out.reserve(error.size() + 40);
  append_error_response(id, error, out);
  return out;
}

}  // namespace pmonge::serve
