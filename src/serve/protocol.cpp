#include "serve/protocol.hpp"

#include <algorithm>

namespace pmonge::serve {

const std::vector<std::string>& query_ops() {
  static const std::vector<std::string> ops = {
      "rowmin",      "rowmax",       "staircase_rowmin", "staircase_rowmax",
      "tubemax",     "tubemin",      "string_edit",      "largest_rect",
      "empty_rect",  "polygon_neighbors", "submatrix_min", "submatrix_max",
      "explain",
  };
  return ops;
}

bool is_query_op(const std::string& op) {
  const auto& ops = query_ops();
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

bool is_control_op(const std::string& op) {
  return op == "register_dense" || op == "register_staircase" ||
         op == "register_random" || op == "unregister" || op == "stats" ||
         op == "ping" || op == "trace" || op == "index_build" ||
         op == "index_drop" || op == "index_stats";
}

Request parse_request(const std::string& line) {
  Request req;
  req.body = Json::parse(line);
  if (req.body.type() != Json::Type::Object) {
    throw JsonError("bad_request: request must be a JSON object");
  }
  req.op = req.body.at("op").as_string();
  if (const Json* id = req.body.find("id")) req.id = id->as_int();
  if (const Json* dl = req.body.find("deadline_ms")) {
    req.deadline_ms = dl->as_int();
    if (req.deadline_ms < 0) {
      throw JsonError("bad_request: deadline_ms must be >= 0");
    }
  }
  if (const Json* tid = req.body.find("trace_id")) {
    const std::int64_t t = tid->as_int();
    if (t <= 0) throw JsonError("bad_request: trace_id must be positive");
    req.trace_id = static_cast<std::uint64_t>(t);
  }
  if (is_query_op(req.op)) {
    Json::Obj sig = req.body.obj();
    sig.erase("id");
    sig.erase("deadline_ms");
    sig.erase("trace_id");
    req.signature = Json(std::move(sig)).dump();
  }
  return req;
}

namespace {

std::string finish(std::int64_t id, Json::Obj obj) {
  if (id != kNoId) obj["id"] = id;
  return Json(std::move(obj)).dump();
}

}  // namespace

std::string make_ok_response(std::int64_t id, Json result) {
  Json::Obj obj;
  obj["ok"] = true;
  obj["result"] = std::move(result);
  return finish(id, std::move(obj));
}

std::string make_error_response(std::int64_t id, const std::string& error) {
  Json::Obj obj;
  obj["ok"] = false;
  obj["error"] = error;
  return finish(id, std::move(obj));
}

}  // namespace pmonge::serve
