// Wire protocol of the query service: newline-delimited JSON objects on
// both directions (one request per line in, one response per line out).
//
// Request:  {"op": "<name>", ...op fields...,
//            "id": <int, optional, echoed>,
//            "deadline_ms": <int, optional, relative admission deadline>}
// Response: {"id": <echoed if given>, "ok": true,  "result": {...}}
//         | {"id": <echoed if given>, "ok": false, "error": "<reason>"}
//
// Ops split into two planes:
//   * control plane (register_dense / register_staircase / register_random
//     / unregister / stats / ping) -- handled synchronously at submission,
//     never queued, so registration is always visible to queries admitted
//     after its response;
//   * query plane (rowmin / rowmax / staircase_rowmin / staircase_rowmax /
//     tubemax / tubemin / string_edit / largest_rect / empty_rect /
//     polygon_neighbors / explain) -- admitted through the bounded queue,
//     coalesced by the batcher, memoized by signature.  explain wraps
//     another query ({"op":"explain","query":{...}}) and reports the
//     planner's chosen plan plus predicted vs actual cost; like stats it
//     is observability output and is never cached.
//
// The *signature* of a query is the canonical dump of its body with the
// transport fields ("id", "deadline_ms") removed: two requests asking the
// same question have equal signatures regardless of id, field order or
// whitespace, which is what the result cache keys on.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "serve/json.hpp"

namespace pmonge::serve {

inline constexpr std::int64_t kNoId = std::numeric_limits<std::int64_t>::min();

struct Request {
  std::int64_t id = kNoId;
  std::string op;
  Json body;              // the full parsed request object
  std::string signature;  // canonical cache key (query ops)
  std::int64_t deadline_ms = -1;  // relative; -1 = none given
  // Observability envelope field (like "id": stripped from the
  // signature, never part of the cached question).  Client-supplied via
  // "trace_id", or minted at admission when tracing is on; query ops
  // carry it through the batcher into exec spans.  Never echoed in
  // responses, so response bytes stay identical tracing on or off.
  std::uint64_t trace_id = 0;
};

/// Query-plane op names (also the metrics vocabulary).
const std::vector<std::string>& query_ops();
bool is_query_op(std::string_view op);

/// Control-plane op names.
bool is_control_op(std::string_view op);

/// Parse one request line; throws JsonError on malformed input (bad
/// JSON, missing or non-string op).  Computes the signature for query ops.
Request parse_request(const std::string& line);

/// Serialize a success / error response (canonical bytes).
std::string make_ok_response(std::int64_t id, Json result);
std::string make_error_response(std::int64_t id, const std::string& error);

/// Append-into-buffer forms of the response serializers: same canonical
/// bytes, no per-call std::string.  `result_canonical` in the _raw form
/// must already be canonical JSON (e.g. cached response bytes), which is
/// spliced in verbatim.
void append_ok_response_raw(std::int64_t id, std::string_view result_canonical,
                            std::string& out);
void append_error_response(std::int64_t id, std::string_view error,
                           std::string& out);

}  // namespace pmonge::serve
