// Array registry: the service's table of long-lived Monge / inverse-
// Monge / staircase-Monge operands that query traffic runs against.
//
// Entries are immutable once registered and handed out as
// shared_ptr<const ...>, so an unregister (or a registry teardown) never
// invalidates an in-flight batch that already resolved its operand --
// the batch keeps the array alive until it finishes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "monge/array.hpp"

namespace pmonge::serve {

struct ArrayEntry {
  enum class Kind { Monge, InverseMonge, Staircase };

  Kind kind = Kind::Monge;
  monge::DenseArray<std::int64_t> data;
  std::vector<std::size_t> frontier;  // Staircase only; non-increasing

  const char* kind_name() const {
    switch (kind) {
      case Kind::Monge: return "monge";
      case Kind::InverseMonge: return "inverse_monge";
      case Kind::Staircase: return "staircase";
    }
    return "?";
  }
};

class Registry {
 public:
  std::uint64_t add(ArrayEntry entry) {
    auto p = std::make_shared<const ArrayEntry>(std::move(entry));
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    entries_.emplace(id, std::move(p));
    return id;
  }

  std::shared_ptr<const ArrayEntry> get(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : it->second;
  }

  bool remove(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(id) > 0;
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, std::shared_ptr<const ArrayEntry>> entries_;
};

}  // namespace pmonge::serve
