#include "serve/service.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/codec.hpp"
#include "support/arena.hpp"
#include "support/build_info.hpp"
#include "support/fmt.hpp"
#include "support/rng.hpp"

namespace pmonge::serve {

namespace {

std::uint64_t us_between(ServeClock::time_point a, ServeClock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
}

std::vector<std::string> all_ops() {
  std::vector<std::string> ops = query_ops();
  for (const char* op :
       {"register_dense", "register_staircase", "register_random",
        "unregister", "stats", "ping", "trace", "index_build", "index_drop",
        "index_stats"}) {
    ops.emplace_back(op);
  }
  return ops;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      metrics_(all_ops()),
      planner_(opts.profile, opts.planner, exec::num_threads()),
      batcher_(registry_, cache_, metrics_, planner_, indexes_, opts.model,
               opts.coalesce, opts.resilience),
      queue_(std::make_unique<AdmissionQueue<Pending>>(opts.queue_capacity)),
      start_(std::chrono::steady_clock::now()) {
  worker_ = std::thread([this] { worker_loop(); });
}

Service::~Service() {
  queue_->stop();
  worker_.join();
}

void Service::pause() { queue_->pause(true); }
void Service::resume() { queue_->pause(false); }

bool Service::try_serve_fast(std::string_view line, std::string& out) {
  // Preconditions for skipping the slow path entirely: the cache must be
  // on, no implicit deadline can apply (deadline admission precedes the
  // cache), and neither tracing nor fault injection may be armed (both
  // hook the slow path's stages).
  if (!opts_.fast_path || !cache_.enabled() || opts_.default_deadline_ms >= 0 ||
      obs::enabled() || fault::armed()) {
    return false;
  }
  RequestCodec& codec = thread_codec();
  FastQuery q;
  if (!codec.canonicalize_query(line, q)) return false;
  // explain reports live plan/cost observations and is never cached.
  if (q.op == "explain" || !is_query_op(q.op)) return false;

  const auto t0 = ServeClock::now();
  std::string& buf = codec.response_buffer();
  const std::size_t warm_capacity = buf.capacity();
  buf.clear();
  if (q.id != kNoId) {
    buf += "{\"id\":";
    support::append_int(buf, q.id);
    buf += ",\"ok\":true,\"result\":";
  } else {
    buf += "{\"ok\":true,\"result\":";
  }
  if (!cache_.get_hit(q.signature, q.hash, buf)) return false;
  buf.push_back('}');

  // Same per-endpoint accounting the queue/worker path would record for
  // a cached hit: admitted, hit, ok, and submit-to-answer latency.
  EndpointMetrics& em = metrics_.endpoint(q.op);
  em.requests.add();
  em.cache_hits.add();
  em.ok.add();
  em.latency_us.record(us_between(t0, ServeClock::now()));
  support::alloc_note_fast_path_hit();
  if (buf.capacity() == warm_capacity && warm_capacity != 0) {
    support::alloc_note_pool_hit();
  } else {
    support::alloc_note_pool_miss();
  }
  out += buf;
  return true;
}

void Service::submit_cb(std::string line, ResponseCallback done) {
  {
    // Cached-hit fast path: answered inline on the submitting thread,
    // exactly like control ops and admission rejections already are.
    thread_local std::string fastbuf;
    fastbuf.clear();
    if (try_serve_fast(line, fastbuf)) {
      done(fastbuf);
      return;
    }
  }

  obs::Span span("serve.admit");

  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    metrics_.endpoint("_other").errors.add();
    // Envelope-shape errors arrive pre-categorized as bad_request; only
    // raw lexer failures get the parse_error category here.
    std::string msg = e.what();
    if (!msg.starts_with("bad_request: ")) msg = "parse_error: " + msg;
    done(make_error_response(kNoId, std::move(msg)));
    return;
  }

  span.set_detail(req.op);
  span.set_trace(req.trace_id);

  if (!is_query_op(req.op)) {
    EndpointMetrics& em = metrics_.endpoint(req.op);
    em.requests.add();
    const auto t0 = ServeClock::now();
    std::string resp = handle_control(req);
    em.latency_us.record(us_between(t0, ServeClock::now()));
    done(std::move(resp));
    return;
  }

  // Query ops: mint a trace id when tracing is on and the client did not
  // supply one.  The id rides the Request (envelope field), never the
  // response, so answer bytes stay identical tracing on or off.
  if (req.trace_id == 0 && obs::enabled()) {
    req.trace_id = obs::new_trace_id();
  }
  span.set_trace(req.trace_id);

  std::int64_t deadline_ms = req.deadline_ms;
  if (deadline_ms < 0) deadline_ms = opts_.default_deadline_ms;
  const auto deadline =
      deadline_ms < 0
          ? kNoDeadline
          : ServeClock::now() + std::chrono::milliseconds(deadline_ms);

  EndpointMetrics& em = metrics_.endpoint(req.op);

  // Deadline-aware admission: if the cost model already knows the
  // deadline cannot be met, reject before the request burns queue space
  // or engine time.  explain is exempt (it exists to report the plan).
  if (planner_.enabled() && deadline_ms >= 0 && req.op != "explain") {
    const double predicted_us =
        planner_.predicted_us(query_shape(req, registry_));
    if (predicted_us > static_cast<double>(deadline_ms) * 1000.0) {
      em.unmeetable.add();
      em.errors.add();
      done(make_error_response(
          req.id,
          "deadline_unmeetable: predicted " +
              std::to_string(
                  static_cast<std::int64_t>(std::llround(predicted_us))) +
              "us exceeds deadline " + std::to_string(deadline_ms) + "ms"));
      return;
    }
  }
  // Admission jitter site: a seeded pre-enqueue sleep that shuffles
  // arrival order.  Response bytes never depend on batch composition, so
  // this can only move latency, never answers.
  if (fault::armed() && fault::should_fire(fault::Site::ServeAdmitJitter)) {
    fault::fire_delay(fault::Site::ServeAdmitJitter);
  }
  const std::int64_t id = req.id;
  Pending p{std::move(req), done};  // `done` stays copied for the reject path
  if (queue_->try_push(std::move(p), deadline) == AdmitResult::Overloaded) {
    // try_push consumed p (by-value argument) even on rejection, taking
    // its callback copy with it; answer through the one we kept.
    em.overloaded.add();
    done(make_error_response(id, "overloaded"));
    return;
  }
  em.requests.add();
}

std::future<std::string> Service::submit(std::string line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> fut = promise->get_future();
  submit_cb(std::move(line),
            [promise](std::string resp) { promise->set_value(std::move(resp)); });
  return fut;
}

std::string Service::request(const std::string& line) {
  return submit(line).get();
}

void Service::set_extra_stats(const std::string& key,
                              std::function<Json()> fn) {
  std::lock_guard<std::mutex> lock(extra_stats_mu_);
  for (auto& [k, f] : extra_stats_) {
    if (k == key) {
      f = std::move(fn);
      return;
    }
  }
  extra_stats_.emplace_back(key, std::move(fn));
}

std::vector<std::string> Service::request_batch(
    const std::vector<std::string>& lines) {
  std::vector<std::future<std::string>> futs;
  futs.reserve(lines.size());
  for (const auto& l : lines) futs.push_back(submit(l));
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

namespace {

/// One "serve.request" span covering a request's whole queue-to-answer
/// interval, reconstructed from the admission timestamps (the RAII Span
/// cannot straddle threads).  `done` is the same timestamp the latency
/// histogram records, so the traced path adds no clock read of its own;
/// the records accumulate per worker batch and land via one emit_all()
/// -- per-request emission is the one tracing cost that scales with
/// throughput, and the 5% bench_serve overhead gate watches it.
obs::SpanRecord request_span(const Request& r, ServeClock::time_point enqueued,
                             ServeClock::time_point done) {
  obs::SpanRecord rec;
  rec.name = "serve.request";
  rec.trace_id = r.trace_id;
  rec.start_us = obs::to_trace_us(enqueued);
  rec.dur_us = us_between(enqueued, done);
  rec.set_detail(r.op);
  return rec;
}

}  // namespace

void Service::worker_loop() {
  obs::set_lane_name("serve-worker");
  while (true) {
    auto batch = queue_->pop_batch(opts_.batch_max);
    if (batch.empty()) return;  // stopped and drained

    obs::Span span("serve.batch");
    span.set_arg("requests", batch.size());
    std::vector<obs::SpanRecord> req_spans;
    const bool traced = obs::enabled();
    if (traced) req_spans.reserve(batch.size());

    metrics_.batches().add();
    metrics_.batch_size().record(batch.size());

    // Answer expired deadlines without running them; everything else
    // forms the live batch the batcher coalesces.
    std::vector<const Request*> live;
    std::vector<std::size_t> live_idx;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].expired) {
        const Request& r = batch[i].item.req;
        EndpointMetrics& em = metrics_.endpoint(r.op);
        em.expired.add();
        em.errors.add();
        const auto done = ServeClock::now();
        em.latency_us.record(us_between(batch[i].enqueued, done));
        if (traced) obs::emit(request_span(r, batch[i].enqueued, done));
        batch[i].item.done(make_error_response(r.id, "deadline_expired"));
      } else {
        live.push_back(&batch[i].item.req);
        live_idx.push_back(i);
      }
    }
    if (live.empty()) continue;

    std::vector<Request> reqs;
    reqs.reserve(live.size());
    for (const Request* r : live) reqs.push_back(*r);
    std::vector<ServeClock::time_point> deadlines;
    deadlines.reserve(live.size());
    for (const std::size_t i : live_idx) deadlines.push_back(batch[i].deadline);
    std::vector<BatchOutcome> outcomes;
    try {
      outcomes = batcher_.run(reqs, deadlines);
    } catch (const std::exception& e) {
      // The batcher's contract is to never throw; if something slips
      // through anyway, answer the batch instead of killing the one
      // worker thread (which would hang every future submission).
      outcomes.assign(reqs.size(), BatchOutcome{});
      for (auto& o : outcomes) o.error = std::string("internal: ") + e.what();
    }

    std::vector<std::string> responses;
    responses.reserve(outcomes.size());
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      auto& slot = batch[live_idx[t]];
      const Request& r = slot.item.req;
      EndpointMetrics& em = metrics_.endpoint(r.op);
      if (outcomes[t].ok) {
        em.ok.add();
        responses.push_back(make_ok_response(r.id, outcomes[t].result));
      } else {
        em.errors.add();
        responses.push_back(make_error_response(r.id, outcomes[t].error));
      }
      const auto done = ServeClock::now();
      em.latency_us.record(us_between(slot.enqueued, done));
      if (traced) req_spans.push_back(request_span(r, slot.enqueued, done));
    }
    // Spans land before callbacks resolve: a client that saw its answer
    // can immediately `trace` and find its serve.request span.
    obs::emit_all(req_spans);
    // Slow-client site: one seeded stall between computing a batch's
    // answers and resolving its callbacks -- the response-writing leg.
    if (fault::armed() &&
        fault::should_fire(fault::Site::ServeSlowResponse)) {
      fault::fire_delay(fault::Site::ServeSlowResponse);
    }
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      batch[live_idx[t]].item.done(std::move(responses[t]));
    }
  }
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

namespace {

std::size_t size_field(const Json& body, const char* key) {
  const std::int64_t v = body.at(key).as_int();
  if (v <= 0) throw JsonError(std::string("bad_request: ") + key +
                              " must be positive");
  return static_cast<std::size_t>(v);
}

monge::DenseArray<std::int64_t> dense_from_body(const Json& body,
                                                std::size_t rows,
                                                std::size_t cols) {
  const auto& data = body.at("data").arr();
  if (data.size() != rows * cols) {
    throw JsonError("bad_request: data length != rows * cols");
  }
  monge::DenseArray<std::int64_t> a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a.at(i, j) = data[i * cols + j].as_int();
    }
  }
  return a;
}

}  // namespace

std::string Service::handle_control(const Request& req) {
  try {
    if (req.op == "ping") {
      Json::Obj o;
      o["pong"] = true;
      return make_ok_response(req.id, Json(std::move(o)));
    }

    if (req.op == "stats") {
      if (const Json* fmt = req.body.find("format")) {
        const std::string& f = fmt->as_string();
        if (f == "prometheus") {
          // Text exposition rides inside the JSON envelope; a scraper
          // peels result.text.  The snapshot is the same either way.
          Json::Obj o;
          o["format"] = "prometheus";
          o["text"] = obs::prometheus_text(stats_json());
          return make_ok_response(req.id, Json(std::move(o)));
        }
        if (f != "json") {
          return make_error_response(
              req.id, "bad_request: unknown stats format \"" + f + "\"");
        }
      }
      return make_ok_response(req.id, stats_json());
    }

    if (req.op == "trace") {
      // Drain every thread's span ring into one Chrome trace-event
      // document (loadable in Perfetto).  Draining is destructive by
      // design: each span is reported exactly once.
      return make_ok_response(req.id, obs::chrome_trace_json(obs::collect()));
    }

    if (req.op == "unregister") {
      const std::int64_t id = req.body.at("array").as_int();
      const bool removed =
          id >= 0 && registry_.remove(static_cast<std::uint64_t>(id));
      // Cached results that read this array must die with it: a later
      // query on the removed id has to answer unknown_array, never a
      // stale ok resurrected from the LRU.
      std::size_t dropped = 0;
      if (removed) {
        dropped = cache_.invalidate_tag(static_cast<std::uint64_t>(id));
        // An index must never survive its array.  Silent on purpose:
        // the unregister response bytes predate the index subsystem and
        // are pinned by golden transcripts.
        indexes_.drop(static_cast<std::uint64_t>(id));
      }
      Json::Obj o;
      o["removed"] = removed;
      o["cache_invalidated"] = static_cast<std::int64_t>(dropped);
      return make_ok_response(req.id, Json(std::move(o)));
    }

    if (req.op == "index_build") {
      const std::int64_t id = req.body.at("array").as_int();
      auto entry =
          id < 0 ? nullptr : registry_.get(static_cast<std::uint64_t>(id));
      if (entry == nullptr) {
        return make_error_response(req.id,
                                   "unknown_array: " + std::to_string(id));
      }
      const auto info =
          indexes_.build(static_cast<std::uint64_t>(id), std::move(entry));
      // Deterministic response: nodes/leaf_rows/memory_bytes are a pure
      // function of the array (timings live in index_stats).
      Json::Obj o;
      o["array"] = id;
      o["nodes"] = info.nodes;
      o["leaf_rows"] = info.leaf_rows;
      o["memory_bytes"] = info.memory_bytes;
      return make_ok_response(req.id, Json(std::move(o)));
    }

    if (req.op == "index_drop") {
      const std::int64_t id = req.body.at("array").as_int();
      if (id < 0 || registry_.get(static_cast<std::uint64_t>(id)) == nullptr) {
        return make_error_response(req.id,
                                   "unknown_array: " + std::to_string(id));
      }
      Json::Obj o;
      o["array"] = id;
      o["dropped"] = indexes_.drop(static_cast<std::uint64_t>(id));
      return make_ok_response(req.id, Json(std::move(o)));
    }

    if (req.op == "index_stats") {
      if (const Json* a = req.body.find("array")) {
        const std::int64_t id = a->as_int();
        auto idx =
            id < 0 ? nullptr : indexes_.get(static_cast<std::uint64_t>(id));
        if (idx == nullptr) {
          return make_error_response(req.id,
                                     "not_indexed: " + std::to_string(id));
        }
        Json::Obj o;
        o["array"] = id;
        o["nodes"] = idx->nodes();
        o["leaf_rows"] = idx->leaf_rows();
        o["memory_bytes"] = idx->memory_bytes();
        o["build_us"] = idx->build_us();
        o["lookups"] = idx->lookups();
        o["corrupt_detected"] = idx->corrupt_detected();
        o["node_rebuilds"] = idx->node_rebuilds();
        return make_ok_response(req.id, Json(std::move(o)));
      }
      return make_ok_response(req.id, indexes_.stats_json());
    }

    if (req.op == "register_dense" || req.op == "register_staircase") {
      const std::size_t rows = size_field(req.body, "rows");
      const std::size_t cols = size_field(req.body, "cols");
      if (rows * cols > opts_.max_register_cells) {
        return make_error_response(req.id, "bad_request: array too large");
      }
      ArrayEntry entry;
      entry.data = dense_from_body(req.body, rows, cols);
      if (req.op == "register_staircase") {
        entry.kind = ArrayEntry::Kind::Staircase;
        const auto& fr = req.body.at("frontier").arr();
        if (fr.size() != rows) {
          throw JsonError("bad_request: frontier length != rows");
        }
        for (std::size_t i = 0; i < rows; ++i) {
          const std::int64_t f = fr[i].as_int();
          if (f < 0 || static_cast<std::size_t>(f) > cols) {
            throw JsonError("bad_request: frontier entry out of range");
          }
          entry.frontier.push_back(static_cast<std::size_t>(f));
          if (i > 0 && entry.frontier[i] > entry.frontier[i - 1]) {
            throw JsonError("bad_request: frontier must be non-increasing");
          }
        }
      } else {
        const std::string kind =
            req.body.find("kind") ? req.body.at("kind").as_string() : "monge";
        if (kind == "monge") {
          entry.kind = ArrayEntry::Kind::Monge;
        } else if (kind == "inverse_monge") {
          entry.kind = ArrayEntry::Kind::InverseMonge;
        } else {
          throw JsonError("bad_request: unknown kind \"" + kind + "\"");
        }
      }
      const Json* validate = req.body.find("validate");
      if (validate != nullptr && validate->as_bool()) {
        bool good = true;
        switch (entry.kind) {
          case ArrayEntry::Kind::Monge:
            good = monge::is_monge(entry.data);
            break;
          case ArrayEntry::Kind::InverseMonge:
            good = monge::is_inverse_monge(entry.data);
            break;
          case ArrayEntry::Kind::Staircase: {
            monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(
                entry.data, entry.frontier);
            good = monge::is_staircase_monge(s);
            break;
          }
        }
        if (!good) {
          return make_error_response(
              req.id, std::string("not_") + entry.kind_name());
        }
      }
      Json::Obj o;
      o["array"] = registry_.add(std::move(entry));
      return make_ok_response(req.id, Json(std::move(o)));
    }

    if (req.op == "register_random") {
      const std::size_t rows = size_field(req.body, "rows");
      const std::size_t cols = size_field(req.body, "cols");
      if (rows * cols > opts_.max_register_cells) {
        return make_error_response(req.id, "bad_request: array too large");
      }
      const auto seed = static_cast<std::uint64_t>(
          req.body.find("seed") ? req.body.at("seed").as_int() : 0);
      const std::string kind =
          req.body.find("kind") ? req.body.at("kind").as_string() : "monge";
      Rng rng(seed);
      ArrayEntry entry;
      if (kind == "monge") {
        entry.kind = ArrayEntry::Kind::Monge;
        entry.data = monge::random_monge(rows, cols, rng);
      } else if (kind == "inverse_monge") {
        entry.kind = ArrayEntry::Kind::InverseMonge;
        entry.data = monge::random_inverse_monge(rows, cols, rng);
      } else if (kind == "staircase") {
        entry.kind = ArrayEntry::Kind::Staircase;
        auto inst = monge::random_staircase_monge(rows, cols, rng);
        entry.data = std::move(inst.base);
        entry.frontier = std::move(inst.frontier);
      } else {
        throw JsonError("bad_request: unknown kind \"" + kind + "\"");
      }
      Json::Obj o;
      o["array"] = registry_.add(std::move(entry));
      return make_ok_response(req.id, Json(std::move(o)));
    }

    return make_error_response(req.id, "unknown_op: " + req.op);
  } catch (const JsonError& e) {
    return make_error_response(req.id, e.what());
  } catch (const std::exception& e) {
    return make_error_response(req.id, std::string("internal: ") + e.what());
  }
}

Json Service::stats_json() const {
  Json snap = metrics_.snapshot();
  Json::Obj out = snap.obj();
  const CacheStats cs = cache_.stats();
  Json::Obj cache;
  cache["enabled"] = cache_.enabled();
  cache["hits"] = cs.hits;
  cache["misses"] = cs.misses;
  cache["insertions"] = cs.insertions;
  cache["evictions"] = cs.evictions;
  cache["invalidations"] = cs.invalidations;
  cache["poisoned"] = cs.poisoned;
  cache["entries"] = cs.entries;
  out["cache"] = Json(std::move(cache));
  const ResilienceSnapshot rs = batcher_.resilience();
  Json::Obj res;
  res["retries"] = rs.retries;
  res["batch_retries"] = rs.batch_retries;
  res["degraded_groups"] = rs.degraded_groups;
  res["breaker_opens"] = rs.breaker_opens;
  res["fault_errors"] = rs.fault_errors;
  res["breaker_open"] = rs.breaker_open;
  out["resilience"] = Json(std::move(res));
  const fault::Config fc = fault::config();
  Json::Obj flt;
  flt["armed"] = fc.armed;
  flt["seed"] = fc.seed;
  flt["rate_bp"] = static_cast<std::int64_t>(fc.rate_bp);
  flt["sites"] = fault::sites_to_string(fc.site_mask);
  Json::Obj injected;
  for (std::size_t i = 0; i < fault::kSiteCount; ++i) {
    const auto s = static_cast<fault::Site>(i);
    injected[fault::site_name(s)] = fault::injected(s);
  }
  flt["injected"] = Json(std::move(injected));
  flt["total"] = fault::injected_total();
  out["fault"] = Json(std::move(flt));
  const plan::PlanCache::Stats ps = planner_.cache_stats();
  Json::Obj planner;
  planner["enabled"] = planner_.enabled();
  planner["profile"] = planner_.profile().id;
  planner["threads"] = static_cast<std::int64_t>(planner_.threads());
  planner["plan_cache_hits"] = ps.hits;
  planner["plan_cache_misses"] = ps.misses;
  planner["plan_cache_size"] = static_cast<std::int64_t>(ps.size);
  out["planner"] = Json(std::move(planner));
  Json::Obj queue;
  queue["capacity"] = queue_->capacity();
  queue["depth"] = queue_->size();
  queue["high_water"] = queue_->high_water();
  queue["admitted"] = queue_->admitted();
  queue["overloaded"] = queue_->overloaded();
  out["queue"] = Json(std::move(queue));
  Json::Obj reg;
  reg["arrays"] = registry_.count();
  out["registry"] = Json(std::move(reg));
  const exec::PoolStats es = exec::pool_stats();
  Json::Obj ex;
  ex["threads"] = static_cast<std::int64_t>(es.threads);
  ex["batches"] = es.batches;
  ex["submit_waits"] = es.submit_waits;
  ex["submit_wait_us"] = es.submit_wait_us;
  Json::Arr workers;
  for (const auto& lane : es.workers) {
    Json::Obj wk;
    wk["busy_us"] = lane.busy_us;
    wk["chunks"] = lane.chunks;
    workers.emplace_back(std::move(wk));
  }
  ex["workers"] = Json(std::move(workers));
  Json::Obj external;
  external["busy_us"] = es.external.busy_us;
  external["chunks"] = es.external.chunks;
  ex["external"] = Json(std::move(external));
  out["exec"] = Json(std::move(ex));
  const support::AllocStats as = support::alloc_stats();
  Json::Obj alloc;
  alloc["arena_reserved_bytes"] = as.arena_reserved_bytes;
  alloc["arena_high_water_bytes"] = as.arena_high_water_bytes;
  alloc["pool_hits"] = as.pool_hits;
  alloc["pool_misses"] = as.pool_misses;
  alloc["fast_path_hits"] = as.fast_path_hits;
  out["alloc"] = Json(std::move(alloc));
  Json::Obj trace;
  trace["enabled"] = obs::enabled();
  trace["dropped"] = obs::dropped_total();
  out["trace"] = Json(std::move(trace));
  out["index"] = indexes_.stats_json();
  out["uptime_ms"] = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  Json::Obj build;
  build["git"] = support::build_git_describe();
  build["compiler"] = support::build_compiler();
  out["build"] = Json(std::move(build));
  {
    // Front-end hooks (set_extra_stats): the TCP server contributes its
    // transport counters here so `stats` tells one story per process.
    std::lock_guard<std::mutex> lock(extra_stats_mu_);
    for (const auto& [key, fn] : extra_stats_) out[key] = fn();
  }
  return Json(std::move(out));
}

}  // namespace pmonge::serve
