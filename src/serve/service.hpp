// The long-lived in-process query service: registry + admission queue +
// batcher + sharded result cache + metrics, behind a one-line-in /
// one-line-out NDJSON API (serve/protocol.hpp).  pmonge-serve
// (serve/main.cpp) is the stdin/stdout front-end; tests and embedders
// use the class directly.
//
// Plumbing (docs/serving.md has the full picture):
//
//   submit(line) --parse--> control op?  handled synchronously
//                       \-> query op --> AdmissionQueue (bounded; full =>
//                            immediate `overloaded` rejection)
//   worker thread:  pop_batch(batch_max) --> expired deadlines answered
//                   `deadline_expired` --> Batcher coalesces the rest into
//                   engine runs --> promises fulfilled
//
// Determinism guarantee: the bytes of every query response depend only on
// the request and the registered operand -- not on PMONGE_THREADS, not on
// batching on/off, not on cache warm/cold, not on what shared the batch,
// not on the planner toggle, the loaded cost profile, or the plan cache.
// `stats` and `explain` are the deliberate exceptions (they report live
// counters / measured timings).
//
// Deadline-aware admission: when the planner is on and a request carries
// a deadline, submit() compares the plan's predicted latency against it
// and answers `deadline_unmeetable` immediately -- the request never
// enters the queue or the engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "index/index.hpp"
#include "plan/cost_model.hpp"
#include "plan/planner.hpp"
#include "pram/machine.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace pmonge::serve {

struct ServiceOptions {
  std::size_t queue_capacity = 1024;  // admission bound
  std::size_t batch_max = 64;         // max requests per worker batch
  std::size_t cache_capacity = 4096;  // cached results; 0 disables
  std::size_t cache_shards = 8;
  bool coalesce = true;               // batching layer on/off
  pram::Model model = pram::Model::CRCW_COMMON;
  std::int64_t default_deadline_ms = -1;  // applied when a request has none
  std::size_t max_register_cells = std::size_t{1} << 24;  // register guard
  bool planner = true;                // adaptive execution planner on/off
  plan::CostProfile profile = plan::builtin_profile();  // cost-model constants
  ResilienceOptions resilience;       // retry / timeout / breaker knobs
  // Zero-allocation cached-hit path (serve/codec.hpp): canonicalize the
  // line in place, probe the cache, splice the cached bytes into the
  // response -- no DOM, no queue, no worker hand-off.  Off is the
  // pre-codec behavior; responses are byte-identical either way (the
  // test_codec golden run asserts it), so the toggle exists for A/B
  // benchmarking and bisection, not semantics.
  bool fast_path = true;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// A response consumer.  Invoked exactly once per submitted line --
  /// on the submitting thread for control ops and rejections, on the
  /// worker thread for query ops.  Must be copyable (the service keeps
  /// a copy across the admission hand-off) and must not throw.
  using ResponseCallback = std::function<void(std::string)>;

  /// Submit one request line, callback form: the transport front-ends'
  /// entry point (the TCP server enqueues the response into the owning
  /// connection from here).  Thread-safe.
  void submit_cb(std::string line, ResponseCallback done);

  /// Submit one request line.  Control ops resolve before returning;
  /// query ops resolve when the worker answers (immediately with
  /// `overloaded` if the admission queue is full).  Thread-safe.
  std::future<std::string> submit(std::string line);

  /// Synchronous single request.
  std::string request(const std::string& line);

  /// Zero-allocation cached-hit attempt: if `line` is a well-formed
  /// query (no deadline/trace fields) whose canonical signature is in
  /// the result cache, appends the full response (no newline) to `out`
  /// and returns true.  False means "not served" -- submit the line
  /// through submit_cb/submit as usual; nothing was consumed or counted.
  /// `out` is untouched on false.  Thread-safe; transport front-ends
  /// call this inline before paying for the queue hand-off.
  bool try_serve_fast(std::string_view line, std::string& out);

  /// Submit all lines, then wait; responses align with `lines`.
  std::vector<std::string> request_batch(const std::vector<std::string>& lines);

  /// Test/bench hook: hold the worker so submissions accumulate and pop
  /// as one coalesced batch on resume().  Deadlines keep ticking.
  void pause();
  void resume();

  const ServiceOptions& options() const { return opts_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const { return queue_->size(); }

  /// Register an extra top-level section for the `stats` op (and the
  /// Prometheus exposition derived from it).  The TCP front-end hooks
  /// its transport counters in as "rpc".  Re-registering a key replaces
  /// it.  Thread-safe; `fn` is called on the stats-reading thread.
  void set_extra_stats(const std::string& key, std::function<Json()> fn);

 private:
  struct Pending {
    Request req;
    ResponseCallback done;
  };

  std::string handle_control(const Request& req);
  Json stats_json() const;
  void worker_loop();

  ServiceOptions opts_;
  Registry registry_;
  ShardedLruCache cache_;
  ServiceMetrics metrics_;
  plan::Planner planner_;
  index::IndexManager indexes_;  // before batcher_: passed by reference
  Batcher batcher_;
  std::unique_ptr<AdmissionQueue<Pending>> queue_;
  mutable std::mutex extra_stats_mu_;
  std::vector<std::pair<std::string, std::function<Json()>>> extra_stats_;
  std::chrono::steady_clock::time_point start_;  // for stats uptime_ms
  std::thread worker_;
};

}  // namespace pmonge::serve
