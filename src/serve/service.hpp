// The long-lived in-process query service: registry + admission queue +
// batcher + sharded result cache + metrics, behind a one-line-in /
// one-line-out NDJSON API (serve/protocol.hpp).  pmonge-serve
// (serve/main.cpp) is the stdin/stdout front-end; tests and embedders
// use the class directly.
//
// Plumbing (docs/serving.md has the full picture):
//
//   submit(line) --parse--> control op?  handled synchronously
//                       \-> query op --> AdmissionQueue (bounded; full =>
//                            immediate `overloaded` rejection)
//   worker thread:  pop_batch(batch_max) --> expired deadlines answered
//                   `deadline_expired` --> Batcher coalesces the rest into
//                   engine runs --> promises fulfilled
//
// Determinism guarantee: the bytes of every query response depend only on
// the request and the registered operand -- not on PMONGE_THREADS, not on
// batching on/off, not on cache warm/cold, not on what shared the batch,
// not on the planner toggle, the loaded cost profile, or the plan cache.
// `stats` and `explain` are the deliberate exceptions (they report live
// counters / measured timings).
//
// Deadline-aware admission: when the planner is on and a request carries
// a deadline, submit() compares the plan's predicted latency against it
// and answers `deadline_unmeetable` immediately -- the request never
// enters the queue or the engine.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "plan/cost_model.hpp"
#include "plan/planner.hpp"
#include "pram/machine.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace pmonge::serve {

struct ServiceOptions {
  std::size_t queue_capacity = 1024;  // admission bound
  std::size_t batch_max = 64;         // max requests per worker batch
  std::size_t cache_capacity = 4096;  // cached results; 0 disables
  std::size_t cache_shards = 8;
  bool coalesce = true;               // batching layer on/off
  pram::Model model = pram::Model::CRCW_COMMON;
  std::int64_t default_deadline_ms = -1;  // applied when a request has none
  std::size_t max_register_cells = std::size_t{1} << 24;  // register guard
  bool planner = true;                // adaptive execution planner on/off
  plan::CostProfile profile = plan::builtin_profile();  // cost-model constants
  ResilienceOptions resilience;       // retry / timeout / breaker knobs
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one request line.  Control ops resolve before returning;
  /// query ops resolve when the worker answers (immediately with
  /// `overloaded` if the admission queue is full).  Thread-safe.
  std::future<std::string> submit(std::string line);

  /// Synchronous single request.
  std::string request(const std::string& line);

  /// Submit all lines, then wait; responses align with `lines`.
  std::vector<std::string> request_batch(const std::vector<std::string>& lines);

  /// Test/bench hook: hold the worker so submissions accumulate and pop
  /// as one coalesced batch on resume().  Deadlines keep ticking.
  void pause();
  void resume();

  const ServiceOptions& options() const { return opts_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const { return queue_->size(); }

 private:
  struct Pending {
    Request req;
    std::promise<std::string> promise;
  };

  std::string handle_control(const Request& req);
  Json stats_json() const;
  void worker_loop();

  ServiceOptions opts_;
  Registry registry_;
  ShardedLruCache cache_;
  ServiceMetrics metrics_;
  plan::Planner planner_;
  Batcher batcher_;
  std::unique_ptr<AdmissionQueue<Pending>> queue_;
  std::thread worker_;
};

}  // namespace pmonge::serve
