// Bump allocation for steady-state-allocation-free hot paths.
//
// An Arena hands out pointer-bumped storage from a chain of chunks and
// frees nothing until reset: allocation is an add + compare, deallocation
// is a no-op.  That is exactly the lifetime shape of per-call kernel
// scratch (src/exec/scratch.hpp) and per-request codec state
// (src/serve/codec.hpp): everything allocated inside a scope dies
// together when the scope ends, so the arena just rewinds.
//
// Scoped reset: Arena::Scope captures the bump position at construction
// and rewinds to it at destruction.  Scopes must nest LIFO on the owning
// thread -- which they do for call-stack-shaped usage -- and memory
// handed out inside a scope must not be touched after the scope ends.
// Chunks are never moved or freed by a rewind, so pointers handed out by
// an *enclosing* scope stay valid across inner scopes.
//
// Accounting: every arena feeds three process-global counters (relaxed
// atomics, read by the serve `stats` endpoint's `alloc` section and the
// pmonge_alloc_* Prometheus families):
//   * reserved bytes: chunk storage currently held by live arenas;
//   * high-water bytes: the largest in-use (bumped) footprint any single
//     arena ever reached;
//   * the codec buffer-pool hit/miss and fast-path counters declared
//     below, advanced by the serve layer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pmonge::support {

// ---------------------------------------------------------------------------
// Process-global allocation-discipline counters (`stats` section `alloc`)
// ---------------------------------------------------------------------------

struct AllocStats {
  std::uint64_t arena_reserved_bytes = 0;    // chunk bytes held by live arenas
  std::uint64_t arena_high_water_bytes = 0;  // max in-use bytes of any arena
  std::uint64_t pool_hits = 0;    // pooled-buffer reuses without growth
  std::uint64_t pool_misses = 0;  // pooled-buffer acquisitions that grew
  std::uint64_t fast_path_hits = 0;  // requests served on the zero-alloc path
};

namespace detail {
struct AllocCounters {
  std::atomic<std::uint64_t> arena_reserved{0};
  std::atomic<std::uint64_t> arena_high_water{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_misses{0};
  std::atomic<std::uint64_t> fast_path_hits{0};
};

inline AllocCounters& alloc_counters() {
  static AllocCounters c;
  return c;
}

inline void bump_high_water(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  std::uint64_t cur = hw.load(std::memory_order_relaxed);
  while (v > cur &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Pool accounting hooks for the serve layer's reusable buffers: a hit is
/// a request served entirely from warm capacity, a miss had to grow.
inline void alloc_note_pool_hit() {
  detail::alloc_counters().pool_hits.fetch_add(1, std::memory_order_relaxed);
}
inline void alloc_note_pool_miss() {
  detail::alloc_counters().pool_misses.fetch_add(1, std::memory_order_relaxed);
}
inline void alloc_note_fast_path_hit() {
  detail::alloc_counters().fast_path_hits.fetch_add(
      1, std::memory_order_relaxed);
}

inline AllocStats alloc_stats() {
  const auto& c = detail::alloc_counters();
  AllocStats s;
  s.arena_reserved_bytes = c.arena_reserved.load(std::memory_order_relaxed);
  s.arena_high_water_bytes =
      c.arena_high_water.load(std::memory_order_relaxed);
  s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = c.pool_misses.load(std::memory_order_relaxed);
  s.fast_path_hits = c.fast_path_hits.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 1 << 12)
      : next_chunk_bytes_(first_chunk_bytes < 256 ? 256 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    detail::alloc_counters().arena_reserved.fetch_sub(
        reserved_, std::memory_order_relaxed);
  }

  /// `n` bytes aligned to `align` (a power of two).  Bumps the current
  /// chunk, or starts a new chunk at least twice the size of the last.
  void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    std::size_t off = (used_ + (align - 1)) & ~(align - 1);
    if (chunks_.empty() || off + n > chunks_[cur_].size) {
      grow(n + align);
      off = (used_ + (align - 1)) & ~(align - 1);
    }
    used_ = off + n;
    detail::bump_high_water(detail::alloc_counters().arena_high_water,
                            base_used_ + used_);
    return chunks_[cur_].data.get() + off;
  }

  /// Bytes bumped out across all chunks since the last full reset.
  std::size_t used() const { return base_used_ + used_; }
  /// Chunk bytes currently reserved (never shrinks until destruction).
  std::size_t reserved() const { return reserved_; }
  /// High-water of used() over this arena's lifetime.
  std::size_t high_water() const { return high_water_; }

  /// Rewind to empty, keeping every chunk for reuse.
  void reset() {
    if (!chunks_.empty()) {
      cur_ = 0;
      used_ = 0;
      base_used_ = 0;
    }
  }

  /// LIFO scope: rewinds the arena to its construction-time position.
  class Scope {
   public:
    explicit Scope(Arena& a)
        : arena_(a), chunk_(a.cur_), used_(a.used_), base_(a.base_used_) {}
    ~Scope() {
      arena_.high_water_ =
          arena_.used() > arena_.high_water_ ? arena_.used()
                                             : arena_.high_water_;
      arena_.cur_ = chunk_;
      arena_.used_ = used_;
      arena_.base_used_ = base_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    std::size_t chunk_;
    std::size_t used_;
    std::size_t base_;
  };

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t need) {
    if (!chunks_.empty()) {
      base_used_ += used_;
      used_ = 0;
    }
    // Advance into already-reserved chunks left behind by rewound scopes
    // before reserving fresh storage (too-small ones are skipped whole).
    while (cur_ + 1 < chunks_.size()) {
      ++cur_;
      if (chunks_[cur_].size >= need) return;
    }
    std::size_t sz = next_chunk_bytes_;
    while (sz < need) sz *= 2;
    next_chunk_bytes_ = sz * 2;
    Chunk c;
    c.data = std::unique_ptr<char[]>(new char[sz]);
    c.size = sz;
    reserved_ += sz;
    detail::alloc_counters().arena_reserved.fetch_add(
        sz, std::memory_order_relaxed);
    chunks_.push_back(std::move(c));
    cur_ = chunks_.size() - 1;
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;        // index of the chunk being bumped
  std::size_t used_ = 0;       // bytes bumped in the current chunk
  std::size_t base_used_ = 0;  // bytes bumped in earlier chunks
  std::size_t reserved_ = 0;
  std::size_t high_water_ = 0;
  std::size_t next_chunk_bytes_;
};

/// Minimal std::allocator-compatible adapter so standard containers can
/// live on an Arena (deallocate is a no-op; the owning scope rewinds).
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& a) : arena_(&a) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace pmonge::support
