#include "support/build_info.hpp"

#ifndef PMONGE_GIT_DESCRIBE
#define PMONGE_GIT_DESCRIBE "unknown"
#endif
#ifndef PMONGE_COMPILER
#define PMONGE_COMPILER "unknown"
#endif

namespace pmonge::support {

const std::string& build_git_describe() {
  static const std::string v = PMONGE_GIT_DESCRIBE;
  return v;
}

const std::string& build_compiler() {
  static const std::string v = PMONGE_COMPILER;
  return v;
}

}  // namespace pmonge::support
