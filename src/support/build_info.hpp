// Build provenance for the `stats` op and the Prometheus
// pmonge_build_info gauge: which source revision and compiler produced
// the running binary.  Values are baked in at configure time by
// src/CMakeLists.txt (PMONGE_GIT_DESCRIBE / PMONGE_COMPILER compile
// definitions on build_info.cpp); a tarball build without git reports
// "unknown" rather than failing.
#pragma once

#include <string>

namespace pmonge::support {

/// `git describe --always --dirty` of the tree at configure time.
const std::string& build_git_describe();

/// Compiler id and version, e.g. "GNU 13.2.0".
const std::string& build_compiler();

}  // namespace pmonge::support
