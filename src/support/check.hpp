// Lightweight precondition / invariant checking used across the library.
//
// PMONGE_REQUIRE  -- argument / precondition validation on public entry
//                    points; always on, throws std::invalid_argument.
// PMONGE_ASSERT   -- internal invariant; throws pmonge::InternalError so a
//                    broken simulation never silently returns wrong data.
// pmonge::ModelViolation -- thrown by the PRAM simulator when an algorithm
//                    breaks the memory rules of the machine model it claims
//                    to run on (e.g. a write conflict under CREW).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmonge {

/// Raised when an internal invariant of the library is violated.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Raised when a simulated algorithm violates the rules of the machine
/// model it is declared to run on (CREW write conflict, COMMON-CRCW
/// disagreeing writes, message sent along a non-existent network edge, ...).
class ModelViolation : public std::logic_error {
 public:
  explicit ModelViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}
[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace pmonge

#define PMONGE_REQUIRE(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::pmonge::detail::throw_require(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define PMONGE_ASSERT(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::pmonge::detail::throw_assert(#expr, __FILE__, __LINE__, msg); \
  } while (0)
