#include "support/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace pmonge {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "1";
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace pmonge
