// Tiny command-line flag parser shared by bench binaries and examples.
// Supports `--key=value`, `--key value` and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmonge {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pmonge
