// Environment-variable knob parsing shared by the execution engine and
// the test/bench harnesses (PMONGE_THREADS, PMONGE_GRAIN, PMONGE_FUZZ_SEED).
//
// All knobs are read-once at first use: the engine caches the parsed
// value so a mid-run setenv cannot make two halves of one computation
// disagree about a cutoff.  Malformed values fall back to the default
// rather than aborting -- a typo in an env var must never change results,
// only (at worst) performance.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace pmonge::support {

/// Parse a non-negative integer environment variable.  Returns nullopt
/// when unset, empty, or not a clean base-10 integer.
inline std::optional<std::uint64_t> env_uint(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

/// env_uint with a default and a lower clamp (knobs like thread counts
/// and grain sizes are meaningless at zero).
inline std::uint64_t env_uint_or(const char* name, std::uint64_t def,
                                 std::uint64_t lo = 0) {
  const auto v = env_uint(name);
  const std::uint64_t x = v.has_value() ? *v : def;
  return x < lo ? lo : x;
}

}  // namespace pmonge::support
