// Environment-variable knob parsing shared by the execution engine, the
// serve layer and the test/bench harnesses (PMONGE_THREADS, PMONGE_GRAIN,
// PMONGE_FUZZ_SEED, ...).
//
// All knobs are read-once at first use: the engine caches the parsed
// value so a mid-run setenv cannot make two halves of one computation
// disagree about a cutoff.  Malformed values fail *loudly*: a knob the
// operator set but we cannot honor must not be silently replaced by a
// default -- a typo'd PMONGE_THREADS=1O would otherwise change performance
// (or, for PMONGE_FUZZ_SEED, the test corpus) without any indication.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

namespace pmonge::support {

/// Parse a non-negative integer environment variable.  Returns nullopt
/// when the variable is unset or empty; throws std::invalid_argument,
/// quoting the offending string, when it is set but is not a clean
/// non-negative base-10 integer (signs, whitespace, trailing junk and
/// out-of-range values all reject).
inline std::optional<std::uint64_t> env_uint(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      throw std::invalid_argument(
          std::string("malformed ") + name + "=\"" + raw +
          "\": expected a non-negative base-10 integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno == ERANGE || end == raw || *end != '\0') {
    throw std::invalid_argument(std::string("malformed ") + name + "=\"" +
                                raw + "\": value out of range");
  }
  return static_cast<std::uint64_t>(v);
}

/// env_uint with a default and a lower clamp (knobs like thread counts
/// and grain sizes are meaningless at zero).  Unset/empty uses the
/// default; malformed still throws.
inline std::uint64_t env_uint_or(const char* name, std::uint64_t def,
                                 std::uint64_t lo = 0) {
  const auto v = env_uint(name);
  const std::uint64_t x = v.has_value() ? *v : def;
  return x < lo ? lo : x;
}

}  // namespace pmonge::support
