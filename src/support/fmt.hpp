// Allocation-free numeric formatting helpers for the serve codec and the
// observability exposition: append decimal integers / %.17g doubles
// directly into a caller-owned buffer, with no std::to_string /
// stringstream temporaries on the way.
//
// Byte compatibility is the contract: append_int produces exactly the
// bytes std::to_string(int64) produces (decimal int64 formatting is
// unique), and append_double produces exactly snprintf("%.17g") --
// the canonical-JSON number formats of serve/json.hpp, which cache keys
// and golden transcripts are pinned to.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace pmonge::support {

namespace detail {
// Two-digit pairs "00".."99": halves the division count of the digit
// loop and keeps the whole conversion in a stack buffer.
inline constexpr char kDigitPairs[201] =
    "00010203040506070809"
    "10111213141516171819"
    "20212223242526272829"
    "30313233343536373839"
    "40414243444546474849"
    "50515253545556575859"
    "60616263646566676869"
    "70717273747576777879"
    "80818283848586878889"
    "90919293949596979899";
}  // namespace detail

/// Decimal digits of `v` into `buf` (no terminator); returns the length.
/// `buf` must hold at least 20 bytes.
inline std::size_t format_uint(std::uint64_t v, char* buf) {
  char tmp[20];
  std::size_t n = 0;
  while (v >= 100) {
    const std::size_t d = static_cast<std::size_t>(v % 100) * 2;
    v /= 100;
    tmp[n++] = detail::kDigitPairs[d + 1];
    tmp[n++] = detail::kDigitPairs[d];
  }
  if (v >= 10) {
    const std::size_t d = static_cast<std::size_t>(v) * 2;
    tmp[n++] = detail::kDigitPairs[d + 1];
    tmp[n++] = detail::kDigitPairs[d];
  } else {
    tmp[n++] = static_cast<char>('0' + v);
  }
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

inline void append_uint(std::string& out, std::uint64_t v) {
  char buf[20];
  out.append(buf, format_uint(v, buf));
}

inline void append_int(std::string& out, std::int64_t v) {
  char buf[21];
  std::size_t n = 0;
  std::uint64_t mag;
  if (v < 0) {
    buf[n++] = '-';
    // Two's-complement negate in unsigned space so INT64_MIN is exact.
    mag = ~static_cast<std::uint64_t>(v) + 1;
  } else {
    mag = static_cast<std::uint64_t>(v);
  }
  n += format_uint(mag, buf + n);
  out.append(buf, n);
}

/// %.17g, the canonical-JSON double format (finite inputs only; the
/// JSON layer maps non-finite values to null before formatting).
inline void append_double(std::string& out, double d) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", d);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace pmonge::support
