// Concurrency-safe counter and log-bucketed histogram primitives for the
// serve layer's service metrics (per-endpoint request counts and latency
// distributions).
//
// Both types are safe for concurrent mutation from any number of threads
// (plain relaxed atomics -- the counters are monotone and independent, so
// no ordering is needed), and snapshots are *consistent enough* for
// monitoring: a snapshot taken concurrently with updates may miss in-
// flight increments but never tears a single counter.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace pmonge::support {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t k = 1) { n_.fetch_add(k, std::memory_order_relaxed); }
  std::uint64_t value() const { return n_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> n_{0};
};

/// Histogram over non-negative integer samples (microseconds, batch
/// sizes, ...) with power-of-two buckets: bucket b holds samples whose
/// bit width is b, i.e. values in [2^(b-1), 2^b).  64 buckets cover the
/// whole uint64 range, so record() never clips.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width in [0, 64]

  void record(std::uint64_t x) {
    bucket_[std::bit_width(x)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]) of
  /// the samples recorded so far; 0 when empty.
  ///
  /// Semantics, precisely: q is clamped to [0, 1] and mapped to the rank
  /// floor(q * (count - 1)) -- the index the quantile sample would have
  /// in sorted order.  The return value is the *inclusive upper edge* of
  /// the bucket holding that rank: bucket b spans [2^(b-1), 2^b), so the
  /// bound is 2^b - 1 (bucket 0, holding only the sample 0, reports 0;
  /// bucket 64 reports ~0).  There is no intra-bucket interpolation: the
  /// recorded samples within a bucket are not kept, only the count, so
  /// any point estimate inside the bucket would be invented precision.
  /// The true quantile is guaranteed <= the reported bound and > half of
  /// it.  Consequences worth knowing (and unit-tested):
  ///   * empty histogram -> 0 for every q;
  ///   * a single sample -> every q maps to rank 0, so every q reports
  ///     that sample's bucket edge (e.g. one sample of 100 -> 127);
  ///   * all samples in one bucket -> q = 0 and q = 1 agree exactly.
  /// Resolution is a factor of two -- that is the deal with log buckets,
  /// and it is plenty for latency monitoring.
  std::uint64_t quantile_bound(double q) const {
    const std::uint64_t c = count();
    if (c == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(c - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += bucket_[b].load(std::memory_order_relaxed);
      if (seen > rank) {
        return b == 0 ? 0 : (b >= 64 ? ~0ull : (1ull << b) - 1);
      }
    }
    return ~0ull;  // racing updates; report the widest bound
  }

  /// Per-bucket counts (index = bit width of the samples it holds).
  std::vector<std::uint64_t> buckets() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out[b] = bucket_[b].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> bucket_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace pmonge::support
