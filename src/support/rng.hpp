// Deterministic, fast pseudo-random generator (xoshiro256**) used by all
// generators and randomized tests so that every run is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace pmonge {

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PMONGE_REQUIRE(lo <= hi, "empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for span << 2^64 and tests do not depend on exactness.
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    PMONGE_REQUIRE(lo < hi, "empty range");
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pmonge
