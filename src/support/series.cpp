#include "support/series.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pmonge {

int ceil_lg(std::uint64_t x) {
  PMONGE_REQUIRE(x >= 1, "ceil_lg of 0");
  int lg = 0;
  std::uint64_t p = 1;
  while (p < x) {
    p <<= 1;
    ++lg;
  }
  return lg;
}

int floor_lg(std::uint64_t x) {
  PMONGE_REQUIRE(x >= 1, "floor_lg of 0");
  int lg = 0;
  while (x > 1) {
    x >>= 1;
    ++lg;
  }
  return lg;
}

int ceil_lglg(std::uint64_t x) {
  if (x <= 2) return 0;
  return ceil_lg(static_cast<std::uint64_t>(ceil_lg(x)));
}

std::uint64_t next_pow2(std::uint64_t x) {
  if (x <= 1) return 1;
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

bool is_pow2(std::uint64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

namespace {
double lg(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

Shape shape_const() {
  return {"1", [](double) { return 1.0; }};
}
Shape shape_lg() {
  return {"lg n", [](double n) { return lg(n); }};
}
Shape shape_lglg() {
  return {"lglg n", [](double n) { return std::max(1.0, std::log2(lg(n))); }};
}
Shape shape_lg_lglg() {
  return {"lg n lglg n",
          [](double n) { return lg(n) * std::max(1.0, std::log2(lg(n))); }};
}
Shape shape_lg2() {
  return {"lg^2 n", [](double n) { return lg(n) * lg(n); }};
}
Shape shape_linear() {
  return {"n", [](double n) { return n; }};
}
Shape shape_nlg() {
  return {"n lg n", [](double n) { return n * lg(n); }};
}
Shape shape_n2() {
  return {"n^2", [](double n) { return n * n; }};
}

ShapeFit fit_shape(const std::vector<SeriesPoint>& pts, const Shape& shape) {
  ShapeFit fit;
  std::vector<double> ratios;
  ratios.reserve(pts.size());
  for (const auto& p : pts) {
    const double s = shape.f(p.n);
    if (s <= 0) continue;
    ratios.push_back(p.value / s);
  }
  if (ratios.empty()) return fit;
  double sum = 0;
  for (double r : ratios) sum += r;
  fit.constant = sum / static_cast<double>(ratios.size());
  fit.ratio_first = ratios.front();
  fit.ratio_last = ratios.back();
  if (fit.constant > 0) {
    for (double r : ratios) {
      fit.max_rel_dev =
          std::max(fit.max_rel_dev, std::abs(r - fit.constant) / fit.constant);
    }
  }
  return fit;
}

bool matches_shape(const std::vector<SeriesPoint>& pts, const Shape& shape,
                   double tol) {
  const ShapeFit fit = fit_shape(pts, shape);
  return fit.constant > 0 && fit.max_rel_dev <= tol;
}

}  // namespace pmonge
