// Shape analysis for complexity series.
//
// The paper's evaluation consists of asymptotic bounds (Tables 1.1-1.3).
// Reproducing them means showing that a *measured* series -- charged
// parallel steps, work, communication rounds -- scales like the claimed
// shape.  This header provides the shape functions used throughout the
// benchmark harness and a least-squares fit `measured ~= c * shape(n)`
// whose relative residual tells us whether the shape holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pmonge {

/// ceil(lg x) for x >= 1 (lg 1 == 0); the discrete logarithm used by all
/// charged-step bounds in the paper.
int ceil_lg(std::uint64_t x);

/// floor(lg x) for x >= 1.
int floor_lg(std::uint64_t x);

/// ceil(lg lg x); defined as 0 for x <= 2.
int ceil_lglg(std::uint64_t x);

/// Smallest power of two >= x.
std::uint64_t next_pow2(std::uint64_t x);

/// True if x is a power of two (x >= 1).
bool is_pow2(std::uint64_t x);

/// Integer floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x);

/// A named asymptotic shape, e.g. "lg n" -> double(n).
struct Shape {
  std::string name;
  std::function<double(double)> f;
};

Shape shape_const();
Shape shape_lg();
Shape shape_lglg();
Shape shape_lg_lglg();  // lg n * lglg n
Shape shape_lg2();      // lg^2 n
Shape shape_linear();
Shape shape_nlg();      // n lg n
Shape shape_n2();       // n^2

/// One measured point of a complexity series.
struct SeriesPoint {
  double n = 0;      // problem size
  double value = 0;  // measured quantity (steps, work, ...)
};

/// Result of fitting value ~= c * shape(n) by least squares on the ratios.
struct ShapeFit {
  double constant = 0;      // fitted c (mean of value/shape(n))
  double max_rel_dev = 0;   // max_i |value_i - c*shape(n_i)| / (c*shape(n_i))
  double ratio_first = 0;   // value/shape at smallest n
  double ratio_last = 0;    // value/shape at largest n
};

/// Fit a series against a shape. Points with shape(n) == 0 are skipped.
ShapeFit fit_shape(const std::vector<SeriesPoint>& pts, const Shape& shape);

/// Convenience: does the series scale like `shape` within tolerance `tol`
/// on the relative deviation of the ratio series?  Used by tests that pin
/// the complexity of the implementations.
bool matches_shape(const std::vector<SeriesPoint>& pts, const Shape& shape,
                   double tol);

}  // namespace pmonge
