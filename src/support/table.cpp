#include "support/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace pmonge {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PMONGE_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  PMONGE_REQUIRE(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(std::uint64_t v) {
  // Group digits with ',' for readability: 1234567 -> "1,234,567".
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string Table::fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string sep;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) sep += "  ";
    sep += std::string(width[c], '-');
  }
  os << sep << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace pmonge
