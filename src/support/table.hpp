// Minimal aligned-table printer for the benchmark harness.  Every bench
// binary prints paper-style rows (model / n / measured steps / bound /
// ratio) through this class so output stays uniform and grep-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmonge {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formatting helpers.
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits = 2);

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmonge
