// Application tests: all four Section 1.3 applications against their
// brute-force oracles on randomized and adversarial instances, plus the
// complexity shapes the paper claims for each.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/empty_rect.hpp"
#include "apps/largest_rect.hpp"
#include "apps/polygon_neighbors.hpp"
#include "apps/string_edit.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::apps {
namespace {

using pram::Machine;
using pram::Model;

// --- Application 2: largest two-corner rectangle -----------------------

TEST(LargestRect, MatchesBruteRandom) {
  Rng rng(11);
  for (int t = 0; t < 25; ++t) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 120));
    const auto pts = random_points(n, rng);
    Machine mach(Model::CRCW_COMMON);
    const auto got = largest_rect_par(mach, pts);
    const auto want = largest_rect_brute(pts);
    EXPECT_EQ(got.area, want.area) << "n=" << n;
    // Returned pair must realize the area.
    EXPECT_EQ(std::abs(got.a.x - got.b.x) * std::abs(got.a.y - got.b.y),
              got.area);
  }
}

TEST(LargestRect, MatchesBruteClusteredAndAdversarial) {
  Rng rng(12);
  for (int t = 0; t < 10; ++t) {
    const auto pts = clustered_points(80, rng);
    Machine mach(Model::CRCW_COMMON);
    EXPECT_EQ(largest_rect_par(mach, pts).area,
              largest_rect_brute(pts).area);
  }
  const auto anti = antidiagonal_points(90);
  Machine mach(Model::CRCW_COMMON);
  EXPECT_EQ(largest_rect_par(mach, anti).area,
            largest_rect_brute(anti).area);
}

TEST(LargestRect, DegenerateInputs) {
  Machine mach(Model::CRCW_COMMON);
  // Two identical points: zero area.
  EXPECT_EQ(largest_rect_par(mach, {{5, 5}, {5, 5}}).area, 0);
  // Collinear (same y): zero area.
  EXPECT_EQ(largest_rect_par(mach, {{0, 3}, {4, 3}, {9, 3}}).area, 0);
  EXPECT_THROW(largest_rect_par(mach, {{0, 0}}), std::invalid_argument);
}

TEST(LargestRect, StaircasesAreDominanceLayers) {
  Rng rng(13);
  const auto pts = random_points(60, rng);
  const auto st = dominance_staircases(pts);
  for (const auto& p : st.minimal) {
    for (const auto& q : pts) {
      EXPECT_FALSE((q.x <= p.x && q.y < p.y) || (q.x < p.x && q.y <= p.y))
          << "dominated minimal point";
    }
  }
  for (std::size_t i = 1; i < st.minimal.size(); ++i) {
    EXPECT_GT(st.minimal[i].x, st.minimal[i - 1].x);
    EXPECT_LT(st.minimal[i].y, st.minimal[i - 1].y);
  }
}

TEST(LargestRect, DepthIsLogarithmic) {
  // The paper claims Theta(lg n) time with n processors (optimal CRCW).
  Rng rng(14);
  std::vector<SeriesPoint> pts_series;
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto pts = random_points(n, rng);
    Machine mach(Model::CRCW_COMMON);
    largest_rect_par(mach, pts);
    pts_series.push_back({static_cast<double>(n),
                          static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(pts_series, shape_lg(), 0.5));
}

// --- Application 1: largest empty rectangle ----------------------------

TEST(EmptyRect, MatchesBruteRandom) {
  Rng rng(21);
  const Rect bound{0, 0, 100, 80};
  for (int t = 0; t < 20; ++t) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto pts = random_dpoints(n, rng, bound);
    Machine mach(Model::CRCW_COMMON);
    const auto got = largest_empty_rect_par(mach, pts, bound);
    const auto want = largest_empty_rect_brute(pts, bound);
    EXPECT_NEAR(got.area(), want.area(), 1e-6 * std::max(1.0, want.area()))
        << "n=" << n;
    EXPECT_TRUE(rect_is_empty(got, pts, bound));
  }
}

TEST(EmptyRect, DiagonalAdversary) {
  const Rect bound{0, 0, 64, 64};
  for (std::size_t n : {5u, 17u, 33u}) {
    const auto pts = diagonal_dpoints(n, bound);
    Machine mach(Model::CRCW_COMMON);
    const auto got = largest_empty_rect_par(mach, pts, bound);
    const auto want = largest_empty_rect_brute(pts, bound);
    EXPECT_NEAR(got.area(), want.area(), 1e-6);
    EXPECT_TRUE(rect_is_empty(got, pts, bound));
  }
}

TEST(EmptyRect, NoPointsGivesWholeBound) {
  const Rect bound{1, 2, 9, 7};
  Machine mach(Model::CREW);
  const auto got = largest_empty_rect_par(mach, {}, bound);
  EXPECT_NEAR(got.area(), bound.area(), 1e-12);
}

TEST(EmptyRect, DepthIsPolylog) {
  // Paper: O(lg^2 n) CRCW time.
  Rng rng(22);
  const Rect bound{0, 0, 1000, 1000};
  std::vector<SeriesPoint> series;
  for (std::size_t n : {64u, 256u, 1024u}) {
    const auto pts = random_dpoints(n, rng, bound);
    Machine mach(Model::CRCW_COMMON);
    largest_empty_rect_par(mach, pts, bound);
    series.push_back({static_cast<double>(n),
                      static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(series, shape_lg2(), 0.6))
      << series.front().value << " .. " << series.back().value;
}

// --- Application 3: polygon neighbors ----------------------------------

class Neighbors : public ::testing::TestWithParam<NeighborKind> {};

TEST_P(Neighbors, MatchesBruteRandom) {
  Rng rng(31 + static_cast<int>(GetParam()));
  for (int t = 0; t < 12; ++t) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(3, 24));
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 24));
    const auto [P, Q] = geom::random_disjoint_polygons(m, n, rng);
    Machine mach(Model::CRCW_COMMON);
    const auto got = neighbors_par(mach, P, Q, GetParam());
    const auto want = neighbors_brute(P, Q, GetParam());
    for (std::size_t i = 0; i < m; ++i) {
      if (want.neighbor[i] == NeighborResult::npos) {
        EXPECT_EQ(got.neighbor[i], NeighborResult::npos) << i;
        continue;
      }
      ASSERT_NE(got.neighbor[i], NeighborResult::npos) << i;
      EXPECT_NEAR(got.distance[i], want.distance[i], 1e-9) << i;
      // The returned neighbor must satisfy the kind's predicate.
      const bool vis = GetParam() == NeighborKind::NearestVisible ||
                       GetParam() == NeighborKind::FarthestVisible;
      EXPECT_EQ(geom::visible(P, i, Q, got.neighbor[i]), vis) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Neighbors,
                         ::testing::Values(NeighborKind::NearestVisible,
                                           NeighborKind::NearestInvisible,
                                           NeighborKind::FarthestVisible,
                                           NeighborKind::FarthestInvisible),
                         [](const auto& info) {
                           std::string s = neighbor_kind_name(info.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(NeighborsFastPath, BlocksAreCertifiedAndAccounted) {
  // The distance array between two *separate* convex polygons is not
  // globally inverse-Monge (unlike Figure 1.1's single-cycle chains), so
  // each chain block is certified at run time and falls back to a
  // metered scan when the certificate fails.  Every block must be
  // accounted one way or the other, and results stay exact either way
  // (MatchesBruteRandom above).  On small well-overlapping polygons the
  // certified fast path fires for a meaningful share of blocks.
  Rng rng(35);
  std::size_t fast = 0, slow = 0;
  for (int t = 0; t < 10; ++t) {
    const auto [P, Q] = geom::random_disjoint_polygons(24, 24, rng);
    Machine mach(Model::CRCW_COMMON);
    std::size_t f = 0, s = 0;
    neighbors_par(mach, P, Q, NeighborKind::NearestInvisible, &f, &s);
    EXPECT_EQ(f + s, 4u) << "every chain block accounted";
    fast += f;
    slow += s;
  }
  EXPECT_GT(fast, 0u);
  EXPECT_GT(slow, 0u);
}

// --- Application 4: string editing -------------------------------------

std::string random_string(std::size_t len, std::size_t alphabet, Rng& rng) {
  std::string s(len, 'a');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng.uniform_int(
                                    0, static_cast<std::int64_t>(alphabet) -
                                           1));
  }
  return s;
}

TEST(StringEdit, SequentialUnitDistanceKnownValues) {
  EditCosts unit;
  EXPECT_EQ(edit_distance_seq("kitten", "sitting", unit).cost, 3);
  EXPECT_EQ(edit_distance_seq("", "abc", unit).cost, 3);
  EXPECT_EQ(edit_distance_seq("abc", "", unit).cost, 3);
  EXPECT_EQ(edit_distance_seq("same", "same", unit).cost, 0);
}

TEST(StringEdit, ScriptsAreValidAndCostConsistent) {
  Rng rng(41);
  EditCosts costs;
  costs.ins = 2;
  costs.del = 3;
  costs.sub = 4;
  for (int t = 0; t < 20; ++t) {
    const auto x = random_string(
        static_cast<std::size_t>(rng.uniform_int(0, 30)), 4, rng);
    const auto y = random_string(
        static_cast<std::size_t>(rng.uniform_int(0, 30)), 4, rng);
    const auto res = edit_distance_seq(x, y, costs);
    EXPECT_EQ(evaluate_script(x, y, res.script, costs), res.cost);
    EXPECT_EQ(apply_script(x, y, res.script), y);
  }
}

TEST(StringEdit, ParallelMatchesSequentialRandom) {
  Rng rng(42);
  for (int t = 0; t < 15; ++t) {
    const auto x = random_string(
        1 + static_cast<std::size_t>(rng.uniform_int(0, 24)), 3, rng);
    const auto y = random_string(
        static_cast<std::size_t>(rng.uniform_int(0, 24)), 3, rng);
    EditCosts costs;
    costs.ins = rng.uniform_int(1, 5);
    costs.del = rng.uniform_int(1, 5);
    costs.sub = rng.uniform_int(1, 9);
    Machine mach(Model::CREW);
    EXPECT_EQ(edit_distance_par(mach, x, y, costs),
              edit_distance_seq(x, y, costs).cost)
        << x << " -> " << y;
  }
}

TEST(StringEdit, ParallelPerSymbolCostTables) {
  Rng rng(43);
  EditCosts costs;
  costs.ins_table.assign(256, 1);
  costs.del_table.assign(256, 1);
  for (int c = 0; c < 256; ++c) {
    costs.ins_table[static_cast<std::size_t>(c)] = 1 + (c % 3);
    costs.del_table[static_cast<std::size_t>(c)] = 1 + (c % 2);
  }
  for (int t = 0; t < 10; ++t) {
    const auto x = random_string(12, 5, rng);
    const auto y = random_string(18, 5, rng);
    Machine mach(Model::CREW);
    EXPECT_EQ(edit_distance_par(mach, x, y, costs),
              edit_distance_seq(x, y, costs).cost);
  }
}

TEST(StringEdit, EmptyXParallel) {
  Machine mach(Model::CREW);
  EditCosts unit;
  EXPECT_EQ(edit_distance_par(mach, "", "abcd", unit), 4);
}

TEST(StringEdit, DepthIsLgMTimesLgN) {
  // Paper: O(lg n lg m) (on an nm-processor machine).
  Rng rng(44);
  std::vector<SeriesPoint> series;
  EditCosts unit;
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto x = random_string(n, 4, rng);
    const auto y = random_string(n, 4, rng);
    Machine mach(Model::CREW);
    edit_distance_par(mach, x, y, unit);
    series.push_back({static_cast<double>(n),
                      static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(series, shape_lg2(), 0.5))
      << series.front().value << " .. " << series.back().value;
}

TEST(StringEdit, LcsViaGridDag) {
  EXPECT_EQ(lcs_length_seq("ABCBDAB", "BDCABA"), 4u);  // BCAB / BDAB
  EXPECT_EQ(lcs_length_seq("", "xyz"), 0u);
  Rng rng(47);
  for (int t = 0; t < 12; ++t) {
    const auto x = random_string(
        1 + static_cast<std::size_t>(rng.uniform_int(0, 20)), 3, rng);
    const auto y = random_string(
        1 + static_cast<std::size_t>(rng.uniform_int(0, 20)), 3, rng);
    Machine mach(Model::CREW);
    EXPECT_EQ(lcs_length_par(mach, x, y), lcs_length_seq(x, y))
        << x << " | " << y;
  }
}

TEST(StringEdit, HypercubeVariantMatchesSequential) {
  // The paper's Application 4 proper: string editing on hypercubic
  // networks.  Must agree with Wagner-Fischer on every topology.
  Rng rng(45);
  EditCosts unit;
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::CubeConnectedCycles,
        net::TopologyKind::ShuffleExchange}) {
    for (int t = 0; t < 4; ++t) {
      const auto x = random_string(
          1 + static_cast<std::size_t>(rng.uniform_int(0, 12)), 3, rng);
      const auto y = random_string(
          static_cast<std::size_t>(rng.uniform_int(0, 12)), 3, rng);
      const auto hc = edit_distance_hc(kind, x, y, unit);
      EXPECT_EQ(hc.cost, edit_distance_seq(x, y, unit).cost)
          << net::topology_name(kind) << " " << x << "->" << y;
      EXPECT_GT(hc.steps, 0u);
    }
  }
}

TEST(StringEdit, HypercubeDepthPolylogAndEmulationConstant) {
  Rng rng(46);
  EditCosts unit;
  std::vector<double> hc_steps;
  for (std::size_t n : {8u, 16u, 32u}) {
    const auto x = random_string(n, 4, rng);
    const auto y = random_string(n, 4, rng);
    const auto hc =
        edit_distance_hc(net::TopologyKind::Hypercube, x, y, unit);
    const auto se =
        edit_distance_hc(net::TopologyKind::ShuffleExchange, x, y, unit);
    EXPECT_EQ(hc.cost, se.cost);
    EXPECT_LE(se.steps, 4 * hc.steps);  // constant-slowdown emulation
    hc_steps.push_back(static_cast<double>(hc.steps));
  }
  // Polylog growth (lg m levels x lg^2 n combines): from n=8 to n=32 the
  // lg^3 envelope grows (5/3)^3 ~ 4.6x while the sequential work grows
  // 16x; measured ~3.1x.
  EXPECT_LE(hc_steps.back(), 5.0 * hc_steps.front());
}

TEST(StringEdit, RankaSahniBoundFormulas) {
  // Monotone in p, and our O(lg n lg m) beats both at matching n.
  EXPECT_GT(ranka_sahni_time_n2p(1024, 1), ranka_sahni_time_n2p(1024, 64));
  EXPECT_GT(ranka_sahni_time_p2(1024, 1024 * 16),
            ranka_sahni_time_p2(1024, 1024 * 1024));
}

}  // namespace
}  // namespace pmonge::apps
