// Seeded chaos harness for the fault-injection layer (src/fault) and the
// serve stack's resilience machinery (retry / breaker / degradation;
// docs/robustness.md).
//
// The headline is the soak: for each seed, the SAME deterministic
// workload -- thousands of mixed queries in pause/resume bursts -- runs
// against a fault-free service and a faulted one (every site armed), and
// every response must be BYTE-IDENTICAL.  That is the serve layer's
// central contract under fire: faults may cost retries, degraded plans,
// poisoned-cache recomputes and latency, but they may never change an
// answer.  The soak also audits the books: no hangs (ctest TIMEOUT is
// the backstop), no errors, and the retry/degraded/fault counters
// consistent with the injection counters.
//
// Every seeded failure prints ONE copy-pastable reproduction command
// (bench/bench_util.hpp):
//
//   PMONGE_CHAOS_SEED=<s> PMONGE_CHAOS_RATE=<bp> ctest -R chaos
//       --output-on-failure
//
// Knobs (CI's nightly long soak turns them up):
//   PMONGE_CHAOS_SEEDS    soak seed count            (default 20)
//   PMONGE_CHAOS_QUERIES  queries per seed           (default 1000)
//   PMONGE_CHAOS_RATE     injection rate in bp       (default 200 = 2%)
//   PMONGE_CHAOS_SEED     run ONLY this seed (the repro knob)
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using serve::Json;
using serve::Service;
using serve::ServiceOptions;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// The engine must actually have workers for the pooled fault sites to
/// exist (CI runners can be 1-CPU); pin 8 for every test here.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = exec::num_threads();
    exec::set_num_threads(8);
    fault::disarm();
  }
  void TearDown() override {
    fault::disarm();
    exec::set_num_threads(saved_threads_);
  }

 private:
  std::size_t saved_threads_ = 1;
};

std::string chaos_repro(std::uint64_t seed, std::uint32_t rate_bp) {
  return bench::repro_line("PMONGE_CHAOS_SEED=" + std::to_string(seed) +
                               " PMONGE_CHAOS_RATE=" + std::to_string(rate_bp),
                           "chaos");
}

/// Unwrap {"ok":true,"result":{...}} and return result[key] as int;
/// ADD_FAILURE + 0 on anything unexpected.
std::int64_t result_int(const std::string& resp, const char* key) {
  const Json r = Json::parse(resp);
  const Json* ok = r.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    ADD_FAILURE() << "expected ok response, got: " << resp;
    return 0;
  }
  return r.find("result")->find(key)->as_int();
}

std::int64_t register_random(Service& s, const char* kind, std::size_t rows,
                             std::size_t cols, std::uint64_t seed) {
  const std::string req = std::string("{\"op\":\"register_random\",\"kind\":\"") +
                          kind + "\",\"rows\":" + std::to_string(rows) +
                          ",\"cols\":" + std::to_string(cols) +
                          ",\"seed\":" + std::to_string(seed) + "}";
  return result_int(s.request(req), "array");
}

const Json* stats_section(const Json& stats, const char* section) {
  const Json* r = stats.find("result");
  return r == nullptr ? nullptr : r->find(section);
}

std::int64_t section_int(const Json& stats, const char* section,
                         const char* key) {
  const Json* sec = stats_section(stats, section);
  if (sec == nullptr) return -1;
  const Json* v = sec->find(key);
  return v == nullptr ? -1 : v->as_int();
}

// ---------------------------------------------------------------------------
// Fault layer unit tests: determinism, inertness, loud knobs
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DisarmedIsInert) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::config().armed);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault::should_fire(fault::Site::ExecChunkFault));
  }
  EXPECT_EQ(fault::injected_total(), 0u);
}

TEST_F(ChaosTest, ArmedAtRateZeroNeverFires) {
  fault::arm(7, 0);
  EXPECT_TRUE(fault::armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault::should_fire(fault::Site::ServeGroupFault));
  }
  EXPECT_EQ(fault::injected_total(), 0u);
}

TEST_F(ChaosTest, FaultDecisionsDeterministic) {
  // The decision sequence per site is a pure function of (seed, site,
  // eval index): re-arming with the same seed replays it exactly.
  const auto sample = [](std::uint64_t seed) {
    fault::arm(seed, 5000);
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i) {
      fired.push_back(fault::should_fire(fault::Site::ExecChunkFault));
    }
    return fired;
  };
  const auto a = sample(42);
  const auto b = sample(42);
  EXPECT_EQ(a, b);
  const auto c = sample(43);
  EXPECT_NE(a, c);  // 256 coin flips colliding across seeds: never
  // Rate is honored to the right order of magnitude.
  fault::arm(9, 5000);
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    hits += fault::should_fire(fault::Site::PlanCorruptPlan) ? 1 : 0;
  }
  EXPECT_GT(hits, 700);
  EXPECT_LT(hits, 1300);
  EXPECT_EQ(fault::injected(fault::Site::PlanCorruptPlan),
            static_cast<std::uint64_t>(hits));
}

TEST_F(ChaosTest, SiteMaskGates) {
  fault::arm(5, 10000, 1u << static_cast<std::uint32_t>(
                           fault::Site::ServeCachePoison));
  EXPECT_TRUE(fault::should_fire(fault::Site::ServeCachePoison));
  EXPECT_FALSE(fault::should_fire(fault::Site::ExecChunkFault));
  EXPECT_FALSE(fault::should_fire(fault::Site::ServeGroupFault));
}

TEST_F(ChaosTest, EnvKnobsParseLoudly) {
  EXPECT_THROW(fault::parse_sites("bogus_site"), std::invalid_argument);
  EXPECT_THROW(fault::parse_sites("exec.chunk_fault,nope"),
               std::invalid_argument);
  EXPECT_EQ(fault::parse_sites("all"), fault::kAllSites);
  const std::uint32_t two =
      fault::parse_sites("exec.chunk_fault,serve.group_fault");
  EXPECT_EQ(two, (1u << 1) | (1u << 3));
  EXPECT_EQ(fault::parse_sites(fault::sites_to_string(two)), two);
  EXPECT_EQ(fault::sites_to_string(fault::kAllSites), "all");
}

TEST_F(ChaosTest, CachePoisonDetectedAndRecomputed) {
  serve::ShardedLruCache cache(64, 2);
  fault::arm(3, 10000, 1u << static_cast<std::uint32_t>(
                           fault::Site::ServeCachePoison));
  cache.put("k", "correct-bytes");
  // Every get re-verifies the checksum: the poisoned entry is dropped
  // and reported as a miss, never served.
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_EQ(cache.stats().poisoned, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  fault::disarm();
  cache.put("k", "correct-bytes");
  const auto hit = cache.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "correct-bytes");
}

// ---------------------------------------------------------------------------
// Serve resilience unit tests: exact accounting under 100% rates
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RetriesExhaustedAccounting) {
  // Breaker disabled (cooldown 0), 100% group faults: every group burns
  // max_retries + 1 attempts and answers fault_injected.
  ServiceOptions opts;
  opts.cache_capacity = 0;
  opts.coalesce = false;
  opts.resilience.max_retries = 2;
  opts.resilience.breaker_cooldown = 0;
  Service service(opts);
  const std::int64_t a = register_random(service, "monge", 24, 24, 1);
  fault::arm(11, 10000, 1u << static_cast<std::uint32_t>(
                            fault::Site::ServeGroupFault));
  for (int q = 0; q < 6; ++q) {
    const std::string resp = service.request(
        "{\"op\":\"rowmin\",\"array\":" + std::to_string(a) +
        ",\"row\":" + std::to_string(q) + "}");
    const Json r = Json::parse(resp);
    EXPECT_FALSE(r.find("ok")->as_bool()) << resp;
    EXPECT_EQ(r.find("error")->as_string(),
              "fault_injected: serve.group_fault after 3 attempt(s)")
        << resp;
  }
  fault::disarm();
  const Json stats = Json::parse(service.request("{\"op\":\"stats\"}"));
  EXPECT_EQ(section_int(stats, "resilience", "fault_errors"), 6);
  EXPECT_EQ(section_int(stats, "resilience", "retries"), 12);
  EXPECT_EQ(section_int(stats, "resilience", "degraded_groups"), 0);
  EXPECT_EQ(section_int(stats, "resilience", "breaker_opens"), 0);
  const Json* ep = stats.find("result")->find("endpoints")->find("rowmin");
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->find("errors")->as_int(), 6);
  EXPECT_EQ(ep->find("retried")->as_int(), 12);
  EXPECT_EQ(ep->find("degraded")->as_int(), 0);
}

TEST_F(ChaosTest, BreakerDegradesAndRecovers) {
  // 100% group faults with threshold 1 / cooldown 8: the first attempt
  // of a non-degraded group always fails and opens the breaker; the
  // degraded (sequential, pool-free) attempts always succeed with the
  // exact same bytes.  The arithmetic below is fully deterministic:
  // groups 1 and 9 fail once and reopen the breaker, everything runs
  // degraded, and no request ever errors.
  ServiceOptions opts;
  opts.cache_capacity = 0;
  opts.coalesce = false;
  opts.resilience.max_retries = 3;
  opts.resilience.breaker_threshold = 1;
  opts.resilience.breaker_cooldown = 8;
  Service faulty(opts);
  ServiceOptions plain_opts;
  plain_opts.cache_capacity = 0;
  Service plain(plain_opts);
  const std::int64_t fa = register_random(faulty, "monge", 32, 32, 2);
  const std::int64_t pa = register_random(plain, "monge", 32, 32, 2);
  ASSERT_EQ(fa, pa);

  fault::arm(12, 10000, 1u << static_cast<std::uint32_t>(
                            fault::Site::ServeGroupFault));
  for (int q = 0; q < 10; ++q) {
    const std::string line = "{\"op\":\"rowmax\",\"array\":" +
                             std::to_string(fa) +
                             ",\"row\":" + std::to_string(q) + "}";
    const std::string got = faulty.request(line);
    fault::disarm();
    const std::string want = plain.request(line);
    fault::arm(12, 10000, 1u << static_cast<std::uint32_t>(
                              fault::Site::ServeGroupFault));
    EXPECT_EQ(got, want) << "degraded bytes differ at query " << q;
  }
  fault::disarm();
  const Json stats = Json::parse(faulty.request("{\"op\":\"stats\"}"));
  EXPECT_EQ(section_int(stats, "resilience", "degraded_groups"), 10);
  EXPECT_EQ(section_int(stats, "resilience", "breaker_opens"), 2);
  EXPECT_EQ(section_int(stats, "resilience", "retries"), 2);
  EXPECT_EQ(section_int(stats, "resilience", "fault_errors"), 0);
  const Json* ep = stats.find("result")->find("endpoints")->find("rowmax");
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->find("errors")->as_int(), 0);
  EXPECT_EQ(ep->find("ok")->as_int(), 10);
  EXPECT_EQ(ep->find("degraded")->as_int(), 10);
}

// ---------------------------------------------------------------------------
// The soak
// ---------------------------------------------------------------------------

struct SoakWorkload {
  std::vector<std::string> lines;  // deterministic from the seed
};

/// Register the soak's operand set; ids are deterministic (fresh
/// service) so the workload can bake them in.
struct SoakArrays {
  std::int64_t monge, inverse, stair, tube_d, tube_e;
};

SoakArrays register_soak_arrays(Service& s, std::uint64_t seed) {
  SoakArrays a;
  a.monge = register_random(s, "monge", 96, 96, seed);
  a.inverse = register_random(s, "inverse_monge", 72, 80, seed + 1);
  a.stair = register_random(s, "staircase", 80, 64, seed + 2);
  a.tube_d = register_random(s, "monge", 40, 48, seed + 3);
  a.tube_e = register_random(s, "monge", 48, 36, seed + 4);
  return a;
}

SoakWorkload make_workload(std::uint64_t seed, const SoakArrays& a,
                           std::size_t queries) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  SoakWorkload w;
  w.lines.reserve(queries);
  const auto arr = [](std::int64_t id) { return std::to_string(id); };
  for (std::size_t q = 0; q < queries; ++q) {
    std::string line;
    switch (rng.uniform_int(0, 7)) {
      case 0:
        line = "{\"op\":\"rowmin\",\"array\":" + arr(a.monge) +
               ",\"row\":" + std::to_string(rng.uniform_int(0, 95)) + "}";
        break;
      case 1:
        line = "{\"op\":\"rowmax\",\"array\":" + arr(a.monge) +
               ",\"row\":" + std::to_string(rng.uniform_int(0, 95)) + "}";
        break;
      case 2:
        line = "{\"op\":\"rowmax\",\"array\":" + arr(a.inverse) +
               ",\"row\":" + std::to_string(rng.uniform_int(0, 71)) + "}";
        break;
      case 3:
        line = "{\"op\":\"staircase_rowmin\",\"array\":" + arr(a.stair) +
               ",\"row\":" + std::to_string(rng.uniform_int(0, 79)) + "}";
        break;
      case 4:
        line = "{\"op\":\"staircase_rowmax\",\"array\":" + arr(a.stair) +
               ",\"row\":" + std::to_string(rng.uniform_int(0, 79)) + "}";
        break;
      case 5:
        line = "{\"op\":\"tubemin\",\"d\":" + arr(a.tube_d) +
               ",\"e\":" + arr(a.tube_e) +
               ",\"i\":" + std::to_string(rng.uniform_int(0, 39)) +
               ",\"k\":" + std::to_string(rng.uniform_int(0, 35)) + "}";
        break;
      case 6:
        line = "{\"op\":\"tubemax\",\"d\":" + arr(a.tube_d) +
               ",\"e\":" + arr(a.tube_e) +
               ",\"i\":" + std::to_string(rng.uniform_int(0, 39)) +
               ",\"k\":" + std::to_string(rng.uniform_int(0, 35)) + "}";
        break;
      default: {
        std::string x, y;
        const int nx = static_cast<int>(rng.uniform_int(1, 24));
        const int ny = static_cast<int>(rng.uniform_int(1, 24));
        for (int i = 0; i < nx; ++i) {
          x += static_cast<char>('a' + rng.uniform_int(0, 3));
        }
        for (int i = 0; i < ny; ++i) {
          y += static_cast<char>('a' + rng.uniform_int(0, 3));
        }
        line = "{\"op\":\"string_edit\",\"x\":\"" + x + "\",\"y\":\"" + y +
               "\"}";
        break;
      }
    }
    w.lines.push_back(std::move(line));
  }
  return w;
}

ServiceOptions soak_options(std::uint64_t seed) {
  ServiceOptions opts;
  opts.queue_capacity = 4096;
  opts.batch_max = 48;
  opts.cache_capacity = 1024;
  opts.cache_shards = 4;
  opts.coalesce = seed % 2 == 0;
  opts.planner = seed % 3 != 0;
  // Generous retry budget: at a 2% rate the odds of 9 attempts in a row
  // failing are ~1e-10 per group, so the bit-identity assertion below
  // cannot flake on exhausted retries.
  opts.resilience.max_retries = 8;
  return opts;
}

/// Run the workload in pause/resume bursts (so batches really coalesce)
/// and return all response lines in submission order.
std::vector<std::string> run_workload(Service& s, const SoakWorkload& w,
                                      std::uint64_t seed) {
  Rng rng(seed ^ 0xdeadbeefULL);
  std::vector<std::string> out;
  out.reserve(w.lines.size());
  std::size_t at = 0;
  while (at < w.lines.size()) {
    const std::size_t burst =
        std::min(w.lines.size() - at,
                 static_cast<std::size_t>(8 + rng.uniform_int(0, 24)));
    std::vector<std::future<std::string>> futs;
    futs.reserve(burst);
    s.pause();
    for (std::size_t i = 0; i < burst; ++i) {
      futs.push_back(s.submit(w.lines[at + i]));
    }
    s.resume();
    for (auto& f : futs) out.push_back(f.get());
    at += burst;
  }
  return out;
}

TEST_F(ChaosTest, SoakFaultsNeverChangeResponses) {
  const std::size_t nseeds = static_cast<std::size_t>(
      support::env_uint_or("PMONGE_CHAOS_SEEDS", 20, 1));
  const std::size_t queries = static_cast<std::size_t>(
      support::env_uint_or("PMONGE_CHAOS_QUERIES", 1000, 1));
  const auto rate = static_cast<std::uint32_t>(
      support::env_uint_or("PMONGE_CHAOS_RATE", 200, 0));
  std::vector<std::uint64_t> seeds;
  if (const auto only = support::env_uint("PMONGE_CHAOS_SEED")) {
    seeds.push_back(*only);
  } else {
    for (std::size_t i = 1; i <= nseeds; ++i) seeds.push_back(i);
  }

  for (const std::uint64_t seed : seeds) {
    const std::string repro = chaos_repro(seed, rate);

    // Fault-free baseline.
    fault::disarm();
    SoakWorkload workload;
    std::vector<std::string> want;
    {
      Service baseline(soak_options(seed));
      const SoakArrays arrays = register_soak_arrays(baseline, seed);
      workload = make_workload(seed, arrays, queries);
      want = run_workload(baseline, workload, seed);
    }
    for (const std::string& resp : want) {
      ASSERT_NE(resp.find("\"ok\":true"), std::string::npos)
          << repro << "\n  baseline (fault-free) errored: " << resp;
    }

    // Same workload with every site armed.
    fault::arm(seed, rate);
    std::vector<std::string> got;
    Json stats{};
    {
      Service faulted(soak_options(seed));
      const SoakArrays arrays = register_soak_arrays(faulted, seed);
      ASSERT_EQ(arrays.monge, 0) << repro;  // fresh service, same ids
      got = run_workload(faulted, workload, seed);
      fault::disarm();  // stats themselves run fault-free
      stats = Json::parse(faulted.request("{\"op\":\"stats\"}"));
    }

    ASSERT_EQ(got.size(), want.size()) << repro;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << repro << "\n  query  : " << workload.lines[i]
          << "\n  at index " << i << " of " << want.size();
    }

    // Accounting: nothing errored, and the resilience counters are
    // consistent with what actually fired.
    const Json* endpoints = stats.find("result")->find("endpoints");
    ASSERT_NE(endpoints, nullptr) << repro;
    for (const auto& [op, m] : endpoints->obj()) {
      if (op == "stats") continue;  // control plane
      EXPECT_EQ(m.find("errors")->as_int(), 0)
          << repro << "\n  endpoint " << op << " reported errors";
    }
    EXPECT_EQ(section_int(stats, "resilience", "fault_errors"), 0) << repro;
    // (stats ran after disarm() so the counters are frozen; arm() reset
    // them at the top of this leg, so they cover exactly this seed.)
    const Json* fault_sec = stats_section(stats, "fault");
    ASSERT_NE(fault_sec, nullptr) << repro;
    const Json* injected = fault_sec->find("injected");
    const std::int64_t group_faults =
        injected->find("serve.group_fault")->as_int();
    const std::int64_t retries = section_int(stats, "resilience", "retries");
    const std::int64_t batch_retries =
        section_int(stats, "resilience", "batch_retries");
    if (group_faults > 0) {
      EXPECT_GE(retries + batch_retries, 1)
          << repro << "\n  group faults fired but nothing retried";
    }
    // Every detected poisoning is an injection that happened; entries
    // can also be evicted or never re-read, so <= not ==.
    EXPECT_LE(section_int(stats, "cache", "poisoned"),
              injected->find("serve.cache_poison")->as_int())
        << repro;
  }
}

TEST_F(ChaosTest, DelaySitesOnlyCostLatency) {
  // Delay-only mask at a high rate: pure reordering pressure.  Bytes
  // must not move at all.
  const std::uint32_t delay_mask =
      (1u << static_cast<std::uint32_t>(fault::Site::ExecChunkDelay)) |
      (1u << static_cast<std::uint32_t>(fault::Site::ServeAdmitJitter)) |
      (1u << static_cast<std::uint32_t>(fault::Site::ServeSlowResponse));
  const std::uint64_t seed = 77;
  fault::disarm();
  SoakWorkload workload;
  std::vector<std::string> want;
  {
    Service baseline(soak_options(seed));
    const SoakArrays arrays = register_soak_arrays(baseline, seed);
    workload = make_workload(seed, arrays, 120);
    want = run_workload(baseline, workload, seed);
  }
  fault::arm(seed, 2000, delay_mask);
  std::vector<std::string> got;
  {
    Service faulted(soak_options(seed));
    register_soak_arrays(faulted, seed);
    got = run_workload(faulted, workload, seed);
  }
  fault::disarm();
  EXPECT_GT(fault::injected_total(), 0u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << chaos_repro(seed, 2000)
                               << "\n  query: " << workload.lines[i];
  }
}

}  // namespace
}  // namespace pmonge
