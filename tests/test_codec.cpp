// The zero-allocation serve fast path (serve/codec.hpp, docs/
// performance.md), tested from four sides:
//
//   1. Differential fuzz: for every line the streaming canonicalizer
//      ACCEPTS, its signature / op / id must be byte-identical to what
//      the slow path (parse_request) computes.  Refusal is always legal;
//      acceptance is the claim under test.  A coverage check keeps the
//      fuzz honest (the codec must actually accept the forms the fast
//      path exists for -- whitespace, shuffled keys, escapes).
//   2. Fast/slow response identity: two Services differing only in
//      `fast_path` answer an identical request stream -- including
//      cache-hitting repeats, errors and unregister invalidation --
//      with byte-identical NDJSON.
//   3. The allocation gate: a warmed cached-hit through
//      Service::try_serve_fast performs ZERO heap allocations, asserted
//      by a global operator-new hook.
//   4. An 8-thread hammer over the same cached queries (the TSan leg of
//      the sanitizer matrix; also asserts bytes under concurrency).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/codec.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

// --------------------------------------------------------------------------
// Global operator-new hook: counts allocations on the calling thread.
// Trivially-initialized thread_local, so the hook is safe from the very
// first allocation of the process.
// --------------------------------------------------------------------------

namespace {
thread_local std::uint64_t t_news = 0;
}

void* operator new(std::size_t n) {
  ++t_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++t_news;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pmonge {
namespace {

using serve::FastQuery;
using serve::Request;
using serve::RequestCodec;
using serve::Service;
using serve::ServiceOptions;

// --------------------------------------------------------------------------
// 1. Differential fuzz against the slow path
// --------------------------------------------------------------------------

/// Random request-ish JSON lines: valid structure with shuffled keys,
/// random whitespace, duplicate keys, escapes, deep values -- plus a
/// slice of deliberately malformed bytes.
class LineGen {
 public:
  explicit LineGen(std::uint64_t seed) : rng_(seed) {}

  std::string next() {
    if (pct(10)) return mutate(object_line());
    return object_line();
  }

 private:
  bool pct(int p) { return static_cast<int>(rng_() % 100) < p; }

  std::string ws() {
    static const char* kWs[] = {"", "", "", " ", "  ", "\t", "\n"};
    return kWs[rng_() % 7];
  }

  std::string random_string() {
    static const char* kPool[] = {
        "rowmin",   "rowmax",     "stats",  "a b",      "x\\ny",
        "quote\"q", "back\\\\b",  "tab\tt", "\\u0041b", "\\u00e9",
        "\\ud83d\\ude00",  // surrogate pair
        "",         "plain",      "/slash", "\\u0000z"};
    return kPool[rng_() % 15];
  }

  std::string value(int depth) {
    switch (rng_() % 8) {
      case 0:
        return std::to_string(static_cast<std::int64_t>(rng_()) %
                              1000000007LL);
      case 1: {
        static const char* kNums[] = {
            "0",    "-0",      "1e3",   "1.5",  "-2.25e-3",
            "1e308","1e309",   "9223372036854775807",
            "9223372036854775808",  // int64 overflow -> double
            "-9223372036854775808", "0.1", "3.141592653589793"};
        return kNums[rng_() % 12];
      }
      case 2:
        return std::string("\"") + random_string() + "\"";
      case 3:
        return pct(50) ? "true" : "false";
      case 4:
        return "null";
      case 5: {
        if (depth > 2) return "1";
        std::string a = "[";
        const std::size_t n = rng_() % 4;
        for (std::size_t i = 0; i < n; ++i) {
          if (i) a += ",";
          a += ws() + value(depth + 1) + ws();
        }
        return a + "]";
      }
      default: {
        if (depth > 2) return "2";
        std::string o = "{";
        const std::size_t n = rng_() % 3;
        for (std::size_t i = 0; i < n; ++i) {
          if (i) o += ",";
          o += ws() + "\"k" + std::to_string(rng_() % 5) + "\"" + ws() + ":" +
               ws() + value(depth + 1) + ws();
        }
        return o + "}";
      }
    }
  }

  std::string object_line() {
    std::vector<std::string> pairs;
    if (pct(90)) {
      pairs.push_back("\"op\":" + ws() + "\"" +
                      std::string(pct(80) ? "rowmin" : "register_dense") +
                      "\"");
    }
    if (pct(70)) {
      pairs.push_back("\"id\":" + ws() +
                      std::to_string(static_cast<std::int64_t>(rng_() % 2000) -
                                     1000));
    }
    if (pct(8)) pairs.push_back("\"deadline_ms\":100");
    if (pct(5)) pairs.push_back("\"trace_id\":7");
    const std::size_t extra = rng_() % 4;
    for (std::size_t i = 0; i < extra; ++i) {
      static const char* kKeys[] = {"array", "row",  "r0",    "c1",
                                    "data",  "seed", "zkey",  "Akey",
                                    "row",   "esc\\u0041"};  // dup + escaped
      pairs.push_back("\"" + std::string(kKeys[rng_() % 10]) + "\":" + ws() +
                      value(0));
    }
    std::shuffle(pairs.begin(), pairs.end(), rng_);
    std::string line = "{";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i) line += ",";
      line += ws() + pairs[i] + ws();
    }
    line += "}";
    if (pct(30)) line = ws() + line + ws();
    return line;
  }

  std::string mutate(std::string line) {
    if (line.empty()) return line;
    switch (rng_() % 4) {
      case 0:
        line.resize(rng_() % line.size());  // truncate
        break;
      case 1:
        line[rng_() % line.size()] = static_cast<char>(rng_() % 256);
        break;
      case 2:
        line += "garbage";
        break;
      default:
        line.insert(rng_() % line.size(), 1, ',');
        break;
    }
    return line;
  }

  std::mt19937_64 rng_;
};

TEST(CodecDifferential, AcceptedLinesMatchSlowPathExactly) {
  LineGen gen(20260809);
  RequestCodec codec;
  std::size_t accepted = 0, slow_ok_count = 0;
  for (int iter = 0; iter < 60000; ++iter) {
    const std::string line = gen.next();
    FastQuery q;
    const bool fast_ok = codec.canonicalize_query(line, q);
    Request r;
    bool slow_ok = true;
    try {
      r = serve::parse_request(line);
    } catch (...) {
      slow_ok = false;
    }
    if (slow_ok) ++slow_ok_count;
    if (!fast_ok) continue;  // refusal is always legal
    ++accepted;
    ASSERT_TRUE(slow_ok) << "codec accepted a line the parser rejects: "
                         << line;
    // parse_request computes the signature only for query ops (the
    // service re-checks is_query_op after the codec and refuses control
    // ops to the slow path), so compare signatures on that domain.
    if (serve::is_query_op(r.op)) {
      EXPECT_EQ(q.signature, r.signature) << "line: " << line;
    }
    EXPECT_EQ(q.op, r.op) << "line: " << line;
    EXPECT_EQ(q.id, r.id) << "line: " << line;
    EXPECT_EQ(q.hash, serve::cache_checksum(q.signature));
  }
  // The fuzz is vacuous if the codec refuses everything interesting.
  EXPECT_GT(accepted, 5000u);
  EXPECT_GT(slow_ok_count, accepted);
}

TEST(CodecDifferential, AcceptsTheFormsTheFastPathExistsFor) {
  RequestCodec codec;
  FastQuery q;
  // Shuffled keys, whitespace, escaped string VALUES, duplicate keys,
  // unicode escapes, doubles -- all must be accepted and agree with the
  // slow path.
  const char* kLines[] = {
      "{\"op\":\"rowmin\",\"array\":0,\"row\":3}",
      "{ \"row\" : 3 , \"array\" : 0 , \"op\" : \"rowmin\" , \"id\" : 9 }",
      "{\"op\":\"string_edit\",\"x\":\"a\\nb\",\"y\":\"\\u00e9\\t\"}",
      "{\"op\":\"rowmin\",\"row\":1,\"row\":2,\"array\":0}",
      "{\"op\":\"rowmin\",\"array\":0,\"row\":1e2}",
      "{\"op\":\"rowmin\",\"nested\":{\"b\":[1,2,{\"z\":null}],\"a\":true}}",
      "{\"op\":\"rowmin\",\"neg\":-0.5,\"big\":9223372036854775807}",
  };
  for (const char* line : kLines) {
    ASSERT_TRUE(codec.canonicalize_query(line, q)) << line;
    const Request r = serve::parse_request(line);
    EXPECT_EQ(q.signature, r.signature) << line;
    EXPECT_EQ(q.id, r.id) << line;
  }
}

TEST(CodecDifferential, RefusesWhatItCannotPromise) {
  RequestCodec codec;
  FastQuery q;
  const char* kLines[] = {
      "{\"op\":\"rowmin\",\"deadline_ms\":5}",   // admission semantics
      "{\"op\":\"rowmin\",\"trace_id\":1}",      // observability envelope
      "{\"array\":0}",                           // no op
      "{\"op\":1}",                              // non-string op
      "{\"op\":\"row\\u006din\"}",               // escaped op value
      "{\"e\\\\s\":1,\"op\":\"rowmin\"}",        // escaped object key
      "{\"op\":\"rowmin\"} trailing",            // trailing bytes
      "{\"op\":\"rowmin\"",                      // truncated
      "[1,2,3]",                                 // not an object
      "",                                        // empty
  };
  for (const char* line : kLines) {
    EXPECT_FALSE(codec.canonicalize_query(line, q)) << line;
  }
  // Nesting deeper than the guard.
  std::string deep = "{\"op\":\"rowmin\",\"v\":";
  for (int i = 0; i < 80; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += "]";
  deep += "}";
  EXPECT_FALSE(codec.canonicalize_query(deep, q));
}

// --------------------------------------------------------------------------
// 2. Fast/slow response byte-identity
// --------------------------------------------------------------------------

std::vector<std::string> transcript_requests() {
  std::vector<std::string> lines = {
      R"({"op":"ping","id":1})",
      R"({"op":"register_dense","id":2,"rows":2,"cols":3,"data":[1,2,4,0,1,3],"validate":true})",
      R"({"op":"rowmin","id":3,"array":0,"row":0})",
      R"({"op":"rowmin","id":4,"array":0,"row":1})",
      R"({"op":"rowmax","id":5,"array":0,"row":0})",
      R"({"op":"string_edit","id":7,"x":"kitten","y":"sitting"})",
      R"({"op":"rowmin","array":0,"row":0})",  // no id
      R"({ "row" : 0 , "array" : 0 , "op" : "rowmin" , "id" : 44 })",
      R"({"op":"rowmin","id":45,"array":7,"row":0})",  // unknown array
      R"({"op":"nonsense","id":46})",                  // unknown op
  };
  // Cache-hitting repeats (the fast path's whole reason to exist).
  for (int rep = 0; rep < 3; ++rep) {
    lines.push_back(R"({"op":"rowmin","id":3,"array":0,"row":0})");
    lines.push_back(R"({"op":"rowmax","id":5,"array":0,"row":0})");
    lines.push_back(R"({"op":"string_edit","id":7,"x":"kitten","y":"sitting"})");
  }
  // Invalidation, then the same query again (cold both sides).
  lines.push_back(R"({"op":"unregister","id":50,"array":0})");
  lines.push_back(R"({"op":"rowmin","id":51,"array":0,"row":0})");
  return lines;
}

TEST(CodecFastSlow, ResponsesByteIdenticalWithFastPathOnAndOff) {
  ServiceOptions on;
  ServiceOptions off;
  off.fast_path = false;
  Service svc_on(on), svc_off(off);
  for (const std::string& line : transcript_requests()) {
    const std::string a = svc_on.request(line);
    const std::string b = svc_off.request(line);
    EXPECT_EQ(a, b) << "request: " << line;
  }
  // The fast service really did take the fast path for the repeats.
  const auto hits = svc_on.cache_stats().hits;
  EXPECT_GE(hits, 9u);
}

// --------------------------------------------------------------------------
// 3. The allocation gate
// --------------------------------------------------------------------------

TEST(CodecAllocGate, WarmCachedHitAllocatesNothing) {
  Service svc;
  ASSERT_TRUE(svc.request(
                     R"({"op":"register_dense","id":1,"rows":2,"cols":3,"data":[1,2,4,0,1,3]})")
                  .find("\"ok\":true") != std::string::npos);
  const std::string query = R"({"op":"rowmin","id":9,"array":0,"row":0})";
  const std::string expect = svc.request(query);  // computes + caches
  ASSERT_NE(expect.find("\"ok\":true"), std::string::npos);

  std::string out;
  // Warm this thread's codec buffers and the output string.
  for (int i = 0; i < 3; ++i) {
    out.clear();
    ASSERT_TRUE(svc.try_serve_fast(query, out));
    EXPECT_EQ(out, expect);
  }

  const std::uint64_t before = t_news;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    ASSERT_TRUE(svc.try_serve_fast(query, out));
  }
  const std::uint64_t after = t_news;
  EXPECT_EQ(after - before, 0u)
      << "warm cached-hit fast path allocated " << (after - before)
      << " times over 1000 requests";
  EXPECT_EQ(out, expect);
}

// --------------------------------------------------------------------------
// 4. Concurrency hammer (TSan leg)
// --------------------------------------------------------------------------

TEST(CodecHammer, EightThreadsCachedHitsStayCorrect) {
  Service svc;
  svc.request(
      R"({"op":"register_dense","id":1,"rows":4,"cols":4,"data":[0,1,2,3,1,2,3,4,2,3,4,5,3,4,5,6]})");
  std::vector<std::string> queries, expected;
  for (int row = 0; row < 4; ++row) {
    queries.push_back("{\"op\":\"rowmin\",\"array\":0,\"row\":" +
                      std::to_string(row) + "}");
    expected.push_back(svc.request(queries.back()));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::string out;
      for (int i = 0; i < 2000; ++i) {
        const std::size_t qi = static_cast<std::size_t>(i + t) % queries.size();
        out.clear();
        if (svc.try_serve_fast(queries[qi], out)) {
          if (out != expected[qi]) failures.fetch_add(1);
        } else if (svc.request(queries[qi]) != expected[qi]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pmonge
