// Property tests for the (min,+) / (max,+) algebra underlying the tube
// machinery and the string-editing application: Monge closure under
// min-plus products, associativity, graded-infinity preservation, and
// consistency of the tube strategies across PRAM models.
#include <gtest/gtest.h>

#include "monge/composite.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "par/tube_maxima.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using monge::DenseArray;
using pram::Machine;
using pram::Model;

DenseArray<std::int64_t> min_plus(const DenseArray<std::int64_t>& a,
                                  const DenseArray<std::int64_t>& b) {
  DenseArray<std::int64_t> c(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < b.cols(); ++k) {
      std::int64_t best = a(i, 0) + b(0, k);
      for (std::size_t j = 1; j < a.cols(); ++j) {
        best = std::min(best, a(i, j) + b(j, k));
      }
      c.at(i, k) = best;
    }
  }
  return c;
}

TEST(CompositeAlgebra, MinPlusProductOfMongeIsMonge) {
  Rng rng(71);
  for (int t = 0; t < 15; ++t) {
    const auto a = monge::random_monge(9, 12, rng);
    const auto b = monge::random_monge(12, 7, rng);
    EXPECT_TRUE(monge::is_monge(min_plus(a, b)));
  }
}

TEST(CompositeAlgebra, MinPlusIsAssociative) {
  Rng rng(72);
  for (int t = 0; t < 10; ++t) {
    const auto a = monge::random_monge(6, 8, rng);
    const auto b = monge::random_monge(8, 5, rng);
    const auto c = monge::random_monge(5, 7, rng);
    const auto left = min_plus(min_plus(a, b), c);
    const auto right = min_plus(a, min_plus(b, c));
    for (std::size_t i = 0; i < left.rows(); ++i) {
      for (std::size_t k = 0; k < left.cols(); ++k) {
        EXPECT_EQ(left(i, k), right(i, k));
      }
    }
  }
}

TEST(CompositeAlgebra, TubeMinimaEqualsMinPlusProduct) {
  Rng rng(73);
  for (int t = 0; t < 10; ++t) {
    const auto inst = monge::random_composite(10, 14, 9, rng);
    const auto prod = min_plus(inst.d, inst.e);
    Machine mach(Model::CREW);
    const auto plane = par::tube_minima(mach, inst.d, inst.e);
    for (std::size_t i = 0; i < 10; ++i) {
      for (std::size_t k = 0; k < 9; ++k) {
        EXPECT_EQ(plane.at(i, k).value, prod(i, k));
      }
    }
  }
}

TEST(CompositeAlgebra, GradedInfinityKeepsMongeUnderMinPlus) {
  // The string-editing substitution: lower-triangular graded infinities
  // (j - k) * M stay Monge and are preserved by min-plus products.
  Rng rng(74);
  const std::int64_t big = 1'000'000;
  auto make_graded = [&](std::size_t n) {
    auto a = monge::random_monge(n, n, rng, 3, 10);
    DenseArray<std::int64_t> g(n, n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        g.at(j, k) = k < j ? static_cast<std::int64_t>(j - k) * big
                           : a(j, k) - a(j, j) + std::llabs(a(j, k)) % 50;
      }
    }
    return g;
  };
  for (int t = 0; t < 10; ++t) {
    const auto a = make_graded(9);
    const auto b = make_graded(9);
    if (!monge::is_monge(a) || !monge::is_monge(b)) {
      continue;  // the finite part of this draw wasn't Monge; skip
    }
    const auto c = min_plus(a, b);
    EXPECT_TRUE(monge::is_monge(c));
    // Upper triangle stays finite, lower stays graded-dominant.
    for (std::size_t j = 0; j < 9; ++j) {
      for (std::size_t k = 0; k < 9; ++k) {
        if (k >= j) {
          EXPECT_LT(c(j, k), big / 2);
        } else {
          EXPECT_GE(c(j, k), big / 2);
        }
      }
    }
  }
}

TEST(CompositeAlgebra, StrategiesAgreeAcrossModels) {
  Rng rng(75);
  const auto inst = monge::random_composite(21, 17, 23, rng);
  std::vector<monge::TubeOpt<std::int64_t>> reference;
  for (auto model : {Model::CREW, Model::CRCW_COMMON, Model::CRCW_PRIORITY,
                     Model::CRCW_COMBINING}) {
    for (auto strat :
         {par::TubeStrategy::PerSlice, par::TubeStrategy::SampledDoublyLog}) {
      Machine mach(model);
      const auto plane = par::tube_maxima(mach, inst.d, inst.e, strat);
      if (reference.empty()) {
        reference = plane.opt;
      } else {
        EXPECT_EQ(plane.opt, reference)
            << pram::model_name(model) << " "
            << (strat == par::TubeStrategy::PerSlice ? "slice" : "sampled");
      }
    }
  }
}

TEST(CompositeAlgebra, CompositeOfTransposesIsSymmetric) {
  // c[i][j][k] with D = E^T on a symmetric instance: tube minima plane
  // must be symmetric in (i, k).
  Rng rng(76);
  const auto e = monge::random_monge(12, 12, rng);
  monge::Transpose<DenseArray<std::int64_t>> d(e);
  Machine mach(Model::CREW);
  const auto plane = par::tube_minima(mach, d, e);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t k = 0; k < 12; ++k) {
      EXPECT_EQ(plane.at(i, k).value, plane.at(k, i).value);
    }
  }
}

}  // namespace
}  // namespace pmonge
