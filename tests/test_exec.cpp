// Host-parallel execution engine tests: the skeletons must cover their
// index ranges exactly once at every chunking, propagate exceptions out
// of pool tasks, and -- the load-bearing invariant -- produce identical
// algorithm outputs AND identical charged costs at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "monge/generators.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using monge::DenseArray;
using monge::StaircaseArray;
using pram::Machine;
using pram::Model;

/// Restores the global engine size on scope exit so tests that resize the
/// pool cannot leak their setting into later suites.
struct ThreadGuard {
  std::size_t saved = exec::num_threads();
  ~ThreadGuard() { exec::set_num_threads(saved); }
};

// ---------------------------------------------------------------------------
// Skeleton coverage at awkward (n, grain) combinations
// ---------------------------------------------------------------------------

void expect_exact_cover(std::size_t n, std::size_t grain) {
  std::vector<std::atomic<int>> hits(n);
  exec::parallel_for(n, grain, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                 << " index=" << i;
  }
}

TEST(ExecSkeletons, ParallelForCoversRangeOnceAtEveryChunking) {
  ThreadGuard tg;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    exec::set_num_threads(threads);
    const std::size_t grain = 4;
    // n straddling every cutoff: empty, single, below/at/above one grain,
    // below/at/above a chunk-count boundary.
    for (std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000}) {
      expect_exact_cover(n, grain);
    }
    expect_exact_cover(100, 0);  // grain 0 is clamped to 1, not a crash
    expect_exact_cover(5, 1000);  // grain > n: one chunk
  }
}

TEST(ExecSkeletons, ReduceScanPackMatchSerialReference) {
  ThreadGuard tg;
  Rng rng(77);
  std::vector<std::int64_t> xs(501);
  for (auto& x : xs) x = rng.uniform_int(-50, 50);

  // Serial references.
  const std::int64_t want_sum = std::accumulate(xs.begin(), xs.end(), 0ll);
  std::vector<std::int64_t> want_excl(xs.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    want_excl[i] = acc;
    acc += xs[i];
  }
  std::vector<std::int64_t> want_incl = xs;
  for (std::size_t i = 1; i < want_incl.size(); ++i) {
    want_incl[i] += want_incl[i - 1];
  }
  std::vector<std::size_t> want_pack;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] % 3 == 0) want_pack.push_back(i);
  }

  auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    exec::set_num_threads(threads);
    for (std::size_t grain : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{4096}}) {
      EXPECT_EQ(exec::parallel_reduce(
                    xs.size(), grain, std::int64_t{0},
                    [&](std::size_t i) { return xs[i]; }, plus),
                want_sum)
          << threads << "t grain " << grain;

      auto ex = xs;
      EXPECT_EQ(exec::parallel_scan_exclusive(
                    std::span<std::int64_t>(ex), grain, plus, std::int64_t{0}),
                want_sum);
      EXPECT_EQ(ex, want_excl) << threads << "t grain " << grain;

      auto in = xs;
      EXPECT_EQ(exec::parallel_scan_inclusive(std::span<std::int64_t>(in),
                                              grain, plus),
                want_sum);
      EXPECT_EQ(in, want_incl) << threads << "t grain " << grain;

      EXPECT_EQ(exec::parallel_pack(xs.size(), grain,
                                    [&](std::size_t i) {
                                      return xs[i] % 3 == 0;
                                    }),
                want_pack)
          << threads << "t grain " << grain;
    }
  }
}

TEST(ExecSkeletons, EmptyAndSingletonInputs) {
  auto plus = [](int a, int b) { return a + b; };
  EXPECT_EQ(exec::parallel_reduce(
                0, 4, 41, [](std::size_t) { return 1; }, plus),
            41);  // identity untouched
  std::vector<int> empty;
  EXPECT_EQ(exec::parallel_scan_exclusive(std::span<int>(empty), 4, plus, 7),
            7);
  EXPECT_TRUE(exec::parallel_pack(0, 4, [](std::size_t) { return true; })
                  .empty());
  std::vector<int> one{5};
  EXPECT_EQ(exec::parallel_scan_inclusive(std::span<int>(one), 4, plus), 5);
  EXPECT_EQ(one[0], 5);
}

// ---------------------------------------------------------------------------
// Exception propagation
// ---------------------------------------------------------------------------

TEST(ExecPool, BodyExceptionRethrownOnCaller) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  EXPECT_THROW(
      exec::parallel_for(10000, 16,
                         [](std::size_t i) {
                           if (i == 7777) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ExecPool, PoolUsableAfterException) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(exec::parallel_for(
                     5000, 8,
                     [](std::size_t i) {
                       if (i % 1000 == 999) throw std::invalid_argument("x");
                     }),
                 std::invalid_argument);
    // The engine must have drained the failed batch completely; follow-up
    // work runs normally and sees every index.
    std::atomic<std::size_t> seen{0};
    exec::parallel_for(5000, 8, [&](std::size_t) {
      seen.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(seen.load(), 5000u);
  }
}

TEST(ExecPool, ModelViolationCrossesPoolBoundary) {
  // The PRAM simulator's enforcement exceptions must survive the trip
  // through the worker pool with their type intact.
  ThreadGuard tg;
  exec::set_num_threads(8);
  Machine m(Model::CREW);
  EXPECT_THROW(
      m.parallel_branches(64,
                          [&](std::size_t b, Machine&) {
                            if (b == 63) throw ModelViolation("rigged");
                          }),
      ModelViolation);
}

// ---------------------------------------------------------------------------
// set_num_threads API
// ---------------------------------------------------------------------------

TEST(ExecPool, SetNumThreadsResizesAndClampsToOne) {
  ThreadGuard tg;
  exec::set_num_threads(3);
  EXPECT_EQ(exec::num_threads(), 3u);
  exec::set_num_threads(0);  // clamped: at least the submitting lane
  EXPECT_EQ(exec::num_threads(), 1u);
  exec::set_num_threads(1);
  EXPECT_EQ(exec::num_threads(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts: identical outputs, identical charges
// ---------------------------------------------------------------------------

struct Cost {
  std::uint64_t time, work, peak;
  bool operator==(const Cost&) const = default;
};

Cost cost_of(const Machine& m) {
  return {m.meter().time, m.meter().work, m.meter().peak_processors};
}

TEST(ExecDeterminism, MongeRowMinimaIdenticalAt1And8Threads) {
  ThreadGuard tg;
  Rng rng(4242);
  const auto a = monge::random_monge(200, 200, rng, 2, 9);  // tie-heavy

  exec::set_num_threads(1);
  Machine m1(Model::CRCW_COMMON);
  const auto r1 = par::monge_row_minima(m1, a);

  exec::set_num_threads(8);
  Machine m8(Model::CRCW_COMMON);
  const auto r8 = par::monge_row_minima(m8, a);

  EXPECT_EQ(r1, r8);
  EXPECT_EQ(cost_of(m1), cost_of(m8));
}

TEST(ExecDeterminism, StaircaseSchedulesIdenticalAt1And8Threads) {
  ThreadGuard tg;
  Rng rng(515);
  const auto inst = monge::random_staircase_monge(120, 140, rng);
  StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);

  for (auto sched :
       {par::StaircaseSchedule::MaxParallel,
        par::StaircaseSchedule::WorkEfficient,
        par::StaircaseSchedule::ColumnSplit}) {
    exec::set_num_threads(1);
    Machine m1(Model::CRCW_COMMON);
    const auto r1 = par::staircase_row_minima(m1, s, sched);

    exec::set_num_threads(8);
    Machine m8(Model::CRCW_COMMON);
    const auto r8 = par::staircase_row_minima(m8, s, sched);

    EXPECT_EQ(r1, r8) << static_cast<int>(sched);
    EXPECT_EQ(cost_of(m1), cost_of(m8)) << static_cast<int>(sched);
  }
}

TEST(ExecDeterminism, PramPrimitivesIdenticalAt1And8Threads) {
  ThreadGuard tg;
  Rng rng(616);
  std::vector<std::int64_t> xs(3000);
  for (auto& x : xs) x = rng.uniform_int(0, 20);  // many argopt ties

  auto run = [&](Machine& m) {
    auto mn = pram::argopt<std::int64_t>(
        m, xs.size(), [&](std::size_t i) { return xs[i]; },
        [](const std::int64_t& a, const std::int64_t& b) { return a < b; });
    auto scanned = xs;
    pram::inclusive_scan_par<std::int64_t>(m, scanned,
                                           std::plus<std::int64_t>{});
    auto packed = pram::pack_indices(
        m, xs.size(), [&](std::size_t i) { return xs[i] % 2 == 0; });
    return std::tuple{mn.value, mn.index, scanned, packed};
  };

  exec::set_num_threads(1);
  Machine m1(Model::CRCW_COMMON);
  const auto r1 = run(m1);

  exec::set_num_threads(8);
  Machine m8(Model::CRCW_COMMON);
  const auto r8 = run(m8);

  EXPECT_EQ(r1, r8);
  EXPECT_EQ(cost_of(m1), cost_of(m8));
}

// ---------------------------------------------------------------------------
// SerialScope / GrainScope (the planner's execution hints)
// ---------------------------------------------------------------------------

TEST(ExecScopes, SerialScopeNestsAndRestores) {
  EXPECT_EQ(exec::serial_scope_depth(), 0u);
  {
    exec::SerialScope outer;
    EXPECT_EQ(exec::serial_scope_depth(), 1u);
    {
      exec::SerialScope inner;
      EXPECT_EQ(exec::serial_scope_depth(), 2u);
    }
    EXPECT_EQ(exec::serial_scope_depth(), 1u);
  }
  EXPECT_EQ(exec::serial_scope_depth(), 0u);
}

TEST(ExecScopes, SerialScopeRunsOnTheCallingThread) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  const auto me = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  exec::SerialScope serial;
  exec::parallel_for(10000, 16, [&](std::size_t) {
    if (std::this_thread::get_id() != me) off_thread.fetch_add(1);
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ExecScopes, SerialScopeLeavesResultsAndChargesUnchanged) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  Rng rng(77);
  const auto a = monge::random_monge(40, 40, rng);
  Machine m_par(Model::CRCW_COMMON);
  const auto r_par = par::monge_row_minima(m_par, a);
  Machine m_ser(Model::CRCW_COMMON);
  exec::SerialScope serial;
  const auto r_ser = par::monge_row_minima(m_ser, a);
  ASSERT_EQ(r_par.size(), r_ser.size());
  for (std::size_t i = 0; i < r_par.size(); ++i) {
    EXPECT_EQ(r_par[i].value, r_ser[i].value) << i;
    EXPECT_EQ(r_par[i].col, r_ser[i].col) << i;
  }
  // The simulated-PRAM meter charges the model's cost, not the host
  // schedule's: execution strategy must be invisible in it.
  EXPECT_EQ(m_par.meter().time, m_ser.meter().time);
  EXPECT_EQ(m_par.meter().work, m_ser.meter().work);
}

TEST(ExecScopes, GrainScopeOverridesAndRestores) {
  EXPECT_EQ(exec::grain_override(), 0u);
  {
    exec::GrainScope g(512);
    EXPECT_EQ(exec::grain_override(), 512u);
    EXPECT_EQ(exec::grain_for(1), 512u);
    EXPECT_EQ(exec::grain_for(4), 128u);  // cost hint still divides
    {
      exec::GrainScope inner(64);
      EXPECT_EQ(exec::grain_override(), 64u);
    }
    EXPECT_EQ(exec::grain_override(), 512u);
  }
  EXPECT_EQ(exec::grain_override(), 0u);
  // Grain 0 means "no override": the default grain applies.
  exec::GrainScope none(0);
  EXPECT_EQ(exec::grain_for(1), exec::default_grain());
}

TEST(ExecScopes, GrainOverrideCannotChangeArgoptResults) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  Rng rng(78);
  const auto a = monge::random_monge(80, 80, rng);
  Machine m_default(Model::CRCW_COMMON);
  const auto r_default = par::monge_row_minima(m_default, a);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    exec::GrainScope g(grain);
    Machine m(Model::CRCW_COMMON);
    const auto r = par::monge_row_minima(m, a);
    ASSERT_EQ(r.size(), r_default.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(r[i].value, r_default[i].value) << "grain " << grain;
      EXPECT_EQ(r[i].col, r_default[i].col) << "grain " << grain;
    }
    EXPECT_EQ(m.meter().time, m_default.meter().time) << "grain " << grain;
    EXPECT_EQ(m.meter().work, m_default.meter().work) << "grain " << grain;
  }
}

TEST(ExecDeterminism, LeftmostTiePolicySurvivesChunking) {
  // An all-equal array: every index ties, the winner must be index 0 at
  // every thread count and every chunking.
  ThreadGuard tg;
  for (std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    exec::set_num_threads(threads);
    Machine m(Model::CRCW_COMMON);
    auto r = pram::argopt<int>(
        m, 10007, [](std::size_t) { return 42; },
        [](const int& a, const int& b) { return a < b; });
    EXPECT_EQ(r.index, 0u) << threads;
    EXPECT_EQ(r.value, 42);
  }
}

}  // namespace
}  // namespace pmonge
