// Cross-module randomized differential fuzzing: one seed drives a storm
// of random instances through every search path, cross-checking all
// algorithm families against each other and against the brute oracles.
// This is the catch-all net under the targeted suites: any divergence
// between two implementations of the same problem fails loudly with the
// seed (and the engine thread count) in the message as ONE
// copy-pastable reproduction command (bench/bench_util.hpp):
//
//   PMONGE_FUZZ_SEED=<seed> PMONGE_THREADS=<n> ctest -R fuzz
//       --output-on-failure
//
// PMONGE_FUZZ_SEED appends an extra seed to the built-in corpus; CI can
// rotate it without touching code.  tests/test_chaos.cpp reuses the same
// reporter for its fault-injection repro lines.
#include <gtest/gtest.h>

#include "bench_util.hpp"

#include "exec/thread_pool.hpp"
#include "monge/brute.hpp"
#include "monge/composite.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "monge/staircase_seq.hpp"
#include "monge/validate.hpp"
#include "par/hypercube_search.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "par/tube_maxima.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using monge::DenseArray;
using monge::StaircaseArray;
using pram::Machine;
using pram::Model;

/// Built-in seed corpus, plus an optional extra seed from the
/// PMONGE_FUZZ_SEED environment variable (how a failure found anywhere
/// is replayed here verbatim).
std::vector<std::uint64_t> fuzz_seeds() {
  std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34};
  if (auto extra = support::env_uint("PMONGE_FUZZ_SEED")) {
    seeds.push_back(*extra);
  }
  return seeds;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, MongeRowSearchAllPathsAgree) {
  Rng rng(GetParam());
  for (int t = 0; t < 8; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 70));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 70));
    const auto a = monge::random_monge(m, n, rng, 2, 15);  // tie-heavy
    const auto brute_min = monge::row_minima_brute(a);
    const auto brute_max = monge::row_maxima_brute(a);
    EXPECT_EQ(monge::smawk_row_minima(a), brute_min) << bench::fuzz_repro(GetParam(), exec::num_threads());
    EXPECT_EQ(monge::smawk_row_maxima_monge(a), brute_max) << bench::fuzz_repro(GetParam(), exec::num_threads());
    for (auto model : {Model::CREW, Model::CRCW_COMMON}) {
      Machine mach(model);
      EXPECT_EQ(par::monge_row_minima(mach, a), brute_min) << bench::fuzz_repro(GetParam(), exec::num_threads());
      EXPECT_EQ(par::monge_row_maxima(mach, a), brute_max) << bench::fuzz_repro(GetParam(), exec::num_threads());
    }
  }
}

TEST_P(Fuzz, StaircaseAllPathsAgree) {
  Rng rng(GetParam() + 1000);
  for (int t = 0; t < 6; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const auto inst = monge::random_staircase_monge(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    const auto want = monge::row_minima_brute(s);
    EXPECT_EQ(monge::staircase_row_minima_seq(s), want) << bench::fuzz_repro(GetParam(), exec::num_threads());
    for (auto sched :
         {par::StaircaseSchedule::MaxParallel,
          par::StaircaseSchedule::WorkEfficient,
          par::StaircaseSchedule::ColumnSplit}) {
      Machine mach(Model::CRCW_COMMON);
      EXPECT_EQ(par::staircase_row_minima(mach, s, sched), want)
          << bench::fuzz_repro(GetParam(), exec::num_threads());
    }
  }
}

TEST_P(Fuzz, TubeAllPathsAgree) {
  Rng rng(GetParam() + 2000);
  for (int t = 0; t < 5; ++t) {
    const std::size_t p = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    const std::size_t q = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    const std::size_t r = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    const auto inst = monge::random_composite(p, q, r, rng);
    const auto want_min = monge::tube_minima_brute(inst.d, inst.e);
    const auto want_max = monge::tube_maxima_brute(inst.d, inst.e);
    for (auto strat :
         {par::TubeStrategy::PerSlice, par::TubeStrategy::SampledDoublyLog}) {
      Machine mach(Model::CRCW_COMMON);
      EXPECT_EQ(par::tube_minima(mach, inst.d, inst.e, strat).opt,
                want_min.opt)
          << bench::fuzz_repro(GetParam(), exec::num_threads());
      EXPECT_EQ(par::tube_maxima(mach, inst.d, inst.e, strat).opt,
                want_max.opt)
          << bench::fuzz_repro(GetParam(), exec::num_threads());
    }
  }
}

TEST_P(Fuzz, NetworkAgreesWithPram) {
  Rng rng(GetParam() + 3000);
  for (int t = 0; t < 3; ++t) {
    const std::size_t n = std::size_t{1}
                          << (3 + static_cast<std::size_t>(
                                  rng.uniform_int(0, 3)));
    const auto a = monge::random_monge(n, n, rng, 2, 15);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    const auto want = monge::row_minima_brute(a);
    for (auto kind :
         {net::TopologyKind::Hypercube, net::TopologyKind::ShuffleExchange}) {
      net::Engine e = par::make_engine_for(n, kind);
      EXPECT_EQ(par::hc_monge_row_minima<std::int64_t>(
                    e, idx, idx,
                    [&](std::size_t i, std::size_t j) { return a(i, j); }),
                want)
          << bench::fuzz_repro(GetParam(), exec::num_threads());
    }
  }
}

TEST_P(Fuzz, ViewsComposeConsistently) {
  // Row maxima through three different view compositions must agree.
  Rng rng(GetParam() + 4000);
  const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
  const auto a = monge::random_inverse_monge(m, n, rng, 2, 15);
  const auto direct = monge::smawk_row_maxima_inverse_monge(a);
  // Via transpose: column maxima of the transpose, re-read per row.
  monge::Transpose<DenseArray<std::int64_t>> tr(a);
  const auto tmax = monge::smawk_row_maxima_inverse_monge(tr);
  for (std::size_t i = 0; i < m; ++i) {
    // The transposed result gives per-column winners; verify the value
    // of row i's winner matches a brute re-check instead of indices
    // (leftmost ties differ across orientations by design).
    EXPECT_EQ(direct[i].value, monge::row_maxima_brute(a)[i].value);
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(tmax[j].value,
              monge::row_maxima_brute(tr)[j].value);
  }
}

TEST_P(Fuzz, ParallelMatchesSequentialAcrossThreadCounts) {
  // Differential harness for the host engine itself: the same random
  // instances solved at several PMONGE_THREADS settings must produce
  // identical results (values, tie-broken indices) and identical charged
  // costs.  SMAWK is the engine-free sequential referee.
  const std::size_t saved = exec::num_threads();
  Rng shapes(GetParam() + 5000);
  for (int t = 0; t < 4; ++t) {
    const std::size_t m =
        1 + static_cast<std::size_t>(shapes.uniform_int(0, 80));
    const std::size_t n =
        1 + static_cast<std::size_t>(shapes.uniform_int(0, 80));
    Rng rng(GetParam() + 6000 + static_cast<std::uint64_t>(t));
    const auto a = monge::random_monge(m, n, rng, 2, 9);  // tie-heavy
    const auto referee = monge::smawk_row_minima(a);

    std::vector<monge::RowOpt<std::int64_t>> first;
    std::uint64_t first_time = 0, first_work = 0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
      exec::set_num_threads(threads);
      Machine mach(Model::CRCW_COMMON);
      const auto got = par::monge_row_minima(mach, a);
      EXPECT_EQ(got, referee)
          << bench::fuzz_repro(GetParam(), threads) << " (m=" << m
          << " n=" << n << ")";
      if (threads == 1) {
        first = got;
        first_time = mach.meter().time;
        first_work = mach.meter().work;
      } else {
        EXPECT_EQ(got, first) << bench::fuzz_repro(GetParam(), threads);
        EXPECT_EQ(mach.meter().time, first_time)
            << bench::fuzz_repro(GetParam(), threads);
        EXPECT_EQ(mach.meter().work, first_work)
            << bench::fuzz_repro(GetParam(), threads);
      }
    }
  }
  exec::set_num_threads(saved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::ValuesIn(fuzz_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pmonge
