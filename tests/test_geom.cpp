// Geometry tests: convexity validation, chains, generators, and the O(1)
// visibility predicate against the brute-force segment test.
#include <gtest/gtest.h>

#include "geom/geometry.hpp"
#include "support/rng.hpp"

namespace pmonge::geom {
namespace {

TEST(Geometry, CrossAndDist) {
  EXPECT_GT(cross({0, 0}, {1, 0}, {1, 1}), 0);  // left turn
  EXPECT_LT(cross({0, 0}, {1, 0}, {1, -1}), 0);
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({1, 1}, {4, 5}), 25.0);
}

TEST(Geometry, ConvexValidation) {
  EXPECT_TRUE(is_strictly_convex_ccw({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  // Clockwise rejected.
  EXPECT_FALSE(is_strictly_convex_ccw({{0, 0}, {0, 2}, {2, 2}, {2, 0}}));
  // Collinear triple rejected (strictness).
  EXPECT_FALSE(is_strictly_convex_ccw({{0, 0}, {1, 0}, {2, 0}, {1, 2}}));
  // Reflex vertex rejected.
  EXPECT_FALSE(
      is_strictly_convex_ccw({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}));
  EXPECT_THROW(ConvexPolygon({{0, 0}, {0, 2}, {2, 2}}), std::invalid_argument);
}

TEST(Geometry, ContainsInterior) {
  ConvexPolygon sq({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(sq.contains_interior({2, 2}));
  EXPECT_FALSE(sq.contains_interior({0, 2}));  // boundary is not interior
  EXPECT_FALSE(sq.contains_interior({5, 2}));
}

TEST(Geometry, RandomPolygonsAreConvex) {
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 40));
    const auto poly = random_convex_polygon(n, rng, {0, 0}, 10);
    EXPECT_EQ(poly.size(), n);
    EXPECT_TRUE(is_strictly_convex_ccw(poly.vertices()));
  }
}

TEST(Geometry, DisjointPolygonsDoNotOverlap) {
  Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    const auto [P, Q] = random_disjoint_polygons(12, 15, rng);
    for (std::size_t i = 0; i < P.size(); ++i) {
      EXPECT_FALSE(Q.contains_interior(P[i]));
    }
    for (std::size_t j = 0; j < Q.size(); ++j) {
      EXPECT_FALSE(P.contains_interior(Q[j]));
    }
  }
}

TEST(Geometry, SplitChainsCoverPolygon) {
  Rng rng(3);
  const auto poly = random_convex_polygon(17, rng, {0, 0}, 8);
  const auto chains = split_chains(poly);
  EXPECT_EQ(chains.lower.size() + chains.upper.size(), poly.size() + 2);
  // Lower chain is x-monotone increasing.
  for (std::size_t i = 1; i < chains.lower.size(); ++i) {
    EXPECT_GE(chains.lower[i].x, chains.lower[i - 1].x);
  }
  for (std::size_t i = 1; i < chains.upper.size(); ++i) {
    EXPECT_LE(chains.upper[i].x, chains.upper[i - 1].x);
  }
}

TEST(Geometry, SegmentsCross) {
  EXPECT_TRUE(segments_cross({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_cross({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  EXPECT_FALSE(segments_cross({0, 0}, {2, 0}, {1, 0}, {3, 0}));  // collinear
}

TEST(Geometry, VisibilityFastMatchesBrute) {
  Rng rng(4);
  std::size_t checked = 0, visible_count = 0;
  for (int t = 0; t < 12; ++t) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(3, 16));
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 16));
    const auto [P, Q] = random_disjoint_polygons(m, n, rng);
    for (std::size_t i = 0; i < P.size(); ++i) {
      for (std::size_t j = 0; j < Q.size(); ++j) {
        EXPECT_EQ(visible(P, i, Q, j), visible_brute(P, i, Q, j))
            << "trial " << t << " pair " << i << "," << j;
        ++checked;
        visible_count += visible(P, i, Q, j);
      }
    }
  }
  // Sanity: both visible and invisible pairs occur.
  EXPECT_GT(visible_count, 0u);
  EXPECT_LT(visible_count, checked);
}

TEST(Geometry, NearestVertexSeesSomething) {
  // Vertices of P on the far side of Q see nothing (the segment exits
  // through P's own interior) -- that is correct behavior.  But the
  // vertex of P closest to Q always sees at least the vertex of Q
  // closest to it.
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const auto [P, Q] = random_disjoint_polygons(20, 20, rng);
    std::size_t bi = 0, bj = 0;
    double best = 1e300;
    for (std::size_t i = 0; i < P.size(); ++i) {
      for (std::size_t j = 0; j < Q.size(); ++j) {
        const double d = dist(P[i], Q[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    EXPECT_TRUE(visible(P, bi, Q, bj)) << t;
  }
}

}  // namespace
}  // namespace pmonge::geom
