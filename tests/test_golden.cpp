// Golden-file tests for the NDJSON wire protocol (docs/serving.md): each
// tests/golden/*.txt transcript drives a fresh Service and pins the
// EXACT response bytes -- the canonical envelopes for errors, overload
// rejection, deadline_unmeetable admission and explain.  The protocol's
// bytes are API: a reordered key, a changed error category or a float
// formatting drift breaks every client that greps a response, and this
// suite is where such a change must show up (and be consciously
// re-blessed) rather than slip out silently.
//
// Transcript grammar (one directive per line):
//   # ...            comment (blank lines ignored)
//   !options k=v ... service options, before any request: queue= batch=
//                    cache= shards= deadline= coalesce=on|off
//                    planner=on|off
//   !pause / !resume hold / release the worker (admission keeps running,
//                    which is how the overloaded transcript fills the
//                    queue deterministically)
//   > <json>         submit one request line
//   < <bytes>        await the next response (FIFO); must match EXACTLY,
//                    mismatches report the first differing byte offset
//   ~ <regex>        await the next response; must regex-match in full
//                    (for explain / deadline_unmeetable, whose payloads
//                    embed measured or predicted timings)
//
// Every `<` expectation is machine-independent by the serve layer's
// determinism contract; anything timing-dependent must use `~`.
// Blessing new bytes: PMONGE_GOLDEN_REGEN=1 rewrites the `<` lines of
// every transcript in the SOURCE tree from the live service, then fails
// the run (regenerated goldens must be reviewed, never silently green).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace pmonge {
namespace {

using serve::Service;
using serve::ServiceOptions;

std::filesystem::path golden_dir() {
  return std::filesystem::path(PMONGE_SOURCE_DIR) / "tests" / "golden";
}

std::vector<std::string> golden_files() {
  std::vector<std::string> names;
  for (const auto& e : std::filesystem::directory_iterator(golden_dir())) {
    if (e.path().extension() == ".txt") {
      names.push_back(e.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// First differing byte of two strings, rendered for a failure message.
std::string first_diff(const std::string& want, const std::string& got) {
  std::size_t i = 0;
  while (i < want.size() && i < got.size() && want[i] == got[i]) ++i;
  std::ostringstream os;
  os << "first difference at byte " << i << ":\n  want: " << want
     << "\n  got : " << got << "\n  diff : " << std::string(i, ' ') << "^";
  return os.str();
}

ServiceOptions parse_options(const std::string& rest, const std::string& file,
                             std::size_t lineno) {
  ServiceOptions opts;
  std::istringstream is(rest);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      ADD_FAILURE() << file << ":" << lineno << ": malformed option \"" << tok
                    << "\" (want key=value)";
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "queue") {
      opts.queue_capacity = std::stoull(val);
    } else if (key == "batch") {
      opts.batch_max = std::stoull(val);
    } else if (key == "cache") {
      opts.cache_capacity = std::stoull(val);
    } else if (key == "shards") {
      opts.cache_shards = std::stoull(val);
    } else if (key == "deadline") {
      opts.default_deadline_ms = std::stoll(val);
    } else if (key == "coalesce") {
      opts.coalesce = val == "on";
    } else if (key == "planner") {
      opts.planner = val == "on";
    } else {
      ADD_FAILURE() << file << ":" << lineno << ": unknown option \"" << key
                    << "\"";
    }
  }
  return opts;
}

class Golden : public ::testing::TestWithParam<std::string> {};

TEST_P(Golden, TranscriptMatches) {
  const std::string file = GetParam();
  const std::filesystem::path path = golden_dir() / file;
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open " << path;
  const bool regen = std::getenv("PMONGE_GOLDEN_REGEN") != nullptr;

  std::unique_ptr<Service> service;
  const auto live = [&]() -> Service& {
    if (!service) service = std::make_unique<Service>();
    return *service;
  };
  std::vector<std::future<std::string>> pending;
  std::size_t next = 0;  // responses consumed so far
  const auto next_response = [&]() -> std::string {
    EXPECT_LT(next, pending.size()) << file << ": expectation with no "
                                       "matching request";
    return next < pending.size() ? pending[next++].get() : std::string();
  };

  std::vector<std::string> out_lines;  // rewritten transcript (regen)
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      out_lines.push_back(line);
      continue;
    }
    if (line == "!pause") {
      live().pause();
      out_lines.push_back(line);
    } else if (line == "!resume") {
      live().resume();
      out_lines.push_back(line);
    } else if (line.rfind("!options", 0) == 0) {
      EXPECT_EQ(service, nullptr)
          << file << ":" << lineno << ": !options after first request";
      service =
          std::make_unique<Service>(parse_options(line.substr(8), file,
                                                  lineno));
      out_lines.push_back(line);
    } else if (line.rfind("> ", 0) == 0) {
      pending.push_back(live().submit(line.substr(2)));
      out_lines.push_back(line);
    } else if (line.rfind("< ", 0) == 0 || line == "<") {
      const std::string want =
          line.size() > 2 ? line.substr(2) : std::string();
      const std::string got = next_response();
      if (regen) {
        out_lines.push_back("< " + got);
      } else {
        EXPECT_EQ(got, want) << file << ":" << lineno << ": "
                             << first_diff(want, got);
        out_lines.push_back(line);
      }
    } else if (line.rfind("~ ", 0) == 0) {
      const std::string pattern = line.substr(2);
      const std::string got = next_response();
      EXPECT_TRUE(std::regex_match(got, std::regex(pattern)))
          << file << ":" << lineno << ": response does not match /" << pattern
          << "/\n  got: " << got;
      out_lines.push_back(line);
    } else {
      ADD_FAILURE() << file << ":" << lineno << ": unknown directive: "
                    << line;
      out_lines.push_back(line);
    }
  }
  EXPECT_EQ(next, pending.size())
      << file << ": " << (pending.size() - next)
      << " response(s) never checked (missing < or ~ lines)";

  if (regen) {
    std::ofstream rewrite(path, std::ios::trunc);
    for (const std::string& l : out_lines) rewrite << l << "\n";
    ADD_FAILURE() << file << ": regenerated by PMONGE_GOLDEN_REGEN=1 -- "
                     "review the diff and rerun without the flag";
  }
}

INSTANTIATE_TEST_SUITE_P(Transcripts, Golden,
                         ::testing::ValuesIn(golden_files()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace pmonge
