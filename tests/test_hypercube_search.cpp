// Tests for Theorems 3.2-3.4's network algorithms: row minima / maxima of
// Monge arrays on hypercube, CCC and shuffle-exchange hosts, checked
// against brute force, plus the constant-slowdown and depth-shape
// properties the tables claim.
#include <gtest/gtest.h>

#include <map>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "par/hypercube_search.hpp"
#include "support/rng.hpp"

namespace pmonge::par {
namespace {

using monge::DenseArray;
using net::Engine;
using net::TopologyKind;

/// Distance-vector instance: a[i][j] = (x[i] - y[j])^2 with sorted site
/// vectors -- Monge, and in the paper's v/w data-model form.
struct VecInstance {
  std::vector<double> x, y;
  double eval(double xi, double yj) const {
    const double d = xi - yj;
    return d * d;
  }
  DenseArray<double> dense() const {
    DenseArray<double> a(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t j = 0; j < y.size(); ++j) {
        const double d = x[i] - y[j];
        a.at(i, j) = d * d;
      }
    }
    return a;
  }
};

VecInstance make_instance(std::size_t n, Rng& rng) {
  VecInstance v;
  v.x.resize(n);
  v.y.resize(n);
  for (auto& t : v.x) t = rng.uniform(0, 100);
  for (auto& t : v.y) t = rng.uniform(0, 100);
  std::sort(v.x.begin(), v.x.end());
  std::sort(v.y.begin(), v.y.end());
  return v;
}

class HcSearch : public ::testing::TestWithParam<
                     std::tuple<std::size_t, TopologyKind>> {};

TEST_P(HcSearch, RowMinimaMatchesBrute) {
  const auto [n, kind] = GetParam();
  Rng rng(600 + n);
  for (int t = 0; t < 3; ++t) {
    const auto inst = make_instance(n, rng);
    Engine e = make_engine_for(n, kind);
    const auto got = hc_monge_row_minima<double>(
        e, inst.x, inst.y,
        [&](double a, double b) { return inst.eval(a, b); });
    EXPECT_EQ(got, monge::row_minima_brute(inst.dense()));
  }
}

TEST_P(HcSearch, RowMaximaMatchesBrute) {
  const auto [n, kind] = GetParam();
  Rng rng(700 + n);
  for (int t = 0; t < 3; ++t) {
    const auto inst = make_instance(n, rng);
    Engine e = make_engine_for(n, kind);
    const auto got = hc_monge_row_maxima<double>(
        e, inst.x, inst.y,
        [&](double a, double b) { return inst.eval(a, b); });
    EXPECT_EQ(got, monge::row_maxima_brute(inst.dense()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTopologies, HcSearch,
    ::testing::Combine(
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}, std::size_t{16}, std::size_t{32},
                          std::size_t{64}, std::size_t{128}),
        ::testing::Values(TopologyKind::Hypercube,
                          TopologyKind::CubeConnectedCycles,
                          TopologyKind::ShuffleExchange)),
    [](const auto& info) {
      std::string t = net::topology_name(std::get<1>(info.param));
      for (auto& c : t) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + t;
    });

TEST(HcSearch, RejectsNonPowerOfTwo) {
  Rng rng(1);
  auto inst = make_instance(12, rng);
  Engine e(TopologyKind::Hypercube, 5);
  EXPECT_THROW(hc_monge_row_minima<double>(
                   e, inst.x, inst.y,
                   [&](double a, double b) { return inst.eval(a, b); }),
               std::invalid_argument);
}

TEST(HcSearch, DepthIsPolylog) {
  // The fill machinery spends O(lg n) rounds of O(lg n) normal steps:
  // the measured depth must fit c * lg^2 n with a stable constant and be
  // sublinear by n = 4096.
  Rng rng(2);
  std::vector<SeriesPoint> pts;
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto inst = make_instance(n, rng);
    Engine e = make_engine_for(n, TopologyKind::Hypercube);
    hc_monge_row_minima<double>(e, inst.x, inst.y, [&](double a, double b) {
      return inst.eval(a, b);
    });
    pts.push_back({static_cast<double>(n),
                   static_cast<double>(e.meter().total_steps())});
  }
  EXPECT_TRUE(matches_shape(pts, shape_lg2(), 0.35))
      << pts.front().value << " .. " << pts.back().value;
  EXPECT_LT(pts.back().value, 4096.0);
}

TEST(HcSearch, EmulationSlowdownIsConstant) {
  // The "hypercube, etc." table rows: CCC / shuffle-exchange run the same
  // normal algorithm within a constant factor, across sizes.
  Rng rng(3);
  for (std::size_t n : {64u, 512u}) {
    const auto inst = make_instance(n, rng);
    std::map<TopologyKind, std::uint64_t> steps;
    for (auto kind :
         {TopologyKind::Hypercube, TopologyKind::CubeConnectedCycles,
          TopologyKind::ShuffleExchange}) {
      Engine e = make_engine_for(n, kind);
      hc_monge_row_minima<double>(e, inst.x, inst.y,
                                  [&](double a, double b) {
                                    return inst.eval(a, b);
                                  });
      steps[kind] = e.meter().total_steps();
    }
    const double base = static_cast<double>(steps[TopologyKind::Hypercube]);
    EXPECT_LE(steps[TopologyKind::ShuffleExchange], 4 * base) << n;
    EXPECT_LE(steps[TopologyKind::CubeConnectedCycles], 4 * base) << n;
    EXPECT_GE(steps[TopologyKind::ShuffleExchange], base) << n;
  }
}

TEST(HcSearch, IntegerMongeFromGenerator) {
  // Dense generator arrays work through the v/w interface by treating the
  // row index as v and column index as w (the PRAM-style O(1) entry).
  Rng rng(4);
  const std::size_t n = 32;
  const auto a = monge::random_monge(n, n, rng, 3, 20);  // many ties
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Engine e = make_engine_for(n, TopologyKind::Hypercube);
  const auto got = hc_monge_row_minima<std::int64_t>(
      e, idx, idx, [&](std::size_t i, std::size_t j) { return a(i, j); });
  EXPECT_EQ(got, monge::row_minima_brute(a));
}

}  // namespace
}  // namespace pmonge::par
