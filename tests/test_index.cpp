// Query-index suite (docs/indexing.md): the build-once submatrix
// min/max structures of src/index must be invisible in response bytes.
//
// Legs:
//   * library differential -- Index::submatrix_opt vs every
//     submatrix_direct variant (brute / sequential SMAWK / chunked
//     parallel) over seeded random monge / inverse-Monge / staircase
//     arrays, across thread counts;
//   * serial-cutoff bit-identity -- arrays straddling
//     par::kSerialCutoffCells build serially vs on the pool and must
//     answer identically;
//   * serve differential -- the same submatrix stream against a service
//     with the index built and one without, byte-compared;
//   * invalidation -- unregister drops the index; later submatrix
//     queries answer unknown_array, never a stale indexed result;
//   * node-corrupt chaos -- index.node_corrupt armed at a high rate:
//     checksums catch every flip, nodes rebuild from the source array,
//     and the bytes never move.  Seeded failures print a reproduction
//     command (bench/bench_util.hpp).
//
// Knobs:
//   PMONGE_THREADS     run ONLY this engine thread count
//   PMONGE_INDEX_SEED  run ONLY this workload seed
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "index/index.hpp"
#include "monge/generators.hpp"
#include "par/monge_rowminima.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using index::Index;
using index::RegionOpt;
using serve::ArrayEntry;
using serve::Json;
using serve::Service;
using serve::ServiceOptions;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = exec::num_threads();
    fault::disarm();
  }
  void TearDown() override {
    fault::disarm();
    exec::set_num_threads(saved_threads_);
  }

 private:
  std::size_t saved_threads_ = 1;
};

std::vector<std::size_t> thread_counts() {
  if (const auto only = support::env_uint("PMONGE_THREADS")) {
    return {static_cast<std::size_t>(*only < 1 ? 1 : *only)};
  }
  return {1, 4, 8};
}

std::vector<std::uint64_t> workload_seeds() {
  if (const auto only = support::env_uint("PMONGE_INDEX_SEED")) {
    return {*only};
  }
  return {1, 2, 3};
}

std::string index_repro(std::uint64_t seed, std::size_t threads) {
  return bench::repro_line("PMONGE_INDEX_SEED=" + std::to_string(seed) +
                               " PMONGE_THREADS=" + std::to_string(threads),
                           "index");
}

std::shared_ptr<const ArrayEntry> make_entry(const char* kind, std::size_t m,
                                             std::size_t n,
                                             std::uint64_t seed) {
  Rng rng(seed);
  ArrayEntry e;
  if (std::string(kind) == "monge") {
    e.kind = ArrayEntry::Kind::Monge;
    e.data = monge::random_monge(m, n, rng);
  } else if (std::string(kind) == "inverse_monge") {
    e.kind = ArrayEntry::Kind::InverseMonge;
    e.data = monge::random_inverse_monge(m, n, rng);
  } else {
    e.kind = ArrayEntry::Kind::Staircase;
    auto inst = monge::random_staircase_monge(m, n, rng);
    e.data = std::move(inst.base);
    e.frontier = std::move(inst.frontier);
  }
  return std::make_shared<const ArrayEntry>(std::move(e));
}

struct Region {
  std::size_t r0, r1, c0, c1;
};

Region random_region(Rng& rng, std::size_t m, std::size_t n) {
  const auto a = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
  const auto b = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
  const auto c = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const auto d = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return {std::min(a, b), std::max(a, b), std::min(c, d), std::max(c, d)};
}

std::string region_str(const RegionOpt& r) {
  if (!r.has) return "(empty)";
  return "(v=" + std::to_string(r.value) + ", r=" + std::to_string(r.row) +
         ", c=" + std::to_string(r.col) + ")";
}

bool same(const RegionOpt& a, const RegionOpt& b) {
  if (a.has != b.has) return false;
  if (!a.has) return true;
  return a.value == b.value && a.row == b.row && a.col == b.col;
}

// ---------------------------------------------------------------------------
// Library differential: index vs every direct variant
// ---------------------------------------------------------------------------

TEST_F(IndexTest, DifferentialIndexVsDirectAllKinds) {
  for (const std::size_t threads : thread_counts()) {
    exec::set_num_threads(threads);
    for (const std::uint64_t seed : workload_seeds()) {
      const std::string repro = index_repro(seed, threads);
      for (const char* kind : {"monge", "inverse_monge", "staircase"}) {
        // 150 rows: partial leaf pieces on both edges plus canonical
        // nodes at every tree depth.
        const auto entry = make_entry(kind, 150, 90, seed * 101 + 7);
        Index idx(entry);
        idx.build();
        Rng rng(seed ^ 0xabcdef12345ULL);
        for (int q = 0; q < 200; ++q) {
          const Region g = random_region(rng, 150, 90);
          const bool maxima = q % 2 == 1;
          const RegionOpt want = index::submatrix_direct(
              *entry, maxima, plan::Algo::Brute, g.r0, g.r1, g.c0, g.c1);
          const RegionOpt got =
              idx.submatrix_opt(maxima, g.r0, g.r1, g.c0, g.c1);
          ASSERT_TRUE(same(want, got))
              << repro << "\n  kind " << kind << (maxima ? " max " : " min ")
              << "[" << g.r0 << "," << g.r1 << "]x[" << g.c0 << "," << g.c1
              << "]: brute " << region_str(want) << " vs index "
              << region_str(got);
          for (const plan::Algo algo :
               {plan::Algo::Sequential, plan::Algo::Parallel}) {
            const RegionOpt direct = index::submatrix_direct(
                *entry, maxima, algo, g.r0, g.r1, g.c0, g.c1);
            ASSERT_TRUE(same(want, direct))
                << repro << "\n  kind " << kind << " algo "
                << plan::algo_name(algo) << ": brute " << region_str(want)
                << " vs direct " << region_str(direct);
          }
        }
      }
    }
  }
}

TEST_F(IndexTest, EmptyStaircaseRegionHasNoValue) {
  // A handcrafted frontier with fully-infinite bottom rows: regions
  // entirely past the frontier must answer has == false everywhere.
  ArrayEntry e;
  e.kind = ArrayEntry::Kind::Staircase;
  Rng rng(5);
  e.data = monge::random_monge(8, 8, rng);
  e.frontier = {8, 6, 4, 3, 2, 0, 0, 0};
  const auto entry = std::make_shared<const ArrayEntry>(std::move(e));
  Index idx(entry, 2);  // several tree levels even at 8 rows
  idx.build();
  for (const bool maxima : {false, true}) {
    EXPECT_FALSE(idx.submatrix_opt(maxima, 5, 7, 0, 7).has);
    EXPECT_FALSE(idx.submatrix_opt(maxima, 2, 4, 6, 7).has);
    const RegionOpt direct = index::submatrix_direct(
        *entry, maxima, plan::Algo::Brute, 5, 7, 0, 7);
    EXPECT_FALSE(direct.has);
    // Mixed region: finite prefix decides the answer.
    const RegionOpt got = idx.submatrix_opt(maxima, 3, 7, 0, 7);
    const RegionOpt want = index::submatrix_direct(
        *entry, maxima, plan::Algo::Brute, 3, 7, 0, 7);
    EXPECT_TRUE(same(want, got))
        << region_str(want) << " vs " << region_str(got);
  }
}

// ---------------------------------------------------------------------------
// Serial cutoff: builds below/above the cutoff answer identically
// ---------------------------------------------------------------------------

TEST_F(IndexTest, SerialCutoffBitIdentity) {
  // 60x60 = 3600 cells sits under par::kSerialCutoffCells (4096): the
  // build never touches the pool.  70x70 sits above: leaf jobs go
  // through exec::parallel_jobs.  Either way the answers match brute,
  // and a 1-thread build matches an 8-thread build field for field.
  static_assert(par::kSerialCutoffCells == 4096);
  for (const std::size_t m : {60u, 70u}) {
    const auto entry = make_entry("monge", m, m, 99);
    exec::set_num_threads(8);
    Index par_idx(entry);
    par_idx.build();
    exec::set_num_threads(1);
    Index ser_idx(entry);
    ser_idx.build();
    Rng rng(17);
    for (int q = 0; q < 100; ++q) {
      const Region g = random_region(rng, m, m);
      const bool maxima = q % 2 == 0;
      const RegionOpt a = par_idx.submatrix_opt(maxima, g.r0, g.r1, g.c0, g.c1);
      const RegionOpt b = ser_idx.submatrix_opt(maxima, g.r0, g.r1, g.c0, g.c1);
      const RegionOpt w = index::submatrix_direct(
          *entry, maxima, plan::Algo::Brute, g.r0, g.r1, g.c0, g.c1);
      ASSERT_TRUE(same(a, b)) << "m=" << m << " threads changed index bytes: "
                              << region_str(a) << " vs " << region_str(b);
      ASSERT_TRUE(same(a, w)) << "m=" << m << " index " << region_str(a)
                              << " vs brute " << region_str(w);
    }
  }
}

// ---------------------------------------------------------------------------
// Serve layer: routing is invisible, invalidation is immediate
// ---------------------------------------------------------------------------

std::int64_t result_int(const std::string& resp, const char* key) {
  const Json r = Json::parse(resp);
  const Json* ok = r.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    ADD_FAILURE() << "expected ok response, got: " << resp;
    return -1;
  }
  return r.find("result")->find(key)->as_int();
}

std::vector<std::string> submatrix_stream(std::uint64_t seed,
                                          std::int64_t array, std::size_t m,
                                          std::size_t n, std::size_t count) {
  Rng rng(seed * 7919 + 13);
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const Region g = random_region(rng, m, n);
    lines.push_back(
        std::string("{\"op\":\"submatrix_") + (q % 2 ? "max" : "min") +
        "\",\"array\":" + std::to_string(array) +
        ",\"r0\":" + std::to_string(g.r0) + ",\"r1\":" + std::to_string(g.r1) +
        ",\"c0\":" + std::to_string(g.c0) + ",\"c1\":" + std::to_string(g.c1) +
        "}");
  }
  return lines;
}

TEST_F(IndexTest, ServeIndexOnOffBytesIdentical) {
  exec::set_num_threads(4);
  for (const std::uint64_t seed : workload_seeds()) {
    const std::string repro = index_repro(seed, 4);
    ServiceOptions opts;
    opts.cache_capacity = 0;  // compare computations, not memoized bytes
    // Planner off: prefer_index degenerates to "use it when built", so
    // the indexed service deterministically routes through the index at
    // these sizes regardless of the profile's constants.
    opts.planner = false;
    Service indexed(opts);
    Service plain(opts);
    for (const char* kind : {"monge", "staircase"}) {
      const std::string reg =
          std::string("{\"op\":\"register_random\",\"kind\":\"") + kind +
          "\",\"rows\":100,\"cols\":80,\"seed\":" + std::to_string(seed) + "}";
      const std::int64_t ia = result_int(indexed.request(reg), "array");
      const std::int64_t pa = result_int(plain.request(reg), "array");
      ASSERT_EQ(ia, pa) << repro;
      ASSERT_GE(result_int(indexed.request(
                    "{\"op\":\"index_build\",\"array\":" + std::to_string(ia) +
                    "}"),
                "nodes"),
                1)
          << repro;
      for (const std::string& line : submatrix_stream(seed, ia, 100, 80, 60)) {
        EXPECT_EQ(indexed.request(line), plain.request(line))
            << repro << "\n  query: " << line;
      }
    }
    // The indexed service really served lookups through its indexes.
    const Json stats = Json::parse(indexed.request("{\"op\":\"index_stats\"}"));
    EXPECT_GT(stats.find("result")->find("lookups")->as_int(), 0) << repro;
  }
}

TEST_F(IndexTest, UnregisterInvalidatesIndex) {
  Service svc;
  const std::int64_t a = result_int(
      svc.request("{\"op\":\"register_random\",\"rows\":48,\"cols\":48,"
                  "\"seed\":3}"),
      "array");
  svc.request("{\"op\":\"index_build\",\"array\":" + std::to_string(a) + "}");
  const std::string probe = "{\"op\":\"submatrix_min\",\"array\":" +
                            std::to_string(a) +
                            ",\"c0\":0,\"c1\":47,\"r0\":0,\"r1\":47}";
  EXPECT_NE(svc.request(probe).find("\"ok\":true"), std::string::npos);
  svc.request("{\"op\":\"unregister\",\"array\":" + std::to_string(a) + "}");
  const Json after = Json::parse(svc.request(probe));
  EXPECT_FALSE(after.find("ok")->as_bool());
  EXPECT_EQ(after.find("error")->as_string(),
            "unknown_array: " + std::to_string(a));
  const Json stats = Json::parse(svc.request("{\"op\":\"index_stats\"}"));
  EXPECT_EQ(stats.find("result")->find("arrays")->as_int(), 0);
  EXPECT_EQ(stats.find("result")->find("drops")->as_int(), 1);
}

// ---------------------------------------------------------------------------
// The node-corrupt chaos leg
// ---------------------------------------------------------------------------

TEST_F(IndexTest, CorruptNodesDetectedRebuiltAndInvisible) {
  exec::set_num_threads(4);
  const std::uint64_t seed = workload_seeds().front();
  const std::string repro = index_repro(seed, 4);
  const std::uint32_t mask =
      1u << static_cast<std::uint32_t>(fault::Site::IndexNodeCorrupt);

  ServiceOptions opts;
  opts.cache_capacity = 0;
  opts.planner = false;  // deterministic index routing (see above)
  Service faulted(opts);
  Service plain(opts);
  const std::string reg =
      "{\"op\":\"register_random\",\"rows\":128,\"cols\":96,\"seed\":" +
      std::to_string(seed) + "}";
  const std::int64_t fa = result_int(faulted.request(reg), "array");
  const std::int64_t pa = result_int(plain.request(reg), "array");
  ASSERT_EQ(fa, pa) << repro;
  const std::string build =
      "{\"op\":\"index_build\",\"array\":" + std::to_string(fa) + "}";
  // Both sides answer through an index: only the corruption differs.
  EXPECT_EQ(faulted.request(build), plain.request(build)) << repro;

  fault::arm(seed, 10000, mask);  // every visited node gets a flipped byte
  std::vector<std::string> got;
  const auto stream = submatrix_stream(seed, fa, 128, 96, 80);
  for (const std::string& line : stream) got.push_back(faulted.request(line));
  fault::disarm();
  const std::uint64_t injected = fault::injected(fault::Site::IndexNodeCorrupt);
  EXPECT_GT(injected, 0u) << repro;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(got[i], plain.request(stream[i]))
        << repro << "\n  corrupted-index bytes differ\n  query: "
        << stream[i];
  }

  // Audit: every injected flip was detected and repaired, and repairs
  // actually happened.
  const Json stats = Json::parse(faulted.request(
      "{\"op\":\"index_stats\",\"array\":" + std::to_string(fa) + "}"));
  const Json* r = stats.find("result");
  ASSERT_NE(r, nullptr) << repro;
  const std::int64_t detected = r->find("corrupt_detected")->as_int();
  const std::int64_t rebuilds = r->find("node_rebuilds")->as_int();
  EXPECT_GT(detected, 0) << repro;
  EXPECT_EQ(detected, rebuilds) << repro;
  EXPECT_EQ(static_cast<std::uint64_t>(detected), injected) << repro;
}

TEST_F(IndexTest, ExplainReportsIndexRoute) {
  Service svc;
  // 256x256: any direct variant costs orders of magnitude more than
  // ~2 lg m + 2 lg n node probes, so prefer_index holds for every sane
  // calibrated profile.
  const std::int64_t a = result_int(
      svc.request("{\"op\":\"register_random\",\"rows\":256,\"cols\":256,"
                  "\"seed\":11}"),
      "array");
  const std::string inner = "{\"op\":\"submatrix_min\",\"array\":" +
                            std::to_string(a) +
                            ",\"c0\":0,\"c1\":255,\"r0\":0,\"r1\":255}";
  const std::string ex = "{\"op\":\"explain\",\"query\":" + inner + "}";
  const Json before = Json::parse(svc.request(ex));
  const Json* plan_before = before.find("result")->find("plan");
  ASSERT_NE(plan_before->find("use_index"), nullptr);
  EXPECT_FALSE(plan_before->find("use_index")->as_bool());
  svc.request("{\"op\":\"index_build\",\"array\":" + std::to_string(a) + "}");
  const Json after = Json::parse(svc.request(ex));
  const Json* plan_after = after.find("result")->find("plan");
  EXPECT_TRUE(plan_after->find("use_index")->as_bool());
  // The inner outcome bytes are route-independent.
  EXPECT_EQ(before.find("result")->find("outcome")->dump(),
            after.find("result")->find("outcome")->dump());
}

}  // namespace
}  // namespace pmonge
