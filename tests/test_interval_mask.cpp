// Tests for the interval-masked row-optima helper (the two-sided
// generalization of the staircase search used by Applications 2 and 3):
// correctness against brute force for all four problem kinds, mask
// validation, and empty-interval behavior.
#include <gtest/gtest.h>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "par/interval_mask.hpp"
#include "support/rng.hpp"

namespace pmonge::par {
namespace {

using monge::DenseArray;
using monge::kNoCol;
using monge::RowOpt;
using pram::Machine;
using pram::Model;

/// Random monotone non-decreasing mask pair (lo, hi), lo <= hi <= n.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> random_mask(
    std::size_t m, std::size_t n, Rng& rng) {
  std::vector<std::size_t> lo(m), hi(m);
  std::size_t a = 0, b = 0;
  for (std::size_t i = 0; i < m; ++i) {
    a = std::min<std::size_t>(
        n, a + static_cast<std::size_t>(rng.uniform_int(0, 2)));
    b = std::min<std::size_t>(
        n, std::max(b, a) + static_cast<std::size_t>(rng.uniform_int(0, 3)));
    b = std::max(a, std::min(b, n));
    lo[i] = a;
    hi[i] = b;
  }
  return {lo, hi};
}

template <class A>
std::vector<RowOpt<std::int64_t>> masked_brute(
    const A& arr, const std::vector<std::size_t>& lo,
    const std::vector<std::size_t>& hi, bool minima) {
  std::vector<RowOpt<std::int64_t>> out(
      arr.rows(),
      RowOpt<std::int64_t>{minima ? monge::inf<std::int64_t>()
                                  : -monge::inf<std::int64_t>(),
                           kNoCol});
  for (std::size_t i = 0; i < arr.rows(); ++i) {
    for (std::size_t j = lo[i]; j < hi[i]; ++j) {
      const auto v = arr(i, j);
      const bool take = out[i].col == kNoCol ||
                        (minima ? v < out[i].value : v > out[i].value);
      if (take) out[i] = {v, j};
    }
  }
  return out;
}

TEST(IntervalMask, MongeMinimaMatchesBrute) {
  Rng rng(61);
  for (int t = 0; t < 25; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 50));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 50));
    const auto a = monge::random_monge(m, n, rng, 3, 20);
    const auto [lo, hi] = random_mask(m, n, rng);
    Machine mach(Model::CRCW_COMMON);
    const auto got = interval_masked_row_opt<std::int64_t>(
        mach, m, n, lo, hi, [&](std::size_t i, std::size_t j) {
          return a(i, j);
        },
        MaskedProblem::MongeMinima);
    EXPECT_EQ(got, masked_brute(a, lo, hi, true));
  }
}

TEST(IntervalMask, MongeMaximaMatchesBrute) {
  Rng rng(62);
  for (int t = 0; t < 25; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto a = monge::random_monge(m, n, rng, 3, 20);
    const auto [lo, hi] = random_mask(m, n, rng);
    Machine mach(Model::CREW);
    const auto got = interval_masked_row_opt<std::int64_t>(
        mach, m, n, lo, hi, [&](std::size_t i, std::size_t j) {
          return a(i, j);
        },
        MaskedProblem::MongeMaxima);
    EXPECT_EQ(got, masked_brute(a, lo, hi, false));
  }
}

TEST(IntervalMask, InverseMongeBothDirections) {
  Rng rng(63);
  for (int t = 0; t < 25; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    const auto a = monge::random_inverse_monge(m, n, rng, 3, 20);
    const auto [lo, hi] = random_mask(m, n, rng);
    Machine mach(Model::CRCW_COMMON);
    auto eval = [&](std::size_t i, std::size_t j) { return a(i, j); };
    EXPECT_EQ(interval_masked_row_opt<std::int64_t>(
                  mach, m, n, lo, hi, eval,
                  MaskedProblem::InverseMongeMinima),
              masked_brute(a, lo, hi, true));
    EXPECT_EQ(interval_masked_row_opt<std::int64_t>(
                  mach, m, n, lo, hi, eval,
                  MaskedProblem::InverseMongeMaxima),
              masked_brute(a, lo, hi, false));
  }
}

TEST(IntervalMask, StaircaseFrontierAsSpecialCase) {
  // lo == 0 everywhere reproduces the staircase search.  Frontiers are
  // non-increasing, so the rows are reversed to make hi non-decreasing --
  // which turns the Monge base into an inverse-Monge array.
  Rng rng(64);
  const std::size_t m = 30, n = 40;
  const auto inst = monge::random_staircase_monge(m, n, rng);
  std::vector<std::size_t> lo(m, 0);
  std::vector<std::size_t> hi(inst.frontier.rbegin(), inst.frontier.rend());
  Machine mach(Model::CRCW_COMMON);
  const auto got = interval_masked_row_opt<std::int64_t>(
      mach, m, n, lo, hi, [&](std::size_t i, std::size_t j) {
        return inst.base(m - 1 - i, j);
      },
      MaskedProblem::InverseMongeMinima);
  monge::StaircaseArray<DenseArray<std::int64_t>> s(inst.base,
                                                    inst.frontier);
  const auto want = monge::row_minima_brute(s);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(got[i], want[m - 1 - i]) << i;
  }
}

TEST(IntervalMask, RejectsNonMonotoneMasks) {
  Rng rng(65);
  const auto a = monge::random_monge(4, 6, rng);
  auto eval = [&](std::size_t i, std::size_t j) { return a(i, j); };
  Machine mach(Model::CREW);
  std::vector<std::size_t> lo = {2, 1, 3, 3};  // dips
  std::vector<std::size_t> hi = {4, 4, 5, 6};
  EXPECT_THROW(interval_masked_row_opt<std::int64_t>(
                   mach, 4, 6, lo, hi, eval, MaskedProblem::MongeMinima),
               std::invalid_argument);
  lo = {1, 1, 2, 3};
  hi = {4, 3, 5, 6};  // hi dips
  EXPECT_THROW(interval_masked_row_opt<std::int64_t>(
                   mach, 4, 6, lo, hi, eval, MaskedProblem::MongeMinima),
               std::invalid_argument);
  lo = {1, 2, 3, 5};
  hi = {4, 4, 5, 4};  // lo > hi
  EXPECT_THROW(interval_masked_row_opt<std::int64_t>(
                   mach, 4, 6, lo, hi, eval, MaskedProblem::MongeMinima),
               std::invalid_argument);
}

TEST(IntervalMask, EmptyIntervalsReportNoCol) {
  Rng rng(66);
  const auto a = monge::random_monge(5, 8, rng);
  std::vector<std::size_t> lo = {0, 2, 2, 5, 8};
  std::vector<std::size_t> hi = {2, 2, 6, 8, 8};  // rows 1 and 4 empty
  Machine mach(Model::CRCW_COMMON);
  const auto got = interval_masked_row_opt<std::int64_t>(
      mach, 5, 8, lo, hi, [&](std::size_t i, std::size_t j) {
        return a(i, j);
      },
      MaskedProblem::MongeMinima);
  EXPECT_NE(got[0].col, kNoCol);
  EXPECT_EQ(got[1].col, kNoCol);
  EXPECT_NE(got[2].col, kNoCol);
  EXPECT_EQ(got[4].col, kNoCol);
}

TEST(IntervalMask, DepthIsLogarithmic) {
  Rng rng(67);
  std::vector<SeriesPoint> series;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const auto a = monge::random_monge(n, n, rng);
    const auto [lo, hi] = random_mask(n, n, rng);
    Machine mach(Model::CRCW_COMMON);
    interval_masked_row_opt<std::int64_t>(
        mach, n, n, lo, hi, [&](std::size_t i, std::size_t j) {
          return a(i, j);
        },
        MaskedProblem::MongeMinima);
    series.push_back({static_cast<double>(n),
                      static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(series, shape_lg(), 0.5))
      << series.front().value << " .. " << series.back().value;
}

}  // namespace
}  // namespace pmonge::par
