// Model-enforcement and failure-injection tests: the PRAM and network
// simulators must *detect* illegal programs, not silently execute them.
// These tests run rigged programs that break each model's rules and
// assert the simulator throws, plus legal programs near the same edge
// that must pass.
#include <gtest/gtest.h>

#include <optional>

#include "exec/thread_pool.hpp"
#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "net/engine.hpp"
#include "net/primitives.hpp"
#include "par/monge_rowminima.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using pram::Machine;
using pram::Model;
using pram::WriteIntent;

TEST(Enforcement, CrewManyWritersOneCell) {
  Machine m(Model::CREW);
  std::vector<int> cells(8, 0);
  std::vector<WriteIntent<int>> w;
  for (std::size_t p = 0; p < 5; ++p) w.push_back({p, 3, static_cast<int>(p)});
  EXPECT_THROW(pram::scatter_write<int>(m, cells, w), ModelViolation);
}

TEST(Enforcement, CrewPermutationWritesLegal) {
  Machine m(Model::CREW);
  std::vector<int> cells(64, 0);
  std::vector<WriteIntent<int>> w;
  for (std::size_t p = 0; p < 64; ++p) {
    w.push_back({p, (p * 13) % 64, static_cast<int>(p)});  // a permutation
  }
  EXPECT_NO_THROW(pram::scatter_write<int>(m, cells, w));
  for (std::size_t p = 0; p < 64; ++p) {
    EXPECT_EQ(cells[(p * 13) % 64], static_cast<int>(p));
  }
}

TEST(Enforcement, CommonModelAllowsUnanimityOnly) {
  Machine m(Model::CRCW_COMMON);
  std::vector<int> cells(4, -1);
  std::vector<WriteIntent<int>> agree = {{0, 2, 9}, {1, 2, 9}, {7, 2, 9}};
  EXPECT_NO_THROW(pram::scatter_write<int>(m, cells, agree));
  std::vector<WriteIntent<int>> split = {{0, 1, 9}, {1, 1, 9}, {2, 1, 8}};
  EXPECT_THROW(pram::scatter_write<int>(m, cells, split), ModelViolation);
}

TEST(Enforcement, ArbitraryAndPriorityResolveRaces) {
  for (auto model : {Model::CRCW_ARBITRARY, Model::CRCW_PRIORITY}) {
    Machine m(model);
    std::vector<int> cells(1, 0);
    std::vector<WriteIntent<int>> w = {{8, 0, 80}, {1, 0, 10}, {4, 0, 40}};
    pram::scatter_write<int>(m, cells, w);
    EXPECT_EQ(cells[0], 10) << pram::model_name(model);  // lowest proc id
  }
}

TEST(Enforcement, NonMongeInputDetectedByParallelSearcher) {
  // Feeding a non-Monge array to the Monge searcher must fail loudly
  // (monotone-bracket violation), not return garbage.
  monge::DenseArray<std::int64_t> bad(8, 8, 0);
  Rng rng(9);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      bad.at(i, j) = rng.uniform_int(0, 1000);  // random: almost surely bad
    }
  }
  Machine m(Model::CRCW_COMMON);
  const auto mins_brute = monge::row_minima_brute(bad);
  try {
    const auto got = par::monge_row_minima(m, bad);
    // If it happened not to trip a bracket, the answer must still be
    // right only when the array was accidentally totally monotone; we
    // tolerate either a throw or a correct result, never silent garbage
    // on genuinely Monge inputs (covered elsewhere).
    SUCCEED();
    (void)got;
    (void)mins_brute;
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Enforcement, NetworkDimensionOutOfRange) {
  net::Engine e(net::TopologyKind::Hypercube, 3);
  std::vector<int> x(8, 0);
  EXPECT_THROW(e.exchange(x, 3, [](std::size_t, int&, int&) {}),
               std::invalid_argument);
  EXPECT_THROW(e.exchange(x, -1, [](std::size_t, int&, int&) {}),
               std::invalid_argument);
}

TEST(Enforcement, NetworkVectorSizeMismatch) {
  net::Engine e(net::TopologyKind::Hypercube, 3);
  std::vector<int> wrong(7, 0);
  EXPECT_THROW(e.exchange(wrong, 0, [](std::size_t, int&, int&) {}),
               std::invalid_argument);
}

TEST(Enforcement, RouteCollisionDetected) {
  // Two packets with the same destination: not a monotone injection.
  net::Engine e(net::TopologyKind::Hypercube, 3);
  std::vector<std::optional<net::Packet<int>>> slots(8);
  slots[1] = net::Packet<int>{1, 5};
  slots[2] = net::Packet<int>{2, 5};
  EXPECT_THROW(net::monotone_route(e, slots), ModelViolation);
}

TEST(Enforcement, BadStaircaseFrontiersRejected) {
  Rng rng(10);
  const auto a = monge::random_monge(5, 5, rng);
  EXPECT_THROW(
      (monge::StaircaseArray<monge::DenseArray<std::int64_t>>(
          a, {2, 3, 3, 1, 0})),
      std::invalid_argument);  // increasing step
}

TEST(Enforcement, CrewConflictDetectionExactUnderConcurrency) {
  // The conflict sweep must stay *exact* when the engine runs the write
  // set multithreaded: a single conflicting pair hidden in a large
  // scatter must throw at every thread count, and the same program with
  // the conflict removed must pass.  (The sweep itself is serial by
  // design -- see primitives.hpp -- so this pins that design against a
  // future "optimization" racing the detector.)
  const std::size_t saved = exec::num_threads();
  constexpr std::size_t kN = 50000;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    exec::set_num_threads(threads);

    std::vector<int> cells(kN, 0);
    std::vector<WriteIntent<int>> w;
    w.reserve(kN);
    for (std::size_t p = 0; p < kN; ++p) {
      w.push_back({p, (p * 7919) % kN, static_cast<int>(p)});  // permutation
    }
    {
      Machine legal(Model::CREW);
      EXPECT_NO_THROW(pram::scatter_write<int>(legal, cells, w)) << threads;
    }
    // Rig exactly one collision, buried mid-set.
    w[kN / 2].addr = w[kN / 3].addr;
    {
      Machine rigged(Model::CREW);
      EXPECT_THROW(pram::scatter_write<int>(rigged, cells, w),
                   ModelViolation)
          << threads;
    }
  }
  exec::set_num_threads(saved);
}

TEST(Enforcement, CommonDisagreementDetectedUnderConcurrency) {
  // Same exactness pin for CRCW-COMMON: 8 threads, many agreeing writers
  // per cell, one disagreeing value hidden among them.
  const std::size_t saved = exec::num_threads();
  exec::set_num_threads(8);
  constexpr std::size_t kCells = 4096;
  std::vector<int> cells(kCells, -1);
  std::vector<WriteIntent<int>> w;
  for (std::size_t p = 0; p < 8 * kCells; ++p) {
    w.push_back({p, p % kCells, static_cast<int>(p % kCells)});  // unanimous
  }
  Machine ok(Model::CRCW_COMMON);
  EXPECT_NO_THROW(pram::scatter_write<int>(ok, cells, w));
  w[5 * kCells + 17].value += 1;  // one dissenter
  Machine bad(Model::CRCW_COMMON);
  EXPECT_THROW(pram::scatter_write<int>(bad, cells, w), ModelViolation);
  exec::set_num_threads(saved);
}

TEST(Enforcement, MeterNeverRegresses) {
  // Property: running any primitive only increases time and work.
  Machine m(Model::CREW);
  Rng rng(11);
  std::vector<std::int64_t> xs(500);
  for (auto& x : xs) x = rng.uniform_int(0, 99);
  std::uint64_t last_time = 0, last_work = 0;
  for (int round = 0; round < 10; ++round) {
    pram::min_element_par<std::int64_t>(m, xs);
    std::vector<std::int64_t> copy = xs;
    pram::inclusive_scan_par<std::int64_t>(m, copy,
                                           std::plus<std::int64_t>{});
    EXPECT_GT(m.meter().time, last_time);
    EXPECT_GT(m.meter().work, last_work);
    last_time = m.meter().time;
    last_work = m.meter().work;
  }
}

}  // namespace
}  // namespace pmonge
