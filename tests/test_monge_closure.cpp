// Algebraic closure properties of the Monge class -- the invariants the
// library's reductions rely on, each tested positively and (where the
// class is NOT closed) negatively:
//   + closed under: addition, row/column offsets, scaling by c >= 0,
//     transposition, row/column reversal (flips to inverse-Monge),
//     submatrix restriction, duplication of rows/columns,
//     (min,+) products (test_composite_algebra covers that one);
//   - not closed under: pointwise min, pointwise max, scaling by c < 0
//     (flips class), general permutations of rows.
#include <gtest/gtest.h>

#include "monge/array.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "support/rng.hpp"

namespace pmonge::monge {
namespace {

TEST(MongeClosure, SumOfMongeIsMonge) {
  Rng rng(201);
  for (int t = 0; t < 10; ++t) {
    const auto a = random_monge(12, 15, rng);
    const auto b = random_monge(12, 15, rng);
    auto sum = make_func_array<std::int64_t>(
        12, 15, [&](std::size_t i, std::size_t j) { return a(i, j) + b(i, j); });
    EXPECT_TRUE(is_monge(sum));
  }
}

TEST(MongeClosure, RowAndColumnOffsetsPreserve) {
  Rng rng(202);
  const auto a = random_monge(10, 14, rng);
  std::vector<std::int64_t> r(10), c(14);
  for (auto& x : r) x = rng.uniform_int(-1000, 1000);
  for (auto& x : c) x = rng.uniform_int(-1000, 1000);
  auto shifted = make_func_array<std::int64_t>(
      10, 14, [&](std::size_t i, std::size_t j) {
        return a(i, j) + r[i] + c[j];
      });
  EXPECT_TRUE(is_monge(shifted));
}

TEST(MongeClosure, NonNegativeScalingPreservesNegativeFlips) {
  Rng rng(203);
  const auto a = random_monge(9, 9, rng);
  auto scaled = make_func_array<std::int64_t>(
      9, 9, [&](std::size_t i, std::size_t j) { return 7 * a(i, j); });
  EXPECT_TRUE(is_monge(scaled));
  auto negated = make_func_array<std::int64_t>(
      9, 9, [&](std::size_t i, std::size_t j) { return -3 * a(i, j); });
  EXPECT_TRUE(is_inverse_monge(negated));
  // A strictly Monge array (strict cross difference somewhere) cannot be
  // Monge after negative scaling.
  bool strict = false;
  for (std::size_t i = 0; i + 1 < 9 && !strict; ++i) {
    for (std::size_t j = 0; j + 1 < 9; ++j) {
      if (a(i, j) + a(i + 1, j + 1) < a(i, j + 1) + a(i + 1, j)) {
        strict = true;
        break;
      }
    }
  }
  if (strict) EXPECT_FALSE(is_monge(negated));
}

TEST(MongeClosure, DuplicatedRowsAndColumnsPreserve) {
  // The network layer pads blocks by duplicating trailing rows/columns;
  // this is the invariant that padding relies on.
  Rng rng(204);
  const auto a = random_monge(8, 11, rng);
  auto dup = make_func_array<std::int64_t>(
      12, 16, [&](std::size_t i, std::size_t j) {
        return a(std::min<std::size_t>(i, 7), std::min<std::size_t>(j, 10));
      });
  EXPECT_TRUE(is_monge(dup));
}

TEST(MongeClosure, PointwiseMinIsNotClosed) {
  // Witness: z1 = [[1,2],[0,1]] and z2 = [[1,0],[2,1]] are both Monge,
  // but min(z1, z2) = [[1,0],[0,1]] has cross difference 1+1 > 0+0.
  DenseArray<std::int64_t> z1(2, 2, 0), z2(2, 2, 0);
  z1.at(0, 0) = 1;
  z1.at(0, 1) = 2;
  z1.at(1, 1) = 1;
  z2.at(0, 0) = 1;
  z2.at(1, 0) = 2;
  z2.at(1, 1) = 1;
  ASSERT_TRUE(is_monge(z1));
  ASSERT_TRUE(is_monge(z2));
  auto mn = make_func_array<std::int64_t>(
      2, 2, [&](std::size_t i, std::size_t j) {
        return std::min(z1(i, j), z2(i, j));
      });
  EXPECT_FALSE(is_monge(mn));
}

TEST(MongeClosure, RowPermutationBreaksMonge) {
  Rng rng(205);
  // Swap two rows of a strictly Monge array: property must break for
  // some instance (search a few draws for a strict witness).
  bool found_break = false;
  for (int t = 0; t < 20 && !found_break; ++t) {
    const auto a = random_monge(6, 6, rng, 5, 3);
    auto swapped = make_func_array<std::int64_t>(
        6, 6, [&](std::size_t i, std::size_t j) {
          const std::size_t ii = i == 0 ? 5 : (i == 5 ? 0 : i);
          return a(ii, j);
        });
    found_break = !is_monge(swapped);
  }
  EXPECT_TRUE(found_break);
}

TEST(MongeClosure, TotallyMonotoneIsWeakerThanMonge) {
  // A totally monotone array that is not Monge (SMAWK needs only the
  // weaker property; the library documents Monge as sufficient).
  DenseArray<std::int64_t> a(2, 2, 0);
  a.at(0, 0) = 0;
  a.at(0, 1) = 10;
  a.at(1, 0) = 0;
  a.at(1, 1) = 100;  // 0+100 <= 10+0 fails -> not Monge
  EXPECT_FALSE(is_monge(a));
  EXPECT_TRUE(is_totally_monotone_min(a));
}

TEST(MongeClosure, StaircaseTruncationPreservesStaircaseClass) {
  Rng rng(206);
  for (int t = 0; t < 10; ++t) {
    const auto inst = random_staircase_monge(20, 25, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    ASSERT_TRUE(is_staircase_monge(s));
    // Tightening the frontier (still non-increasing) keeps the class.
    auto tighter = inst.frontier;
    for (auto& f : tighter) f = f / 2;
    StaircaseArray<DenseArray<std::int64_t>> s2(inst.base, tighter);
    EXPECT_TRUE(is_staircase_monge(s2));
  }
}

}  // namespace
}  // namespace pmonge::monge
