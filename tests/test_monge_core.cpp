// Tests for the Monge core: array views, property validators, random
// generators (every generated instance must satisfy its claimed property),
// staircase machinery and the tube brute-force oracles.
#include <gtest/gtest.h>

#include "monge/array.hpp"
#include "monge/brute.hpp"
#include "monge/composite.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "support/rng.hpp"

namespace pmonge::monge {
namespace {

DenseArray<int> from_rows(std::vector<std::vector<int>> rows) {
  DenseArray<int> a(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) a.at(i, j) = rows[i][j];
  }
  return a;
}

TEST(Validate, HandCheckedMonge) {
  // a[i][j] = (i - j)^2 restricted to a grid is Monge.
  auto a = make_func_array<int>(5, 7, [](std::size_t i, std::size_t j) {
    const int d = static_cast<int>(i) * 2 - static_cast<int>(j);
    return d * d;
  });
  EXPECT_TRUE(is_monge(a));
  EXPECT_TRUE(is_totally_monotone_min(a));
  EXPECT_FALSE(is_inverse_monge(a));
}

TEST(Validate, NonMongeDetected) {
  auto a = from_rows({{0, 5}, {0, 0}});  // 0+0 > 5+0 fails? check: a00+a11=0, a01+a10=5 -> Monge holds; flip
  EXPECT_TRUE(is_monge(a));
  auto b = from_rows({{5, 0}, {0, 5}});  // 5+5 > 0+0
  EXPECT_FALSE(is_monge(b));
  EXPECT_TRUE(is_inverse_monge(b));
}

TEST(Generators, RandomMongeIsMonge) {
  Rng rng(1);
  for (int t = 0; t < 10; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    EXPECT_TRUE(is_monge(random_monge(m, n, rng)));
  }
}

TEST(Generators, RandomInverseMongeIsInverseMonge) {
  Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    EXPECT_TRUE(is_inverse_monge(random_inverse_monge(17, 23, rng)));
  }
}

TEST(Generators, RealMongeIsMonge) {
  Rng rng(3);
  EXPECT_TRUE(is_monge(random_monge_real(30, 25, rng)));
}

TEST(Generators, TransportationIsMonge) {
  Rng rng(4);
  EXPECT_TRUE(is_monge(transportation_monge(20, 30, rng)));
}

TEST(Generators, FrontierNonIncreasingWithinBounds) {
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const auto f = random_frontier(50, 80, rng);
    ASSERT_EQ(f.size(), 50u);
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_LE(f[i], 80u);
      if (i) EXPECT_LE(f[i], f[i - 1]);
    }
  }
}

TEST(Generators, StaircaseInstanceIsStaircaseMonge) {
  Rng rng(6);
  for (int t = 0; t < 10; ++t) {
    const auto inst = random_staircase_monge(25, 30, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    EXPECT_TRUE(is_staircase_monge(s));
  }
}

TEST(Views, NegateFlipsMongeness) {
  Rng rng(7);
  const auto a = random_monge(10, 12, rng);
  Negate<decltype(a)> neg(a);
  EXPECT_TRUE(is_inverse_monge(neg));
}

TEST(Views, ReverseColsFlipsMongeness) {
  Rng rng(8);
  const auto a = random_monge(10, 12, rng);
  ReverseCols<decltype(a)> rev(a);
  EXPECT_TRUE(is_inverse_monge(rev));
  EXPECT_EQ(rev(3, 0), a(3, 11));
}

TEST(Views, TransposePreservesMongeness) {
  Rng rng(9);
  const auto a = random_monge(10, 12, rng);
  Transpose<decltype(a)> tr(a);
  EXPECT_EQ(tr.rows(), 12u);
  EXPECT_EQ(tr.cols(), 10u);
  EXPECT_TRUE(is_monge(tr));
}

TEST(Views, SubArrayWindowAndBounds) {
  Rng rng(10);
  const auto a = random_monge(10, 12, rng);
  SubArray<decltype(a)> s(a, 2, 5, 3, 4);
  EXPECT_EQ(s.rows(), 5u);
  EXPECT_EQ(s.cols(), 4u);
  EXPECT_EQ(s(0, 0), a(2, 3));
  EXPECT_EQ(s(4, 3), a(6, 6));
  EXPECT_TRUE(is_monge(s));
  EXPECT_THROW((SubArray<decltype(a)>(a, 8, 5, 0, 2)), std::invalid_argument);
}

TEST(Views, RowSelectPreservesMongeness) {
  Rng rng(11);
  const auto a = random_monge(20, 12, rng);
  RowSelect<decltype(a)> sel(a, {1, 4, 9, 16});
  EXPECT_EQ(sel.rows(), 4u);
  EXPECT_TRUE(is_monge(sel));
  EXPECT_EQ(sel(2, 5), a(9, 5));
}

TEST(Staircase, FrontierValidation) {
  Rng rng(12);
  const auto a = random_monge(4, 6, rng);
  EXPECT_NO_THROW((StaircaseArray<decltype(a)>(a, {6, 4, 4, 0})));
  // Increasing frontier rejected.
  EXPECT_THROW((StaircaseArray<decltype(a)>(a, {3, 4, 4, 0})),
               std::invalid_argument);
  // Wrong length rejected.
  EXPECT_THROW((StaircaseArray<decltype(a)>(a, {6, 4, 4})),
               std::invalid_argument);
  // Out of range rejected.
  EXPECT_THROW((StaircaseArray<decltype(a)>(a, {7, 4, 4, 0})),
               std::invalid_argument);
}

TEST(Staircase, InfinitePadding) {
  Rng rng(13);
  const auto a = random_monge(3, 5, rng);
  StaircaseArray<decltype(a)> s(a, {5, 3, 0});
  EXPECT_EQ(s(0, 4), a(0, 4));
  EXPECT_EQ(s(1, 2), a(1, 2));
  EXPECT_TRUE(is_infinite(s(1, 3)));
  EXPECT_TRUE(is_infinite(s(2, 0)));
}

TEST(Brute, RowMinimaLeftmostTies) {
  auto a = from_rows({{2, 1, 1}, {0, 5, 0}});
  const auto mins = row_minima_brute(a);
  EXPECT_EQ(mins[0], (RowOpt<int>{1, 1}));
  EXPECT_EQ(mins[1], (RowOpt<int>{0, 0}));
}

TEST(Brute, RowMaximaLeftmostTies) {
  auto a = from_rows({{2, 3, 3}, {7, 5, 7}});
  const auto maxs = row_maxima_brute(a);
  EXPECT_EQ(maxs[0], (RowOpt<int>{3, 1}));
  EXPECT_EQ(maxs[1], (RowOpt<int>{7, 0}));
}

TEST(Brute, AllInfiniteRowReportsNoCol) {
  Rng rng(14);
  const auto a = random_monge(3, 4, rng);
  StaircaseArray<decltype(a)> s(a, {4, 2, 0});
  const auto mins = row_minima_brute(s);
  EXPECT_EQ(mins[2].col, kNoCol);
  EXPECT_TRUE(is_infinite(mins[2].value));
}

TEST(Composite, ThetaMonotoneForMinimaAndMaxima) {
  Rng rng(15);
  for (int t = 0; t < 10; ++t) {
    const auto inst = random_composite(12, 15, 10, rng);
    const auto mins = tube_minima_brute(inst.d, inst.e);
    EXPECT_TRUE(is_theta_monotone(mins, /*nondecreasing=*/true));
    const auto maxs = tube_maxima_brute(inst.d, inst.e);
    EXPECT_TRUE(is_theta_monotone(maxs, /*nondecreasing=*/false));
  }
}

TEST(Composite, TubeValuesMatchDefinition) {
  Rng rng(16);
  const auto inst = random_composite(5, 7, 6, rng);
  const auto mins = tube_minima_brute(inst.d, inst.e);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t k = 0; k < 6; ++k) {
      const auto& o = mins.at(i, k);
      EXPECT_EQ(o.value, inst.d(i, o.j) + inst.e(o.j, k));
      for (std::size_t j = 0; j < 7; ++j) {
        EXPECT_LE(o.value, inst.d(i, j) + inst.e(j, k));
      }
    }
  }
}

TEST(Infinity, IntegerInfinityIsSummable) {
  const auto big = inf<std::int64_t>();
  EXPECT_TRUE(is_infinite(big));
  EXPECT_GT(big + big, big);  // no overflow into negative
  EXPECT_FALSE(is_infinite(big / 5));
}

}  // namespace
}  // namespace pmonge::monge
