// Tests for the network substrate: topology structure (degrees,
// connectivity, adjacency), engine charging rules (hypercube vs CCC vs
// shuffle-exchange emulation), and the normal-algorithm primitives
// (scans, broadcast, bitonic sort/merge, shift, isotone routing).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>

#include "net/engine.hpp"
#include "net/primitives.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"

namespace pmonge::net {
namespace {

TEST(Topology, HypercubeStructure) {
  Hypercube h{4};
  EXPECT_EQ(h.size(), 16u);
  const auto edges = h.edges();
  EXPECT_EQ(edges.size(), 16u * 4 / 2);
  EXPECT_TRUE(edges_connected(h.size(), edges));
  EXPECT_TRUE(h.adjacent(0b0000, 0b0100));
  EXPECT_FALSE(h.adjacent(0b0000, 0b0110));
  EXPECT_FALSE(h.adjacent(3, 3));
  // Degree exactly d everywhere.
  std::map<std::size_t, int> deg;
  for (const auto& [u, v] : edges) {
    deg[u]++;
    deg[v]++;
  }
  for (std::size_t u = 0; u < h.size(); ++u) EXPECT_EQ(deg[u], 4) << u;
}

TEST(Topology, CccStructure) {
  CubeConnectedCycles c{3};
  EXPECT_EQ(c.size(), 24u);
  const auto edges = c.edges();
  EXPECT_TRUE(edges_connected(c.size(), edges));
  std::map<std::size_t, int> deg;
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(c.adjacent(u, v)) << u << "," << v;
    deg[u]++;
    deg[v]++;
  }
  // Constant degree 3 (the whole point of CCC).
  for (std::size_t u = 0; u < c.size(); ++u) EXPECT_EQ(deg[u], 3) << u;
}

TEST(Topology, ShuffleExchangeStructure) {
  ShuffleExchange s{4};
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.shuffle(0b0110), 0b1100u);
  EXPECT_EQ(s.shuffle(0b1001), 0b0011u);
  EXPECT_EQ(s.unshuffle(s.shuffle(0b1011)), 0b1011u);
  EXPECT_EQ(s.exchange(0b1010), 0b1011u);
  const auto edges = s.edges();
  EXPECT_TRUE(edges_connected(s.size(), edges));
  // Degree at most 3.
  std::map<std::size_t, int> deg;
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(s.adjacent(u, v)) << u << "," << v;
    deg[u]++;
    deg[v]++;
  }
  for (std::size_t u = 0; u < s.size(); ++u) EXPECT_LE(deg[u], 3) << u;
}

TEST(Engine, HypercubeExchangeChargesOneStep) {
  Engine e(TopologyKind::Hypercube, 3);
  std::vector<int> x(8, 1);
  e.exchange(x, 0, [](std::size_t, int& a, int& b) { std::swap(a, b); });
  e.exchange(x, 2, [](std::size_t, int&, int&) {});
  EXPECT_EQ(e.meter().comm_steps, 2u);
  EXPECT_EQ(e.meter().messages, 16u);
}

TEST(Engine, EmulationChargesRotations) {
  // Ascending dimension order must cost O(1) extra per step on SE/CCC
  // (the constant-slowdown emulation); random order costs more.
  for (auto kind :
       {TopologyKind::ShuffleExchange, TopologyKind::CubeConnectedCycles}) {
    Engine e(kind, 4);
    std::vector<int> x(16, 0);
    for (int k = 0; k < 4; ++k) {
      e.exchange(x, k, [](std::size_t, int&, int&) {});
    }
    // 4 exchanges + at most 1 rotation each.
    EXPECT_LE(e.meter().comm_steps, 8u) << topology_name(kind);
    EXPECT_GE(e.meter().comm_steps, 4u) << topology_name(kind);
  }
}

TEST(Engine, HypercubeVsEmulatedConstantFactor) {
  auto run = [](TopologyKind kind) {
    Engine e(kind, 6);
    std::vector<long long> x(64);
    std::iota(x.begin(), x.end(), 0);
    prefix_scan(e, x, std::plus<long long>{});
    bitonic_sort(e, x, std::less<long long>{});
    return e.meter().comm_steps;
  };
  const auto hc = run(TopologyKind::Hypercube);
  const auto se = run(TopologyKind::ShuffleExchange);
  const auto ccc = run(TopologyKind::CubeConnectedCycles);
  EXPECT_GE(se, hc);
  EXPECT_LE(se, 4 * hc);  // constant slowdown
  EXPECT_LE(ccc, 4 * hc);
}

TEST(Primitives, PrefixScanMatchesSequential) {
  Engine e(TopologyKind::Hypercube, 5);
  std::vector<long long> x(32);
  Rng rng(1);
  for (auto& v : x) v = rng.uniform_int(-9, 9);
  auto expect = x;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  prefix_scan(e, x, std::plus<long long>{});
  EXPECT_EQ(x, expect);
  EXPECT_EQ(e.meter().comm_steps, 5u);
}

TEST(Primitives, SegmentedScanRespectsBoundaries) {
  Engine e(TopologyKind::Hypercube, 3);
  std::vector<long long> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::size_t> seg = {0, 0, 0, 1, 1, 2, 2, 2};
  segmented_prefix_scan(e, x, seg, std::plus<long long>{});
  const std::vector<long long> expect = {1, 3, 6, 4, 9, 6, 13, 21};
  EXPECT_EQ(x, expect);
}

TEST(Primitives, BroadcastFromEveryRoot) {
  for (std::size_t root = 0; root < 8; ++root) {
    Engine e(TopologyKind::Hypercube, 3);
    std::vector<int> x(8, -1);
    x[root] = static_cast<int>(100 + root);
    broadcast(e, x, root);
    for (std::size_t u = 0; u < 8; ++u) {
      EXPECT_EQ(x[u], static_cast<int>(100 + root)) << "root " << root;
    }
    EXPECT_EQ(e.meter().comm_steps, 3u);
  }
}

TEST(Primitives, AllReduceMax) {
  Engine e(TopologyKind::Hypercube, 4);
  std::vector<int> x(16);
  Rng rng(2);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(0, 1000));
  const int expect = *std::max_element(x.begin(), x.end());
  all_reduce(e, x, [](int a, int b) { return std::max(a, b); });
  for (int v : x) EXPECT_EQ(v, expect);
}

TEST(Primitives, ShiftBothDirections) {
  Engine e(TopologyKind::Hypercube, 3);
  std::vector<int> x = {0, 1, 2, 3, 4, 5, 6, 7};
  shift(e, x, 2, -1);
  const std::vector<int> expect = {-1, -1, 0, 1, 2, 3, 4, 5};
  EXPECT_EQ(x, expect);
  shift(e, x, -3, -9);
  const std::vector<int> expect2 = {1, 2, 3, 4, 5, -9, -9, -9};
  EXPECT_EQ(x, expect2);
}

TEST(Primitives, ShiftRandomDeltas) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Engine e(TopologyKind::Hypercube, 5);
    std::vector<int> x(32);
    for (auto& v : x) v = static_cast<int>(rng.uniform_int(0, 99));
    const auto delta = rng.uniform_int(-31, 31);
    auto expect = std::vector<int>(32, -1);
    for (std::size_t u = 0; u < 32; ++u) {
      const auto d = static_cast<std::ptrdiff_t>(u) + delta;
      if (d >= 0 && d < 32) expect[static_cast<std::size_t>(d)] = x[u];
    }
    shift(e, x, delta, -1);
    EXPECT_EQ(x, expect) << "delta " << delta;
  }
}

TEST(Primitives, BitonicSortRandom) {
  Rng rng(4);
  for (auto kind : {TopologyKind::Hypercube, TopologyKind::ShuffleExchange}) {
    Engine e(kind, 6);
    std::vector<int> x(64);
    for (auto& v : x) v = static_cast<int>(rng.uniform_int(0, 500));
    auto expect = x;
    std::sort(expect.begin(), expect.end());
    bitonic_sort(e, x, std::less<int>{});
    EXPECT_EQ(x, expect) << topology_name(kind);
  }
}

TEST(Primitives, BitonicMergeHalves) {
  Rng rng(5);
  Engine e(TopologyKind::Hypercube, 5);
  std::vector<int> x(32);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(0, 99));
  std::sort(x.begin(), x.begin() + 16);
  std::sort(x.begin() + 16, x.end());
  auto expect = x;
  std::sort(expect.begin(), expect.end());
  bitonic_merge_halves(e, x, std::less<int>{});
  EXPECT_EQ(x, expect);
  // Merge is O(lg n) steps, strictly cheaper than a full sort.
  EXPECT_LE(e.meter().comm_steps, 2u * 5u);
}

TEST(Primitives, MonotoneRouteRandomPartialInjections) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    Engine e(TopologyKind::Hypercube, 6);
    const std::size_t n = 64;
    // Random monotone partial injection: pick sources and dests sorted.
    std::vector<std::size_t> src(n), dst(n);
    std::iota(src.begin(), src.end(), 0);
    std::iota(dst.begin(), dst.end(), 0);
    std::shuffle(src.begin(), src.end(), rng);
    std::shuffle(dst.begin(), dst.end(), rng);
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    src.resize(k);
    dst.resize(k);
    std::sort(src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    std::vector<std::optional<Packet<int>>> slots(n);
    for (std::size_t t = 0; t < k; ++t) {
      slots[src[t]] = Packet<int>{static_cast<int>(1000 + t), dst[t]};
    }
    monotone_route(e, slots);
    for (std::size_t t = 0; t < k; ++t) {
      ASSERT_TRUE(slots[dst[t]].has_value());
      EXPECT_EQ(slots[dst[t]]->payload, static_cast<int>(1000 + t));
    }
  }
}

TEST(Primitives, RouteChargesLinearInDims) {
  // Two-phase isotone routing: d-step rank scan + d-step concentrate +
  // d-step spread.
  Engine e(TopologyKind::Hypercube, 8);
  std::vector<std::optional<Packet<int>>> slots(256);
  slots[3] = Packet<int>{7, 200};
  monotone_route(e, slots);
  EXPECT_EQ(e.meter().comm_steps, 3u * 8u);
  EXPECT_TRUE(slots[200].has_value());
  EXPECT_FALSE(slots[3].has_value());
}

TEST(Primitives, RouteHandlesStationaryBlockers) {
  // The case that breaks one-phase bit-fixing: a stationary packet in the
  // path of a mover (0 -> 0 together with 2 -> 1).
  Engine e(TopologyKind::Hypercube, 2);
  std::vector<std::optional<Packet<int>>> slots(4);
  slots[0] = Packet<int>{10, 0};
  slots[2] = Packet<int>{20, 1};
  monotone_route(e, slots);
  ASSERT_TRUE(slots[0] && slots[1]);
  EXPECT_EQ(slots[0]->payload, 10);
  EXPECT_EQ(slots[1]->payload, 20);
}

}  // namespace
}  // namespace pmonge::net
