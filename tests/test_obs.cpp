// Observability-layer tests: the per-thread span rings (wraparound and
// dropped accounting), trace-id propagation admission -> batched group ->
// plan -> kernel, Chrome trace-event well-formedness, the Prometheus
// exposition, the bit-identity of query responses tracing on/off, and a
// concurrent stress shape meant to run under TSan (ctest -L obs with
// -DPMONGE_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace pmonge::obs {
namespace {

using serve::Json;
using serve::Service;
using serve::ServiceOptions;

struct ThreadGuard {
  std::size_t saved = exec::num_threads();
  ~ThreadGuard() { exec::set_num_threads(saved); }
};

/// Every test starts traced with clean rings and leaves tracing off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    set_ring_capacity(4096);
  }
};

std::size_t count_named(const Snapshot& snap, const char* name) {
  std::size_t n = 0;
  for (const SpanRecord& s : snap.spans) {
    if (std::string_view(s.name) == name) ++n;
  }
  return n;
}

TEST_F(ObsTest, SpanDisabledIsInert) {
  set_enabled(false);
  {
    Span s("test.off");
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(collect().spans.size(), 0u);
}

TEST_F(ObsTest, RingWraparoundAndDroppedAccounting) {
  set_ring_capacity(16);
  // A fresh thread gets a fresh ring at the new capacity; 40 spans into
  // 16 slots must keep the *newest* 16 and count 24 drop-oldest events.
  std::thread t([] {
    for (int i = 0; i < 40; ++i) {
      SpanRecord rec;
      rec.name = "test.wrap";
      rec.start_us = static_cast<std::uint64_t>(i);
      rec.dur_us = 1;
      emit(rec);
    }
  });
  t.join();
  const Snapshot snap = collect();
  EXPECT_EQ(count_named(snap, "test.wrap"), 16u);
  EXPECT_EQ(snap.dropped, 24u);
  EXPECT_EQ(dropped_total(), 24u);  // cumulative, not drained by collect
  // The survivors are the last 16 emitted, in emission order.
  std::vector<std::uint64_t> starts;
  for (const SpanRecord& s : snap.spans) {
    if (std::string_view(s.name) == "test.wrap") starts.push_back(s.start_us);
  }
  ASSERT_EQ(starts.size(), 16u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i], 24 + i);
  }
}

TEST_F(ObsTest, TraceContextNestsAndRestores) {
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceContext outer(7);
    EXPECT_EQ(current_trace_id(), 7u);
    {
      TraceContext inner(9);
      EXPECT_EQ(current_trace_id(), 9u);
    }
    EXPECT_EQ(current_trace_id(), 7u);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST_F(ObsTest, DetailTruncatesSafely) {
  SpanRecord rec;
  rec.set_detail("a_dynamic_label_longer_than_the_buffer");
  EXPECT_EQ(std::string(rec.detail), "a_dynamic_label_lon");  // 19 + NUL
  rec.set_detail("ok");
  EXPECT_EQ(std::string(rec.detail), "ok");
}

// ---------------------------------------------------------------------------
// End-to-end: trace ids across a batched group
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceIdPropagatesAcrossBatchedGroup) {
  Service svc;
  ASSERT_NE(svc.request(
                R"({"op":"register_random","rows":24,"cols":20,"seed":3})")
                .find("\"ok\":true"),
            std::string::npos);
  reset();  // only the query flow below should be in the rings

  // Two queries on the same array with client-supplied trace ids,
  // coalesced into one group by pausing the worker.
  svc.pause();
  auto f1 =
      svc.submit(R"({"op":"rowmin","array":0,"row":1,"trace_id":111})");
  auto f2 =
      svc.submit(R"({"op":"rowmin","array":0,"row":2,"trace_id":222})");
  svc.resume();
  const std::string r1 = f1.get();
  const std::string r2 = f2.get();
  EXPECT_NE(r1.find("\"ok\":true"), std::string::npos) << r1;
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos) << r2;
  // Trace ids never leak into response bytes.
  EXPECT_EQ(r1.find("trace"), std::string::npos);

  // Every span below is guaranteed buffered before the responses above
  // resolved (the worker emits spans, then fulfills promises); only the
  // enclosing serve.batch span closes later, so it is asserted in
  // ServeTraceOpEmitsWorkerLanes instead.
  const Snapshot snap = collect();
  std::set<std::uint64_t> admit_ids, request_ids, group_ids, plan_ids,
      kernel_ids;
  for (const SpanRecord& s : snap.spans) {
    const std::string_view name(s.name);
    if (name == "serve.admit") admit_ids.insert(s.trace_id);
    if (name == "serve.request") request_ids.insert(s.trace_id);
    if (name == "serve.group") group_ids.insert(s.trace_id);
    if (name == "plan.select") plan_ids.insert(s.trace_id);
    if (name == "serve.kernel") kernel_ids.insert(s.trace_id);
  }
  // Both requests visible individually at admission and completion...
  EXPECT_TRUE(admit_ids.count(111) && admit_ids.count(222));
  EXPECT_TRUE(request_ids.count(111) && request_ids.count(222));
  // ...and the group/plan/kernel spans carry the first member's id.
  EXPECT_TRUE(group_ids.count(111)) << "group ids: " << group_ids.size();
  EXPECT_TRUE(plan_ids.count(111));
  EXPECT_TRUE(kernel_ids.count(111));
}

TEST_F(ObsTest, MintedIdsCoverUntaggedQueries) {
  Service svc;
  svc.request(R"({"op":"register_random","rows":8,"cols":8,"seed":1})");
  reset();
  svc.request(R"({"op":"rowmin","array":0,"row":0})");
  const Snapshot snap = collect();
  bool found = false;
  for (const SpanRecord& s : snap.spans) {
    if (std::string_view(s.name) == "serve.request" && s.trace_id != 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "tracing on must mint an id for untagged queries";
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceWellFormed) {
  set_lane_name("test-main");
  {
    Span outer("test.outer");
    outer.set_trace(42);
    outer.set_detail("rowmin");
    outer.set_arg("members", 3);
    outer.set_charged(10, 200);
  }
  { Span plain("test.plain"); }

  const Json doc = chrome_trace_json(collect());
  // Canonical dump must re-parse (this is exactly what --trace-out
  // writes and what Perfetto ingests).
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);

  const auto& events = doc.at("traceEvents").arr();
  ASSERT_GE(events.size(), 3u);  // >= 1 metadata + 2 spans
  bool saw_meta = false, saw_span = false;
  for (const Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_EQ(e.at("pid").as_int(), 1);
    ASSERT_TRUE(e.find("tid") != nullptr);
    if (ph == "M") {
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      EXPECT_FALSE(e.at("args").at("name").as_string().empty());
      saw_meta = true;
    } else {
      ASSERT_EQ(ph, "X");
      EXPECT_TRUE(e.find("ts") != nullptr && e.find("dur") != nullptr);
      if (e.at("name").as_string() == "test.outer") {
        const Json& args = e.at("args");
        EXPECT_EQ(args.at("trace_id").as_int(), 42);
        EXPECT_EQ(args.at("detail").as_string(), "rowmin");
        EXPECT_EQ(args.at("members").as_int(), 3);
        EXPECT_EQ(args.at("charged_time").as_int(), 10);
        EXPECT_EQ(args.at("charged_work").as_int(), 200);
      }
      saw_span = true;
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(doc.at("otherData").at("dropped_spans").as_int(), 0);
}

TEST_F(ObsTest, ServeTraceOpEmitsWorkerLanes) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  ServiceOptions opts;
  opts.planner = false;  // fixed parallel dispatch: the kernel fans out
  {
    Service svc2(opts);
    svc2.request(
        R"({"op":"register_random","rows":128,"cols":128,"seed":9})");
    for (int r = 0; r < 8; ++r) {
      svc2.request(R"({"op":"rowmin","array":0,"row":)" +
                   std::to_string(r * 16) + "}");
    }
    const std::string resp = svc2.request(R"({"op":"trace"})");
    const Json j = Json::parse(resp);
    ASSERT_TRUE(j.at("ok").as_bool()) << resp;
    const Json& doc = j.at("result");
    std::set<std::string> lanes;
    std::set<std::string> names;
    for (const Json& e : doc.at("traceEvents").arr()) {
      if (e.at("ph").as_string() == "M") {
        lanes.insert(e.at("args").at("name").as_string());
      } else {
        names.insert(e.at("name").as_string());
      }
    }
    // The acceptance shape: admission, batch, group, kernel, and at
    // least one pool-worker lane present in one serve-run trace.  (The
    // first 8 of the 9 worker batches have provably closed -- the
    // worker popped the next batch -- so serve.batch is race-free
    // here, unlike right after a single f.get().)
    EXPECT_TRUE(names.count("serve.admit"));
    EXPECT_TRUE(names.count("serve.batch"));
    EXPECT_TRUE(names.count("serve.group"));
    EXPECT_TRUE(names.count("serve.kernel"));
    EXPECT_TRUE(names.count("exec.jobs"));
    bool has_worker_lane = false;
    for (const std::string& l : lanes) {
      if (l.rfind("pool-worker-", 0) == 0) has_worker_lane = true;
    }
    EXPECT_TRUE(has_worker_lane);
    EXPECT_TRUE(lanes.count("serve-worker"));
    // Draining is destructive: the second trace holds only stragglers
    // (the trace ops' own admit spans, the last serve.batch close),
    // never the bulk that the first drain carried away.
    const std::int64_t first_spans =
        doc.at("otherData").at("span_count").as_int();
    const Json again = Json::parse(svc2.request(R"({"op":"trace"})"));
    EXPECT_LT(again.at("result").at("otherData").at("span_count").as_int(),
              first_spans / 2);
  }
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST_F(ObsTest, PrometheusExpositionParsesWithoutDuplicates) {
  Service svc;
  svc.request(R"({"op":"register_random","rows":16,"cols":16,"seed":2})");
  svc.request(R"({"op":"rowmin","array":0,"row":0})");
  svc.request(R"({"op":"rowmin","array":0,"row":1})");
  svc.request(R"({"op":"string_edit","x":"abc","y":"adc"})");

  const Json resp =
      Json::parse(svc.request(R"({"op":"stats","format":"prometheus"})"));
  ASSERT_TRUE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("result").at("format").as_string(), "prometheus");
  const std::string& text = resp.at("result").at("text").as_string();

  const std::regex help_re(R"(^# HELP [a-zA-Z_][a-zA-Z0-9_]* .+$)");
  const std::regex type_re(
      R"(^# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)$)");
  const std::regex sample_re(
      R"(^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9][0-9eE+.\-]*$)");

  std::set<std::string> series;   // name{labels} must be unique
  std::set<std::string> typed;    // # TYPE once per family
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, help_re)) << line;
    } else if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_re)) << line;
      EXPECT_TRUE(typed.insert(line).second) << "duplicate family: " << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
      const std::string key = line.substr(0, line.rfind(' '));
      EXPECT_TRUE(series.insert(key).second) << "duplicate series: " << key;
      ++samples;
    }
  }
  EXPECT_GE(samples, 20u);
  for (const char* family :
       {"pmonge_requests_total", "pmonge_request_latency_us",
        "pmonge_queue_depth", "pmonge_queue_high_water",
        "pmonge_exec_threads", "pmonge_exec_worker_busy_us_total",
        "pmonge_trace_enabled", "pmonge_plans_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " "),
              std::string::npos)
        << "missing family " << family;
  }
  // The histogram is a real cumulative one ending at +Inf.
  EXPECT_NE(text.find("pmonge_request_latency_us_bucket{"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

  // Unknown formats reject loudly; "json" is the explicit default.
  EXPECT_NE(svc.request(R"({"op":"stats","format":"xml"})")
                .find("unknown stats format"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"stats","format":"json"})")
                .find("\"endpoints\""),
            std::string::npos);
}

TEST_F(ObsTest, StatsReportsQueueDepthAndExecProfile) {
  ServiceOptions opts;
  opts.queue_capacity = 8;
  Service svc(opts);
  svc.request(R"({"op":"register_random","rows":16,"cols":16,"seed":4})");
  svc.pause();
  std::vector<std::future<std::string>> futs;
  for (int i = 0; i < 3; ++i) {
    futs.push_back(svc.submit(R"({"op":"rowmin","array":0,"row":)" +
                              std::to_string(i) + "}"));
  }
  // Stats is control-plane: answered synchronously while the worker is
  // paused, so the standing depth is visible.
  const Json stats =
      Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  EXPECT_EQ(stats.at("queue").at("depth").as_int(), 3);
  EXPECT_GE(stats.at("queue").at("high_water").as_int(), 3);
  EXPECT_EQ(stats.at("queue").at("capacity").as_int(), 8);
  svc.resume();
  for (auto& f : futs) f.get();

  const Json after =
      Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  EXPECT_EQ(after.at("queue").at("depth").as_int(), 0);
  EXPECT_GE(after.at("queue").at("high_water").as_int(), 3);
  EXPECT_EQ(after.at("exec").at("threads").as_int(),
            static_cast<std::int64_t>(exec::num_threads()));
  EXPECT_TRUE(after.at("exec").find("workers") != nullptr);
  EXPECT_TRUE(after.at("exec").at("external").find("chunks") != nullptr);
  EXPECT_TRUE(after.at("trace").at("enabled").as_bool());
}

// ---------------------------------------------------------------------------
// Bit-identity tracing on/off
// ---------------------------------------------------------------------------

std::vector<std::string> run_stream() {
  Service svc;
  std::vector<std::string> out;
  out.push_back(svc.request(
      R"({"op":"register_random","rows":32,"cols":24,"seed":77})"));
  out.push_back(svc.request(
      R"({"op":"register_random","rows":16,"cols":16,"seed":78,"kind":"staircase"})"));
  for (int r = 0; r < 8; ++r) {
    out.push_back(svc.request(R"({"op":"rowmin","array":0,"id":)" +
                              std::to_string(r) + R"(,"row":)" +
                              std::to_string(r) + "}"));
  }
  out.push_back(svc.request(
      R"({"op":"staircase_rowmin","array":1,"id":100,"row":3})"));
  out.push_back(
      svc.request(R"({"op":"string_edit","id":101,"x":"kitten","y":"sitting"})"));
  return out;
}

TEST_F(ObsTest, ResponsesBitIdenticalTracingOnOff) {
  set_enabled(false);
  const auto off = run_stream();
  set_enabled(true);
  const auto on = run_stream();
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "response " << i;
  }

  // A client-supplied trace_id is envelope-only: same answer bytes, and
  // it must hit the same cache entry as the untagged twin.
  Service svc;
  svc.request(R"({"op":"register_random","rows":16,"cols":16,"seed":5})");
  const std::string plain =
      svc.request(R"({"op":"rowmin","array":0,"id":7,"row":2})");
  const std::string tagged = svc.request(
      R"({"op":"rowmin","array":0,"id":7,"row":2,"trace_id":999})");
  EXPECT_EQ(plain, tagged);
  const Json stats = Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  EXPECT_GE(stats.at("cache").at("hits").as_int(), 1);

  EXPECT_NE(svc.request(R"({"op":"rowmin","array":0,"row":2,"trace_id":0})")
                .find("trace_id must be positive"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency stress (run under TSan via the obs label)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ConcurrentEmitAndCollect) {
  set_ring_capacity(64);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 4000;
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> emitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      TraceContext ctx(t + 1);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Span s("test.stress");
        s.set_arg("i", i);
        emitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent collector: drains while writers are pushing.
  std::uint64_t drained = 0;
  for (int round = 0; round < 50; ++round) {
    drained += count_named(collect(), "test.stress");
  }
  for (auto& th : threads) th.join();
  drained += count_named(collect(), "test.stress");
  // Every span was either collected exactly once or counted dropped
  // (ring-full overwrite or collector contention) exactly once.
  EXPECT_EQ(drained + dropped_total(), emitted.load());
}

}  // namespace
}  // namespace pmonge::obs
