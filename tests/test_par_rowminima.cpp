// Tests for the parallel Monge row-minima/maxima algorithms: correctness
// against brute force on every PRAM submodel, and complexity pinning --
// the charged depth must match Table 1.1's shapes (O(lg n) CRCW,
// O(lg n lglg n) CREW under Brent scheduling) with O(n) peak processors.
#include <gtest/gtest.h>

#include <cmath>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "par/monge_rowminima.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::par {
namespace {

using monge::DenseArray;
using monge::random_inverse_monge;
using monge::random_monge;
using monge::row_maxima_brute;
using monge::row_minima_brute;
using pram::Machine;
using pram::Model;

struct Dims {
  std::size_t m, n;
};

class ParRowMinima
    : public ::testing::TestWithParam<std::tuple<Dims, Model>> {};

TEST_P(ParRowMinima, MinimaMatchesBrute) {
  const auto [dims, model] = GetParam();
  Rng rng(37 + dims.m * 13 + dims.n);
  for (int t = 0; t < 5; ++t) {
    const auto a = random_monge(dims.m, dims.n, rng, 3, 25);
    Machine mach(model);
    EXPECT_EQ(monge_row_minima(mach, a), row_minima_brute(a));
  }
}

TEST_P(ParRowMinima, MaximaMatchesBrute) {
  const auto [dims, model] = GetParam();
  Rng rng(57 + dims.m * 13 + dims.n);
  for (int t = 0; t < 5; ++t) {
    const auto a = random_monge(dims.m, dims.n, rng, 3, 25);
    Machine mach(model);
    EXPECT_EQ(monge_row_maxima(mach, a), row_maxima_brute(a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndModels, ParRowMinima,
    ::testing::Combine(
        ::testing::Values(Dims{1, 1}, Dims{3, 3}, Dims{8, 8}, Dims{17, 17},
                          Dims{64, 64}, Dims{100, 10}, Dims{10, 100},
                          Dims{129, 65}, Dims{200, 200}),
        ::testing::Values(Model::CREW, Model::CRCW_COMMON,
                          Model::CRCW_PRIORITY, Model::CRCW_COMBINING)),
    [](const auto& info) {
      const Dims dims = std::get<0>(info.param);
      std::string name = pram::model_name(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "m" + std::to_string(dims.m) + "n" + std::to_string(dims.n) +
             "_" + name;
    });

TEST(ParRowMinimaInverse, MinimaAndMaximaMatchBrute) {
  Rng rng(71);
  for (int t = 0; t < 10; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 80));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 80));
    const auto a = random_inverse_monge(m, n, rng, 3, 25);
    Machine m1(Model::CRCW_COMMON), m2(Model::CREW);
    EXPECT_EQ(inverse_monge_row_minima(m1, a), row_minima_brute(a));
    EXPECT_EQ(inverse_monge_row_maxima(m2, a), row_maxima_brute(a));
  }
}

TEST(ParRowMinimaCost, CrcwDepthScalesAsLgN) {
  // Table 1.1 CRCW row: O(lg n) time.  The ratio steps/lg n must stay
  // bounded as n grows 64 -> 4096.
  Rng rng(72);
  std::vector<SeriesPoint> pts;
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const auto a = random_monge(n, n, rng);
    Machine mach(Model::CRCW_COMMON);
    monge_row_minima(mach, a);
    pts.push_back({static_cast<double>(n),
                   static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(pts, shape_lg(), 0.45))
      << "ratios: " << pts.front().value / std::log2(pts.front().n) << " .. "
      << pts.back().value / std::log2(pts.back().n);
}

TEST(ParRowMinimaCost, PeakProcessorsLinear) {
  Rng rng(73);
  for (std::size_t n : {256u, 1024u}) {
    const auto a = random_monge(n, n, rng);
    Machine mach(Model::CRCW_COMMON);
    monge_row_minima(mach, a);
    EXPECT_LE(mach.meter().peak_processors, 16 * n) << n;
  }
}

TEST(ParRowMinimaCost, CrewBrentTimeWithinLgLglg) {
  // Table 1.1 CREW row: O(lg n lglg n) time at n/lglg n processors.
  Rng rng(74);
  std::vector<SeriesPoint> pts;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const auto a = random_monge(n, n, rng);
    Machine mach(Model::CREW);
    monge_row_minima(mach, a);
    const auto p = std::max<std::uint64_t>(
        1, n / static_cast<std::uint64_t>(std::max(1, ceil_lglg(n))));
    pts.push_back({static_cast<double>(n), mach.meter().brent_time(p)});
  }
  EXPECT_TRUE(matches_shape(pts, shape_lg_lglg(), 0.6));
}

TEST(ParRowMinimaCost, WorkIsNearLinear) {
  // Processor-time product within an O(lg n) factor of the sequential
  // Theta(n) bound (the paper's stated efficiency envelope).
  Rng rng(75);
  for (std::size_t n : {512u, 2048u}) {
    const auto a = random_monge(n, n, rng);
    Machine mach(Model::CRCW_COMMON);
    monge_row_minima(mach, a);
    EXPECT_LE(mach.meter().work,
              30.0 * n * std::max(1, ceil_lg(n)))
        << n;
  }
}

TEST(ParRowMinima, WorksOnImplicitArrays) {
  // The PRAM model assumes O(1) on-demand entries; verify a FuncArray
  // (no materialization) gives identical results.
  const std::size_t m = 90, n = 75;
  auto a = monge::make_func_array<double>(m, n, [](std::size_t i,
                                                   std::size_t j) {
    const double d = 0.37 * static_cast<double>(i) - static_cast<double>(j);
    return d * d;
  });
  Machine mach(Model::CRCW_COMMON);
  EXPECT_EQ(monge_row_minima(mach, a), row_minima_brute(a));
}

}  // namespace
}  // namespace pmonge::par
