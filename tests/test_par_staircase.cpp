// Tests for Theorem 2.3 / Corollary 2.4: parallel staircase-Monge row
// minima (and the easy maxima direction) against brute force, across
// models, schedules, shapes and degenerate frontiers; complexity pinning
// for the Table 1.2 shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "par/staircase_rowminima.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::par {
namespace {

using monge::DenseArray;
using monge::StaircaseArray;
using monge::random_monge;
using monge::random_staircase_monge;
using monge::row_maxima_brute;
using monge::row_minima_brute;
using pram::Machine;
using pram::Model;

using Stair = StaircaseArray<DenseArray<std::int64_t>>;

struct Dims {
  std::size_t m, n;
};

class ParStaircase : public ::testing::TestWithParam<
                         std::tuple<Dims, Model, StaircaseSchedule>> {};

TEST_P(ParStaircase, MinimaMatchesBrute) {
  const auto [dims, model, sched] = GetParam();
  Rng rng(91 + dims.m * 13 + dims.n);
  for (int t = 0; t < 5; ++t) {
    const auto inst = random_staircase_monge(dims.m, dims.n, rng);
    Stair s(inst.base, inst.frontier);
    Machine mach(model);
    EXPECT_EQ(staircase_row_minima(mach, s, sched), row_minima_brute(s));
  }
}

TEST_P(ParStaircase, MaximaMatchesBrute) {
  const auto [dims, model, sched] = GetParam();
  Rng rng(191 + dims.m * 13 + dims.n);
  for (int t = 0; t < 5; ++t) {
    const auto inst = random_staircase_monge(dims.m, dims.n, rng);
    Stair s(inst.base, inst.frontier);
    Machine mach(model);
    EXPECT_EQ(staircase_row_maxima(mach, s, sched), row_maxima_brute(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesModelsSchedules, ParStaircase,
    ::testing::Combine(
        ::testing::Values(Dims{1, 1}, Dims{5, 5}, Dims{16, 16}, Dims{33, 17},
                          Dims{17, 33}, Dims{64, 64}, Dims{100, 100},
                          Dims{128, 40}, Dims{40, 128}),
        ::testing::Values(Model::CREW, Model::CRCW_COMMON),
        ::testing::Values(StaircaseSchedule::MaxParallel,
                          StaircaseSchedule::WorkEfficient,
                          StaircaseSchedule::ColumnSplit)),
    [](const auto& info) {
      const Dims dims = std::get<0>(info.param);
      std::string name = pram::model_name(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      const char* sched =
          std::get<2>(info.param) == StaircaseSchedule::MaxParallel
              ? "maxpar"
              : (std::get<2>(info.param) == StaircaseSchedule::WorkEfficient
                     ? "workeff"
                     : "colsplit");
      return "m" + std::to_string(dims.m) + "n" + std::to_string(dims.n) +
             "_" + name + "_" + sched;
    });

TEST(ParStaircaseCross, ThreeAlgorithmsAgree) {
  // Three independently-derived algorithms for Theorem 2.3 must produce
  // identical output (values, columns and tie choices) on shared inputs.
  Rng rng(103);
  for (int t = 0; t < 10; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 90));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 90));
    const auto inst = random_staircase_monge(m, n, rng);
    Stair s(inst.base, inst.frontier);
    Machine m1(Model::CRCW_COMMON), m2(Model::CRCW_COMMON),
        m3(Model::CRCW_COMMON);
    const auto a = staircase_row_minima(m1, s, StaircaseSchedule::MaxParallel);
    const auto b =
        staircase_row_minima(m2, s, StaircaseSchedule::WorkEfficient);
    const auto c = staircase_row_minima(m3, s, StaircaseSchedule::ColumnSplit);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(ParStaircaseEdge, FullFrontierMatchesMongeSearch) {
  Rng rng(95);
  const auto a = random_monge(40, 50, rng);
  Stair s(a, std::vector<std::size_t>(40, 50));
  Machine mach(Model::CRCW_COMMON);
  EXPECT_EQ(staircase_row_minima(mach, s), row_minima_brute(a));
}

TEST(ParStaircaseEdge, AllInfiniteRows) {
  Rng rng(96);
  const auto a = random_monge(6, 8, rng);
  Stair s(a, std::vector<std::size_t>(6, 0));
  Machine mach(Model::CREW);
  const auto mins = staircase_row_minima(mach, s);
  for (const auto& r : mins) {
    EXPECT_EQ(r.col, monge::kNoCol);
  }
}

TEST(ParStaircaseEdge, SingleFiniteColumn) {
  Rng rng(97);
  const auto a = random_monge(5, 7, rng);
  Stair s(a, {7, 1, 1, 1, 1});
  Machine mach(Model::CRCW_COMMON);
  const auto mins = staircase_row_minima(mach, s);
  EXPECT_EQ(mins, row_minima_brute(s));
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(mins[i].col, 0u);
}

TEST(ParStaircaseEdge, StrictlyDecreasingFrontier) {
  Rng rng(98);
  const std::size_t m = 60, n = 70;
  const auto a = random_monge(m, n, rng);
  std::vector<std::size_t> f(m);
  for (std::size_t i = 0; i < m; ++i) f[i] = n - i;  // worst case for groups
  Stair s(a, f);
  Machine mach(Model::CRCW_COMMON);
  EXPECT_EQ(staircase_row_minima(mach, s), row_minima_brute(s));
}

TEST(ParStaircaseCost, MaxParallelDepthIsLg) {
  // Theorem 2.3 CRCW row: O(lg n) time.
  Rng rng(99);
  std::vector<SeriesPoint> pts;
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto inst = random_staircase_monge(n, n, rng);
    Stair s(inst.base, inst.frontier);
    Machine mach(Model::CRCW_COMMON);
    staircase_row_minima(mach, s, StaircaseSchedule::MaxParallel);
    pts.push_back({static_cast<double>(n),
                   static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(pts, shape_lg(), 0.5))
      << pts.front().value << " .. " << pts.back().value;
}

TEST(ParStaircaseCost, WorkEfficientProcessorsNearLinear) {
  Rng rng(100);
  for (std::size_t n : {256u, 1024u}) {
    const auto inst = random_staircase_monge(n, n, rng);
    Stair s(inst.base, inst.frontier);
    Machine mach(Model::CRCW_COMMON);
    staircase_row_minima(mach, s, StaircaseSchedule::WorkEfficient);
    EXPECT_LE(mach.meter().peak_processors, 40 * n) << n;
  }
}

TEST(ParStaircaseCost, MaxParallelUsesMoreProcsButLessDepth) {
  Rng rng(101);
  const std::size_t n = 1024;
  const auto inst = random_staircase_monge(n, n, rng);
  Stair s(inst.base, inst.frontier);
  Machine fast(Model::CRCW_COMMON), lean(Model::CRCW_COMMON);
  staircase_row_minima(fast, s, StaircaseSchedule::MaxParallel);
  staircase_row_minima(lean, s, StaircaseSchedule::WorkEfficient);
  EXPECT_LE(fast.meter().time, lean.meter().time);
  EXPECT_GE(fast.meter().peak_processors, lean.meter().peak_processors);
}

TEST(ParStaircase, SubsumesMongeCase) {
  // Tables 1.1/1.2 note the staircase results subsume the Monge ones:
  // a full frontier must not cost more than a constant factor extra.
  Rng rng(102);
  const std::size_t n = 512;
  const auto a = random_monge(n, n, rng);
  Machine plain(Model::CRCW_COMMON), stair(Model::CRCW_COMMON);
  monge_row_minima(plain, a);
  Stair s(a, std::vector<std::size_t>(n, n));
  staircase_row_minima(stair, s);
  EXPECT_LE(stair.meter().time, 4 * plain.meter().time + 40);
}

}  // namespace
}  // namespace pmonge::par
