// Tests for parallel tube minima / maxima of Monge-composite arrays
// (Table 1.3): correctness against brute force for both strategies and
// all models, tie policy (smallest j), and depth pinning (lg n per-slice,
// lglg n sampled CRCW).
#include <gtest/gtest.h>

#include "monge/composite.hpp"
#include "monge/generators.hpp"
#include "par/tube_maxima.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::par {
namespace {

using monge::random_composite;
using monge::tube_maxima_brute;
using monge::tube_minima_brute;
using pram::Machine;
using pram::Model;

struct Dims {
  std::size_t p, q, r;
};

class ParTube
    : public ::testing::TestWithParam<std::tuple<Dims, TubeStrategy>> {};

TEST_P(ParTube, MinimaMatchesBrute) {
  const auto [dims, strat] = GetParam();
  Rng rng(301 + dims.p * 7 + dims.q * 3 + dims.r);
  for (int t = 0; t < 4; ++t) {
    const auto inst = random_composite(dims.p, dims.q, dims.r, rng);
    Machine mach(Model::CRCW_COMMON);
    const auto got = tube_minima(mach, inst.d, inst.e, strat);
    const auto want = tube_minima_brute(inst.d, inst.e);
    EXPECT_EQ(got.opt, want.opt);
  }
}

TEST_P(ParTube, MaximaMatchesBrute) {
  const auto [dims, strat] = GetParam();
  Rng rng(401 + dims.p * 7 + dims.q * 3 + dims.r);
  for (int t = 0; t < 4; ++t) {
    const auto inst = random_composite(dims.p, dims.q, dims.r, rng);
    Machine mach(Model::CRCW_COMMON);
    const auto got = tube_maxima(mach, inst.d, inst.e, strat);
    const auto want = tube_maxima_brute(inst.d, inst.e);
    EXPECT_EQ(got.opt, want.opt);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndStrategies, ParTube,
    ::testing::Combine(
        ::testing::Values(Dims{1, 1, 1}, Dims{1, 5, 9}, Dims{9, 5, 1},
                          Dims{4, 4, 4}, Dims{16, 16, 16}, Dims{7, 30, 13},
                          Dims{30, 7, 30}, Dims{32, 32, 32},
                          Dims{25, 60, 25}),
        ::testing::Values(TubeStrategy::PerSlice,
                          TubeStrategy::SampledDoublyLog)),
    [](const auto& info) {
      const Dims dims = std::get<0>(info.param);
      return "p" + std::to_string(dims.p) + "q" + std::to_string(dims.q) +
             "r" + std::to_string(dims.r) + "_" +
             (std::get<1>(info.param) == TubeStrategy::PerSlice ? "slice"
                                                                : "sampled");
    });

TEST(ParTubeModels, CrewPerSliceMatches) {
  Rng rng(55);
  const auto inst = random_composite(20, 20, 20, rng);
  Machine mach(Model::CREW);
  EXPECT_EQ(tube_minima(mach, inst.d, inst.e, TubeStrategy::PerSlice).opt,
            tube_minima_brute(inst.d, inst.e).opt);
}

TEST(ParTubeModels, DimensionMismatchRejected) {
  Rng rng(56);
  const auto d = monge::random_monge(4, 5, rng);
  const auto e = monge::random_monge(6, 4, rng);
  Machine mach(Model::CREW);
  EXPECT_THROW(tube_minima(mach, d, e), std::invalid_argument);
}

TEST(ParTubeCost, PerSliceDepthIsLg) {
  // Table 1.3 CREW row: Theta(lg n) time.
  Rng rng(57);
  std::vector<SeriesPoint> pts;
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    const auto inst = random_composite(n, n, n, rng);
    Machine mach(Model::CREW);
    tube_minima(mach, inst.d, inst.e, TubeStrategy::PerSlice);
    pts.push_back({static_cast<double>(n),
                   static_cast<double>(mach.meter().time)});
  }
  EXPECT_TRUE(matches_shape(pts, shape_lg(), 0.5))
      << pts.front().value << " .. " << pts.back().value;
}

TEST(ParTubeCost, SampledCrcwDepthIsDoublyLog) {
  // Table 1.3 CRCW row: Theta(lglg n) time.  The measured depth must stay
  // within a constant multiple of lglg n across the range and grow only
  // additively (a lg n-shaped series would add ~10 steps here; the
  // doubly-log one adds ~4).
  Rng rng(58);
  std::vector<double> depths;
  for (std::size_t n : {64u, 256u, 1024u}) {
    const auto inst = random_composite(n, n, n, rng);
    Machine mach(Model::CRCW_COMMON);
    tube_minima(mach, inst.d, inst.e, TubeStrategy::SampledDoublyLog);
    const auto t = mach.meter().time;
    depths.push_back(static_cast<double>(t));
    EXPECT_LE(t, 6u * static_cast<std::uint64_t>(ceil_lglg(n)) + 8) << n;
  }
  EXPECT_LE(depths.back(), depths.front() + 8.0)
      << depths.front() << " -> " << depths.back();
}

TEST(ParTubeTies, SmallestJWinsOnConstantArrays) {
  // All-equal arrays force total ties; the paper's rule picks smallest j.
  monge::DenseArray<std::int64_t> d(3, 4, 0), e(4, 3, 0);
  Machine mach(Model::CRCW_COMMON);
  for (auto strat :
       {TubeStrategy::PerSlice, TubeStrategy::SampledDoublyLog}) {
    const auto mins = tube_minima(mach, d, e, strat);
    const auto maxs = tube_maxima(mach, d, e, strat);
    for (const auto& o : mins.opt) EXPECT_EQ(o.j, 0u);
    for (const auto& o : maxs.opt) EXPECT_EQ(o.j, 0u);
  }
}

}  // namespace
}  // namespace pmonge::par
