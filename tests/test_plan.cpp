// Planner tests: cost-model monotonicity, profile persistence (loud
// failures), shape-class memoization, and the serve-layer contracts --
// explain is well-formed for every query op, and the chosen variant is
// invisible in response bytes across shapes straddling the serial
// cutoff and the cost-model crossovers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "par/monge_rowminima.hpp"
#include "plan/calibrate.hpp"
#include "plan/cost_model.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace pmonge::plan {
namespace {

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

const OpClass kOps[] = {OpClass::RowSearch, OpClass::TubeSearch,
                        OpClass::EditDistance, OpClass::GeometricApp};
const Algo kAlgos[] = {Algo::Brute, Algo::Sequential, Algo::Parallel};

TEST(CostModel, MonotoneInEveryShapeDimension) {
  const CostProfile prof = builtin_profile();
  for (const OpClass op : kOps) {
    for (const Algo algo : kAlgos) {
      for (std::size_t t : {std::size_t{1}, std::size_t{8}}) {
        double prev_rows = -1, prev_cols = -1, prev_batch = -1;
        for (std::size_t k = 0; k <= 20; ++k) {
          const std::size_t s = std::size_t{1} << k;
          const double by_rows =
              predicted_ns(prof, algo, {op, s, 256, 4}, t);
          const double by_cols =
              predicted_ns(prof, algo, {op, 256, s, 4}, t);
          const double by_batch =
              predicted_ns(prof, algo, {op, 256, 256, s}, t);
          EXPECT_GE(by_rows, prev_rows) << op_class_name(op) << "/"
                                        << algo_name(algo) << " rows=" << s;
          EXPECT_GE(by_cols, prev_cols) << op_class_name(op) << "/"
                                        << algo_name(algo) << " cols=" << s;
          EXPECT_GE(by_batch, prev_batch)
              << op_class_name(op) << "/" << algo_name(algo) << " batch=" << s;
          prev_rows = by_rows;
          prev_cols = by_cols;
          prev_batch = by_batch;
        }
      }
    }
  }
}

TEST(CostModel, BuiltinCrossoversAreSane) {
  const CostProfile prof = builtin_profile();
  // A single row of a small operand: a brute scan beats paying the pool
  // dispatch constant.
  const QueryShape small{OpClass::RowSearch, 8, 8, 1};
  EXPECT_LT(predicted_ns(prof, Algo::Brute, small, 8),
            predicted_ns(prof, Algo::Parallel, small, 8));
  // A big coalesced batch on a big operand: the parallel kernel's
  // (b + n) lg n work divided over lanes beats b * n brute cells.
  const QueryShape big{OpClass::RowSearch, 1u << 14, 1u << 14, 1u << 10};
  EXPECT_LT(predicted_ns(prof, Algo::Parallel, big, 8),
            predicted_ns(prof, Algo::Brute, big, 8));
}

// ---------------------------------------------------------------------------
// Planner + plan cache
// ---------------------------------------------------------------------------

TEST(Planner, DisabledPlannerIsTheFixedParallelDispatch) {
  const Planner p(builtin_profile(), /*enabled=*/false, 8);
  for (const OpClass op : kOps) {
    const Plan pl = p.plan({op, 8, 8, 1});
    EXPECT_EQ(pl.algo, Algo::Parallel);
    EXPECT_EQ(pl.grain, 0u);  // engine default, exactly the old behavior
  }
}

TEST(Planner, MemoizesPerShapeClass) {
  const Planner p(builtin_profile(), true, 8);
  const Plan a = p.plan({OpClass::RowSearch, 24, 31, 1});
  auto s = p.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
  // Same lg-buckets (rows in (16,32], cols in (16,32], batch 1): a hit,
  // and the identical plan.
  const Plan b = p.plan({OpClass::RowSearch, 17, 32, 1});
  s = p.cache_stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(b.algo, a.algo);
  EXPECT_EQ(b.predicted_us, a.predicted_us);
  // Different bucket: a fresh class.
  p.plan({OpClass::RowSearch, 100, 31, 1});
  EXPECT_EQ(p.cache_stats().misses, 2u);
  p.clear_cache();
  EXPECT_EQ(p.cache_stats().size, 0u);
}

TEST(Planner, SmallShapesAvoidTheParallelKernel) {
  const Planner p(builtin_profile(), true, 8);
  const Plan small = p.plan({OpClass::RowSearch, 8, 8, 1});
  EXPECT_NE(small.algo, Algo::Parallel)
      << "an 8x8 single-row query should not pay pool dispatch";
  const Plan big = p.plan({OpClass::RowSearch, 1u << 14, 1u << 14, 1u << 10});
  EXPECT_EQ(big.algo, Algo::Parallel);
  EXPECT_GE(big.grain, 1u);
}

TEST(Planner, PredictedCostMonotoneInOperandSize) {
  // The admission number must grow (weakly) with the operand, per op
  // class -- quantized planning must not invert sizes.
  const Planner p(builtin_profile(), true, 8);
  for (const OpClass op : kOps) {
    double prev = -1;
    for (std::size_t k = 0; k <= 14; ++k) {
      const std::size_t n = std::size_t{1} << k;
      const double us = p.predicted_us({op, n, n, 1});
      EXPECT_GE(us, prev) << op_class_name(op) << " n=" << n;
      EXPECT_GT(us, 0) << op_class_name(op) << " n=" << n;
      prev = us;
    }
  }
}

// ---------------------------------------------------------------------------
// Profile persistence
// ---------------------------------------------------------------------------

TEST(Profile, JsonRoundTripPreservesEveryConstant) {
  CostProfile prof;
  prof.id = "round-trip";
  prof.brute_ns_per_cell = 1.25;
  prof.seq_ns_per_probe = 7.5;
  prof.edit_ns_per_cell = 2.75;
  prof.par_ns_per_work = 3.5;
  prof.par_dispatch_ns = 12345;
  prof.par_depth_ns = 99;
  const CostProfile back = profile_from_json(profile_to_json(prof), "mem");
  EXPECT_EQ(back.id, prof.id);
  EXPECT_DOUBLE_EQ(back.brute_ns_per_cell, prof.brute_ns_per_cell);
  EXPECT_DOUBLE_EQ(back.seq_ns_per_probe, prof.seq_ns_per_probe);
  EXPECT_DOUBLE_EQ(back.edit_ns_per_cell, prof.edit_ns_per_cell);
  EXPECT_DOUBLE_EQ(back.par_ns_per_work, prof.par_ns_per_work);
  EXPECT_DOUBLE_EQ(back.par_dispatch_ns, prof.par_dispatch_ns);
  EXPECT_DOUBLE_EQ(back.par_depth_ns, prof.par_depth_ns);
}

TEST(Profile, SaveLoadRoundTripThroughDisk) {
  const std::string path = testing::TempDir() + "pmonge_profile_rt.json";
  CostProfile prof;
  prof.id = "disk-rt";
  prof.par_dispatch_ns = 4242;
  save_profile(prof, path);
  const CostProfile back = load_profile(path);
  EXPECT_EQ(back.id, "disk-rt");
  EXPECT_DOUBLE_EQ(back.par_dispatch_ns, 4242);
  std::remove(path.c_str());
}

void expect_throw_quoting(const std::string& path, const std::string& text,
                          bool write_file) {
  if (write_file) {
    std::ofstream(path) << text;
  }
  try {
    load_profile(path);
    FAIL() << "load_profile(" << path << ") did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must quote the offending path, got: " << e.what();
  }
  if (write_file) std::remove(path.c_str());
}

TEST(Profile, LoadFailsLoudlyQuotingThePath) {
  const std::string dir = testing::TempDir();
  // Missing file.
  expect_throw_quoting(dir + "pmonge_no_such_profile.json", "", false);
  // Unparseable JSON.
  expect_throw_quoting(dir + "pmonge_corrupt.json", "{not json", true);
  // Wrong format tag.
  expect_throw_quoting(
      dir + "pmonge_wrong_format.json",
      R"({"format":"something-else","id":"x","brute_ns_per_cell":1,)"
      R"("seq_ns_per_probe":1,"edit_ns_per_cell":1,"par_ns_per_work":1,)"
      R"("par_dispatch_ns":1,"par_depth_ns":1})",
      true);
  // Non-positive constant.
  expect_throw_quoting(
      dir + "pmonge_nonpositive.json",
      R"({"format":"pmonge-profile-v1","id":"x","brute_ns_per_cell":0,)"
      R"("seq_ns_per_probe":1,"edit_ns_per_cell":1,"par_ns_per_work":1,)"
      R"("par_dispatch_ns":1,"par_depth_ns":1})",
      true);
}

TEST(Profile, CheckedInSampleProfileLoads) {
  // The profile CI serves with must stay valid.
  const CostProfile prof =
      load_profile(std::string(PMONGE_SOURCE_DIR) +
                   "/profiles/sample_profile.json");
  EXPECT_FALSE(prof.id.empty());
  EXPECT_GT(prof.brute_ns_per_cell, 0);
  EXPECT_GT(prof.par_ns_per_work, 0);
}

}  // namespace
}  // namespace pmonge::plan

namespace pmonge::serve {
namespace {

struct ThreadGuard {
  std::size_t saved = exec::num_threads();
  ~ThreadGuard() { exec::set_num_threads(saved); }
};

std::string reg_random(Service& svc, std::size_t rows, std::size_t cols,
                       std::uint64_t seed, const char* kind = "monge") {
  Json::Obj o;
  o["op"] = "register_random";
  o["rows"] = rows;
  o["cols"] = cols;
  o["seed"] = seed;
  o["kind"] = kind;
  return svc.request(Json(std::move(o)).dump());
}

// ---------------------------------------------------------------------------
// explain
// ---------------------------------------------------------------------------

TEST(Explain, WellFormedForEveryQueryOp) {
  Service svc;
  reg_random(svc, 12, 10, 1);                      // id 0: monge
  reg_random(svc, 10, 10, 2, "inverse_monge");     // id 1
  reg_random(svc, 12, 12, 3, "staircase");         // id 2
  reg_random(svc, 8, 6, 4);                        // id 3: tube d
  reg_random(svc, 6, 8, 5);                        // id 4: tube e
  const struct {
    const char* op_class;
    std::string query;
  } cases[] = {
      {"row_search", R"({"op":"rowmin","array":0,"row":3})"},
      {"row_search", R"({"op":"rowmax","array":1,"row":2})"},
      {"row_search", R"({"op":"staircase_rowmin","array":2,"row":5})"},
      {"row_search", R"({"op":"staircase_rowmax","array":2,"row":1})"},
      {"tube_search", R"({"op":"tubemax","d":3,"e":4,"i":1,"k":2})"},
      {"tube_search", R"({"op":"tubemin","d":3,"e":4,"i":0,"k":0})"},
      {"edit_distance", R"({"op":"string_edit","x":"kitten","y":"sitting"})"},
      {"geometric_app",
       R"({"op":"largest_rect","points":[[0,0],[9,9],[2,7],[6,3]]})"},
      {"geometric_app",
       R"({"op":"empty_rect","bound":[0,0,10,10],)"
       R"("points":[[2,2],[5,7],[8,3]]})"},
      {"geometric_app",
       R"({"op":"polygon_neighbors","kind":"nearest_visible",)"
       R"("p":[[0,0],[1,0],[1,1],[0,1]],"q":[[3,0],[4,0],[4,1],[3,1]]})"},
  };
  for (const auto& c : cases) {
    const std::string resp =
        svc.request(std::string(R"({"op":"explain","query":)") + c.query +
                    "}");
    const Json j = Json::parse(resp);
    ASSERT_TRUE(j.at("ok").as_bool()) << resp;
    const Json& r = j.at("result");
    const Json& pl = r.at("plan");
    const std::string algo = pl.at("algo").as_string();
    EXPECT_TRUE(algo == "brute" || algo == "sequential" ||
                algo == "parallel")
        << resp;
    EXPECT_GE(pl.at("grain").as_int(), 0) << resp;
    EXPECT_GT(pl.at("predicted_us").as_double(), 0) << resp;
    EXPECT_FALSE(pl.at("profile").as_string().empty()) << resp;
    EXPECT_TRUE(pl.at("planner_enabled").as_bool()) << resp;
    EXPECT_EQ(pl.at("shape").at("op_class").as_string(), c.op_class) << resp;
    EXPECT_GE(r.at("actual_us").as_double(), 0) << resp;
    ASSERT_TRUE(r.at("outcome").at("ok").as_bool()) << resp;
    // The inner bytes explain reports are the same bytes the plain query
    // produces (modulo the response envelope).
    const Json plain = Json::parse(svc.request(c.query));
    EXPECT_EQ(r.at("outcome").at("result").dump(),
              plain.at("result").dump())
        << c.query;
  }
}

TEST(Explain, RejectsMalformedWrappers) {
  Service svc;
  EXPECT_NE(svc.request(R"({"op":"explain"})").find("bad_request"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"explain","query":42})").find("bad_request"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"explain","query":{"op":"explain"}})")
                .find("bad_request"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"explain","query":{"op":"stats"}})")
                .find("bad_request"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential bit-identity across the planner's choice space
// ---------------------------------------------------------------------------

/// Shapes chosen to straddle the par:: small-n serial cutoff
/// (kSerialCutoffCells cells) and the cost-model crossovers.
std::vector<std::string> straddle_workload(Service& svc) {
  static_assert(par::kSerialCutoffCells == 4096,
                "shape choices below assume the 4096-cell cutoff");
  std::vector<std::string> out;
  out.push_back(reg_random(svc, 63, 65, 31));          // 4095 cells: below
  out.push_back(reg_random(svc, 64, 64, 32));          // 4096: at the cutoff
  out.push_back(reg_random(svc, 66, 64, 33));          // 4224: above
  out.push_back(reg_random(svc, 63, 65, 34, "staircase"));
  out.push_back(reg_random(svc, 66, 64, 35, "staircase"));
  out.push_back(reg_random(svc, 64, 8, 36));           // tube d (id 5)
  out.push_back(reg_random(svc, 8, 64, 37));           // tube e (id 6)
  std::vector<std::string> queries;
  for (int row = 0; row < 8; ++row) {
    for (int a = 0; a < 3; ++a) {
      queries.push_back(R"({"op":"rowmin","array":)" + std::to_string(a) +
                        R"(,"row":)" + std::to_string(row * 7) + "}");
      queries.push_back(R"({"op":"rowmax","array":)" + std::to_string(a) +
                        R"(,"row":)" + std::to_string(row * 7 + 1) + "}");
    }
    queries.push_back(R"({"op":"staircase_rowmin","array":3,"row":)" +
                      std::to_string(row * 7) + "}");
    queries.push_back(R"({"op":"staircase_rowmax","array":4,"row":)" +
                      std::to_string(row * 7 + 2) + "}");
    queries.push_back(R"({"op":"tubemax","d":5,"e":6,"i":)" +
                      std::to_string(row * 7) + R"(,"k":)" +
                      std::to_string(row * 9 % 64) + "}");
  }
  queries.push_back(
      R"({"op":"string_edit","x":"abcdefghabcdefgh","y":"azcedfghazcedfgh"})");
  svc.pause();
  std::vector<std::future<std::string>> futs;
  for (const auto& q : queries) futs.push_back(svc.submit(q));
  svc.resume();
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

TEST(Differential, PlanChoiceInvisibleAcrossCutoffStraddlingShapes) {
  ThreadGuard tg;
  exec::set_num_threads(4);
  plan::CostProfile serial = plan::builtin_profile();
  serial.id = "force-serial";
  serial.par_dispatch_ns = 1e12;
  plan::CostProfile parallel = plan::builtin_profile();
  parallel.id = "force-parallel";
  parallel.par_dispatch_ns = 0;
  parallel.par_ns_per_work = 1e-6;
  parallel.par_depth_ns = 0;

  std::vector<std::vector<std::string>> runs;
  for (int cfg = 0; cfg < 4; ++cfg) {
    ServiceOptions opts;
    opts.cache_capacity = 0;  // every answer recomputed, nothing memoized
    if (cfg == 0) opts.planner = false;
    if (cfg == 1) opts.profile = plan::builtin_profile();
    if (cfg == 2) opts.profile = serial;
    if (cfg == 3) opts.profile = parallel;
    Service svc(opts);
    runs.push_back(straddle_workload(svc));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[0]) << "config " << i << " diverged";
  }
}

// ---------------------------------------------------------------------------
// Planner surface in stats
// ---------------------------------------------------------------------------

TEST(Stats, ReportsPlannerStateAndChoices) {
  Service svc;
  reg_random(svc, 8, 8, 1);
  svc.request(R"({"op":"rowmin","array":0,"row":0})");
  const Json stats =
      Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  const Json& planner = stats.at("planner");
  EXPECT_TRUE(planner.at("enabled").as_bool());
  EXPECT_EQ(planner.at("profile").as_string(), "builtin-v1");
  EXPECT_GE(planner.at("plan_cache_misses").as_int(), 1);
  const Json& plans = stats.at("plans");
  // An 8x8 single-row query is far below every parallel crossover.
  EXPECT_GE(plans.at("brute").as_int() + plans.at("sequential").as_int(), 1);
  EXPECT_EQ(plans.at("parallel").as_int(), 0);
  EXPECT_GE(stats.at("cache").at("invalidations").as_int(), 0);
}

}  // namespace
}  // namespace pmonge::serve
