// Unit tests for the PRAM simulator: cost metering, model enforcement
// (CREW conflicts, CRCW-COMMON agreement), primitive correctness and the
// charged depths of argopt under each submodel.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pram/ansv.hpp"
#include "pram/machine.hpp"
#include "pram/primitives.hpp"
#include "support/rng.hpp"

namespace pmonge::pram {
namespace {

TEST(CostMeter, ChargeAccumulates) {
  CostMeter m;
  m.charge(3, 10);
  m.charge(2, 4);
  EXPECT_EQ(m.time, 5u);
  EXPECT_EQ(m.work, 38u);
  EXPECT_EQ(m.peak_processors, 10u);
}

TEST(CostMeter, ExplicitOps) {
  CostMeter m;
  m.charge(4, 8, 16);  // reduction tree: lg-depth but linear work
  EXPECT_EQ(m.time, 4u);
  EXPECT_EQ(m.work, 16u);
}

TEST(CostMeter, BrentTime) {
  CostMeter m;
  m.charge(10, 100, 1000);
  EXPECT_DOUBLE_EQ(m.brent_time(10), 110.0);
  EXPECT_DOUBLE_EQ(m.brent_time(1000), 11.0);
  EXPECT_THROW(m.brent_time(0), std::invalid_argument);
}

TEST(Machine, ParallelBranchesMaxTimeSumWork) {
  Machine m(Model::CREW);
  m.parallel_branches(3, [&](std::size_t b, Machine& sub) {
    sub.meter().charge(b + 1, 10);  // times 1,2,3; works 10,20,30
  });
  EXPECT_EQ(m.meter().time, 3u);
  EXPECT_EQ(m.meter().work, 60u);
  EXPECT_EQ(m.meter().peak_processors, 30u);
}

TEST(ParallelFor, ExecutesAllAndChargesOneStep) {
  Machine m(Model::CREW);
  std::vector<int> hit(100, 0);
  parallel_for(m, hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 100);
  EXPECT_EQ(m.meter().time, 1u);
  EXPECT_EQ(m.meter().peak_processors, 100u);
}

TEST(Reduce, SumsCorrectly) {
  Machine m(Model::CREW);
  const auto total = reduce<long long>(
      m, 1000, [](std::size_t i) { return static_cast<long long>(i); },
      std::plus<long long>{}, 0LL);
  EXPECT_EQ(total, 999LL * 1000 / 2);
  EXPECT_EQ(m.meter().time, static_cast<std::uint64_t>(ceil_lg(1000)));
}

TEST(Argopt, FindsLeftmostMinimum) {
  for (Model model : {Model::CREW, Model::CRCW_COMMON, Model::CRCW_ARBITRARY,
                      Model::CRCW_PRIORITY, Model::CRCW_COMBINING}) {
    Machine m(model);
    std::vector<int> xs = {5, 3, 9, 3, 7, 3, 8};
    const auto r = min_element_par<int>(m, xs);
    EXPECT_EQ(r.value, 3) << model_name(model);
    EXPECT_EQ(r.index, 1u) << model_name(model);
  }
}

TEST(Argopt, FindsLeftmostMaximum) {
  Machine m(Model::CRCW_COMMON);
  std::vector<int> xs = {5, 9, 2, 9, 1};
  const auto r = max_element_par<int>(m, xs);
  EXPECT_EQ(r.value, 9);
  EXPECT_EQ(r.index, 1u);
}

TEST(Argopt, RandomAgreesWithStd) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::vector<long long> xs(n);
    for (auto& x : xs) x = rng.uniform_int(-50, 50);
    const auto expect =
        std::min_element(xs.begin(), xs.end()) - xs.begin();
    for (Model model : {Model::CREW, Model::CRCW_COMMON,
                        Model::CRCW_COMBINING}) {
      Machine m(model);
      const auto r = min_element_par<long long>(m, xs);
      EXPECT_EQ(r.index, static_cast<std::size_t>(expect));
      EXPECT_EQ(r.value, xs[static_cast<std::size_t>(expect)]);
    }
  }
}

TEST(Argopt, CrewDepthIsLg) {
  Machine m(Model::CREW);
  std::vector<int> xs(1 << 12, 1);
  xs[100] = 0;
  min_element_par<int>(m, xs);
  EXPECT_EQ(m.meter().time, 12u);
}

TEST(Argopt, CrcwDepthIsDoublyLog) {
  // The doubly-log schedule should finish a 2^16-element argmin in far
  // fewer steps than the lg-depth tree (16), and each round's processor
  // usage must stay within ~2n.
  Machine m(Model::CRCW_COMMON);
  std::vector<int> xs(1 << 16, 7);
  xs[12345] = 1;
  const auto r = min_element_par<int>(m, xs);
  EXPECT_EQ(r.index, 12345u);
  EXPECT_LT(m.meter().time, 14u);          // ~2 lglg n + load, not lg n
  EXPECT_LE(m.meter().peak_processors, 2u * (1 << 16));
}

TEST(Argopt, CombiningDepthIsConstant) {
  Machine m(Model::CRCW_COMBINING);
  std::vector<int> xs(1 << 16, 7);
  xs[4] = 0;
  min_element_par<int>(m, xs);
  EXPECT_EQ(m.meter().time, 1u);
}

TEST(Scans, ExclusiveScanMatchesSequential) {
  Machine m(Model::CREW);
  std::vector<long long> xs = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto total =
      exclusive_scan_par<long long>(m, xs, std::plus<long long>{}, 0LL);
  EXPECT_EQ(total, 31);
  const std::vector<long long> expect = {0, 3, 4, 8, 9, 14, 23, 25};
  EXPECT_EQ(xs, expect);
  EXPECT_EQ(m.meter().time, 2u * ceil_lg(8));
}

TEST(Scans, InclusiveScan) {
  Machine m(Model::CREW);
  std::vector<long long> xs = {1, 2, 3, 4};
  inclusive_scan_par<long long>(m, xs, std::plus<long long>{});
  const std::vector<long long> expect = {1, 3, 6, 10};
  EXPECT_EQ(xs, expect);
}

TEST(ScatterWrite, CrewConflictThrows) {
  Machine m(Model::CREW);
  std::vector<int> cells(4, 0);
  std::vector<WriteIntent<int>> w = {{0, 2, 5}, {1, 2, 6}};
  EXPECT_THROW(scatter_write<int>(m, cells, w), ModelViolation);
}

TEST(ScatterWrite, CrewDisjointWritesSucceed) {
  Machine m(Model::CREW);
  std::vector<int> cells(4, 0);
  std::vector<WriteIntent<int>> w = {{0, 1, 5}, {1, 3, 6}};
  scatter_write<int>(m, cells, w);
  EXPECT_EQ(cells[1], 5);
  EXPECT_EQ(cells[3], 6);
}

TEST(ScatterWrite, CommonAgreeingWritesSucceed) {
  Machine m(Model::CRCW_COMMON);
  std::vector<int> cells(2, 0);
  std::vector<WriteIntent<int>> w = {{0, 0, 7}, {1, 0, 7}, {2, 0, 7}};
  scatter_write<int>(m, cells, w);
  EXPECT_EQ(cells[0], 7);
}

TEST(ScatterWrite, CommonDisagreementThrows) {
  Machine m(Model::CRCW_COMMON);
  std::vector<int> cells(2, 0);
  std::vector<WriteIntent<int>> w = {{0, 0, 7}, {1, 0, 8}};
  EXPECT_THROW(scatter_write<int>(m, cells, w), ModelViolation);
}

TEST(ScatterWrite, PriorityLowestProcWins) {
  Machine m(Model::CRCW_PRIORITY);
  std::vector<int> cells(1, 0);
  std::vector<WriteIntent<int>> w = {{5, 0, 50}, {2, 0, 20}, {9, 0, 90}};
  scatter_write<int>(m, cells, w);
  EXPECT_EQ(cells[0], 20);
}

TEST(ScatterWrite, CombiningFoldsMin) {
  Machine m(Model::CRCW_COMBINING);
  std::vector<int> cells(1, 100);
  std::vector<WriteIntent<int>> w = {{0, 0, 9}, {1, 0, 3}, {2, 0, 7}};
  scatter_write<int>(m, cells, w,
                     [](int a, int b) { return std::min(a, b); });
  EXPECT_EQ(cells[0], 3);
}

TEST(ScatterWrite, OutOfRangeRejected) {
  Machine m(Model::CREW);
  std::vector<int> cells(2, 0);
  std::vector<WriteIntent<int>> w = {{0, 5, 1}};
  EXPECT_THROW(scatter_write<int>(m, cells, w), std::invalid_argument);
}

TEST(Pack, KeepsFlaggedIndicesInOrder) {
  Machine m(Model::CREW);
  const auto idx =
      pack_indices(m, 10, [](std::size_t i) { return i % 3 == 0; });
  const std::vector<std::size_t> expect = {0, 3, 6, 9};
  EXPECT_EQ(idx, expect);
}

TEST(Merge, MergesSorted) {
  Machine m(Model::CREW);
  std::vector<int> a = {1, 4, 6}, b = {2, 3, 7, 9};
  const auto out =
      parallel_merge<int>(m, a, b, [](int x, int y) { return x < y; });
  const std::vector<int> expect = {1, 2, 3, 4, 6, 7, 9};
  EXPECT_EQ(out, expect);
  EXPECT_EQ(m.meter().time, static_cast<std::uint64_t>(ceil_lg(7)));
}

TEST(Sort, MergeSortSortsStably) {
  Machine m(Model::CREW);
  Rng rng(3);
  std::vector<std::pair<int, int>> xs;  // (key, original position)
  for (int i = 0; i < 500; ++i) {
    xs.emplace_back(static_cast<int>(rng.uniform_int(0, 20)), i);
  }
  merge_sort_par(m, xs, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_LE(xs[i - 1].first, xs[i].first);
    if (xs[i - 1].first == xs[i].first) {
      EXPECT_LT(xs[i - 1].second, xs[i].second);  // stability
    }
  }
  const auto lgn = static_cast<std::uint64_t>(ceil_lg(500));
  EXPECT_EQ(m.meter().time, lgn * lgn);
}

TEST(Sort, RadixSortsBoundedKeys) {
  Machine m(Model::CREW);
  Rng rng(4);
  std::vector<std::uint32_t> xs(300);
  for (auto& x : xs) x = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
  radix_sort_par(m, xs, [](std::uint32_t x) { return x; }, 8);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  // 8 bits * O(lg n) steps.
  EXPECT_LE(m.meter().time, 8u * (2 * ceil_lg(300) + 2));
}

// --- ANSV ------------------------------------------------------------

TEST(Ansv, SmallExample) {
  std::vector<std::int64_t> a = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto r = ansv_seq(a);
  const auto none = AnsvResult::kNone;
  const std::vector<std::size_t> left = {none, none, 1, none, 3, 4, 3, 6};
  const std::vector<std::size_t> right = {1, none, 3, none, 6, 6, none, none};
  EXPECT_EQ(r.left, left);
  EXPECT_EQ(r.right, right);
}

TEST(Ansv, ParallelMatchesSequentialRandom) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 500));
    std::vector<std::int64_t> a(n);
    for (auto& x : a) x = rng.uniform_int(0, 40);
    Machine m(Model::CREW);
    const auto par = ansv(m, a);
    const auto seq = ansv_seq(a);
    EXPECT_EQ(par.left, seq.left);
    EXPECT_EQ(par.right, seq.right);
  }
}

TEST(Ansv, ChargedDepthIsLogarithmic) {
  Machine m(Model::CREW);
  std::vector<std::int64_t> a(1 << 14);
  Rng rng(6);
  for (auto& x : a) x = rng.uniform_int(0, 1000);
  ansv(m, a);
  // O(lg n): generously below, say, 8 lg n.
  EXPECT_LE(m.meter().time, 8u * 14u);
  EXPECT_GE(m.meter().peak_processors, a.size() / 2);
}

TEST(Ansv, BruteForceCrossCheck) {
  Rng rng(9);
  const std::size_t n = 64;
  std::vector<std::int64_t> a(n);
  for (auto& x : a) x = rng.uniform_int(0, 8);
  const auto r = ansv_seq(a);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t left = AnsvResult::kNone;
    for (std::size_t j = i; j-- > 0;) {
      if (a[j] < a[i]) {
        left = j;
        break;
      }
    }
    std::size_t right = AnsvResult::kNone;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a[j] < a[i]) {
        right = j;
        break;
      }
    }
    EXPECT_EQ(r.left[i], left) << i;
    EXPECT_EQ(r.right[i], right) << i;
  }
}

}  // namespace
}  // namespace pmonge::pram
